#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/init.h"

namespace tifl::tensor {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0, 5}), 0);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(shape_numel({-1, 2}), std::invalid_argument);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructorAndFill) {
  Tensor t({2, 2}, 3.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 3.5f);
  t.fill(-1.0f);
  for (float v : t.flat()) EXPECT_EQ(v, -1.0f);
}

TEST(Tensor, DataConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, MatrixAccessorRowMajor) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  t.at(1, 1) = 50.0f;
  EXPECT_EQ(t[4], 50.0f);
}

TEST(Tensor, NchwAccessor) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_EQ(t[119], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t[7], 9.0f);
}

TEST(Tensor, ReshapeRejectsWrongNumel) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ReshapedReturnsCopy) {
  Tensor t({4});
  Tensor r = t.reshaped({2, 2});
  r[0] = 1.0f;
  EXPECT_EQ(t[0], 0.0f);  // original untouched
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({3}, 1.0f);
  Tensor b = a;
  b[0] = 5.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).same_shape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).same_shape(Tensor({3, 2})));
}

TEST(Tensor, RandnMomentsRoughlyStandard) {
  util::Rng rng(1);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double sum = 0.0, sum_sq = 0.0;
  for (float v : t.flat()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.15);
}

TEST(Tensor, RandUniformWithinBounds) {
  util::Rng rng(2);
  Tensor t = Tensor::rand_uniform({1000}, rng, -0.5f, 0.5f);
  for (float v : t.flat()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(Init, HeNormalStddevScalesWithFanIn) {
  util::Rng rng(3);
  Tensor t = he_normal({400, 100}, /*fan_in=*/400, rng);
  double sum_sq = 0.0;
  for (float v : t.flat()) sum_sq += static_cast<double>(v) * v;
  const double var = sum_sq / static_cast<double>(t.numel());
  EXPECT_NEAR(var, 2.0 / 400.0, 2e-4);
}

TEST(Init, GlorotUniformWithinLimit) {
  util::Rng rng(4);
  const float limit = std::sqrt(6.0f / (30 + 20));
  Tensor t = glorot_uniform({30, 20}, 30, 20, rng);
  for (float v : t.flat()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

}  // namespace
}  // namespace tifl::tensor
