#include "core/deadline_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.h"

namespace tifl::core {
namespace {

ProfileResult fake_profile(std::vector<double> latencies,
                           std::vector<bool> dropout = {}) {
  ProfileResult profile;
  profile.mean_latency = std::move(latencies);
  profile.dropout = dropout.empty()
                        ? std::vector<bool>(profile.mean_latency.size(), false)
                        : std::move(dropout);
  return profile;
}

TEST(DeadlinePolicy, OnlyEligibleClientsAreSelected) {
  const ProfileResult profile =
      fake_profile({1.0, 2.0, 3.0, 50.0, 60.0, 4.0, 5.0, 70.0});
  DeadlinePolicy policy(profile, 10.0, 3);
  EXPECT_EQ(policy.eligible_clients(),
            (std::vector<std::size_t>{0, 1, 2, 5, 6}));
  util::Rng rng(1);
  for (std::size_t round = 0; round < 100; ++round) {
    const fl::Selection s = policy.select(round, rng);
    ASSERT_EQ(s.clients.size(), 3u);
    for (std::size_t c : s.clients) {
      EXPECT_NE(c, 3u);
      EXPECT_NE(c, 4u);
      EXPECT_NE(c, 7u);
    }
    std::set<std::size_t> unique(s.clients.begin(), s.clients.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(DeadlinePolicy, DropoutsAreIneligibleEvenIfFast) {
  const ProfileResult profile =
      fake_profile({1.0, 2.0, 3.0, 4.0}, {false, true, false, false});
  DeadlinePolicy policy(profile, 10.0, 2);
  EXPECT_EQ(policy.eligible_clients(), (std::vector<std::size_t>{0, 2, 3}));
}

TEST(DeadlinePolicy, EverythingEligibleWithLooseDeadline) {
  const ProfileResult profile = fake_profile({1.0, 100.0, 1000.0});
  DeadlinePolicy policy(profile, 1e6, 3);
  EXPECT_EQ(policy.eligible_clients().size(), 3u);
}

TEST(DeadlinePolicy, ThrowsWhenTooFewQualify) {
  const ProfileResult profile = fake_profile({1.0, 2.0, 30.0, 40.0});
  EXPECT_THROW(DeadlinePolicy(profile, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(DeadlinePolicy(profile, 0.0, 1), std::invalid_argument);
}

TEST(DeadlinePolicy, EndToEndFasterThanVanillaLosesSlowData) {
  // FedCS-style filtering shortens rounds but permanently excludes the
  // slow clients' data.
  testing::TinyFederation fed = testing::tiny_federation(20);
  fl::Engine engine(testing::tiny_engine_config(12), testing::tiny_factory(),
                    fed.clients, &fed.data.test, fed.latency);
  ProfilerConfig profiler;
  profiler.tmax = 1e6;
  util::Rng rng(2);
  const ProfileResult profile =
      profile_clients(fed.clients, fed.latency, profiler, rng);

  // Deadline at the median latency: the slow half never participates.
  std::vector<double> sorted = profile.mean_latency;
  std::sort(sorted.begin(), sorted.end());
  DeadlinePolicy deadline(profile, sorted[sorted.size() / 2], 4);
  fl::VanillaPolicy vanilla(fed.clients.size(), 4);

  const fl::RunResult fast_run = engine.run(deadline);
  const fl::RunResult base_run = engine.run(vanilla);
  EXPECT_LT(fast_run.total_time(), base_run.total_time());
  EXPECT_GT(fast_run.final_accuracy(), 0.4);  // still learns
}

}  // namespace
}  // namespace tifl::core
