// Chunked evaluation (fl/evaluation.h): chunk-boundary correctness
// against single-shot evaluation — shipped in PR 1 with only indirect
// coverage through the engines.
#include "fl/evaluation.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace tifl::fl {
namespace {

using testing::tiny_data;
using testing::tiny_factory;

TEST(EvaluateWeights, ChunkingsAgreeWithSingleShot) {
  const data::SyntheticData data = tiny_data(21, 100, 97);  // prime test size
  nn::Sequential model = tiny_factory()(/*seed=*/3);
  const std::vector<float> weights = model.weights();

  // One chunk spanning the whole set = the unchunked reference.
  const nn::LossResult reference =
      evaluate_weights(model, weights, data.test, data.test.size());
  ASSERT_GT(reference.loss, 0.0);

  // 97 is prime: every chunk size below hits a ragged final chunk.
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{32},
                            std::size_t{96}, std::size_t{200}}) {
    const nn::LossResult chunked =
        evaluate_weights(model, weights, data.test, chunk);
    EXPECT_NEAR(chunked.loss, reference.loss, 1e-6) << "chunk " << chunk;
    EXPECT_NEAR(chunked.accuracy, reference.accuracy, 1e-9)
        << "chunk " << chunk;
  }
}

TEST(EvaluateWeights, ExactChunkMultipleHasNoRaggedTail) {
  const data::SyntheticData data = tiny_data(22, 100, 96);
  nn::Sequential model = tiny_factory()(/*seed=*/4);
  const std::vector<float> weights = model.weights();
  const nn::LossResult reference =
      evaluate_weights(model, weights, data.test, 96);
  const nn::LossResult chunked =
      evaluate_weights(model, weights, data.test, 24);  // 4 full chunks
  EXPECT_NEAR(chunked.loss, reference.loss, 1e-6);
  EXPECT_NEAR(chunked.accuracy, reference.accuracy, 1e-9);
}

TEST(EvaluateWeights, LoadsTheGivenWeightsNotTheModelsOwn) {
  const data::SyntheticData data = tiny_data(23, 100, 50);
  nn::Sequential scratch = tiny_factory()(/*seed=*/5);
  const std::vector<float> trained = tiny_factory()(/*seed=*/6).weights();

  const nn::LossResult direct =
      evaluate_weights(scratch, trained, data.test, 16);
  // Re-running through a differently-initialized scratch model must give
  // the same answer: only `weights` may matter.
  nn::Sequential other = tiny_factory()(/*seed=*/99);
  const nn::LossResult via_other =
      evaluate_weights(other, trained, data.test, 16);
  EXPECT_DOUBLE_EQ(direct.loss, via_other.loss);
  EXPECT_DOUBLE_EQ(direct.accuracy, via_other.accuracy);
}

TEST(EvaluateWeights, EmptyDatasetYieldsZeros) {
  const data::SyntheticData data = tiny_data(24, 100, 50);
  nn::Sequential model = tiny_factory()(/*seed=*/7);
  const data::Dataset empty = data.test.subset({});
  const nn::LossResult r =
      evaluate_weights(model, model.weights(), empty, 8);
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.0);
}

TEST(EvaluateWeights, ZeroChunkThrows) {
  const data::SyntheticData data = tiny_data(25, 100, 50);
  nn::Sequential model = tiny_factory()(/*seed=*/8);
  EXPECT_THROW(evaluate_weights(model, model.weights(), data.test, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tifl::fl
