// Link-delay streams for the aggregator tree (fl/hier): every parent↔child
// edge owns one mix_seed-derived RNG stream, so sampling delays on one
// link can never perturb another link's sequence — the property the tree
// engine's bit-reproducibility across shard counts rests on.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/latency_model.h"
#include "util/rng.h"

namespace tifl::sim {
namespace {

constexpr std::uint64_t kSeed = 2026;

LatencyModel model() { return LatencyModel{CostModel{0.01, 1.0}}; }

std::vector<double> sample_n(const LatencyModel& m, const LinkProfile& link,
                             util::Rng& rng, std::size_t n,
                             std::size_t payload = 4096) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(m.sample_link_delay(link, payload, rng));
  }
  return out;
}

TEST(LinkStreams, ExpectedDelayIsFloorPlusBandwidthTerm) {
  const LatencyModel m = model();
  LinkProfile link;
  link.latency_seconds = 0.05;
  link.bandwidth_mbps = 100.0;
  // 1 MB over 100 Mbps = 8e6 bits / 1e8 bits/s = 0.08 s of transfer.
  EXPECT_DOUBLE_EQ(m.expected_link_delay(link, 1'000'000), 0.05 + 0.08);
  EXPECT_DOUBLE_EQ(m.expected_link_delay(link, 0), 0.05);
}

TEST(LinkStreams, ZeroJitterIsExactAndDrawsNothing) {
  const LatencyModel m = model();
  LinkProfile link;
  link.latency_seconds = 0.02;
  link.bandwidth_mbps = 50.0;
  link.jitter_sigma = 0.0;
  util::Rng rng = link_stream(kSeed, 1);
  const auto before = rng.state();
  EXPECT_DOUBLE_EQ(m.sample_link_delay(link, 4096, rng),
                   m.expected_link_delay(link, 4096));
  // A jitter-free link consumes no randomness: the stream position is a
  // pure function of the number of *jittered* deliveries, so topologies
  // mixing jittered and clean links stay aligned.
  EXPECT_EQ(rng.state(), before);
}

TEST(LinkStreams, JitterScalesOnlyTheTransferTerm) {
  const LatencyModel m = model();
  LinkProfile link;
  link.latency_seconds = 0.5;
  link.bandwidth_mbps = 100.0;
  link.jitter_sigma = 0.4;
  util::Rng rng = link_stream(kSeed, 1);
  for (int i = 0; i < 64; ++i) {
    const double d = m.sample_link_delay(link, 1'000'000, rng);
    // The propagation floor is never jittered away.
    EXPECT_GE(d, link.latency_seconds);
  }
  // Zero payload: nothing for the jitter to scale.
  EXPECT_DOUBLE_EQ(m.sample_link_delay(link, 0, rng), 0.5);
}

TEST(LinkStreams, SameLinkIdReplaysTheSameSequence) {
  const LatencyModel m = model();
  LinkProfile link;
  link.jitter_sigma = 0.3;
  util::Rng a = link_stream(kSeed, 3);
  util::Rng b = link_stream(kSeed, 3);
  EXPECT_EQ(sample_n(m, link, a, 16), sample_n(m, link, b, 16));
}

TEST(LinkStreams, DistinctLinksAreDistinctStreams) {
  const LatencyModel m = model();
  LinkProfile link;
  link.jitter_sigma = 0.3;
  util::Rng a = link_stream(kSeed, 1);
  util::Rng b = link_stream(kSeed, 2);
  EXPECT_NE(sample_n(m, link, a, 16), sample_n(m, link, b, 16));
}

// The oracle property: link 2's delay sequence is identical whether link 1
// samples zero, one or many deliveries in between.  With per-link streams
// this holds by construction; a shared stream would interleave and break
// it — which is exactly how shard-count bit-reproducibility would die.
TEST(LinkStreams, SamplingOneLinkNeverPerturbsAnother) {
  const LatencyModel m = model();
  LinkProfile link;
  link.jitter_sigma = 0.25;

  util::Rng solo = link_stream(kSeed, 2);
  const std::vector<double> undisturbed = sample_n(m, link, solo, 12);

  util::Rng one = link_stream(kSeed, 1);
  util::Rng two = link_stream(kSeed, 2);
  std::vector<double> interleaved;
  for (std::size_t i = 0; i < 12; ++i) {
    // A bursty neighbour: several deliveries on link 1 per one on link 2.
    sample_n(m, link, one, 1 + i % 3);
    interleaved.push_back(m.sample_link_delay(link, 4096, two));
  }
  EXPECT_EQ(interleaved, undisturbed);
}

// Pin the derivation so a refactor cannot silently remap link ids onto
// different streams (which would change every multi-region trajectory
// while still "passing" the independence properties above).
TEST(LinkStreams, StreamDerivationIsPinned) {
  const util::Rng expected(util::mix_seed(kSeed, 0x11A7, 5));
  EXPECT_EQ(link_stream(kSeed, 5).state(), expected.state());
}

}  // namespace
}  // namespace tifl::sim
