// Crash-safe runs: a run killed mid-flight and resumed from its last
// checkpoint must be indistinguishable from the uninterrupted run — same
// final weights bit for bit, same per-version round series, the resumed
// trace a byte-exact suffix of the full trace, and the same metrics
// totals.  Asserted across worker-shard counts 1/2/4/8 and thread pools
// 1/2/8, on both async paths, with and without injected update loss, and
// through a stateful (adaptive) selection policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/adaptive_policy.h"
#include "fl/async_engine.h"
#include "fl/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace tifl::fl {
namespace {

using testing::FederationBuilder;
using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::two_tiers;
using testing::TinyFederation;

// Like the determinism suite's filter, additionally dropping the
// checkpoint instruments: the full run writes no checkpoints while the
// crashed run does, and that difference is the point, not a regression.
std::string resume_metrics_snapshot() {
  return obs::Registry::global().to_json([](std::string_view name) {
    return !name.ends_with("_ns") && name.substr(0, 5) != "pool." &&
           name.substr(0, 11) != "checkpoint." &&
           name != "sim.schedule_horizon";
  });
}

struct RunOutput {
  AsyncRunResult result;
  std::string trace;
  std::string metrics;
};

core::AdaptiveTierPolicy make_adaptive(const AsyncConfig& async) {
  core::TierInfo tiers;
  tiers.members = two_tiers(10);
  tiers.avg_latency = {1.0, 2.0};
  core::AdaptiveConfig adaptive;
  adaptive.clients_per_round = async.clients_per_tier_round;
  adaptive.interval = 4;
  return core::AdaptiveTierPolicy(tiers, adaptive, async.total_updates);
}

// One engine run over the 10-client tiny federation with the registry
// reset and a fresh tracer around it.  Throws SimulatedCrash through.
RunOutput run_once(const AsyncConfig& async, std::size_t threads,
                   bool adaptive_policy = false) {
  obs::Registry::global().reset();
  RunOutput out;
  std::ostringstream trace_out;
  {
    obs::Tracer tracer(&trace_out);
    obs::TracerScope scope(&tracer);
    TinyFederation fed = FederationBuilder().clients(10).jitter(0.05).build();
    AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                       &fed.clients, two_tiers(10), &fed.data.test,
                       fed.latency);
    std::optional<core::AdaptiveTierPolicy> policy;
    if (adaptive_policy) {
      policy.emplace(make_adaptive(async));
      engine.set_policy(&*policy);
    }
    util::ThreadPool pool(threads);
    engine.set_thread_pool(&pool);
    out.result = engine.run();
    tracer.flush();
  }
  out.trace = trace_out.str();
  out.metrics = resume_metrics_snapshot();
  return out;
}

void expect_suffix(const std::string& full, const std::string& tail,
                   const std::string& label) {
  EXPECT_FALSE(tail.empty()) << label;
  ASSERT_LE(tail.size(), full.size()) << label;
  EXPECT_EQ(full.substr(full.size() - tail.size()), tail) << label;
}

void expect_identical(const RunOutput& full, const RunOutput& resumed,
                      const std::string& label) {
  EXPECT_EQ(full.result.final_weights, resumed.result.final_weights) << label;
  ASSERT_EQ(full.result.result.rounds.size(),
            resumed.result.result.rounds.size())
      << label;
  for (std::size_t i = 0; i < full.result.result.rounds.size(); ++i) {
    EXPECT_EQ(full.result.result.rounds[i].selected_clients,
              resumed.result.result.rounds[i].selected_clients)
        << label << " round " << i;
    EXPECT_DOUBLE_EQ(full.result.result.rounds[i].virtual_time,
                     resumed.result.result.rounds[i].virtual_time)
        << label << " round " << i;
    EXPECT_DOUBLE_EQ(full.result.result.rounds[i].global_accuracy,
                     resumed.result.result.rounds[i].global_accuracy)
        << label << " round " << i;
  }
  EXPECT_EQ(full.result.processed_events, resumed.result.processed_events)
      << label;
  // The resumed run re-emits the trace from the checkpoint boundary: it
  // must be a byte-exact suffix of the uninterrupted stream.
  expect_suffix(full.trace, resumed.trace, label);
  EXPECT_EQ(full.metrics, resumed.metrics) << label;
}

// Crash the run at `crash_frac` of the full run's virtual span (with
// checkpoints every `every_frac` of it), then resume; returns the resumed
// output for comparison against `full`.
RunOutput crash_and_resume(const AsyncConfig& async, const RunOutput& full,
                           double every_frac, double crash_frac,
                           std::size_t threads, const std::string& tag,
                           bool adaptive_policy = false) {
  const double span = full.result.result.rounds.back().virtual_time;
  const std::string snap =
      ::testing::TempDir() + "/resume_" + tag + ".snap";

  AsyncConfig crashing = async;
  crashing.checkpoint_every = every_frac * span;
  crashing.checkpoint_path = snap;
  crashing.fault.crash_at = crash_frac * span;
  bool crashed = false;
  try {
    run_once(crashing, threads, adaptive_policy);
  } catch (const sim::SimulatedCrash&) {
    crashed = true;
  }
  EXPECT_TRUE(crashed) << tag << ": crash point past the end of the run";

  AsyncConfig resuming = async;
  resuming.resume_path = snap;
  return run_once(resuming, threads, adaptive_policy);
}

AsyncConfig static_config() {
  AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  return async;
}

AsyncConfig dynamic_config() {
  AsyncConfig async;
  async.total_updates = 20;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kPolynomial;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  async.barrier_window = 0.5;
  return async;
}

TEST(FlResume, StaticPathCrashResumeIsByteIdenticalAcrossShards) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    AsyncConfig async = static_config();
    async.shards = shards;
    const std::string tag = "static_s" + std::to_string(shards);
    const RunOutput full = run_once(async, /*threads=*/2);
    const RunOutput resumed =
        crash_and_resume(async, full, /*every_frac=*/0.2, /*crash_frac=*/0.6,
                         /*threads=*/2, tag);
    expect_identical(full, resumed, tag);
  }
}

TEST(FlResume, StaticPathCrashResumeIsThreadPoolSizeInvariant) {
  const AsyncConfig async = static_config();
  const RunOutput full = run_once(async, /*threads=*/1);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    const std::string tag = "static_t" + std::to_string(threads);
    const RunOutput resumed =
        crash_and_resume(async, full, /*every_frac=*/0.25, /*crash_frac=*/0.7,
                         threads, tag);
    expect_identical(full, resumed, tag);
  }
}

TEST(FlResume, StaticPathWithInjectedLossCrashResume) {
  // Lost updates retry with backoff; the loss stream's RNG position rides
  // in the snapshot, so the post-resume loss pattern matches the oracle.
  AsyncConfig async = static_config();
  async.fault.loss_prob = 0.2;
  async.fault.max_retries = 2;
  async.fault.backoff_base = 0.25;
  const RunOutput full = run_once(async, /*threads=*/2);
  EXPECT_NE(full.metrics.find("fault.lost_updates"), std::string::npos);
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    AsyncConfig sharded = async;
    sharded.shards = shards;
    const std::string tag = "static_loss_s" + std::to_string(shards);
    const RunOutput sharded_full = run_once(sharded, /*threads=*/2);
    expect_identical(full, sharded_full, tag + "_full");
    const RunOutput resumed =
        crash_and_resume(sharded, full, /*every_frac=*/0.2, /*crash_frac=*/0.5,
                         /*threads=*/2, tag);
    expect_identical(full, resumed, tag);
  }
}

TEST(FlResume, DynamicChurnPathCrashResumeIsByteIdenticalAcrossShards) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    AsyncConfig async = dynamic_config();
    async.shards = shards;
    const std::string tag = "dyn_s" + std::to_string(shards);
    const RunOutput full = run_once(async, /*threads=*/2);
    const RunOutput resumed =
        crash_and_resume(async, full, /*every_frac=*/0.15, /*crash_frac=*/0.55,
                         /*threads=*/2, tag);
    expect_identical(full, resumed, tag);
  }
}

TEST(FlResume, DynamicPathWithLossAndAdaptivePolicyCrashResume) {
  // The hardest composition: churn + barrier windows + update loss + a
  // stateful policy whose credits/probabilities must ride the snapshot.
  AsyncConfig async = dynamic_config();
  async.fault.loss_prob = 0.15;
  const RunOutput full = run_once(async, /*threads=*/2, /*adaptive=*/true);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const std::string tag = "dyn_adaptive_t" + std::to_string(threads);
    const RunOutput resumed =
        crash_and_resume(async, full, /*every_frac=*/0.2, /*crash_frac=*/0.6,
                         threads, tag, /*adaptive=*/true);
    expect_identical(full, resumed, tag);
  }
}

TEST(FlResume, RepeatedCrashesStillConvergeToTheOracle) {
  // Crash the *resumed* run again: two successive recoveries compose.
  const AsyncConfig async = static_config();
  const RunOutput full = run_once(async, /*threads=*/2);
  const double span = full.result.result.rounds.back().virtual_time;
  const std::string snap = ::testing::TempDir() + "/resume_double.snap";

  AsyncConfig first = async;
  first.checkpoint_every = 0.15 * span;
  first.checkpoint_path = snap;
  first.fault.crash_at = 0.4 * span;
  EXPECT_THROW(run_once(first, 2), sim::SimulatedCrash);

  AsyncConfig second = async;
  second.resume_path = snap;
  second.checkpoint_every = 0.15 * span;
  second.checkpoint_path = snap;
  second.fault.crash_at = 0.8 * span;
  EXPECT_THROW(run_once(second, 2), sim::SimulatedCrash);

  AsyncConfig last = async;
  last.resume_path = snap;
  const RunOutput resumed = run_once(last, 2);
  EXPECT_EQ(full.result.final_weights, resumed.result.final_weights);
  expect_suffix(full.trace, resumed.trace, "double_crash");
}

TEST(FlResume, EventLogOfResumedRunMatchesUninterruptedRun) {
  const AsyncConfig base = static_config();
  const std::string full_log = ::testing::TempDir() + "/resume_full.elog";
  const std::string crash_log = ::testing::TempDir() + "/resume_crash.elog";
  const std::string snap = ::testing::TempDir() + "/resume_elog.snap";

  AsyncConfig full_cfg = base;
  full_cfg.event_log_path = full_log;
  const RunOutput full = run_once(full_cfg, 2);
  const double span = full.result.result.rounds.back().virtual_time;

  AsyncConfig crashing = base;
  crashing.event_log_path = crash_log;
  crashing.checkpoint_every = 0.2 * span;
  crashing.checkpoint_path = snap;
  crashing.fault.crash_at = 0.6 * span;
  EXPECT_THROW(run_once(crashing, 2), sim::SimulatedCrash);

  AsyncConfig resuming = base;
  resuming.event_log_path = crash_log;
  resuming.resume_path = snap;
  run_once(resuming, 2);

  // After truncate-to-horizon + replay, the two logs are byte-identical.
  std::ifstream a(full_log, std::ios::binary);
  std::ifstream b(crash_log, std::ios::binary);
  ASSERT_TRUE(a && b);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST(FlResume, ResumeRejectsMismatchedConfigOrPolicy) {
  const AsyncConfig async = static_config();
  const RunOutput full = run_once(async, 2);
  const double span = full.result.result.rounds.back().virtual_time;
  const std::string snap = ::testing::TempDir() + "/resume_reject.snap";

  AsyncConfig crashing = async;
  crashing.checkpoint_every = 0.2 * span;
  crashing.checkpoint_path = snap;
  crashing.fault.crash_at = 0.6 * span;
  EXPECT_THROW(run_once(crashing, 2), sim::SimulatedCrash);

  // A different staleness function changes the config fingerprint.
  AsyncConfig wrong_config = async;
  wrong_config.resume_path = snap;
  wrong_config.staleness = StalenessFn::kPolynomial;
  EXPECT_THROW(run_once(wrong_config, 2), std::runtime_error);

  // A different policy is rejected by name even with the same fingerprint.
  AsyncConfig wrong_policy = async;
  wrong_policy.resume_path = snap;
  EXPECT_THROW(run_once(wrong_policy, 2, /*adaptive=*/true),
               std::runtime_error);

  // Resuming a static-path snapshot on the dynamic path must be rejected
  // (the churn rates change the fingerprint before the path tag is hit).
  AsyncConfig wrong_path = dynamic_config();
  wrong_path.resume_path = snap;
  EXPECT_THROW(run_once(wrong_path, 2), std::runtime_error);

  // Shard count and barrier window are deliberately NOT fingerprinted:
  // resuming under a different partitioning must replay byte for byte.
  AsyncConfig resharded = async;
  resharded.resume_path = snap;
  resharded.shards = 4;
  const RunOutput resumed = run_once(resharded, 2);
  EXPECT_EQ(full.result.final_weights, resumed.result.final_weights);
}

TEST(FlResume, CheckpointConfigIsValidated) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = static_config();
  async.checkpoint_every = 1.0;  // no checkpoint_path
  EXPECT_THROW(AsyncEngine(tiny_engine_config(1), async, tiny_factory(),
                           &fed.clients, two_tiers(10), &fed.data.test,
                           fed.latency),
               std::invalid_argument);
  AsyncConfig negative = static_config();
  negative.checkpoint_every = -1.0;
  negative.checkpoint_path = "x.snap";
  EXPECT_THROW(AsyncEngine(tiny_engine_config(1), negative, tiny_factory(),
                           &fed.clients, two_tiers(10), &fed.data.test,
                           fed.latency),
               std::invalid_argument);
}

}  // namespace
}  // namespace tifl::fl
