// Layer-level correctness: every trainable layer passes a central
// finite-difference gradient check on both its input gradient and its
// parameter gradients, across a parameterized sweep of shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tifl::nn {
namespace {

using tensor::Tensor;

// L(x) = <proj, layer(x)>: a fixed random projection turns the layer into
// a scalar function we can differentiate numerically.
double projected_output(Layer& layer, const Tensor& x, const Tensor& proj,
                        util::Rng& rng) {
  PassContext ctx{.training = true, .rng = &rng};
  const Tensor y = layer.forward(x, ctx);
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    s += static_cast<double>(y[i]) * proj[i];
  }
  return s;
}

struct GradCheckResult {
  double max_rel_error_input = 0.0;
  double max_rel_error_params = 0.0;
};

// Central differences with relative error against analytic gradients.
GradCheckResult grad_check(Layer& layer, Tensor x, std::uint64_t seed,
                           double h = 1e-2) {
  util::Rng rng(seed);
  PassContext ctx{.training = true, .rng = &rng};
  Tensor y = layer.forward(x, ctx);
  util::Rng proj_rng(seed + 1);
  const Tensor proj = Tensor::randn(y.shape(), proj_rng);

  layer.zero_grads();
  const Tensor dx = layer.backward(proj);

  GradCheckResult result;
  auto rel_err = [](double analytic, double numeric) {
    const double denom =
        std::max({std::abs(analytic), std::abs(numeric), 1e-4});
    return std::abs(analytic - numeric) / denom;
  };

  // Input gradient: probe a bounded number of coordinates.
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 24);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(h);
    util::Rng r1(seed);
    const double fp = projected_output(layer, x, proj, r1);
    x[i] = saved - static_cast<float>(h);
    util::Rng r2(seed);
    const double fm = projected_output(layer, x, proj, r2);
    x[i] = saved;
    const double numeric = (fp - fm) / (2.0 * h);
    result.max_rel_error_input =
        std::max(result.max_rel_error_input, rel_err(dx[i], numeric));
  }

  // Parameter gradients.
  const auto params = layer.params();
  const auto grads = layer.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    const Tensor& g = *grads[p];
    const std::int64_t pstride = std::max<std::int64_t>(1, w.numel() / 24);
    for (std::int64_t i = 0; i < w.numel(); i += pstride) {
      const float saved = w[i];
      w[i] = saved + static_cast<float>(h);
      util::Rng r1(seed);
      const double fp = projected_output(layer, x, proj, r1);
      w[i] = saved - static_cast<float>(h);
      util::Rng r2(seed);
      const double fm = projected_output(layer, x, proj, r2);
      w[i] = saved;
      const double numeric = (fp - fm) / (2.0 * h);
      result.max_rel_error_params =
          std::max(result.max_rel_error_params, rel_err(g[i], numeric));
    }
  }
  return result;
}

constexpr double kTol = 5e-2;  // float32 forward + h=1e-2 central diff

// --- Dense -------------------------------------------------------------------

struct DenseShape {
  int batch, in, out;
};

class DenseGradSweep : public ::testing::TestWithParam<DenseShape> {};

TEST_P(DenseGradSweep, PassesGradientCheck) {
  const auto [batch, in, out] = GetParam();
  util::Rng rng(77);
  Dense layer(in, out, rng);
  Tensor x = Tensor::randn({batch, in}, rng);
  const GradCheckResult r = grad_check(layer, std::move(x), 101);
  EXPECT_LT(r.max_rel_error_input, kTol);
  EXPECT_LT(r.max_rel_error_params, kTol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseGradSweep,
                         ::testing::Values(DenseShape{1, 1, 1},
                                           DenseShape{2, 3, 4},
                                           DenseShape{5, 8, 3},
                                           DenseShape{10, 16, 10},
                                           DenseShape{3, 32, 2}));

TEST(Dense, ForwardMatchesManualAffine) {
  util::Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite parameters with known values.
  auto params = layer.params();
  *params[0] = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});  // W
  *params[1] = Tensor({2}, std::vector<float>{10, 20});         // b
  Tensor x({1, 2}, std::vector<float>{1, 1});
  PassContext ctx{.training = false};
  const Tensor y = layer.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 1 + 1 * 3 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 1 * 2 + 1 * 4 + 20);
}

TEST(Dense, RejectsWrongInputWidth) {
  util::Rng rng(1);
  Dense layer(4, 2, rng);
  PassContext ctx{};
  Tensor x({1, 3});
  EXPECT_THROW(layer.forward(x, ctx), std::invalid_argument);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  util::Rng rng(1);
  Dense layer(2, 2, rng);
  Tensor dy({1, 2});
  EXPECT_THROW(layer.backward(dy), std::logic_error);
}

TEST(Dense, GradsAccumulateAcrossBackwardCalls) {
  util::Rng rng(2);
  Dense layer(3, 2, rng);
  PassContext ctx{.training = true, .rng = &rng};
  Tensor x = Tensor::randn({2, 3}, rng);
  Tensor dy({2, 2}, 1.0f);
  layer.zero_grads();
  layer.forward(x, ctx);
  layer.backward(dy);
  const Tensor once = *layer.grads()[0];
  layer.forward(x, ctx);
  layer.backward(dy);
  const Tensor twice = *layer.grads()[0];
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-5f);
  }
}

// --- Conv2D ------------------------------------------------------------------

struct ConvShape {
  int batch, in_ch, out_ch, hw, kernel;
  bool same_pad;
};

class ConvGradSweep : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvGradSweep, PassesGradientCheck) {
  const auto p = GetParam();
  util::Rng rng(88);
  Conv2D layer(p.in_ch, p.out_ch, p.kernel, rng, 1, p.same_pad);
  Tensor x = Tensor::randn({p.batch, p.in_ch, p.hw, p.hw}, rng);
  const GradCheckResult r = grad_check(layer, std::move(x), 202);
  EXPECT_LT(r.max_rel_error_input, kTol);
  EXPECT_LT(r.max_rel_error_params, kTol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvGradSweep,
                         ::testing::Values(ConvShape{1, 1, 1, 4, 3, false},
                                           ConvShape{2, 2, 3, 5, 3, false},
                                           ConvShape{1, 3, 2, 6, 3, true},
                                           ConvShape{2, 1, 4, 5, 5, true},
                                           ConvShape{3, 2, 2, 4, 1, false}));

TEST(Conv2D, KnownAverageKernel) {
  util::Rng rng(1);
  Conv2D layer(1, 1, 2, rng);
  auto params = layer.params();
  params[0]->fill(0.25f);  // 2x2 mean filter
  params[1]->fill(0.0f);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  PassContext ctx{};
  const Tensor y = layer.forward(x, ctx);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(Conv2D, SamePaddingPreservesSpatialSize) {
  util::Rng rng(2);
  Conv2D layer(3, 8, 3, rng, 1, /*same_pad=*/true);
  Tensor x = Tensor::randn({2, 3, 7, 9}, rng);
  PassContext ctx{};
  const Tensor y = layer.forward(x, ctx);
  EXPECT_EQ(y.dim(2), 7);
  EXPECT_EQ(y.dim(3), 9);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(Conv2D, WorkspaceStopsGrowingAfterWarmup) {
  // The batch im2col path stages everything in the layer's Workspace;
  // after one forward/backward warm-up, repeated training steps must not
  // allocate any new scratch.
  util::Rng rng(9);
  Conv2D layer(2, 4, 3, rng);
  Tensor x = Tensor::randn({4, 2, 8, 8}, rng);
  PassContext ctx{.training = true, .rng = nullptr};

  Tensor y = layer.forward(x, ctx);
  layer.backward(y);
  const std::size_t warm = layer.workspace().capacity_floats();
  EXPECT_GT(warm, 0u);

  for (int step = 0; step < 5; ++step) {
    Tensor out = layer.forward(x, ctx);
    layer.backward(out);
    EXPECT_EQ(layer.workspace().capacity_floats(), warm)
        << "scratch grew on step " << step;
  }
}

TEST(Conv2D, FusedReluMatchesSeparateReluBitwise) {
  // Conv with the fused epilogue == conv + standalone ReLU, forward and
  // backward, down to the bit.
  util::Rng rng_a(10), rng_b(10);
  Conv2D fused(2, 3, 3, rng_a);
  Conv2D plain(2, 3, 3, rng_b);
  fused.set_fused_relu(true);
  ReLU relu;

  util::Rng rng_x(77);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng_x);
  PassContext ctx{.training = true, .rng = nullptr};
  Tensor yf = fused.forward(x, ctx);
  Tensor yp = relu.forward(plain.forward(x, ctx), ctx);
  ASSERT_EQ(yf.numel(), yp.numel());
  for (std::int64_t i = 0; i < yf.numel(); ++i) {
    ASSERT_EQ(yf[i], yp[i]) << "forward element " << i;
  }

  Tensor dy = Tensor::randn(yf.shape(), rng_x);
  fused.zero_grads();
  plain.zero_grads();
  Tensor dxf = fused.backward(dy);
  Tensor dxp = plain.backward(relu.backward(dy));
  for (std::int64_t i = 0; i < dxf.numel(); ++i) {
    ASSERT_EQ(dxf[i], dxp[i]) << "dx element " << i;
  }
  for (std::size_t p = 0; p < 2; ++p) {
    const Tensor& gf = *fused.grads()[p];
    const Tensor& gp = *plain.grads()[p];
    for (std::int64_t i = 0; i < gf.numel(); ++i) {
      ASSERT_EQ(gf[i], gp[i]) << "grad " << p << " element " << i;
    }
  }
}

TEST(Conv2D, RejectsWrongChannelCount) {
  util::Rng rng(3);
  Conv2D layer(3, 4, 3, rng);
  PassContext ctx{};
  Tensor x({1, 2, 5, 5});
  EXPECT_THROW(layer.forward(x, ctx), std::invalid_argument);
}

// --- MaxPool2D -----------------------------------------------------------------

TEST(MaxPool2D, ForwardPicksWindowMaxima) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 4, 4},
           std::vector<float>{1, 2, 3, 4,
                              5, 6, 7, 8,
                              9, 10, 11, 12,
                              13, 14, 15, 16});
  PassContext ctx{};
  const Tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 14.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);
}

TEST(MaxPool2D, BackwardRoutesGradientToArgmax) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  util::Rng rng(1);
  PassContext ctx{.training = true, .rng = &rng};
  pool.forward(x, ctx);
  Tensor dy({1, 1, 1, 1}, std::vector<float>{5.0f});
  const Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 5.0f);  // position of the 9
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(MaxPool2D, GradCheck) {
  util::Rng rng(9);
  MaxPool2D pool(2);
  // Distinct values so the argmax is stable under the probe step.
  Tensor x({2, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 13) + 0.1f * static_cast<float>(i);
  }
  const GradCheckResult r = grad_check(pool, std::move(x), 303, 1e-3);
  EXPECT_LT(r.max_rel_error_input, kTol);
}

TEST(MaxPool2D, WindowLargerThanInputThrows) {
  MaxPool2D pool(8);
  PassContext ctx{};
  Tensor x({1, 1, 4, 4});
  EXPECT_THROW(pool.forward(x, ctx), std::invalid_argument);
}

// --- ReLU / Flatten / Dropout --------------------------------------------------

TEST(ReLULayer, GradCheck) {
  ReLU relu;
  util::Rng rng(4);
  // Keep activations away from the kink for a clean finite difference.
  Tensor x = Tensor::randn({3, 10}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  const GradCheckResult r = grad_check(relu, std::move(x), 404, 1e-3);
  EXPECT_LT(r.max_rel_error_input, kTol);
}

TEST(FlattenLayer, RoundTripsShape) {
  Flatten flatten;
  util::Rng rng(5);
  PassContext ctx{.training = true, .rng = &rng};
  Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  const Tensor y = flatten.forward(x, ctx);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 60}));
  const Tensor dx = flatten.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(tensor::max_abs_diff(dx, x), 0.0f);
}

TEST(DropoutLayer, InferenceIsIdentity) {
  Dropout dropout(0.5f);
  util::Rng rng(6);
  Tensor x = Tensor::randn({4, 8}, rng);
  PassContext ctx{.training = false};
  const Tensor y = dropout.forward(x, ctx);
  EXPECT_EQ(tensor::max_abs_diff(y, x), 0.0f);
}

TEST(DropoutLayer, TrainingZeroesApproxRateAndRescales) {
  Dropout dropout(0.25f);
  util::Rng rng(7);
  Tensor x({1, 10000}, 1.0f);
  PassContext ctx{.training = true, .rng = &rng};
  const Tensor y = dropout.forward(x, ctx);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.75f, 1e-5f);  // inverted dropout scale
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()),
              0.25, 0.02);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Dropout dropout(0.5f);
  util::Rng rng(8);
  Tensor x({1, 1000}, 1.0f);
  PassContext ctx{.training = true, .rng = &rng};
  const Tensor y = dropout.forward(x, ctx);
  Tensor dy({1, 1000}, 1.0f);
  const Tensor dx = dropout.backward(dy);
  EXPECT_EQ(tensor::max_abs_diff(dx, y), 0.0f);  // identical masking
}

TEST(DropoutLayer, TrainingWithoutRngThrows) {
  Dropout dropout(0.5f);
  Tensor x({1, 4});
  PassContext ctx{.training = true, .rng = nullptr};
  EXPECT_THROW(dropout.forward(x, ctx), std::invalid_argument);
}

TEST(DropoutLayer, InvalidRateThrows) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_NO_THROW(Dropout(0.0f));
}

}  // namespace
}  // namespace tifl::nn
