#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tifl::util {
namespace {

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&counter] { counter.fetch_add(1); });
  f.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForRespectsOffset) {
  ThreadPool pool(2);
  std::vector<int> seen;
  std::mutex m;
  pool.parallel_for(10, 20, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(m);
    seen.push_back(static_cast<int>(i));
  });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 19);
}

TEST(ThreadPool, ParallelForGrainForcesSerialOnSmallRanges) {
  ThreadPool pool(4);
  // With grain >= range the body must run on the calling thread.
  const std::thread::id self = std::this_thread::get_id();
  std::vector<std::thread::id> ids(4);
  pool.parallel_for(
      0, ids.size(),
      [&ids](std::size_t i) { ids[i] = std::this_thread::get_id(); }, 100);
  for (const auto& id : ids) EXPECT_EQ(id, self);
}

TEST(ThreadPool, ParallelForChunkedPartitionsContiguously) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunked(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(lo, hi);
      },
      1);
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GT(hi, lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 100u);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&pool, &total](std::size_t) {
    // Inner call from a worker thread must degrade to serial, not block.
    pool.parallel_for(0, 8, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> inside{false};
  pool.submit([&pool, &inside] { inside = pool.on_worker_thread(); }).get();
  EXPECT_TRUE(inside.load());
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 500u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 1.0);
  // Per-chunk partial sums reduced in deterministic order.
  std::mutex m;
  std::vector<std::pair<std::size_t, double>> partials;
  pool.parallel_for_chunked(0, xs.size(), [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += xs[i];
    std::lock_guard<std::mutex> lock(m);
    partials.emplace_back(lo, s);
  });
  std::sort(partials.begin(), partials.end());
  double total = 0.0;
  for (const auto& [lo, s] : partials) total += s;
  EXPECT_DOUBLE_EQ(total, 10000.0 * 10001.0 / 2.0);
}

}  // namespace
}  // namespace tifl::util
