// Seeded fault injection: loss streams are pure functions of the seed,
// backoff is deterministic and capped, and the crash exception carries
// its virtual time.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/fault_model.h"
#include "util/serial.h"

namespace tifl::sim {
namespace {

TEST(FaultModel, RejectsInvalidConfig) {
  FaultConfig bad_prob;
  bad_prob.loss_prob = 1.0;  // would retry forever
  EXPECT_THROW(FaultModel(bad_prob, 1), std::invalid_argument);
  FaultConfig negative_prob;
  negative_prob.loss_prob = -0.1;
  EXPECT_THROW(FaultModel(negative_prob, 1), std::invalid_argument);
  FaultConfig negative_crash;
  negative_crash.crash_at = -5.0;
  EXPECT_THROW(FaultModel(negative_crash, 1), std::invalid_argument);
  FaultConfig negative_backoff;
  negative_backoff.loss_prob = 0.1;
  negative_backoff.backoff_base = -1.0;
  EXPECT_THROW(FaultModel(negative_backoff, 1), std::invalid_argument);
}

TEST(FaultModel, LossStreamIsAPureFunctionOfTheSeed) {
  FaultConfig config;
  config.loss_prob = 0.3;
  FaultModel a(config, /*run_seed=*/42);
  FaultModel b(config, /*run_seed=*/42);
  int losses = 0;
  for (int i = 0; i < 500; ++i) {
    const bool lost = a.lose_update();
    EXPECT_EQ(lost, b.lose_update()) << "draw " << i;
    losses += lost ? 1 : 0;
  }
  // ~150 expected; any seeded stream should land well inside [50, 250].
  EXPECT_GT(losses, 50);
  EXPECT_LT(losses, 250);

  // A different run seed gives a different stream (derived seed).
  FaultModel c(config, /*run_seed=*/43);
  int diverged = 0;
  FaultModel a2(config, /*run_seed=*/42);
  for (int i = 0; i < 500; ++i) {
    diverged += a2.lose_update() != c.lose_update() ? 1 : 0;
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultModel, ExplicitSeedOverridesRunSeed) {
  FaultConfig pinned;
  pinned.loss_prob = 0.3;
  pinned.seed = 777;
  FaultModel a(pinned, /*run_seed=*/1);
  FaultModel b(pinned, /*run_seed=*/2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.lose_update(), b.lose_update());
  }
}

TEST(FaultModel, ZeroLossProbabilityDrawsNothing) {
  FaultConfig config;  // loss_prob 0
  FaultModel fault(config, 9);
  util::ByteSink before;
  fault.save_state(before);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fault.lose_update());
  util::ByteSink after;
  fault.save_state(after);
  // The RNG position is untouched: enabling crash_at alone (loss off)
  // perturbs no streams relative to a fault-free run.
  EXPECT_EQ(before.bytes(), after.bytes());
  EXPECT_FALSE(fault.active());
}

TEST(FaultModel, BackoffIsExponentialAndCapped) {
  FaultConfig config;
  config.loss_prob = 0.1;
  config.backoff_base = 0.5;
  config.backoff_factor = 2.0;
  config.backoff_max = 3.0;
  FaultModel fault(config, 1);
  EXPECT_DOUBLE_EQ(fault.backoff(1), 0.5);
  EXPECT_DOUBLE_EQ(fault.backoff(2), 1.0);
  EXPECT_DOUBLE_EQ(fault.backoff(3), 2.0);
  EXPECT_DOUBLE_EQ(fault.backoff(4), 3.0);  // capped
  EXPECT_DOUBLE_EQ(fault.backoff(10), 3.0);
}

TEST(FaultModel, SimulatedCrashCarriesItsVirtualTime) {
  try {
    throw SimulatedCrash(12.5);
  } catch (const SimulatedCrash& crash) {
    EXPECT_DOUBLE_EQ(crash.time(), 12.5);
    EXPECT_NE(std::string(crash.what()).find("12.5"), std::string::npos);
  }
  // And it is catchable as the runtime_error it is.
  EXPECT_THROW(throw SimulatedCrash(1.0), std::runtime_error);
}

}  // namespace
}  // namespace tifl::sim
