#include "core/adaptive_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace tifl::core {
namespace {

TierInfo synthetic_tiers(std::size_t tiers = 5, std::size_t per_tier = 10) {
  TierInfo info;
  info.members.resize(tiers);
  info.avg_latency.resize(tiers);
  std::size_t id = 0;
  for (std::size_t t = 0; t < tiers; ++t) {
    for (std::size_t i = 0; i < per_tier; ++i) info.members[t].push_back(id++);
    info.avg_latency[t] = static_cast<double>(t + 1);
  }
  return info;
}

fl::RoundFeedback feedback(std::vector<double> accs, std::size_t round = 0) {
  fl::RoundFeedback f;
  f.round = round;
  f.tier_accuracies = std::move(accs);
  return f;
}

TEST(DefaultCredits, HalvingScheduleSumsToRoughlyTwiceRounds) {
  const std::vector<double> credits = default_credits(500, 5);
  ASSERT_EQ(credits.size(), 5u);
  EXPECT_EQ(credits[0], 500.0);
  EXPECT_EQ(credits[1], 250.0);
  EXPECT_EQ(credits[4], std::ceil(500.0 / 16.0));
  const double total = std::accumulate(credits.begin(), credits.end(), 0.0);
  EXPECT_GT(total, 500.0);  // selection can never deadlock mid-run
}

TEST(Adaptive, InitialProbabilitiesAreEqual) {
  AdaptiveTierPolicy policy(synthetic_tiers(), AdaptiveConfig{}, 100);
  for (double p : policy.probs()) EXPECT_DOUBLE_EQ(p, 0.2);
}

TEST(Adaptive, SelectionStaysWithinOneTier) {
  AdaptiveTierPolicy policy(synthetic_tiers(), AdaptiveConfig{}, 100);
  util::Rng rng(1);
  const TierInfo tiers = synthetic_tiers();
  for (std::size_t round = 0; round < 100; ++round) {
    const fl::Selection s = policy.select(round, rng);
    policy.observe(feedback({0.5, 0.5, 0.5, 0.5, 0.5}, round));
    ASSERT_EQ(s.clients.size(), 5u);
    const auto& pool = tiers.members[static_cast<std::size_t>(s.tier)];
    for (std::size_t c : s.clients) {
      EXPECT_TRUE(std::find(pool.begin(), pool.end(), c) != pool.end());
    }
  }
}

TEST(Adaptive, CreditsDecrementOnSelection) {
  AdaptiveConfig config;
  config.credits = {10, 10, 10, 10, 10};
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 50);
  util::Rng rng(2);
  const fl::Selection s = policy.select(0, rng);
  const double remaining =
      policy.credits()[static_cast<std::size_t>(s.tier)];
  EXPECT_DOUBLE_EQ(remaining, 9.0);
}

TEST(Adaptive, ExhaustedTierIsNeverSelectedAgain) {
  AdaptiveConfig config;
  config.credits = {2, 100, 100, 100, 100};  // tier 0 nearly spent
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 200);
  util::Rng rng(3);
  int tier0_picks = 0;
  for (std::size_t round = 0; round < 200; ++round) {
    const fl::Selection s = policy.select(round, rng);
    policy.observe(feedback({0.9, 0.1, 0.1, 0.1, 0.1}, round));
    if (s.tier == 0) ++tier0_picks;
  }
  EXPECT_EQ(tier0_picks, 2);
}

TEST(Adaptive, TotalSelectionsPerTierBoundedByInitialCredits) {
  AdaptiveConfig config;
  config.credits = {5, 5, 5, 5, 100};
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 60);
  util::Rng rng(4);
  std::vector<int> picks(5, 0);
  for (std::size_t round = 0; round < 60; ++round) {
    const fl::Selection s = policy.select(round, rng);
    policy.observe(feedback({0.5, 0.5, 0.5, 0.5, 0.5}, round));
    ++picks[static_cast<std::size_t>(s.tier)];
  }
  for (std::size_t t = 0; t < 4; ++t) EXPECT_LE(picks[t], 5) << "tier " << t;
}

TEST(Adaptive, ChangeProbsBoostsLowAccuracyTier) {
  AdaptiveConfig config;
  config.interval = 5;
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  util::Rng rng(5);
  // Tier 3 lags badly; others are fine.  Accuracy never improves, so at
  // round 5 ChangeProbs must fire and re-weight toward tier 3.
  for (std::size_t round = 0; round < 12; ++round) {
    policy.select(round, rng);
    policy.observe(feedback({0.9, 0.9, 0.9, 0.2, 0.9}, round));
  }
  EXPECT_GE(policy.change_probs_invocations(), 1u);
  const std::vector<double>& probs = policy.probs();
  for (std::size_t t = 0; t < 5; ++t) {
    if (t != 3) {
      EXPECT_GT(probs[3], probs[t]) << "tier " << t;
    }
  }
  // Still a distribution.
  EXPECT_NEAR(std::accumulate(probs.begin(), probs.end(), 0.0), 1.0, 1e-9);
}

TEST(Adaptive, NoChangeWhileAccuracyImproves) {
  AdaptiveConfig config;
  config.interval = 4;
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  util::Rng rng(6);
  // Monotonically improving accuracy on every tier: the stall condition
  // A_cur^r <= A_cur^{r-I} never holds, so probabilities stay equal.
  for (std::size_t round = 0; round < 20; ++round) {
    policy.select(round, rng);
    const double acc = 0.1 + 0.04 * static_cast<double>(round);
    policy.observe(feedback({acc, acc, acc, acc, acc}, round));
  }
  EXPECT_EQ(policy.change_probs_invocations(), 0u);
  for (double p : policy.probs()) EXPECT_DOUBLE_EQ(p, 0.2);
}

TEST(Adaptive, RankRuleOrdersByAccuracy) {
  AdaptiveConfig config;
  config.interval = 2;
  config.prob_rule = AdaptiveConfig::ProbRule::kRank;
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  util::Rng rng(7);
  for (std::size_t round = 0; round < 6; ++round) {
    policy.select(round, rng);
    policy.observe(feedback({0.9, 0.7, 0.5, 0.3, 0.1}, round));
  }
  ASSERT_GE(policy.change_probs_invocations(), 1u);
  const auto& probs = policy.probs();
  // Strictly increasing probability from best tier (0) to worst (4).
  for (std::size_t t = 1; t < 5; ++t) EXPECT_GT(probs[t], probs[t - 1]);
  // Rank weights are T..1 normalized: worst tier gets 5/15.
  EXPECT_NEAR(probs[4], 5.0 / 15.0, 1e-9);
}

TEST(Adaptive, ExhaustedTierGetsZeroProbabilityAfterChange) {
  AdaptiveConfig config;
  config.interval = 2;
  config.credits = {0, 10, 10, 10, 10};  // tier 0 spent from the start
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  util::Rng rng(8);
  for (std::size_t round = 0; round < 6; ++round) {
    const fl::Selection s = policy.select(round, rng);
    EXPECT_NE(s.tier, 0);
    policy.observe(feedback({0.1, 0.9, 0.9, 0.9, 0.9}, round));
  }
  // Even though tier 0 has the worst accuracy, its credits are gone.
  if (policy.change_probs_invocations() > 0) {
    EXPECT_DOUBLE_EQ(policy.probs()[0], 0.0);
  }
}

TEST(Adaptive, AllCreditsExhaustedRecoversInsteadOfHanging) {
  AdaptiveConfig config;
  config.credits = {1, 1, 1, 1, 1};  // 5 credits, 10 rounds
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 10);
  util::Rng rng(9);
  for (std::size_t round = 0; round < 10; ++round) {
    EXPECT_NO_THROW(policy.select(round, rng));
    policy.observe(feedback({0.5, 0.5, 0.5, 0.5, 0.5}, round));
  }
}

TEST(Adaptive, UndersizedTierIsIneligible) {
  TierInfo tiers = synthetic_tiers(3, 6);
  tiers.members[1].resize(2);  // cannot fill |C| = 5
  AdaptiveConfig config;
  config.clients_per_round = 5;
  AdaptiveTierPolicy policy(tiers, config, 50);
  util::Rng rng(10);
  for (std::size_t round = 0; round < 50; ++round) {
    EXPECT_NE(policy.select(round, rng).tier, 1);
    policy.observe(feedback({0.5, 0.0, 0.5}, round));
  }
}

TEST(Adaptive, MissingTierFeedbackCarriesForward) {
  AdaptiveConfig config;
  config.interval = 3;
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  util::Rng rng(11);
  policy.select(0, rng);
  policy.observe(feedback({0.9, 0.9, 0.9, 0.1, 0.9}, 0));
  // Subsequent rounds deliver no tier accuracies (eval_every > 1).
  for (std::size_t round = 1; round < 9; ++round) {
    policy.select(round, rng);
    fl::RoundFeedback empty;
    empty.round = round;
    policy.observe(empty);
  }
  // Stalled (carried-forward) accuracy triggers ChangeProbs eventually.
  EXPECT_GE(policy.change_probs_invocations(), 1u);
}

TEST(Adaptive, ConstructionErrors) {
  EXPECT_THROW(AdaptiveTierPolicy(TierInfo{}, AdaptiveConfig{}, 10),
               std::invalid_argument);
  AdaptiveConfig bad_interval;
  bad_interval.interval = 0;
  EXPECT_THROW(AdaptiveTierPolicy(synthetic_tiers(), bad_interval, 10),
               std::invalid_argument);
  AdaptiveConfig bad_credits;
  bad_credits.credits = {1.0, 2.0};  // wrong arity for 5 tiers
  EXPECT_THROW(AdaptiveTierPolicy(synthetic_tiers(), bad_credits, 10),
               std::invalid_argument);
}

TEST(Adaptive, FeedbackArityMismatchThrows) {
  AdaptiveTierPolicy policy(synthetic_tiers(), AdaptiveConfig{}, 10);
  EXPECT_THROW(policy.observe(feedback({0.5, 0.5})), std::invalid_argument);
}

// --- async (per-tier cadence) mode -------------------------------------------

fl::SelectionContext tier_context(std::size_t tier,
                                  std::span<const std::size_t> candidates,
                                  util::Rng& rng, std::size_t version = 0) {
  fl::SelectionContext context;
  context.round = version;
  context.tier = static_cast<int>(tier);
  context.candidates = candidates;
  context.rng = &rng;
  return context;
}

TEST(AdaptiveAsync, UniformProbabilitiesReproduceDefaultShare) {
  // p_t = 1/T makes round(p_t * T * |C|) == |C| — the engine's default.
  AdaptiveTierPolicy policy(synthetic_tiers(), AdaptiveConfig{}, 100);
  const TierInfo tiers = synthetic_tiers();
  util::Rng rng(20);
  for (std::size_t t = 0; t < 5; ++t) {
    const fl::Selection s =
        policy.select(tier_context(t, tiers.members[t], rng));
    EXPECT_EQ(s.tier, static_cast<int>(t));
    EXPECT_EQ(s.clients.size(), 5u);
    for (std::size_t c : s.clients) {
      EXPECT_TRUE(std::find(tiers.members[t].begin(), tiers.members[t].end(),
                            c) != tiers.members[t].end());
    }
  }
}

TEST(AdaptiveAsync, ChangeProbsShiftsPerTierShares) {
  AdaptiveConfig config;
  config.interval = 2;
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  const TierInfo tiers = synthetic_tiers();
  util::Rng rng(21);
  // Tier 4 lags; stalled accuracy at version 2 triggers ChangeProbs.
  for (std::size_t version = 0; version < 4; ++version) {
    policy.select(tier_context(0, tiers.members[0], rng, version));
    fl::RoundFeedback f = feedback({0.9, 0.9, 0.9, 0.9, 0.1}, version);
    f.submitting_tier = 0;
    policy.observe(f);
  }
  // The stall test runs at the next interval-aligned select (version 4):
  // the lagging tier's share then exceeds the default |C| = 5 (capped at
  // its live member count); a healthy tier's share rounds to zero and
  // parks.
  const fl::Selection lagging =
      policy.select(tier_context(4, tiers.members[4], rng, 4));
  ASSERT_GE(policy.change_probs_invocations(), 1u);
  EXPECT_GT(lagging.clients.size(), 5u);
  const fl::Selection healthy =
      policy.select(tier_context(0, tiers.members[0], rng, 5));
  EXPECT_TRUE(healthy.clients.empty());
}

TEST(AdaptiveAsync, ExhaustedCreditsThrottleToSingleMember) {
  AdaptiveConfig config;
  config.credits = {1, 100, 100, 100, 100};
  AdaptiveTierPolicy policy(synthetic_tiers(), config, 100);
  const TierInfo tiers = synthetic_tiers();
  util::Rng rng(22);
  // First tier-0 dispatch spends its only credit at the default share.
  EXPECT_EQ(policy.select(tier_context(0, tiers.members[0], rng, 0))
                .clients.size(),
            5u);
  // Out of credits: throttled to one member; credits stay at zero.
  EXPECT_EQ(policy.select(tier_context(0, tiers.members[0], rng, 1))
                .clients.size(),
            1u);
  EXPECT_DOUBLE_EQ(policy.credits()[0], 0.0);
}

TEST(AdaptiveAsync, EmptyCandidatesParkTheTier) {
  AdaptiveTierPolicy policy(synthetic_tiers(), AdaptiveConfig{}, 100);
  util::Rng rng(23);
  const std::vector<std::size_t> none;
  EXPECT_TRUE(policy.select(tier_context(2, none, rng)).clients.empty());
}

TEST(AdaptiveAsync, SyncEligibilityRestoredAfterAsyncSelects) {
  // Eligibility mode is per call, not sticky: after serving an async
  // dispatch, a sync select on the same instance must still refuse tiers
  // that cannot fill |C| (sampling from one would throw).
  TierInfo tiers = synthetic_tiers(3, 6);
  tiers.members[1].resize(2);  // below |C| = 5
  AdaptiveConfig config;
  config.clients_per_round = 5;
  AdaptiveTierPolicy policy(tiers, config, 50);
  util::Rng rng(24);
  policy.select(tier_context(1, tiers.members[1], rng));  // async, relaxed
  for (std::size_t round = 0; round < 30; ++round) {
    fl::Selection s;
    ASSERT_NO_THROW(s = policy.select(round, rng));
    EXPECT_NE(s.tier, 1);
    policy.observe(feedback({0.5, 0.0, 0.5}, round));
  }
}

TEST(AdaptiveAsync, LifecycleNotificationsTrackMembership) {
  TierInfo tiers = synthetic_tiers(2, 3);  // tiers {0,1,2} and {3,4,5}
  AdaptiveConfig config;
  config.clients_per_round = 2;
  AdaptiveTierPolicy policy(tiers, config, 50);
  policy.on_leave(4);
  policy.on_join(7, 0);
  std::vector<std::vector<std::size_t>> retiered{{0, 1, 7}, {2, 3, 5}};
  EXPECT_NO_THROW(policy.on_retier(retiered));
  std::vector<std::vector<std::size_t>> wrong_count{{0, 1, 2}};
  EXPECT_THROW(policy.on_retier(wrong_count), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::core
