#include "core/privacy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tifl::core {
namespace {

TEST(Privacy, UniformSamplingRate) {
  // q = |C| / |K| (§4.6).
  EXPECT_DOUBLE_EQ(uniform_sampling_rate(5, 50), 0.1);
  EXPECT_DOUBLE_EQ(uniform_sampling_rate(10, 182), 10.0 / 182.0);
  EXPECT_THROW(uniform_sampling_rate(5, 0), std::invalid_argument);
  EXPECT_THROW(uniform_sampling_rate(10, 5), std::invalid_argument);
}

TEST(Privacy, TierSamplingRateFormula) {
  // q_j = P(tier j) * |C| / n_j.
  EXPECT_DOUBLE_EQ(tier_sampling_rate(0.2, 5, 10), 0.2 * 0.5);
  EXPECT_DOUBLE_EQ(tier_sampling_rate(1.0, 5, 10), 0.5);
  EXPECT_DOUBLE_EQ(tier_sampling_rate(0.0, 5, 10), 0.0);
  EXPECT_DOUBLE_EQ(tier_sampling_rate(0.5, 0, 10), 0.0);
  // Empty tier contributes nothing.
  EXPECT_DOUBLE_EQ(tier_sampling_rate(0.5, 5, 0), 0.0);
  // Within-tier ratio saturates at 1 (|C| >= n_j never exceeds certainty).
  EXPECT_DOUBLE_EQ(tier_sampling_rate(0.5, 20, 10), 0.5);
}

TEST(Privacy, MaxTierSamplingRate) {
  const std::vector<double> probs{0.7, 0.1, 0.1, 0.05, 0.05};
  const std::vector<std::size_t> sizes{10, 10, 10, 10, 10};
  // q_j = p_j/2; q_max from the 0.7 tier.
  EXPECT_DOUBLE_EQ(max_tier_sampling_rate(probs, sizes, 5), 0.35);

  const std::vector<double> uneven_probs{0.5, 0.5};
  const std::vector<std::size_t> uneven_sizes{100, 5};
  // Small tier dominates: 0.5 * min(1, 5/5) = 0.5 > 0.5 * 5/100.
  EXPECT_DOUBLE_EQ(max_tier_sampling_rate(uneven_probs, uneven_sizes, 5),
                   0.5);

  EXPECT_THROW(max_tier_sampling_rate(uneven_probs, sizes, 5),
               std::invalid_argument);
}

TEST(Privacy, UniformTieringMatchesUniformRateWhenBalanced) {
  // With uniform tier probabilities over equal tiers, the per-client rate
  // equals vanilla subsampling's |C|/|K|: tiering does not weaken the
  // §4.6 guarantee.
  const std::vector<double> probs(5, 0.2);
  const std::vector<std::size_t> sizes(5, 10);
  EXPECT_DOUBLE_EQ(max_tier_sampling_rate(probs, sizes, 5),
                   uniform_sampling_rate(5, 50));
}

TEST(Privacy, AmplifyScalesBothParameters) {
  const PrivacyParams amplified = amplify({1.0, 1e-5}, 0.1);
  EXPECT_DOUBLE_EQ(amplified.epsilon, 0.1);
  EXPECT_DOUBLE_EQ(amplified.delta, 1e-6);
  EXPECT_THROW(amplify({1.0, 1e-5}, 1.5), std::invalid_argument);
  EXPECT_THROW(amplify({1.0, 1e-5}, -0.1), std::invalid_argument);
}

TEST(Privacy, AmplifiedGuaranteeNeverWorse) {
  const PrivacyParams base{2.0, 1e-5};
  for (double q : {0.0, 0.1, 0.5, 1.0}) {
    const PrivacyParams amplified = amplify(base, q);
    EXPECT_LE(amplified.epsilon, base.epsilon);
    EXPECT_LE(amplified.delta, base.delta);
  }
}

TEST(Privacy, ComposeRoundsLinear) {
  const PrivacyParams per_round{0.01, 1e-7};
  const PrivacyParams total = compose_rounds(per_round, 500);
  EXPECT_DOUBLE_EQ(total.epsilon, 5.0);
  EXPECT_DOUBLE_EQ(total.delta, 5e-5);
}

TEST(Privacy, GaussianSigmaClassicFormula) {
  const PrivacyParams p{1.0, 1e-5};
  const double expected = std::sqrt(2.0 * std::log(1.25 / 1e-5)) * 1.0 / 1.0;
  EXPECT_DOUBLE_EQ(gaussian_sigma(p, 1.0), expected);
  // Scale with sensitivity, inverse with epsilon.
  EXPECT_DOUBLE_EQ(gaussian_sigma(p, 2.0), 2.0 * expected);
  EXPECT_NEAR(gaussian_sigma({2.0, 1e-5}, 1.0), expected / 2.0, 1e-12);
  EXPECT_THROW(gaussian_sigma({0.0, 1e-5}, 1.0), std::invalid_argument);
  EXPECT_THROW(gaussian_sigma({1.0, 0.0}, 1.0), std::invalid_argument);
}

TEST(Privacy, MonteCarloMatchesClosedFormTierRate) {
  // Validate q_j = P(tier j) * |C|/n_j against simulated selection.
  const std::vector<double> probs{0.7, 0.1, 0.1, 0.05, 0.05};
  const std::vector<std::size_t> sizes{10, 10, 10, 10, 10};
  util::Rng rng(1);
  for (std::size_t tier : {0ul, 1ul, 4ul}) {
    const double closed = tier_sampling_rate(probs[tier], 5, sizes[tier]);
    const double simulated = simulate_client_selection_rate(
        probs, sizes, 5, tier, 200000, rng);
    EXPECT_NEAR(simulated, closed, 0.005) << "tier " << tier;
  }
}

TEST(Privacy, MonteCarloUniformBaseline) {
  // Uniform tier probs over equal tiers ~ vanilla q = |C|/|K|.
  const std::vector<double> probs(5, 0.2);
  const std::vector<std::size_t> sizes(5, 10);
  util::Rng rng(2);
  const double simulated =
      simulate_client_selection_rate(probs, sizes, 5, 2, 200000, rng);
  EXPECT_NEAR(simulated, 0.1, 0.005);
}

}  // namespace
}  // namespace tifl::core
