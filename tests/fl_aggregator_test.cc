#include "fl/aggregator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace tifl::fl {
namespace {

std::vector<WeightedUpdate> wrap(const std::vector<std::vector<float>>& ws,
                                 const std::vector<double>& counts) {
  std::vector<WeightedUpdate> out;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    out.push_back(WeightedUpdate{ws[i], counts[i]});
  }
  return out;
}

TEST(FedAvg, EqualWeightsGiveArithmeticMean) {
  const std::vector<std::vector<float>> ws{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const auto result = fedavg(wrap(ws, {1.0, 1.0}));
  EXPECT_FLOAT_EQ(result[0], 2.0f);
  EXPECT_FLOAT_EQ(result[1], 3.0f);
}

TEST(FedAvg, WeightsBySampleCount) {
  // Algorithm 1 line 8: w = sum(w_c * s_c) / sum(s_c).
  const std::vector<std::vector<float>> ws{{0.0f}, {10.0f}};
  const auto result = fedavg(wrap(ws, {9.0, 1.0}));
  EXPECT_FLOAT_EQ(result[0], 1.0f);
}

TEST(FedAvg, SingleClientIsIdentity) {
  const std::vector<std::vector<float>> ws{{1.5f, -2.5f, 3.0f}};
  const auto result = fedavg(wrap(ws, {17.0}));
  EXPECT_EQ(result, ws[0]);
}

TEST(FedAvg, ZeroSampleClientContributesNothing) {
  const std::vector<std::vector<float>> ws{{5.0f}, {100.0f}};
  const auto result = fedavg(wrap(ws, {3.0, 0.0}));
  EXPECT_FLOAT_EQ(result[0], 5.0f);
}

TEST(FedAvg, ErrorsOnBadInput) {
  EXPECT_THROW(fedavg({}), std::invalid_argument);

  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{1.0f};
  std::vector<WeightedUpdate> mismatched{{a, 1.0}, {b, 1.0}};
  EXPECT_THROW(fedavg(mismatched), std::invalid_argument);

  std::vector<WeightedUpdate> no_samples{{a, 0.0}};
  EXPECT_THROW(fedavg(no_samples), std::invalid_argument);
}

TEST(FedAvg, OrderIndependentForDisjointWeights) {
  util::Rng rng(1);
  std::vector<std::vector<float>> ws(6, std::vector<float>(32));
  std::vector<double> counts{10, 20, 30, 40, 50, 60};
  for (auto& w : ws) {
    for (float& v : w) v = static_cast<float>(rng.normal());
  }
  const auto forward = fedavg(wrap(ws, counts));
  std::reverse(ws.begin(), ws.end());
  std::reverse(counts.begin(), counts.end());
  const auto backward = fedavg(wrap(ws, counts));
  for (std::size_t i = 0; i < forward.size(); ++i) {
    // Double-precision accumulation keeps order effects below float eps.
    EXPECT_NEAR(forward[i], backward[i], 1e-6f);
  }
}

class HierarchicalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HierarchicalSweep, MatchesFlatFedAvg) {
  const std::size_t fanout = GetParam();
  util::Rng rng(2);
  std::vector<std::vector<float>> ws(11, std::vector<float>(64));
  std::vector<double> counts;
  for (auto& w : ws) {
    for (float& v : w) v = static_cast<float>(rng.normal());
    counts.push_back(1.0 + rng.uniform_index(100));
  }
  const auto updates = wrap(ws, counts);
  const auto flat = fedavg(updates);
  const auto tree = HierarchicalAggregator(fanout).aggregate(updates);
  ASSERT_EQ(flat.size(), tree.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], tree[i]) << "fanout " << fanout << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, HierarchicalSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 100));

TEST(Hierarchical, EmptyInputThrows) {
  HierarchicalAggregator agg(2);
  EXPECT_THROW(agg.aggregate({}), std::invalid_argument);
}

TEST(Hierarchical, FanoutZeroBehavesAsSingleChild) {
  const std::vector<std::vector<float>> ws{{2.0f}, {4.0f}};
  const auto result = HierarchicalAggregator(0).aggregate(wrap(ws, {1, 1}));
  EXPECT_FLOAT_EQ(result[0], 3.0f);
}

}  // namespace
}  // namespace tifl::fl
