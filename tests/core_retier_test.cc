// OnlineReTierer: re-tiering equivalence with build_tiers on a static
// population, tier-migration invariants, and EMA drift tracking.
#include "core/retier.h"

#include <gtest/gtest.h>

#include <set>

#include "core/profiler.h"
#include "sim/latency_model.h"
#include "test_helpers.h"

namespace tifl::core {
namespace {

using testing::FederationBuilder;
using testing::TinyFederation;

RetierConfig tiers5() {
  RetierConfig config;
  config.num_tiers = 5;
  return config;
}

// Every active client in exactly one tier; inactive clients in none.
void expect_partition_invariants(const TierInfo& tiers,
                                 const std::vector<bool>& inactive) {
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& members : tiers.members) {
    for (std::size_t id : members) {
      EXPECT_FALSE(inactive.at(id)) << "inactive client " << id << " tiered";
      seen.insert(id);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total) << "client in more than one tier";
  std::size_t active = 0;
  for (bool flag : inactive) active += flag ? 0 : 1;
  EXPECT_EQ(total, active) << "active client missing from every tier";
}

TEST(OnlineReTierer, StaticPopulationMatchesBuildTiers) {
  // Seeded from a profile with no observations, rebuild() must reproduce
  // the construction-time tiering exactly — the equivalence that makes
  // --reprofile-every a pure superset of the frozen-tier behaviour.
  TinyFederation fed = FederationBuilder().clients(20).jitter(0.02).build();
  ProfilerConfig profiler;
  profiler.tmax = 1e6;
  util::Rng rng(7);
  const ProfileResult profile =
      profile_clients(fed.clients, fed.latency, profiler, rng);
  const TierInfo reference = build_tiers(profile, 5);

  OnlineReTierer retierer(tiers5(), profile.mean_latency, profile.dropout);
  EXPECT_EQ(retierer.tiers().members, reference.members);
  EXPECT_EQ(retierer.rebuild().members, reference.members);
  expect_partition_invariants(retierer.tiers(), profile.dropout);
}

TEST(OnlineReTierer, LeaversAreExcludedLikeDropouts) {
  std::vector<double> latency{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  OnlineReTierer retierer(tiers5(), latency,
                          std::vector<bool>(latency.size(), false));
  retierer.set_active(3, false);
  retierer.set_active(7, false);
  const TierInfo& tiers = retierer.rebuild();
  expect_partition_invariants(tiers, retierer.inactive());
  EXPECT_EQ(tiers.tier_of(3), tiers.tier_count());
  EXPECT_EQ(tiers.tier_of(7), tiers.tier_count());
}

TEST(OnlineReTierer, RejoinedClientIsTieredAgain) {
  std::vector<double> latency{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<bool> inactive(latency.size(), false);
  inactive[0] = true;  // initial dropout
  OnlineReTierer retierer(tiers5(), latency, inactive);
  EXPECT_EQ(retierer.tiers().tier_of(0), retierer.tiers().tier_count());

  retierer.set_active(0, true);
  retierer.seed_latency(0, 1.5);
  retierer.rebuild();
  expect_partition_invariants(retierer.tiers(), retierer.inactive());
  EXPECT_EQ(retierer.tiers().tier_of(0), 0u);  // fastest tier
}

TEST(OnlineReTierer, ObservationsDecayExponentially) {
  OnlineReTierer retierer({1, TieringStrategy::kQuantile, 0.5}, {10.0},
                          {false});
  retierer.observe(0, 20.0);  // 0.5*10 + 0.5*20
  EXPECT_DOUBLE_EQ(retierer.latency(0), 15.0);
  retierer.observe(0, 15.0);
  EXPECT_DOUBLE_EQ(retierer.latency(0), 15.0);
  retierer.observe(0, 5.0);
  EXPECT_DOUBLE_EQ(retierer.latency(0), 10.0);
}

TEST(OnlineReTierer, DriftMigratesAClientAcrossTiers) {
  // Clients 0..9 with well-separated latencies; client 0 drifts from the
  // fastest to the slowest regime and must migrate on rebuild.
  std::vector<double> latency{1, 1.1, 2, 2.1, 3, 3.1, 4, 4.1, 5, 5.1};
  OnlineReTierer retierer(tiers5(), latency,
                          std::vector<bool>(latency.size(), false));
  EXPECT_EQ(retierer.tiers().tier_of(0), 0u);
  for (int i = 0; i < 20; ++i) retierer.observe(0, 6.0);
  const TierInfo& tiers = retierer.rebuild();
  EXPECT_EQ(tiers.tier_of(0), tiers.tier_count() - 1);
  expect_partition_invariants(tiers, retierer.inactive());
}

TEST(OnlineReTierer, PlacePicksNearestNonEmptyTier) {
  std::vector<double> latency{1, 1, 5, 5, 20, 20};
  OnlineReTierer retierer({3, TieringStrategy::kQuantile, 0.3}, latency,
                          std::vector<bool>(latency.size(), false));
  retierer.seed_latency(0, 4.8);
  EXPECT_EQ(retierer.place(0), 1u);
  retierer.seed_latency(0, 100.0);
  EXPECT_EQ(retierer.place(0), 2u);
  retierer.seed_latency(0, 0.1);
  EXPECT_EQ(retierer.place(0), 0u);
}

TEST(OnlineReTierer, ConstructorValidation) {
  EXPECT_THROW(OnlineReTierer(tiers5(), {1.0}, {false, false}),
               std::invalid_argument);
  EXPECT_THROW(OnlineReTierer(tiers5(), {}, {}), std::invalid_argument);
  RetierConfig bad_alpha = tiers5();
  bad_alpha.ema_alpha = 0.0;
  EXPECT_THROW(OnlineReTierer(bad_alpha, {1.0}, {false}),
               std::invalid_argument);
  RetierConfig no_tiers = tiers5();
  no_tiers.num_tiers = 0;
  EXPECT_THROW(OnlineReTierer(no_tiers, {1.0}, {false}),
               std::invalid_argument);
  OnlineReTierer ok(tiers5(), {1.0, 2.0}, {false, false});
  EXPECT_THROW(ok.observe(0, -1.0), std::invalid_argument);
}

TEST(OnlineReTierer, RebuildWithEveryoneInactiveThrows) {
  OnlineReTierer retierer(tiers5(), {1.0, 2.0}, {false, false});
  retierer.set_active(0, false);
  retierer.set_active(1, false);
  EXPECT_THROW(retierer.rebuild(), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::core
