// fl::hier::Topology: the aggregator tree's static shape — parsing,
// structural validation, client assignment and the resume-guard
// fingerprint.
#include "fl/hier/topology.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace tifl::fl::hier {
namespace {

constexpr char kTwoRegions[] = R"(# two regions under one root
node global -
node west global latency=0.05 bandwidth=100 jitter=0.1 report-every=2
node east global latency=0.08 bandwidth=50 tiers=3
assign 0-5 west
assign 6-9 east
)";

TEST(HierTopology, ParsesNodesLinksAndAssignments) {
  const Topology topo = Topology::parse(kTwoRegions);
  ASSERT_EQ(topo.nodes.size(), 3u);
  EXPECT_EQ(topo.nodes[0].name, "global");
  EXPECT_EQ(topo.nodes[0].parent, -1);
  EXPECT_EQ(topo.nodes[1].name, "west");
  EXPECT_EQ(topo.nodes[1].parent, 0);
  EXPECT_DOUBLE_EQ(topo.nodes[1].link.latency_seconds, 0.05);
  EXPECT_DOUBLE_EQ(topo.nodes[1].link.bandwidth_mbps, 100.0);
  EXPECT_DOUBLE_EQ(topo.nodes[1].link.jitter_sigma, 0.1);
  EXPECT_EQ(topo.nodes[1].report_every, 2u);
  EXPECT_EQ(topo.nodes[2].num_tiers, 3u);

  ASSERT_EQ(topo.client_leaf.size(), 10u);
  for (std::size_t c = 0; c <= 5; ++c) EXPECT_EQ(topo.client_leaf[c], 0u);
  for (std::size_t c = 6; c <= 9; ++c) EXPECT_EQ(topo.client_leaf[c], 1u);
  topo.validate(10);
}

TEST(HierTopology, LeavesChildrenAndDepth) {
  Topology topo = Topology::parse(
      "node global -\n"
      "node region0 global\n"
      "node region1 global\n"
      "node edge0 region0\n"
      "node edge1 region0\n");
  EXPECT_EQ(topo.children_of(0), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(topo.children_of(1), (std::vector<std::size_t>{3, 4}));
  // region1 has no children, so it is a leaf despite being depth 1; the
  // leaf *ordinal* space follows declaration order.
  EXPECT_EQ(topo.leaves(), (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_EQ(topo.depth_of(0), 0u);
  EXPECT_EQ(topo.depth_of(2), 1u);
  EXPECT_EQ(topo.depth_of(4), 2u);
  EXPECT_FALSE(topo.is_flat());
  topo.validate(12);
}

TEST(HierTopology, FlatAndRegionsBuilders) {
  EXPECT_TRUE(Topology::flat().is_flat());
  EXPECT_TRUE(Topology::regions(1).is_flat());
  const Topology topo = Topology::regions(4);
  EXPECT_EQ(topo.nodes.size(), 5u);
  EXPECT_EQ(topo.leaves().size(), 4u);
  for (std::size_t n = 1; n < topo.nodes.size(); ++n) {
    EXPECT_EQ(topo.nodes[n].parent, 0);
  }
  topo.validate(100);
}

TEST(HierTopology, ContiguousSplitBalancesRemainder) {
  const std::vector<std::size_t> assign =
      Topology::regions(3).assign_clients(10);
  ASSERT_EQ(assign.size(), 10u);
  // 10 over 3 leaves: 4 + 3 + 3, contiguous in leaf order.
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t leaf : assign) ++counts[leaf];
  EXPECT_EQ(counts, (std::vector<std::size_t>{4, 3, 3}));
  EXPECT_TRUE(std::is_sorted(assign.begin(), assign.end()));
}

TEST(HierTopology, ExplicitAssignmentWins) {
  const Topology topo = Topology::parse(kTwoRegions);
  const std::vector<std::size_t> assign = topo.assign_clients(10);
  EXPECT_EQ(assign, topo.client_leaf);
  // Assignment size must match the population.
  EXPECT_THROW(topo.assign_clients(11), std::invalid_argument);
}

TEST(HierTopology, RejectsMalformedTrees) {
  // Second root.
  EXPECT_THROW(Topology::parse("node a -\nnode b -\n").validate(4),
               std::invalid_argument);
  // Unknown parent (also: forward references are impossible by
  // construction — the parent must already be declared).
  EXPECT_THROW(Topology::parse("node a -\nnode b missing\n"),
               std::invalid_argument);
  // Duplicate name.
  EXPECT_THROW(Topology::parse("node a -\nnode a a\n").validate(4),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW(Topology::parse("node a -\nnode b a warp=9\n"),
               std::invalid_argument);
  // Malformed / empty assign range, non-leaf target, coverage gap.
  EXPECT_THROW(Topology::parse("node a -\nnode b a\nassign x b\n"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("node a -\nnode b a\nassign 5-2 b\n"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("node a -\nnode b a\nassign 0-3 a\n"),
               std::invalid_argument);
  EXPECT_THROW(
      Topology::parse("node a -\nnode b a\nnode c a\nassign 2-3 b\n"),
      std::invalid_argument);
}

TEST(HierTopology, RejectsBadLinkAndCadenceParameters) {
  EXPECT_THROW(Topology::parse("node a -\nnode b a latency=-1\n").validate(4),
               std::invalid_argument);
  EXPECT_THROW(
      Topology::parse("node a -\nnode b a bandwidth=0\n").validate(4),
      std::invalid_argument);
  EXPECT_THROW(
      Topology::parse("node a -\nnode b a report-every=0\n").validate(4),
      std::invalid_argument);
  EXPECT_THROW(
      Topology::parse("node a -\nnode b a agg-every=0\n").validate(4),
      std::invalid_argument);
  // Fewer clients than leaf regions cannot be split.
  EXPECT_THROW(Topology::regions(3).validate(2), std::invalid_argument);
}

TEST(HierTopology, FingerprintCoversStructureAndLinks) {
  const std::uint64_t base = Topology::parse(kTwoRegions).fingerprint();
  EXPECT_EQ(base, Topology::parse(kTwoRegions).fingerprint());

  // Any structural or link-parameter change moves the fingerprint: a
  // snapshot from one tree must not restore onto another.
  std::string bumped(kTwoRegions);
  bumped.replace(bumped.find("latency=0.05"), 12, "latency=0.06");
  EXPECT_NE(base, Topology::parse(bumped).fingerprint());

  std::string renamed(kTwoRegions);
  renamed.replace(renamed.find("west"), 4, "wast");
  renamed.replace(renamed.find("west"), 4, "wast");
  EXPECT_NE(base, Topology::parse(renamed).fingerprint());

  EXPECT_NE(Topology::regions(2).fingerprint(),
            Topology::regions(3).fingerprint());
  EXPECT_NE(Topology::regions(2).fingerprint(),
            Topology::flat().fingerprint());
}

}  // namespace
}  // namespace tifl::fl::hier
