#include "fl/async_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/adaptive_policy.h"
#include "core/static_policy.h"
#include "test_helpers.h"

namespace tifl::fl {
namespace {

using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::two_tiers;
using testing::FederationBuilder;
using testing::TinyFederation;

// One tier holding every client, in id order — the degenerate tiering
// under which async execution must reduce to the sync engine.
std::vector<std::vector<std::size_t>> single_tier(std::size_t n) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  return {std::move(all)};
}

AsyncConfig tiny_async_config(std::size_t updates = 10) {
  AsyncConfig async;
  async.total_updates = updates;
  async.clients_per_tier_round = 3;
  async.eval_every = 1;
  return async;
}

// --- staleness weighting ----------------------------------------------------

TEST(StalenessFn, ParseRoundTripsAndRejectsUnknown) {
  for (StalenessFn fn : {StalenessFn::kConstant, StalenessFn::kPolynomial,
                         StalenessFn::kInverseFrequency}) {
    EXPECT_EQ(parse_staleness(staleness_name(fn)), fn);
  }
  EXPECT_EQ(parse_staleness("polynomial"), StalenessFn::kPolynomial);
  EXPECT_EQ(parse_staleness("fedat"), StalenessFn::kInverseFrequency);
  EXPECT_THROW(parse_staleness("bogus"), std::invalid_argument);
}

TEST(StalenessFn, FactorDecaysPolynomiallyOnly) {
  EXPECT_DOUBLE_EQ(staleness_factor(StalenessFn::kConstant, 0.5, 9), 1.0);
  EXPECT_DOUBLE_EQ(staleness_factor(StalenessFn::kInverseFrequency, 0.5, 9),
                   1.0);
  EXPECT_DOUBLE_EQ(staleness_factor(StalenessFn::kPolynomial, 1.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(staleness_factor(StalenessFn::kPolynomial, 1.0, 3), 0.25);
  EXPECT_DOUBLE_EQ(staleness_factor(StalenessFn::kPolynomial, 0.5, 3), 0.5);
}

TEST(CrossTierWeights, ConstantSplitsEvenlyAndSumsToOne) {
  const std::vector<std::size_t> updates{2, 3, 5};
  const std::vector<std::size_t> staleness{0, 1, 4};
  const std::vector<double> w =
      cross_tier_weights(StalenessFn::kConstant, 0.5, updates, staleness);
  ASSERT_EQ(w.size(), 3u);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(std::accumulate(w.begin(), w.end(), 0.0), 1.0);
}

TEST(CrossTierWeights, PolynomialDiscountsStaleModels) {
  // alpha = 1: weights proportional to {1, 1/4} -> {0.8, 0.2}.
  const std::vector<std::size_t> updates{1, 1};
  const std::vector<std::size_t> staleness{0, 3};
  const std::vector<double> w =
      cross_tier_weights(StalenessFn::kPolynomial, 1.0, updates, staleness);
  EXPECT_DOUBLE_EQ(w[0], 0.8);
  EXPECT_DOUBLE_EQ(w[1], 0.2);
}

TEST(CrossTierWeights, InverseFrequencyBoostsRareTiers) {
  // FedAT-style: weights proportional to {1, 5} for updates {5, 1}.
  const std::vector<std::size_t> updates{5, 1};
  const std::vector<std::size_t> staleness{0, 2};
  const std::vector<double> w = cross_tier_weights(
      StalenessFn::kInverseFrequency, 0.5, updates, staleness);
  EXPECT_DOUBLE_EQ(w[0], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(w[1], 5.0 / 6.0);
  EXPECT_GT(w[1], w[0]);
}

TEST(CrossTierWeights, UnsubmittedTiersGetZeroRestSumToOne) {
  const std::vector<std::size_t> updates{4, 0, 2};
  const std::vector<std::size_t> staleness{0, 0, 1};
  for (StalenessFn fn : {StalenessFn::kConstant, StalenessFn::kPolynomial,
                         StalenessFn::kInverseFrequency}) {
    const std::vector<double> w = cross_tier_weights(fn, 1.0, updates,
                                                     staleness);
    EXPECT_DOUBLE_EQ(w[1], 0.0) << staleness_name(fn);
    EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12)
        << staleness_name(fn);
  }
}

TEST(CrossTierWeights, SizeMismatchThrows) {
  const std::vector<std::size_t> updates{1, 2};
  const std::vector<std::size_t> staleness{0};
  EXPECT_THROW(
      cross_tier_weights(StalenessFn::kConstant, 0.5, updates, staleness),
      std::invalid_argument);
}

TEST(CrossTierWeights, AllZeroUpdateCountsYieldAllZeroWeights) {
  // Before any tier submits there is no model to average: every weight
  // must be exactly 0 (no normalization against a zero total).
  const std::vector<std::size_t> updates{0, 0, 0};
  const std::vector<std::size_t> staleness{0, 0, 0};
  for (StalenessFn fn : {StalenessFn::kConstant, StalenessFn::kPolynomial,
                         StalenessFn::kInverseFrequency}) {
    const std::vector<double> w =
        cross_tier_weights(fn, 1.0, updates, staleness);
    ASSERT_EQ(w.size(), 3u) << staleness_name(fn);
    for (double v : w) EXPECT_DOUBLE_EQ(v, 0.0) << staleness_name(fn);
  }
}

TEST(CrossTierWeights, SingleSubmittedTierTakesAllMass) {
  const std::vector<std::size_t> updates{0, 7, 0};
  const std::vector<std::size_t> staleness{0, 3, 0};
  for (StalenessFn fn : {StalenessFn::kConstant, StalenessFn::kPolynomial,
                         StalenessFn::kInverseFrequency}) {
    const std::vector<double> w =
        cross_tier_weights(fn, 1.0, updates, staleness);
    EXPECT_DOUBLE_EQ(w[0], 0.0) << staleness_name(fn);
    EXPECT_DOUBLE_EQ(w[1], 1.0) << staleness_name(fn);
    EXPECT_DOUBLE_EQ(w[2], 0.0) << staleness_name(fn);
  }
}

TEST(CrossTierWeights, MixedZeroNonzeroKeepsZerosPinnedUnderInvFreq) {
  // Inverse frequency boosts rare submitters — but a *never*-submitted
  // tier must stay at exactly 0 even though u_max - 0 is the largest
  // boost, and the submitted tiers' weights still sum to 1.
  const std::vector<std::size_t> updates{9, 0, 1, 0, 3};
  const std::vector<std::size_t> staleness{0, 0, 6, 0, 2};
  const std::vector<double> w = cross_tier_weights(
      StalenessFn::kInverseFrequency, 1.0, updates, staleness);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[3], 0.0);
  EXPECT_GT(w[2], w[4]);  // 1 submission beats 3 under invfreq
  EXPECT_GT(w[4], w[0]);  // 3 submissions beat 9
  EXPECT_NEAR(w[0] + w[2] + w[4], 1.0, 1e-12);
  // Exact masses: 1 + (9 - u_t) over total.
  const double total = 1.0 + 9.0 + 7.0;
  EXPECT_NEAR(w[0], 1.0 / total, 1e-12);
  EXPECT_NEAR(w[2], 9.0 / total, 1e-12);
  EXPECT_NEAR(w[4], 7.0 / total, 1e-12);
}

TEST(StalenessFn, UnknownNameErrorListsValidOptions) {
  try {
    parse_staleness("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    for (const char* option : {"constant", "poly", "polynomial", "invfreq",
                               "inverse-frequency", "fedat"}) {
      EXPECT_NE(message.find(option), std::string::npos)
          << "missing '" << option << "' in: " << message;
    }
  }
}

// --- engine determinism -----------------------------------------------------

TEST(AsyncEngine, TwoSeededRunsAreBitwiseIdentical) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = tiny_async_config(12);
  async.staleness = StalenessFn::kPolynomial;
  AsyncEngine e1(tiny_engine_config(1), async, tiny_factory(), &fed.clients,
                 two_tiers(10), &fed.data.test, fed.latency);
  AsyncEngine e2(tiny_engine_config(1), async, tiny_factory(), &fed.clients,
                 two_tiers(10), &fed.data.test, fed.latency);
  const AsyncRunResult a = e1.run();
  const AsyncRunResult b = e2.run();

  // Bitwise-equal final global weights is the headline guarantee.
  EXPECT_EQ(a.final_weights, b.final_weights);
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size());
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    EXPECT_EQ(a.result.rounds[i].selected_clients,
              b.result.rounds[i].selected_clients);
    EXPECT_EQ(a.result.rounds[i].selected_tier,
              b.result.rounds[i].selected_tier);
    EXPECT_DOUBLE_EQ(a.result.rounds[i].virtual_time,
                     b.result.rounds[i].virtual_time);
    EXPECT_DOUBLE_EQ(a.result.rounds[i].global_accuracy,
                     b.result.rounds[i].global_accuracy);
  }
  EXPECT_EQ(a.tier_updates, b.tier_updates);
}

TEST(AsyncEngine, SeedOverrideDiverges) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncEngine engine(tiny_engine_config(1), tiny_async_config(6),
                     tiny_factory(), &fed.clients, two_tiers(10),
                     &fed.data.test, fed.latency);
  const AsyncRunResult a = engine.run(/*seed_override=*/111);
  const AsyncRunResult b = engine.run(/*seed_override=*/222);
  EXPECT_NE(a.final_weights, b.final_weights);
}

// --- reduction to the sync engine -------------------------------------------

TEST(AsyncEngine, SingleTierConstantStalenessMatchesSyncEngine) {
  // Acceptance criterion: with one tier and the constant staleness
  // function, async execution is the sync engine under another name —
  // same selections, same latencies, same per-round accuracies.
  TinyFederation fed = FederationBuilder().clients(10).build();
  const EngineConfig config = tiny_engine_config(8);

  Engine sync(config, tiny_factory(), fed.clients, &fed.data.test,
              fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  const RunResult sync_result = sync.run(policy);

  AsyncConfig async = tiny_async_config(8);
  async.staleness = StalenessFn::kConstant;
  AsyncEngine engine(config, async, tiny_factory(), &fed.clients,
                     single_tier(10), &fed.data.test, fed.latency);
  const AsyncRunResult async_result = engine.run();

  ASSERT_EQ(async_result.result.rounds.size(), sync_result.rounds.size());
  for (std::size_t i = 0; i < sync_result.rounds.size(); ++i) {
    EXPECT_EQ(async_result.result.rounds[i].selected_clients,
              sync_result.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(async_result.result.rounds[i].round_latency,
                     sync_result.rounds[i].round_latency);
    EXPECT_DOUBLE_EQ(async_result.result.rounds[i].virtual_time,
                     sync_result.rounds[i].virtual_time);
    EXPECT_NEAR(async_result.result.rounds[i].global_accuracy,
                sync_result.rounds[i].global_accuracy, 1e-6);
  }
  EXPECT_NEAR(async_result.result.final_accuracy(),
              sync_result.final_accuracy(), 1e-6);
}

// --- async semantics --------------------------------------------------------

TEST(AsyncEngine, ProducesExactlyTotalUpdatesVersions) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncEngine engine(tiny_engine_config(1), tiny_async_config(15),
                     tiny_factory(), &fed.clients, two_tiers(10),
                     &fed.data.test, fed.latency);
  const AsyncRunResult out = engine.run();
  EXPECT_EQ(out.result.rounds.size(), 15u);
  EXPECT_EQ(out.tier_updates[0] + out.tier_updates[1], 15u);
  for (std::size_t i = 0; i < out.result.rounds.size(); ++i) {
    EXPECT_EQ(out.result.rounds[i].round, i);
  }
}

TEST(AsyncEngine, FastTierSubmitsMoreOftenAndSlowTierIsStaler) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncEngine engine(tiny_engine_config(1), tiny_async_config(20),
                     tiny_factory(), &fed.clients, two_tiers(10),
                     &fed.data.test, fed.latency);
  const AsyncRunResult out = engine.run();
  // Tier 0 holds the 4/2/1-CPU clients, tier 1 the 0.5/0.1-CPU ones.
  EXPECT_GT(out.tier_updates[0], out.tier_updates[1]);
  EXPECT_GT(out.mean_staleness[1], 0.0);
  EXPECT_GE(out.mean_staleness[1], out.mean_staleness[0]);
}

TEST(AsyncEngine, VirtualTimeIsNonDecreasingAndBelowSyncTotal) {
  // Removing Eq. 1's cross-tier max() must make the same number of
  // global updates strictly cheaper in virtual time than sync rounds
  // over the whole population.
  TinyFederation fed = FederationBuilder().clients(10).build();
  const EngineConfig config = tiny_engine_config(20);

  Engine sync(config, tiny_factory(), fed.clients, &fed.data.test,
              fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  const double sync_time = sync.run(policy).total_time();

  AsyncEngine engine(config, tiny_async_config(20), tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  double prev = 0.0;
  for (const RoundRecord& r : out.result.rounds) {
    EXPECT_GE(r.virtual_time, prev);
    prev = r.virtual_time;
  }
  EXPECT_LT(out.result.total_time(), sync_time);
}

TEST(AsyncEngine, FinalTierWeightsMatchStalenessFunction) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = tiny_async_config(20);
  async.staleness = StalenessFn::kInverseFrequency;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  // Weights are normalized and, under inverse-frequency, the
  // rarely-submitting slow tier carries at least the fast tier's mass.
  EXPECT_NEAR(out.final_tier_weights[0] + out.final_tier_weights[1], 1.0,
              1e-12);
  EXPECT_GE(out.final_tier_weights[1], out.final_tier_weights[0]);
}

TEST(AsyncEngine, TimeBudgetStopsEarly) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig probe_config = tiny_async_config(50);
  AsyncEngine probe(tiny_engine_config(1), probe_config, tiny_factory(),
                    &fed.clients, two_tiers(10), &fed.data.test,
                    fed.latency);
  const AsyncRunResult full = probe.run();

  AsyncConfig budgeted_config = probe_config;
  budgeted_config.time_budget_seconds = full.result.total_time() / 4.0;
  AsyncEngine budgeted(tiny_engine_config(1), budgeted_config,
                       tiny_factory(), &fed.clients, two_tiers(10),
                       &fed.data.test, fed.latency);
  const AsyncRunResult out = budgeted.run();
  EXPECT_LT(out.result.rounds.size(), 50u);
  EXPECT_GT(out.result.rounds.size(), 0u);
  EXPECT_GE(out.result.total_time(), budgeted_config.time_budget_seconds);
  // The final record carries a freshly evaluated accuracy even though the
  // budget interrupted the evaluation cadence.
  EXPECT_GT(out.result.final_accuracy(), 0.0);
}

TEST(AsyncEngine, EvalCadenceCarriesAccuracyForward) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = tiny_async_config(6);
  async.eval_every = 3;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  EXPECT_EQ(out.result.rounds[1].global_accuracy,
            out.result.rounds[0].global_accuracy);
  EXPECT_EQ(out.result.rounds[2].global_accuracy,
            out.result.rounds[0].global_accuracy);
}

TEST(AsyncEngine, ConstructorValidation) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  const EngineConfig config = tiny_engine_config(1);
  const AsyncConfig async = tiny_async_config(5);

  EXPECT_THROW(
      AsyncEngine(config, async, tiny_factory(),
                  static_cast<const std::vector<Client>*>(nullptr),
                  two_tiers(10), &fed.data.test, fed.latency),
      std::invalid_argument);
  EXPECT_THROW(AsyncEngine(config, async, tiny_factory(),
                           static_cast<ClientPool*>(nullptr), two_tiers(10),
                           &fed.data.test, fed.latency),
               std::invalid_argument);
  EXPECT_THROW(AsyncEngine(config, async, tiny_factory(), &fed.clients,
                           two_tiers(10), nullptr, fed.latency),
               std::invalid_argument);
  EXPECT_THROW(AsyncEngine(config, async, tiny_factory(), &fed.clients,
                           {{}, {}}, &fed.data.test, fed.latency),
               std::invalid_argument);
  EXPECT_THROW(AsyncEngine(config, async, tiny_factory(), &fed.clients,
                           {{0, 99}}, &fed.data.test, fed.latency),
               std::invalid_argument);

  AsyncConfig zero_updates = async;
  zero_updates.total_updates = 0;
  EXPECT_THROW(AsyncEngine(config, zero_updates, tiny_factory(),
                           &fed.clients, two_tiers(10), &fed.data.test,
                           fed.latency),
               std::invalid_argument);
  AsyncConfig zero_clients = async;
  zero_clients.clients_per_tier_round = 0;
  EXPECT_THROW(AsyncEngine(config, zero_clients, tiny_factory(),
                           &fed.clients, two_tiers(10), &fed.data.test,
                           fed.latency),
               std::invalid_argument);
}

// --- selection-policy seam ---------------------------------------------------

TEST(AsyncEngine, RejectsSyncOnlyPolicies) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncEngine engine(tiny_engine_config(1), tiny_async_config(5),
                     tiny_factory(), &fed.clients, two_tiers(10),
                     &fed.data.test, fed.latency);
  VanillaPolicy vanilla(10, 3);
  EXPECT_THROW(engine.set_policy(&vanilla), std::invalid_argument);
  OverProvisionPolicy overprovision(10, 3);
  EXPECT_THROW(engine.set_policy(&overprovision), std::invalid_argument);
  UniformTierPolicy uniform(3);
  EXPECT_NO_THROW(engine.set_policy(&uniform));
  EXPECT_NO_THROW(engine.set_policy(nullptr));
}

TEST(AsyncEngine, FastStaticPolicyConcentratesWorkAndParksOtherTiers) {
  // "fast" puts all probability mass on tier 0: under the async seam its
  // share scales to T*|C| members per tier-0 round while tier 1 parks —
  // every submission must come from tier 0.
  TinyFederation fed = FederationBuilder().clients(10).jitter(0.02).build();
  core::TierInfo tiers;
  tiers.members = two_tiers(10);
  tiers.avg_latency = {1.0, 2.0};
  core::StaticTierPolicy fast(tiers, core::table1_probs("fast", 2), 2,
                              "fast");

  AsyncConfig async = tiny_async_config(8);
  async.clients_per_tier_round = 2;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  engine.set_policy(&fast);
  const AsyncRunResult out = engine.run();

  EXPECT_EQ(out.tier_updates[0], out.result.rounds.size());
  EXPECT_EQ(out.tier_updates[1], 0u);
  for (const RoundRecord& record : out.result.rounds) {
    EXPECT_EQ(record.selected_tier, 0);
    // Share = 1.0 * 2 tiers * |C|=2 -> 4 members per tier-0 round.
    EXPECT_EQ(record.selected_clients.size(), 4u);
    for (std::size_t c : record.selected_clients) EXPECT_LT(c, 5u);
  }
}

TEST(AsyncEngine, AdaptivePolicyReceivesTierAccuraciesAndCompletes) {
  // Full Alg. 2 on the async path: per-tier eval sets feed the policy's
  // accuracy history, and the run still records exactly total_updates
  // versions with both tiers contributing.
  TinyFederation fed = FederationBuilder().clients(10).jitter(0.05).build();
  core::TierInfo tiers;
  tiers.members = two_tiers(10);
  tiers.avg_latency = {1.0, 2.0};
  core::AdaptiveConfig adaptive;
  adaptive.clients_per_round = 3;
  adaptive.interval = 2;
  core::AdaptiveTierPolicy policy(tiers, adaptive, 12);

  AsyncConfig async = tiny_async_config(12);
  async.clients_per_tier_round = 3;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  engine.set_policy(&policy);
  std::vector<std::size_t> first_half, second_half;
  for (std::size_t i = 0; i < fed.data.test.size(); ++i) {
    (i < fed.data.test.size() / 2 ? first_half : second_half).push_back(i);
  }
  std::vector<data::Dataset> sets;
  sets.push_back(fed.data.test.subset(first_half));
  sets.push_back(fed.data.test.subset(second_half));
  engine.set_tier_eval_sets(std::move(sets));

  const AsyncRunResult out = engine.run();
  EXPECT_EQ(out.result.rounds.size(), 12u);
  EXPECT_EQ(out.tier_updates[0] + out.tier_updates[1], 12u);
  EXPECT_GT(out.tier_updates[0], 0u);
  EXPECT_GT(out.tier_updates[1], 0u);
  EXPECT_EQ(out.result.policy_name, "async/adaptive/constant");
}

TEST(AsyncEngine, TierEvalSetCountMismatchThrows) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncEngine engine(tiny_engine_config(1), tiny_async_config(5),
                     tiny_factory(), &fed.clients, two_tiers(10),
                     &fed.data.test, fed.latency);
  std::vector<data::Dataset> one_set;
  const std::vector<std::size_t> indices{0, 1, 2};
  one_set.push_back(fed.data.test.subset(indices));
  EXPECT_THROW(engine.set_tier_eval_sets(std::move(one_set)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tifl::fl
