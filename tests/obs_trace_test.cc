#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace tifl::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Tracer, DisabledByDefault) {
  // No tracer installed: the global hook is null, so every built-in site's
  // `if (obs::Tracer* t = obs::tracer())` is one untaken branch.
  EXPECT_EQ(tracer(), nullptr);
}

TEST(Tracer, ScopeInstallsAndUninstalls) {
  std::ostringstream out;
  Tracer t(&out);
  {
    TracerScope scope(&t);
    EXPECT_EQ(tracer(), &t);
  }
  EXPECT_EQ(tracer(), nullptr);
}

TEST(Tracer, SpanLineShape) {
  std::ostringstream out;
  Tracer t(&out);
  t.span(1.5, 2.25, "async", "tier_round", 3,
         {field("version", 7), field("clients", std::size_t{4})});
  EXPECT_EQ(out.str(),
            "{\"ts\": 1.5, \"dur\": 2.25, \"cat\": \"async\", "
            "\"name\": \"tier_round\", \"actor\": 3, "
            "\"args\": {\"version\": 7, \"clients\": 4}}\n");
}

TEST(Tracer, InstantOmitsDur) {
  std::ostringstream out;
  Tracer t(&out);
  t.instant(0.0, "churn", "join", 42);
  EXPECT_EQ(out.str(),
            "{\"ts\": 0, \"cat\": \"churn\", \"name\": \"join\", "
            "\"actor\": 42}\n");
}

TEST(Tracer, DoubleFieldsAreShortestRoundTrip) {
  std::ostringstream out;
  Tracer t(&out);
  t.instant(0.1, "x", "y", 0, {field("w", 1.0 / 3.0)});
  const std::string text = out.str();
  // 0.1 renders as "0.1", not "0.10000000000000001".
  EXPECT_NE(text.find("\"ts\": 0.1,"), std::string::npos);
  // Round-trip: parsing the emitted digits recovers the exact double.
  const std::size_t at = text.find("\"w\": ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(text.substr(at + 5)), 1.0 / 3.0);
}

TEST(Tracer, EscapesQuotesAndStripsControlChars) {
  std::ostringstream out;
  Tracer t(&out);
  t.instant(0.0, "c", "quote\"back\\slash\nnewline", 0,
            {field("s", std::string_view("a\"b"))});
  EXPECT_EQ(out.str(),
            "{\"ts\": 0, \"cat\": \"c\", "
            "\"name\": \"quote\\\"back\\\\slashnewline\", \"actor\": 0, "
            "\"args\": {\"s\": \"a\\\"b\"}}\n");
}

TEST(Tracer, OneLinePerEvent) {
  std::ostringstream out;
  Tracer t(&out);
  for (int i = 0; i < 5; ++i) {
    t.instant(static_cast<double>(i), "cat", "tick", i);
  }
  t.flush();
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(Tracer, IdenticalEmitsAreByteIdentical) {
  // The determinism guard's foundation: equal inputs, equal bytes.
  const auto emit = [] {
    std::ostringstream out;
    Tracer t(&out);
    t.span(12.75, 0.5, "async", "tier_round", 1,
           {field("version", 9), field("weight", 0.3333333333333333)});
    t.instant(13.25, "async", "eval", 1, {field("accuracy", 0.515625)});
    return out.str();
  };
  EXPECT_EQ(emit(), emit());
}

}  // namespace
}  // namespace tifl::obs
