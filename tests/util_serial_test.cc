// ByteSink/ByteSource: little-endian round trips, bit-exact float
// encoding, and clean failure on truncation or corrupt length prefixes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/serial.h"

namespace tifl::util {
namespace {

TEST(Serial, ScalarRoundTrips) {
  ByteSink sink;
  sink.put_u8(0xAB);
  sink.put_u32(0xDEADBEEFu);
  sink.put_u64(0x0123456789ABCDEFULL);
  sink.put_i64(-42);
  sink.put_f64(-0.1);
  sink.put_f32(3.5f);
  sink.put_bool(true);
  sink.put_bool(false);

  ByteSource source(sink.bytes());
  EXPECT_EQ(source.get_u8(), 0xAB);
  EXPECT_EQ(source.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(source.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(source.get_i64(), -42);
  EXPECT_EQ(source.get_f64(), -0.1);
  EXPECT_EQ(source.get_f32(), 3.5f);
  EXPECT_TRUE(source.get_bool());
  EXPECT_FALSE(source.get_bool());
  EXPECT_TRUE(source.exhausted());
}

TEST(Serial, LittleEndianLayoutIsExplicit) {
  ByteSink sink;
  sink.put_u32(0x01020304u);
  const std::string& bytes = sink.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(Serial, FloatsRoundTripBitExactly) {
  // Signed zero, subnormals, infinities and NaN payloads all survive:
  // the codec moves IEEE-754 bit patterns, not values.
  const std::vector<double> doubles = {
      -0.0, std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(), 1.0 / 3.0};
  ByteSink sink;
  for (double v : doubles) sink.put_f64(v);
  ByteSource source(sink.bytes());
  for (double v : doubles) {
    const double read = source.get_f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(read),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Serial, VectorAndStringRoundTrips) {
  ByteSink sink;
  sink.put_string(std::string_view("he\0llo", 6));  // embedded NUL survives
  sink.put_string("");
  sink.put_f32_vec({1.0f, -2.0f});
  sink.put_f64_vec({});
  sink.put_u64_vec({5, 6, 7});
  sink.put_size_vec({9});

  ByteSource source(sink.bytes());
  EXPECT_EQ(source.get_string(), std::string("he\0llo", 6));
  EXPECT_EQ(source.get_string(), "");
  EXPECT_EQ(source.get_f32_vec(), (std::vector<float>{1.0f, -2.0f}));
  EXPECT_TRUE(source.get_f64_vec().empty());
  EXPECT_EQ(source.get_u64_vec(), (std::vector<std::uint64_t>{5, 6, 7}));
  EXPECT_EQ(source.get_size_vec(), (std::vector<std::size_t>{9}));
}

TEST(Serial, TruncatedReadsThrow) {
  ByteSink sink;
  sink.put_u64(1);
  const std::string bytes = sink.bytes();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    ByteSource source(std::string_view(bytes).substr(0, keep));
    EXPECT_THROW(source.get_u64(), std::runtime_error) << keep;
  }
}

TEST(Serial, CorruptLengthPrefixFailsBeforeAllocating) {
  // A huge count with a handful of bytes behind it must throw from the
  // prefix check, not attempt a multi-GB vector resize.
  ByteSink sink;
  sink.put_u64(std::numeric_limits<std::uint64_t>::max());
  sink.put_u32(0);
  ByteSource f32s(sink.bytes());
  EXPECT_THROW(f32s.get_f32_vec(), std::runtime_error);
  ByteSource strings(sink.bytes());
  EXPECT_THROW(strings.get_string(), std::runtime_error);
  ByteSource sizes(sink.bytes());
  EXPECT_THROW(sizes.get_size_vec(), std::runtime_error);
}

TEST(Serial, Crc32MatchesTheIeeeReferenceVector) {
  // The canonical check value for CRC-32/IEEE ("check" in the catalogue).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Any flipped bit changes the sum.
  EXPECT_NE(crc32("123456788"), crc32("123456789"));
}

}  // namespace
}  // namespace tifl::util
