// Flat-weight checkpoint hardening: corrupted counts fail before
// allocating, non-finite payloads are rejected, and the FNV-1a weight
// hash is stable and collision-visible at single-bit granularity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "nn/checkpoint.h"

namespace tifl::nn {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(NnCheckpoint, RoundTripsWeights) {
  const std::vector<float> weights = {1.5f, -2.25f, 0.0f, 3.0e-20f};
  const std::string path = temp_path("weights_roundtrip.bin");
  save_weights(path, weights);
  EXPECT_EQ(load_weights(path), weights);
}

TEST(NnCheckpoint, MissingFileAndBadMagicThrow) {
  EXPECT_THROW(load_weights(temp_path("weights_missing.bin")),
               std::runtime_error);
  const std::string path = temp_path("weights_magic.bin");
  std::ofstream(path, std::ios::binary) << "garbage-not-a-checkpoint";
  EXPECT_THROW(load_weights(path), std::runtime_error);
}

TEST(NnCheckpoint, CorruptedCountFailsBeforeAllocating) {
  const std::string path = temp_path("weights_count.bin");
  save_weights(path, {1.0f, 2.0f});
  // Overwrite the 8-byte count header with a huge value; the loader must
  // reject it against the actual file size instead of resizing to ~4 EiB.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8);
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max() / 8;
  file.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  file.close();
  EXPECT_THROW(load_weights(path), std::runtime_error);
}

TEST(NnCheckpoint, TruncatedPayloadThrows) {
  const std::string path = temp_path("weights_short.bin");
  save_weights(path, {1.0f, 2.0f, 3.0f});
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  out.close();
  EXPECT_THROW(load_weights(path), std::runtime_error);
}

TEST(NnCheckpoint, NonFinitePayloadIsRejected) {
  for (float poison : {std::numeric_limits<float>::quiet_NaN(),
                       std::numeric_limits<float>::infinity(),
                       -std::numeric_limits<float>::infinity()}) {
    const std::string path = temp_path("weights_poison.bin");
    save_weights(path, {1.0f, poison, 3.0f});
    EXPECT_THROW(load_weights(path), std::runtime_error);
  }
}

TEST(NnCheckpoint, WeightHashSeesSingleBitFlips) {
  std::vector<float> weights = {0.5f, -1.25f, 2.0f};
  const std::uint64_t base = weights_fnv1a(weights);
  EXPECT_EQ(base, weights_fnv1a(weights));  // stable
  std::uint32_t bits;
  std::memcpy(&bits, &weights[1], sizeof(bits));
  bits ^= 1u;  // lowest mantissa bit
  std::memcpy(&weights[1], &bits, sizeof(bits));
  EXPECT_NE(base, weights_fnv1a(weights));
  EXPECT_NE(weights_fnv1a({}), 0u);  // FNV offset basis, not zero
}

}  // namespace
}  // namespace tifl::nn
