#include "core/tiering.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.h"

namespace tifl::core {
namespace {

TierInfo tiers_of(const std::vector<double>& latencies, std::size_t m,
                  TieringStrategy strategy = TieringStrategy::kQuantile) {
  const std::vector<bool> dropout(latencies.size(), false);
  return build_tiers(latencies, dropout, m, strategy);
}

TEST(Tiering, FiveDistinctGroupsSplitPerfectlyUnderQuantile) {
  // The paper's testbed: 5 equal resource groups with well-separated
  // latencies.  Quantile binning recovers them exactly.
  std::vector<double> latencies;
  for (double base : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (int i = 0; i < 10; ++i) latencies.push_back(base + 0.01 * i);
  }
  const TierInfo info = tiers_of(latencies, 5, TieringStrategy::kQuantile);
  ASSERT_EQ(info.tier_count(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    ASSERT_EQ(info.members[t].size(), 10u) << "tier " << t;
    // Tier t contains exactly clients 10t..10t+9.
    EXPECT_EQ(info.members[t].front(), t * 10);
    EXPECT_EQ(info.members[t].back(), t * 10 + 9);
  }
}

TEST(Tiering, EqualWidthMergesGeometricGroupsButKeepsEveryClient) {
  // With geometrically spaced group latencies (1/2/4/8/16), equal-width
  // bins lump the fast groups together — the reason quantile is the
  // default.  The split must still be a valid partition of all clients.
  std::vector<double> latencies;
  for (double base : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (int i = 0; i < 10; ++i) latencies.push_back(base + 0.01 * i);
  }
  const TierInfo info = tiers_of(latencies, 5, TieringStrategy::kEqualWidth);
  std::size_t total = 0;
  for (const auto& tier : info.members) total += tier.size();
  EXPECT_EQ(total, 50u);
  // Groups at 1.x and 2.x fall in the same first-fifth-width bin.
  EXPECT_GE(info.members[0].size(), 20u);
  // The slowest group is isolated in the last bin.
  EXPECT_EQ(info.members[4].size(), 10u);
}

TEST(Tiering, AvgLatencyIsMonotoneAcrossTiers) {
  util::Rng rng(1);
  std::vector<double> latencies(100);
  for (double& l : latencies) l = rng.lognormal(2.0, 0.8);
  const TierInfo info = tiers_of(latencies, 5);
  for (std::size_t t = 1; t < info.tier_count(); ++t) {
    if (info.members[t].empty() || info.members[t - 1].empty()) continue;
    EXPECT_GT(info.avg_latency[t], info.avg_latency[t - 1]);
  }
}

TEST(Tiering, SlowerClientNeverInFasterTier) {
  // Monotonicity invariant: latency(a) < latency(b) => tier(a) <= tier(b).
  util::Rng rng(2);
  std::vector<double> latencies(60);
  for (double& l : latencies) l = rng.uniform(1.0, 50.0);
  const TierInfo info = tiers_of(latencies, 4);
  for (std::size_t a = 0; a < latencies.size(); ++a) {
    for (std::size_t b = 0; b < latencies.size(); ++b) {
      if (latencies[a] < latencies[b]) {
        EXPECT_LE(info.tier_of(a), info.tier_of(b));
      }
    }
  }
}

TEST(Tiering, QuantileTiersAreBalanced) {
  util::Rng rng(3);
  std::vector<double> latencies(250);
  for (double& l : latencies) l = rng.lognormal(0.0, 1.0);
  const TierInfo info = tiers_of(latencies, 5, TieringStrategy::kQuantile);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_NEAR(static_cast<double>(info.members[t].size()), 50.0, 2.0);
  }
}

TEST(Tiering, DropoutsAreExcludedFromAllTiers) {
  std::vector<double> latencies{1, 2, 3, 4, 100, 5};
  std::vector<bool> dropout{false, false, false, false, true, false};
  const TierInfo info = build_tiers(latencies, dropout, 2);
  ASSERT_EQ(info.dropouts.size(), 1u);
  EXPECT_EQ(info.dropouts[0], 4u);
  EXPECT_EQ(info.tier_of(4), info.tier_count());  // not in any tier
  std::size_t members = 0;
  for (const auto& tier : info.members) members += tier.size();
  EXPECT_EQ(members, 5u);
}

TEST(Tiering, TierOfFindsMembers) {
  const TierInfo info = tiers_of({1.0, 10.0, 1.1, 9.5}, 2);
  EXPECT_EQ(info.tier_of(0), 0u);
  EXPECT_EQ(info.tier_of(2), 0u);
  EXPECT_EQ(info.tier_of(1), 1u);
  EXPECT_EQ(info.tier_of(3), 1u);
  EXPECT_EQ(info.tier_of(99), 2u);  // unknown
}

TEST(Tiering, SingleTierHoldsEveryone) {
  const TierInfo info = tiers_of({5.0, 1.0, 3.0}, 1);
  EXPECT_EQ(info.members[0].size(), 3u);
  EXPECT_NEAR(info.avg_latency[0], 3.0, 1e-9);
}

TEST(Tiering, IdenticalLatenciesAllLandInOneTier) {
  const TierInfo info = tiers_of(std::vector<double>(10, 7.0), 3);
  std::size_t total = 0;
  for (const auto& tier : info.members) total += tier.size();
  EXPECT_EQ(total, 10u);
}

TEST(Tiering, ErrorsOnBadInput) {
  std::vector<double> latencies{1.0, 2.0};
  std::vector<bool> dropout{false};
  EXPECT_THROW(build_tiers(latencies, dropout, 2), std::invalid_argument);

  std::vector<bool> all_drop{true, true};
  EXPECT_THROW(build_tiers(latencies, all_drop, 2), std::invalid_argument);

  std::vector<bool> ok{false, false};
  EXPECT_THROW(build_tiers(latencies, ok, 0), std::invalid_argument);
}

TEST(Tiering, EndToEndFromProfilerMatchesResourceGroups) {
  // Profile a jitter-free federation and check tiers == resource groups.
  testing::TinyFederation fed = testing::tiny_federation(20);
  ProfilerConfig config;
  config.tmax = 1e6;
  util::Rng rng(4);
  const ProfileResult profile =
      profile_clients(fed.clients, fed.latency, config, rng);
  const TierInfo info = build_tiers(profile, 5);
  // tiny_federation assigns 5 CPU groups in blocks of 4, but tier order is
  // by latency; data sizes are near-equal so groups map to tiers directly.
  ASSERT_EQ(info.tier_count(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(info.members[t].size(), 4u) << "tier " << t;
  }
  // Fastest tier = 4-CPU clients 0..3.
  EXPECT_EQ(info.members[0], (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(info.members[4], (std::vector<std::size_t>{16, 17, 18, 19}));
}

TEST(Tiering, ToStringMentionsEveryTier) {
  const TierInfo info = tiers_of({1, 2, 3, 4, 5, 6}, 3);
  const std::string s = info.to_string();
  EXPECT_NE(s.find("tier 1"), std::string::npos);
  EXPECT_NE(s.find("tier 3"), std::string::npos);
}

}  // namespace
}  // namespace tifl::core
