// Snapshot container hardening: every single-bit flip and every
// truncation of a golden snapshot must surface as a clean
// std::runtime_error — never a crash, hang, giant allocation or silently
// wrong payload.  Plus round-trip equality for the serialized substates
// the engine snapshot is built from: RNG streams, event-queue horizon,
// churn streams, fault streams and stateful policy state.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive_policy.h"
#include "fl/snapshot.h"
#include "sim/churn_model.h"
#include "sim/event_queue.h"
#include "sim/fault_model.h"
#include "sim/sharded_event_queue.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/serial.h"

namespace tifl {
namespace {

std::string golden_payload() {
  util::ByteSink sink;
  sink.put_u64(0xDEADBEEFCAFEF00DULL);
  sink.put_f64(3.14159);
  sink.put_string("tier state");
  sink.put_f32_vec({1.5f, -2.5f, 0.0f});
  sink.put_size_vec({7, 8, 9});
  return sink.take();
}

std::string write_golden(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fl::save_snapshot(path, golden_payload());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FlSnapshot, RoundTripsPayloadBytes) {
  const std::string path = write_golden("roundtrip.snap");
  EXPECT_EQ(fl::load_snapshot(path), golden_payload());
}

TEST(FlSnapshot, OverwriteIsAtomicReplacement) {
  const std::string path = write_golden("overwrite.snap");
  util::ByteSink next;
  next.put_string("second generation");
  fl::save_snapshot(path, next.bytes());
  EXPECT_EQ(fl::load_snapshot(path), next.bytes());
}

TEST(FlSnapshot, MissingFileThrows) {
  EXPECT_THROW(fl::load_snapshot(::testing::TempDir() + "/absent.snap"),
               std::runtime_error);
}

TEST(FlSnapshot, EveryBitFlipIsRejected) {
  const std::string path = write_golden("bitflip.snap");
  const std::string pristine = slurp(path);
  ASSERT_FALSE(pristine.empty());
  const std::string victim = ::testing::TempDir() + "/bitflip_victim.snap";
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = pristine;
      corrupt[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupt[byte]) ^ (1u << bit));
      spit(victim, corrupt);
      EXPECT_THROW(fl::load_snapshot(victim), std::runtime_error)
          << "byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(FlSnapshot, EveryTruncationIsRejected) {
  const std::string path = write_golden("truncate.snap");
  const std::string pristine = slurp(path);
  const std::string victim = ::testing::TempDir() + "/truncate_victim.snap";
  for (std::size_t keep = 0; keep < pristine.size(); ++keep) {
    spit(victim, pristine.substr(0, keep));
    EXPECT_THROW(fl::load_snapshot(victim), std::runtime_error)
        << "accepted at " << keep << " of " << pristine.size() << " bytes";
  }
}

TEST(FlSnapshot, TrailingGarbageIsRejected) {
  const std::string path = write_golden("trailing.snap");
  spit(::testing::TempDir() + "/trailing_victim.snap",
       slurp(path) + "extra");
  EXPECT_THROW(
      fl::load_snapshot(::testing::TempDir() + "/trailing_victim.snap"),
      std::runtime_error);
}

// --- substate round trips -----------------------------------------------------

TEST(FlSnapshot, RngStreamRoundTripsThroughStateWords) {
  util::Rng rng(util::mix_seed(42, 7));
  for (int i = 0; i < 100; ++i) rng.next();  // advance mid-stream
  const std::array<std::uint64_t, 4> words = rng.state();

  util::Rng restored(1);  // deliberately different seed
  restored.set_state(words);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next(), restored.next());
  }
}

TEST(FlSnapshot, EventQueueHorizonRoundTrips) {
  sim::EventQueue queue;
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    queue.schedule(rng.uniform() * 10.0, /*kind=*/i % 4,
                   /*actor=*/static_cast<std::uint64_t>(i % 16));
  }
  std::vector<sim::Event> drained;
  queue.pop_batch(drained);  // advance the clock mid-run

  const double now = queue.now();
  const std::uint64_t next_seq = queue.next_seq();
  const std::vector<sim::Event> pending = queue.pending();

  sim::EventQueue restored;
  restored.restore(now, next_seq, pending);
  EXPECT_EQ(restored.now(), now);
  EXPECT_EQ(restored.size(), queue.size());
  while (!queue.empty()) {
    ASSERT_FALSE(restored.empty());
    const sim::Event a = queue.pop();
    const sim::Event b = restored.pop();
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.actor, b.actor);
  }
  EXPECT_TRUE(restored.empty());
}

TEST(FlSnapshot, ShardedQueueRestoresAcrossShardCounts) {
  // A horizon captured from a 2-shard queue must replay identically when
  // restored into 1-, 4- and 8-shard queues: the shard partitioning is a
  // performance choice, never part of the durable state.
  sim::ShardedEventQueue source_queue(2, 64);
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    source_queue.schedule(rng.uniform() * 20.0, /*kind=*/1,
                          /*actor=*/static_cast<std::uint64_t>(
                              rng.next() % 64));
  }
  std::vector<sim::Event> drained;
  source_queue.pop_batch(drained);

  const double now = source_queue.now();
  const std::uint64_t next_seq = source_queue.next_seq();
  const std::vector<sim::Event> pending = source_queue.pending();

  std::vector<sim::Event> reference;
  {
    sim::ShardedEventQueue replay(2, 64);
    replay.restore(now, next_seq, pending);
    while (!replay.empty()) reference.push_back(replay.pop());
  }
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    sim::ShardedEventQueue replay(shards, 64);
    replay.restore(now, next_seq, pending);
    std::vector<sim::Event> events;
    while (!replay.empty()) events.push_back(replay.pop());
    ASSERT_EQ(events.size(), reference.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].seq, reference[i].seq) << "shards=" << shards;
    }
  }
}

TEST(FlSnapshot, ChurnModelStreamRoundTrips) {
  sim::ChurnConfig config;
  config.join_rate = 0.1;
  config.leave_rate = 0.1;
  config.slowdown_rate = 0.2;
  sim::ChurnModel churn(config, /*run_seed=*/17);
  for (int i = 0; i < 25; ++i) churn.next();

  util::ByteSink sink;
  churn.save_state(sink);

  sim::ChurnModel restored(config, /*run_seed=*/17);
  util::ByteSource source(sink.bytes());
  restored.restore_state(source);
  for (int i = 0; i < 50; ++i) {
    const std::optional<sim::LifecycleEvent> a = churn.next();
    const std::optional<sim::LifecycleEvent> b = restored.next();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->time, b->time);
    EXPECT_EQ(a->kind, b->kind);
    EXPECT_EQ(a->pick, b->pick);
    EXPECT_EQ(a->factor, b->factor);
  }
}

TEST(FlSnapshot, FaultModelStreamRoundTrips) {
  sim::FaultConfig config;
  config.loss_prob = 0.3;
  sim::FaultModel fault(config, /*run_seed=*/23);
  for (int i = 0; i < 40; ++i) fault.lose_update();

  util::ByteSink sink;
  fault.save_state(sink);

  sim::FaultModel restored(config, /*run_seed=*/23);
  util::ByteSource source(sink.bytes());
  restored.restore_state(source);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fault.lose_update(), restored.lose_update()) << "draw " << i;
  }
}

TEST(FlSnapshot, AdaptivePolicyStateRoundTrips) {
  core::TierInfo tiers;
  tiers.members = testing::two_tiers(10);
  tiers.avg_latency = {1.0, 2.0};
  core::AdaptiveConfig config;
  config.clients_per_round = 4;
  config.interval = 2;
  core::AdaptiveTierPolicy policy(tiers, config, /*total_rounds=*/40);

  // Drive the credit/probability state away from its initial values.
  for (std::size_t round = 0; round < 12; ++round) {
    fl::RoundFeedback feedback;
    feedback.round = round;
    feedback.submitting_tier = static_cast<int>(round % 2);
    feedback.tier_accuracies = {0.5 + 0.01 * static_cast<double>(round),
                                0.4 + 0.02 * static_cast<double>(round)};
    policy.observe(feedback);
  }

  util::ByteSink sink;
  policy.save_state(sink);

  core::AdaptiveTierPolicy restored(tiers, config, /*total_rounds=*/40);
  util::ByteSource source(sink.bytes());
  restored.restore_state(source);

  // Identical RNG streams + identical restored state => identical picks.
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  for (std::size_t round = 12; round < 24; ++round) {
    fl::SelectionContext context_a;
    context_a.round = round;
    context_a.tier = static_cast<int>(round % 2);
    context_a.candidates = tiers.members[context_a.tier];
    context_a.rng = &rng_a;
    fl::SelectionContext context_b = context_a;
    context_b.rng = &rng_b;
    EXPECT_EQ(policy.select(context_a).clients,
              restored.select(context_b).clients)
        << "round " << round;
  }
}

}  // namespace
}  // namespace tifl
