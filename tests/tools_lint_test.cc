// In-memory fixtures for the tifl_lint rule engine (tools/lint_rules.h):
// per rule a hit, a miss, the allow(...) escape, and the comment/string
// false-positive guards the tokenizer must provide.
#include "lint_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lint = tifl::lint;

namespace {

// Diagnostics for `source` as if it lived at `path`.
std::vector<lint::Diagnostic> run(const std::string& path,
                                  const std::string& source) {
  return lint::lint_source(path, source);
}

std::size_t count_rule(const std::vector<lint::Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const lint::Diagnostic& d) { return d.rule == rule; }));
}

constexpr char kDetPath[] = "src/fl/some_file.cc";

// --- rng ---------------------------------------------------------------------

TEST(LintRng, FlagsRandomDeviceInDeterminismDir) {
  const auto diags = run(kDetPath, "std::random_device rd;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "rng");
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_EQ(diags[0].file, kDetPath);
}

TEST(LintRng, FlagsCRandAndSrand) {
  const auto diags = run(kDetPath, "int x = rand();\nsrand(42);\n");
  EXPECT_EQ(count_rule(diags, "rng"), 2u);
}

TEST(LintRng, UtilRngIsTheSanctionedPath) {
  const auto diags =
      run(kDetPath, "util::Rng rng(seed);\nauto v = rng.uniform_index(n);\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRng, MemberNamedRandIsNotTheCLibrary) {
  const auto diags = run(kDetPath, "auto v = sampler.rand();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRng, OutsideDeterminismDirsNotFlagged) {
  EXPECT_TRUE(run("tools/some_tool.cc", "std::random_device rd;\n").empty());
  EXPECT_TRUE(run("src/util/entropy.cc", "std::random_device rd;\n").empty());
}

// --- wall-clock --------------------------------------------------------------

TEST(LintWallClock, FlagsClocksInDeterminismDirs) {
  for (const char* src : {"auto t = std::chrono::system_clock::now();\n",
                          "auto t = std::chrono::steady_clock::now();\n",
                          "std::time_t t = std::time(nullptr);\n",
                          "gettimeofday(&tv, nullptr);\n"}) {
    const auto diags = run("src/sim/some_file.cc", src);
    EXPECT_EQ(count_rule(diags, "wall-clock"), 1u) << src;
  }
}

TEST(LintWallClock, ZeroArgTimeMethodIsNotTheCLibrary) {
  // sim::FaultModel::time() — an accessor, not <ctime>.
  const auto diags = run("src/sim/fault_model.h",
                         "double time() const noexcept { return time_; }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintWallClock, MemberAndQualifiedTimeCallsAreNotFlagged) {
  EXPECT_TRUE(run(kDetPath, "double t = clock.time(0);\n").empty());
  EXPECT_TRUE(run(kDetPath, "double t = VirtualClock::time(x);\n").empty());
}

TEST(LintWallClock, ObsWallHelpersAreExempt) {
  // The obs layer is the sanctioned wall-clock gateway.
  const auto diags =
      run("src/obs/wall_time.h", "return std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(diags.empty());
}

// --- unordered-iter ----------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMap) {
  const auto diags = run(kDetPath,
                         "std::unordered_map<int, double> weights;\n"
                         "for (const auto& [k, v] : weights) sum += v;\n");
  ASSERT_EQ(count_rule(diags, "unordered-iter"), 1u);
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(LintUnorderedIter, FlagsExplicitBeginEndWalk) {
  const auto diags = run(kDetPath,
                         "std::unordered_set<std::size_t> live;\n"
                         "auto it = live.begin();\n");
  EXPECT_EQ(count_rule(diags, "unordered-iter"), 1u);
}

TEST(LintUnorderedIter, PointLookupsAreFine) {
  const auto diags = run(kDetPath,
                         "std::unordered_map<std::size_t, Entry> cache;\n"
                         "auto it = cache.find(id);\n"
                         "if (it == cache.end()) return;\n"
                         "cache.erase(id);\n"
                         "if (cache.size() > cap) shrink();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintUnorderedIter, OrderedContainersAreFine) {
  const auto diags = run(kDetPath,
                         "std::map<int, double> weights;\n"
                         "for (const auto& [k, v] : weights) sum += v;\n");
  EXPECT_TRUE(diags.empty());
}

// --- raw-thread --------------------------------------------------------------

TEST(LintRawThread, FlagsStdThreadInSrc) {
  const auto diags = run("src/obs/some_file.cc",
                         "std::thread worker([] { spin(); });\n");
  EXPECT_EQ(count_rule(diags, "raw-thread"), 1u);
}

TEST(LintRawThread, FlagsStdAsyncAndPthreadCreate) {
  const auto diags = run(kDetPath,
                         "auto f = std::async(std::launch::async, fn);\n"
                         "pthread_create(&tid, nullptr, fn, nullptr);\n");
  EXPECT_EQ(count_rule(diags, "raw-thread"), 2u);
}

TEST(LintRawThread, ThreadPoolImplementationIsExempt) {
  const auto diags = run("src/util/thread_pool.cc",
                         "std::vector<std::thread> workers_;\n"
                         "auto id = std::this_thread::get_id();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRawThread, UnqualifiedThreadWordIsNotFlagged) {
  // "thread" as a plain word (comments aside, e.g. a member named
  // thread_count) must not trip the rule.
  const auto diags = run(kDetPath, "std::size_t thread = pool.size();\n");
  EXPECT_TRUE(diags.empty());
}

// --- raw-io ------------------------------------------------------------------

TEST(LintRawIo, FlagsPrintfAndCoutInSrc) {
  const auto diags = run("src/core/some_file.cc",
                         "printf(\"round %d\\n\", r);\n"
                         "std::cout << accuracy << std::endl;\n");
  EXPECT_EQ(count_rule(diags, "raw-io"), 2u);
}

TEST(LintRawIo, LoggerImplementationIsExempt) {
  const auto diags = run("src/util/log.cc",
                         "std::cerr << \"[\" << stamp << \"] \" << m;\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRawIo, ToolsOwnTheirStdout) {
  const auto diags =
      run("tools/tifl_run.cc", "std::cout << table.render();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRawIo, SnprintfIsFormattingNotLogging) {
  const auto diags =
      run(kDetPath, "std::snprintf(buf, sizeof(buf), \"%d\", v);\n");
  EXPECT_TRUE(diags.empty());
}

// --- state-pairing -----------------------------------------------------------

TEST(LintStatePairing, FlagsSaveWithoutRestore) {
  const auto diags = run(kDetPath,
                         "void save_state(util::ByteSink& sink) const;\n");
  ASSERT_EQ(count_rule(diags, "state-pairing"), 1u);
}

TEST(LintStatePairing, PairedDeclarationsAreFine) {
  const auto diags = run(kDetPath,
                         "void save_state(util::ByteSink& sink) const;\n"
                         "void restore_state(util::ByteSource& source);\n");
  EXPECT_TRUE(diags.empty());
}

// The aggregator-tree subsystem (src/fl/hier/) is in the determinism set:
// a new node type declaring save_state without its restore_state pair must
// trip the rule there, exactly as it does for the flat engine's files.
TEST(LintStatePairing, FiresOnHierNodeTypes) {
  const auto diags = run("src/fl/hier/edge_cache.h",
                         "class EdgeCache {\n"
                         " public:\n"
                         "  void save_state(util::ByteSink& sink) const;\n"
                         "};\n");
  ASSERT_EQ(count_rule(diags, "state-pairing"), 1u);
  EXPECT_EQ(diags[0].file, "src/fl/hier/edge_cache.h");
}

TEST(LintStatePairing, PairedHierNodeTypesAreFine) {
  const auto diags = run("src/fl/hier/edge_cache.h",
                         "void save_state(util::ByteSink& sink) const;\n"
                         "void restore_state(util::ByteSource& source);\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRng, HierDirIsADeterminismDir) {
  const auto diags =
      run("src/fl/hier/tree_engine.cc", "std::random_device rd;\n");
  ASSERT_EQ(count_rule(diags, "rng"), 1u);
}

// --- allow escapes -----------------------------------------------------------

TEST(LintAllow, JustifiedEscapeWaivesSameLine) {
  const auto diags = run(
      kDetPath,
      "std::time_t t = std::time(nullptr);  "
      "// tifl-lint: allow(wall-clock): demo default seed, not sim state\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintAllow, JustifiedEscapeOnOwnLineWaivesNextLine) {
  const auto diags =
      run(kDetPath,
          "// tifl-lint: allow(rng): hardware entropy for the CLI only\n"
          "std::random_device rd;\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintAllow, UnjustifiedEscapeDoesNotWaiveAndIsItselfAnError) {
  const auto diags =
      run(kDetPath, "std::random_device rd;  // tifl-lint: allow(rng)\n");
  EXPECT_EQ(count_rule(diags, "rng"), 1u);
  EXPECT_EQ(count_rule(diags, "unexplained-allow"), 1u);
}

TEST(LintAllow, UnusedEscapeIsAnError) {
  const auto diags = run(
      kDetPath, "int x = 3;  // tifl-lint: allow(rng): nothing here at all\n");
  EXPECT_EQ(count_rule(diags, "unused-allow"), 1u);
}

TEST(LintAllow, UnknownRuleIsAnError) {
  const auto diags = run(
      kDetPath, "int x = 3;  // tifl-lint: allow(made-up): some reason\n");
  EXPECT_EQ(count_rule(diags, "unknown-rule"), 1u);
}

TEST(LintAllow, EscapeForOtherRuleDoesNotWaive) {
  const auto diags =
      run(kDetPath,
          "std::random_device rd;  // tifl-lint: allow(wall-clock): nope\n");
  EXPECT_EQ(count_rule(diags, "rng"), 1u);
  EXPECT_EQ(count_rule(diags, "unused-allow"), 1u);
}

// --- tokenizer false-positive guards -----------------------------------------

TEST(LintTokenizer, CommentsDoNotTrip) {
  const auto diags = run(kDetPath,
                         "// never seed from std::random_device or rand()\n"
                         "/* steady_clock would break determinism; so\n"
                         "   would printf or std::thread here */\n"
                         "int x = 0;\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintTokenizer, StringAndCharLiteralsDoNotTrip) {
  const auto diags = run(
      kDetPath,
      "const char* msg = \"do not call rand() or std::time(nullptr)\";\n"
      "const char* raw = R\"(std::random_device in a raw string)\";\n"
      "char c = 'r';\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintTokenizer, EscapedQuotesInsideStrings) {
  const auto diags = run(
      kDetPath,
      "const char* s = \"escaped \\\" then rand() still inside\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintTokenizer, DigitSeparatorsAreNotCharLiterals) {
  // 1'000'000 must not open a char literal that swallows "rand()" on the
  // next line into a blanked region — and the rand() must still fire.
  const auto diags = run(kDetPath,
                         "std::size_t n = 1'000'000;\n"
                         "int x = rand();\n");
  EXPECT_EQ(count_rule(diags, "rng"), 1u);
}

TEST(LintTokenizer, LineNumbersSurviveBlockComments) {
  const auto diags = run(kDetPath,
                         "/* a\n   multi-line\n   comment */\n"
                         "std::random_device rd;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 4u);
}

// --- engine plumbing ---------------------------------------------------------

TEST(LintEngine, DiagnosticsSortedByLine) {
  const auto diags = run(kDetPath,
                         "srand(1);\n"
                         "int a = 0;\n"
                         "int x = rand();\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_LT(diags[0].line, diags[1].line);
}

TEST(LintEngine, RuleNamesListsEveryRule) {
  const auto& names = lint::rule_names();
  for (const char* rule : {"rng", "wall-clock", "unordered-iter",
                           "raw-thread", "raw-io", "state-pairing"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), rule), names.end())
        << rule;
  }
}

}  // namespace
