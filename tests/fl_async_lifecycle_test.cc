// Dynamic client lifecycle on the async engine: churn determinism,
// mid-round stragglers, join/leave bookkeeping, online re-tiering — and
// the acceptance guarantee that a zero-churn, reprofile-off configuration
// replays the static-population engine bit for bit.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/system.h"
#include "core/tiering.h"
#include "fl/async_engine.h"
#include "test_helpers.h"

namespace tifl::fl {
namespace {

using testing::FederationBuilder;
using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::two_tiers;
using testing::TinyFederation;

AsyncConfig dyn_config(std::size_t updates = 20) {
  AsyncConfig async;
  async.total_updates = updates;
  async.clients_per_tier_round = 3;
  async.eval_every = 4;
  return async;
}

void expect_identical(const AsyncRunResult& a, const AsyncRunResult& b) {
  EXPECT_EQ(a.final_weights, b.final_weights);
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size());
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    EXPECT_EQ(a.result.rounds[i].selected_clients,
              b.result.rounds[i].selected_clients);
    EXPECT_EQ(a.result.rounds[i].selected_tier,
              b.result.rounds[i].selected_tier);
    EXPECT_DOUBLE_EQ(a.result.rounds[i].virtual_time,
                     b.result.rounds[i].virtual_time);
    EXPECT_DOUBLE_EQ(a.result.rounds[i].global_accuracy,
                     b.result.rounds[i].global_accuracy);
  }
  EXPECT_EQ(a.tier_updates, b.tier_updates);
  EXPECT_EQ(a.join_count, b.join_count);
  EXPECT_EQ(a.leave_count, b.leave_count);
  EXPECT_EQ(a.slowdown_count, b.slowdown_count);
}

// --- acceptance: the static path is untouched -------------------------------

TEST(AsyncLifecycle, ZeroChurnNoReprofileIsBitIdenticalToStaticEngine) {
  // A churn config with all-zero rates and reprofile_every == 0 must take
  // the exact static-population code path: same RNG stream consumption,
  // same event sequence, bitwise-equal weights.
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig plain = dyn_config(15);
  AsyncConfig zeroed = plain;
  zeroed.churn = sim::ChurnConfig{};  // explicit all-zero rates
  zeroed.reprofile_every = 0.0;
  zeroed.latency_ema_alpha = 0.5;  // dormant knobs must not matter

  AsyncEngine a(tiny_engine_config(1), plain, tiny_factory(), &fed.clients,
                two_tiers(10), &fed.data.test, fed.latency);
  AsyncEngine b(tiny_engine_config(1), zeroed, tiny_factory(), &fed.clients,
                two_tiers(10), &fed.data.test, fed.latency);
  EXPECT_FALSE(a.dynamic());
  EXPECT_FALSE(b.dynamic());
  expect_identical(a.run(), b.run());
}

TEST(AsyncLifecycle, SystemZeroChurnRunMatchesPlainRunAsync) {
  TinyFederation fed = FederationBuilder().clients(20).build();
  core::SystemConfig config;
  config.clients_per_round = 3;
  config.engine = tiny_engine_config(12);
  config.profiler.tmax = 1e6;
  core::TiflSystem system(config, tiny_factory(), &fed.data.test,
                          fed.clients, fed.latency);

  AsyncConfig zeroed;
  zeroed.total_updates = 12;
  zeroed.clients_per_tier_round = 3;
  zeroed.churn.join_rate = 0.0;
  zeroed.reprofile_every = 0.0;
  AsyncConfig plain = zeroed;
  plain.churn = sim::ChurnConfig{};
  expect_identical(system.run_async(zeroed), system.run_async(plain));
}

// --- determinism under churn ------------------------------------------------

TEST(AsyncLifecycle, ChurnRunsAreBitwiseReproducible) {
  TinyFederation fed = FederationBuilder().clients(12).jitter(0.05).build();
  AsyncConfig async = dyn_config(25);
  async.churn.leave_rate = 0.02;
  async.churn.join_rate = 0.02;
  async.churn.slowdown_rate = 0.05;
  AsyncEngine e1(tiny_engine_config(1), async, tiny_factory(), &fed.clients,
                 two_tiers(12), &fed.data.test, fed.latency);
  AsyncEngine e2(tiny_engine_config(1), async, tiny_factory(), &fed.clients,
                 two_tiers(12), &fed.data.test, fed.latency);
  EXPECT_TRUE(e1.dynamic());
  const AsyncRunResult a = e1.run();
  const AsyncRunResult b = e2.run();
  expect_identical(a, b);
  EXPECT_GT(a.leave_count + a.join_count + a.slowdown_count, 0u);
}

TEST(AsyncLifecycle, ReusedEngineReplaysChurnRunExactly) {
  // Membership mutates during a dynamic run (leaves empty whole tiers
  // here); a second run() on the same engine must start pristine and
  // replay bit for bit — run results are a pure function of the seed.
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = dyn_config(60);
  async.churn.leave_rate = 0.5;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult a = engine.run();
  const AsyncRunResult b = engine.run();
  EXPECT_GT(a.leave_count, 0u);
  expect_identical(a, b);
}

TEST(AsyncLifecycle, ChurnSeedOverrideDecouplesFromRunSeed) {
  // Pinning churn.seed keeps the lifecycle stream fixed while the run
  // seed varies — the knob drift benches use to replay identical drift.
  TinyFederation fed = FederationBuilder().clients(12).build();
  AsyncConfig async = dyn_config(20);
  async.churn.leave_rate = 0.05;
  async.churn.seed = 1234;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(12), &fed.data.test,
                     fed.latency);
  const AsyncRunResult a = engine.run(/*seed_override=*/111);
  const AsyncRunResult b = engine.run(/*seed_override=*/222);
  EXPECT_EQ(a.leave_count, b.leave_count);
  EXPECT_NE(a.final_weights, b.final_weights);
}

// --- per-client submission --------------------------------------------------

TEST(AsyncLifecycle, DynamicPathSubmitsPerClientWithOwnStaleness) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = dyn_config(20);
  async.staleness = StalenessFn::kPolynomial;
  async.churn.slowdown_rate = 0.01;  // any positive rate => dynamic path
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  ASSERT_EQ(out.result.rounds.size(), 20u);
  for (const RoundRecord& record : out.result.rounds) {
    // The submission unit is one client, not a tier cohort.
    EXPECT_EQ(record.selected_clients.size(), 1u);
    EXPECT_GT(record.round_latency, 0.0);
  }
  // Interleaved arrivals give updates individual, nonzero staleness.
  const double total_staleness =
      std::accumulate(out.mean_staleness.begin(), out.mean_staleness.end(),
                      0.0);
  EXPECT_GT(total_staleness, 0.0);
}

TEST(AsyncLifecycle, VirtualTimeIsNonDecreasingUnderChurn) {
  TinyFederation fed = FederationBuilder().clients(12).jitter(0.05).build();
  AsyncConfig async = dyn_config(30);
  async.churn.leave_rate = 0.03;
  async.churn.join_rate = 0.03;
  async.churn.slowdown_rate = 0.05;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(12), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  double prev = 0.0;
  for (const RoundRecord& record : out.result.rounds) {
    EXPECT_GE(record.virtual_time, prev);
    prev = record.virtual_time;
  }
}

// --- churn semantics --------------------------------------------------------

TEST(AsyncLifecycle, LeavesShrinkThePopulationAndTheRunSurvives) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = dyn_config(200);
  async.churn.leave_rate = 0.5;  // aggressive: everyone leaves quickly
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  // The population dies out, the engine stops early instead of hanging.
  EXPECT_LT(out.result.rounds.size(), 200u);
  EXPECT_EQ(out.leave_count, 10u);
  EXPECT_EQ(out.final_live_clients, 0u);
}

TEST(AsyncLifecycle, JoinsAreNoOpsWithoutAReserveThenReviveLeavers) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  // Joins only: every client is already live, so nothing can join.
  AsyncConfig join_only = dyn_config(15);
  join_only.churn.join_rate = 1.0;
  AsyncEngine a(tiny_engine_config(1), join_only, tiny_factory(),
                &fed.clients, two_tiers(10), &fed.data.test, fed.latency);
  EXPECT_EQ(a.run().join_count, 0u);

  // Leaves + joins: departed clients re-enter through the reserve.
  AsyncConfig churny = dyn_config(60);
  churny.churn.join_rate = 0.3;
  churny.churn.leave_rate = 0.3;
  AsyncEngine b(tiny_engine_config(1), churny, tiny_factory(), &fed.clients,
                two_tiers(10), &fed.data.test, fed.latency);
  const AsyncRunResult out = b.run();
  EXPECT_GT(out.leave_count, 0u);
  EXPECT_GT(out.join_count, 0u);
  EXPECT_LE(out.final_live_clients, 10u);
}

TEST(AsyncLifecycle, SlowdownsStretchObservedLatency) {
  // Same seed with and without slowdowns: the drifted run's mean observed
  // response latency must be strictly larger (multipliers center ~2x).
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig calm = dyn_config(40);
  calm.churn.join_rate = 1e-9;  // force the dynamic path, ~never fires
  AsyncConfig drifty = calm;
  drifty.churn.slowdown_rate = 1.0;

  AsyncEngine a(tiny_engine_config(1), calm, tiny_factory(), &fed.clients,
                two_tiers(10), &fed.data.test, fed.latency);
  AsyncEngine b(tiny_engine_config(1), drifty, tiny_factory(), &fed.clients,
                two_tiers(10), &fed.data.test, fed.latency);
  const AsyncRunResult calm_run = a.run();
  const AsyncRunResult drift_run = b.run();
  EXPECT_GT(drift_run.slowdown_count, 0u);
  EXPECT_GT(drift_run.result.total_time(), calm_run.result.total_time());
}

TEST(AsyncLifecycle, TimeBudgetStopsDynamicRun) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = dyn_config(500);
  async.churn.slowdown_rate = 0.05;
  AsyncEngine probe(tiny_engine_config(1), async, tiny_factory(),
                    &fed.clients, two_tiers(10), &fed.data.test,
                    fed.latency);
  const double full_time = probe.run().result.total_time();

  AsyncConfig budgeted = async;
  budgeted.time_budget_seconds = full_time / 4.0;
  AsyncEngine engine(tiny_engine_config(1), budgeted, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  const AsyncRunResult out = engine.run();
  EXPECT_LT(out.result.rounds.size(), 500u);
  EXPECT_GT(out.result.rounds.size(), 0u);
  EXPECT_GT(out.result.final_accuracy(), 0.0);
}

// --- online re-tiering ------------------------------------------------------

TEST(AsyncLifecycle, ReprofileWithoutRetierHookThrows) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig async = dyn_config(10);
  async.reprofile_every = 5.0;
  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(),
                     &fed.clients, two_tiers(10), &fed.data.test,
                     fed.latency);
  EXPECT_TRUE(engine.dynamic());
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(AsyncLifecycle, ReprofileFiresPeriodicallyAndRunStaysDeterministic) {
  TinyFederation fed = FederationBuilder().clients(20).jitter(0.05).build();
  core::SystemConfig config;
  config.clients_per_round = 3;
  config.engine = tiny_engine_config(40);
  config.profiler.tmax = 1e6;
  core::TiflSystem s1(config, tiny_factory(), &fed.data.test, fed.clients,
                      fed.latency);
  core::TiflSystem s2(config, tiny_factory(), &fed.data.test, fed.clients,
                      fed.latency);

  AsyncConfig async;
  async.total_updates = 40;
  async.clients_per_tier_round = 3;
  async.reprofile_every = 3.0;
  async.churn.slowdown_rate = 0.05;
  const AsyncRunResult a = s1.run_async(async);
  const AsyncRunResult b = s2.run_async(async);
  EXPECT_GT(a.reprofile_count, 0u);
  expect_identical(a, b);

  // Post-run tier structure reflects the last rebuild: every live client
  // sits in exactly one tier.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& members : s1.tiers().members) {
    for (std::size_t id : members) {
      seen.insert(id);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
  EXPECT_EQ(total + a.leave_count - a.join_count, 20u);
}

TEST(AsyncLifecycle, SecondChurnedRunContinuesFromEvolvedMembership) {
  // After a churned run mutates the system's tiers (leavers dropped), a
  // second dynamic run must start from that evolved membership with a
  // consistent re-tierer — not throw on the first rebuild.
  TinyFederation fed = FederationBuilder().clients(20).build();
  core::SystemConfig config;
  config.clients_per_round = 3;
  config.engine = tiny_engine_config(30);
  config.profiler.tmax = 1e6;
  core::TiflSystem system(config, tiny_factory(), &fed.data.test,
                          fed.clients, fed.latency);

  AsyncConfig async;
  async.total_updates = 30;
  async.clients_per_tier_round = 3;
  async.reprofile_every = 3.0;
  async.churn.leave_rate = 0.3;
  async.churn.join_rate = 0.3;
  const AsyncRunResult first = system.run_async(async);
  EXPECT_GT(first.leave_count, 0u);

  const AsyncRunResult second = system.run_async(async);
  EXPECT_GT(second.result.rounds.size(), 0u);
  // Run 2's starting population is run 1's survivors; its leavers joined
  // the reserve, so joins can now fire from the start.
  EXPECT_LE(second.final_live_clients, 20u);
}

TEST(AsyncLifecycle, OnlineRetieringMigratesDriftedClients) {
  // Heavy slowdown drift + periodic re-profiling: at least one client
  // must end in a different tier than the construction-time profiling
  // placed it (the whole point of dynamic tiering).
  TinyFederation fed = FederationBuilder().clients(20).jitter(0.02).build();
  core::SystemConfig config;
  config.clients_per_round = 3;
  config.engine = tiny_engine_config(200);
  config.profiler.tmax = 1e6;
  core::TiflSystem system(config, tiny_factory(), &fed.data.test,
                          fed.clients, fed.latency);
  const core::TierInfo before = system.tiers();

  AsyncConfig async;
  async.total_updates = 200;
  async.clients_per_tier_round = 3;
  async.reprofile_every = 2.0;
  async.churn.slowdown_rate = 1.0;
  async.churn.slowdown_log_mu = 1.5;  // ~4.5x multipliers: strong drift
  async.latency_ema_alpha = 0.6;
  const AsyncRunResult out = system.run_async(async);
  EXPECT_GT(out.slowdown_count, 0u);
  EXPECT_GT(out.reprofile_count, 0u);

  bool migrated = false;
  for (std::size_t c = 0; c < 20; ++c) {
    if (system.tiers().tier_of(c) != before.tier_of(c)) migrated = true;
  }
  EXPECT_TRUE(migrated);
}

TEST(AsyncLifecycle, ConstructorRejectsNegativeLifecycleConfig) {
  TinyFederation fed = FederationBuilder().clients(10).build();
  AsyncConfig bad_reprofile = dyn_config(5);
  bad_reprofile.reprofile_every = -1.0;
  EXPECT_THROW(AsyncEngine(tiny_engine_config(1), bad_reprofile,
                           tiny_factory(), &fed.clients, two_tiers(10),
                           &fed.data.test, fed.latency),
               std::invalid_argument);
  AsyncConfig bad_rate = dyn_config(5);
  bad_rate.churn.leave_rate = -0.1;
  EXPECT_THROW(AsyncEngine(tiny_engine_config(1), bad_rate, tiny_factory(),
                           &fed.clients, two_tiers(10), &fed.data.test,
                           fed.latency),
               std::invalid_argument);
}

}  // namespace
}  // namespace tifl::fl
