#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace tifl::tensor {
namespace {

TEST(ConvGeometry, OutputSizes) {
  ConvGeometry g{.channels = 3, .height = 8, .width = 8, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 0};
  EXPECT_EQ(g.out_h(), 6);
  EXPECT_EQ(g.out_w(), 6);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 36);

  g.pad = 1;  // same padding
  EXPECT_EQ(g.out_h(), 8);

  g.stride = 2;
  g.pad = 0;
  EXPECT_EQ(g.out_h(), 3);
}

TEST(Im2Col, IdentityKernelExtractsPixels) {
  // 1x1 kernel: columns are exactly the flattened image.
  ConvGeometry g{.channels = 1, .height = 3, .width = 3, .kernel_h = 1,
                 .kernel_w = 1, .stride = 1, .pad = 0};
  const std::vector<float> image{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> columns(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(image.data(), g, columns.data());
  EXPECT_EQ(columns, image);
}

TEST(Im2Col, KnownPatchExtraction) {
  // 2x2 image, 2x2 kernel, no pad: a single column = whole image.
  ConvGeometry g{.channels = 1, .height = 2, .width = 2, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  const std::vector<float> image{1, 2, 3, 4};
  std::vector<float> columns(4);
  im2col(image.data(), g, columns.data());
  EXPECT_EQ(columns, (std::vector<float>{1, 2, 3, 4}));
}

TEST(Im2Col, ZeroPaddingFillsBorder) {
  // 1x1 image, 3x3 kernel, pad 1: only the center entry is the pixel.
  ConvGeometry g{.channels = 1, .height = 1, .width = 1, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  const std::vector<float> image{5.0f};
  std::vector<float> columns(9, -1.0f);
  im2col(image.data(), g, columns.data());
  for (int r = 0; r < 9; ++r) {
    EXPECT_EQ(columns[r], r == 4 ? 5.0f : 0.0f) << "kernel slot " << r;
  }
}

TEST(Im2Col, MultiChannelRowsStackByChannel) {
  ConvGeometry g{.channels = 2, .height = 2, .width = 2, .kernel_h = 1,
                 .kernel_w = 1, .stride = 1, .pad = 0};
  const std::vector<float> image{1, 2, 3, 4, 10, 20, 30, 40};
  std::vector<float> columns(8);
  im2col(image.data(), g, columns.data());
  // Row 0 = channel 0, row 1 = channel 1.
  EXPECT_EQ(columns, (std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40}));
}

TEST(Im2Col, StrideSkipsPositions) {
  ConvGeometry g{.channels = 1, .height = 4, .width = 4, .kernel_h = 2,
                 .kernel_w = 2, .stride = 2, .pad = 0};
  std::vector<float> image(16);
  for (int i = 0; i < 16; ++i) image[i] = static_cast<float>(i);
  std::vector<float> columns(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(image.data(), g, columns.data());
  // First row of columns = top-left pixel of each 2x2 window: 0, 2, 8, 10.
  EXPECT_EQ(columns[0], 0.0f);
  EXPECT_EQ(columns[1], 2.0f);
  EXPECT_EQ(columns[2], 8.0f);
  EXPECT_EQ(columns[3], 10.0f);
}

TEST(Col2Im, AdjointOfIm2Col) {
  // col2im is the transpose of im2col as a linear map, so
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the property conv
  // backward relies on.
  util::Rng rng(5);
  ConvGeometry g{.channels = 2, .height = 5, .width = 6, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  const std::size_t image_size = static_cast<std::size_t>(g.channels * g.height * g.width);
  const std::size_t col_size = static_cast<std::size_t>(g.col_rows() * g.col_cols());

  std::vector<float> x(image_size), y(col_size);
  for (float& v : x) v = static_cast<float>(rng.normal());
  for (float& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> ax(col_size);
  im2col(x.data(), g, ax.data());
  std::vector<float> aty(image_size, 0.0f);
  col2im(y.data(), g, aty.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += static_cast<double>(ax[i]) * y[i];
  for (std::size_t i = 0; i < image_size; ++i) rhs += static_cast<double>(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3);
}

// --- batch forms ------------------------------------------------------------

TEST(Im2ColBatch, SlabMatchesPerImageColumns) {
  // The [R, N*S] slab must hold image b's tight [R, S] column matrix in
  // columns [b*S, (b+1)*S), exactly as the per-image transform produces it.
  util::Rng rng(11);
  ConvGeometry g{.channels = 2, .height = 5, .width = 4, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  const std::int64_t batch = 3;
  const std::int64_t spatial = g.col_cols();
  std::vector<float> images(
      static_cast<std::size_t>(batch * g.image_size()));
  for (float& v : images) v = static_cast<float>(rng.normal());

  std::vector<float> slab(
      static_cast<std::size_t>(g.col_rows() * batch * spatial), -7.0f);
  im2col_batch(images.data(), batch, g, slab.data());

  std::vector<float> single(
      static_cast<std::size_t>(g.col_rows() * spatial));
  for (std::int64_t b = 0; b < batch; ++b) {
    im2col(images.data() + b * g.image_size(), g, single.data());
    for (std::int64_t r = 0; r < g.col_rows(); ++r) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        EXPECT_EQ(slab[static_cast<std::size_t>(r * batch * spatial +
                                                b * spatial + s)],
                  single[static_cast<std::size_t>(r * spatial + s)])
            << "image " << b << " row " << r << " col " << s;
      }
    }
  }
}

TEST(Col2ImBatch, MatchesPerImageScatter) {
  util::Rng rng(12);
  ConvGeometry g{.channels = 1, .height = 6, .width = 6, .kernel_h = 3,
                 .kernel_w = 3, .stride = 2, .pad = 1};
  const std::int64_t batch = 4;
  const std::int64_t spatial = g.col_cols();
  std::vector<float> slab(
      static_cast<std::size_t>(g.col_rows() * batch * spatial));
  for (float& v : slab) v = static_cast<float>(rng.normal());

  std::vector<float> batch_grad(
      static_cast<std::size_t>(batch * g.image_size()), 0.0f);
  col2im_batch(slab.data(), batch, g, batch_grad.data());

  // Reference: extract each image's tight columns, scatter individually.
  std::vector<float> single(
      static_cast<std::size_t>(g.col_rows() * spatial));
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t r = 0; r < g.col_rows(); ++r) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        single[static_cast<std::size_t>(r * spatial + s)] =
            slab[static_cast<std::size_t>(r * batch * spatial + b * spatial +
                                          s)];
      }
    }
    std::vector<float> expected(static_cast<std::size_t>(g.image_size()),
                                0.0f);
    col2im(single.data(), g, expected.data());
    for (std::int64_t i = 0; i < g.image_size(); ++i) {
      EXPECT_EQ(batch_grad[static_cast<std::size_t>(b * g.image_size() + i)],
                expected[static_cast<std::size_t>(i)])
          << "image " << b << " element " << i;
    }
  }
}

TEST(Im2Col, StridedVariantMatchesTight) {
  // Writing through a wider slab stride and reading the window back must
  // reproduce the tight layout (guards the stride plumbing used by conv).
  util::Rng rng(13);
  ConvGeometry g{.channels = 2, .height = 4, .width = 5, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  const std::int64_t spatial = g.col_cols();
  const std::int64_t wide = spatial + 17;
  std::vector<float> image(static_cast<std::size_t>(g.image_size()));
  for (float& v : image) v = static_cast<float>(rng.normal());

  std::vector<float> tight(
      static_cast<std::size_t>(g.col_rows() * spatial));
  im2col(image.data(), g, tight.data());
  std::vector<float> strided(
      static_cast<std::size_t>(g.col_rows() * wide), -1.0f);
  im2col(image.data(), g, strided.data(), wide);
  for (std::int64_t r = 0; r < g.col_rows(); ++r) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      EXPECT_EQ(strided[static_cast<std::size_t>(r * wide + s)],
                tight[static_cast<std::size_t>(r * spatial + s)]);
    }
  }
}

TEST(Col2Im, AccumulatesOverlappingWindows) {
  // 3x3 image, 2x2 kernel stride 1: center-adjacent pixels appear in
  // multiple windows; all-ones columns scatter window multiplicities.
  ConvGeometry g{.channels = 1, .height = 3, .width = 3, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  std::vector<float> columns(static_cast<std::size_t>(g.col_rows() * g.col_cols()), 1.0f);
  std::vector<float> image(9, 0.0f);
  col2im(columns.data(), g, image.data());
  // Multiplicity map for 2x2 windows over 3x3: corners 1, edges 2, center 4.
  const std::vector<float> expected{1, 2, 1, 2, 4, 2, 1, 2, 1};
  EXPECT_EQ(image, expected);
}

}  // namespace
}  // namespace tifl::tensor
