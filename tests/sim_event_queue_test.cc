#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace tifl::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.now(), 0.0);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule_at(5.0, /*kind=*/0, /*actor=*/50);
  queue.schedule_at(1.0, 0, 10);
  queue.schedule_at(3.0, 0, 30);
  queue.schedule_at(4.0, 0, 40);
  queue.schedule_at(2.0, 0, 20);

  std::vector<std::uint64_t> actors;
  while (!queue.empty()) actors.push_back(queue.pop().actor);
  EXPECT_EQ(actors, (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, SimultaneousEventsPopInInsertionOrder) {
  // The stable tie-break: equal times resolve by seq, i.e. FIFO.
  EventQueue queue;
  for (std::uint64_t actor = 0; actor < 8; ++actor) {
    queue.schedule_at(7.0, 0, actor);
  }
  queue.schedule_at(3.0, 0, 99);
  for (std::uint64_t actor = 8; actor < 16; ++actor) {
    queue.schedule_at(7.0, 0, actor);
  }

  EXPECT_EQ(queue.pop().actor, 99u);
  for (std::uint64_t actor = 0; actor < 16; ++actor) {
    const Event event = queue.pop();
    EXPECT_EQ(event.actor, actor);
    EXPECT_EQ(event.time, 7.0);
  }
}

TEST(EventQueue, PopAdvancesNow) {
  EventQueue queue;
  queue.schedule_at(2.5, 0, 0);
  queue.schedule_at(6.0, 0, 0);
  EXPECT_EQ(queue.now(), 0.0);
  queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
  queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 6.0);
}

TEST(EventQueue, ScheduleIsRelativeToNow) {
  EventQueue queue;
  queue.schedule(4.0, 0, 1);
  queue.pop();  // now = 4
  queue.schedule(1.5, 0, 2);
  const Event event = queue.pop();
  EXPECT_DOUBLE_EQ(event.time, 5.5);
}

TEST(EventQueue, SeqIsMonotoneAcrossScheduleCalls) {
  EventQueue queue;
  const std::uint64_t a = queue.schedule(1.0, 0, 0);
  const std::uint64_t b = queue.schedule(0.5, 0, 0);
  const std::uint64_t c = queue.schedule_at(9.0, 0, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(EventQueue, RejectsPastAndInvalidTimes) {
  EventQueue queue;
  queue.schedule_at(5.0, 0, 0);
  queue.pop();  // now = 5
  EXPECT_THROW(queue.schedule_at(4.9, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(-1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(std::nan(""), 0, 0), std::invalid_argument);
  EXPECT_NO_THROW(queue.schedule_at(5.0, 0, 0));  // "now" itself is fine
}

TEST(EventQueue, PeekDoesNotRemoveOrAdvance) {
  EventQueue queue;
  queue.schedule_at(3.0, 7, 42);
  const Event& head = queue.peek();
  EXPECT_EQ(head.actor, 42u);
  EXPECT_EQ(head.kind, 7u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.now(), 0.0);
}

TEST(EventQueue, EmptyPeekAndPopThrow) {
  EventQueue queue;
  EXPECT_THROW(queue.peek(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
}

TEST(EventQueue, ResetClearsEventsAndRewindsClockButNotSeq) {
  EventQueue queue;
  const std::uint64_t before = queue.schedule_at(2.0, 0, 0);
  queue.pop();
  queue.schedule_at(9.0, 0, 0);
  queue.reset();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 0.0);
  // seq keeps counting so pre- and post-reset events never collide.
  EXPECT_GT(queue.schedule_at(1.0, 0, 0), before);
}

TEST(EventQueue, DeterministicPopSequence) {
  // The pop sequence is a pure function of the push sequence: replaying
  // an interleaved schedule (including pushes between pops) yields the
  // identical event stream.
  const auto run = [] {
    EventQueue queue;
    std::vector<std::pair<double, std::uint64_t>> seen;
    for (std::uint64_t i = 0; i < 20; ++i) {
      queue.schedule_at(static_cast<double>((i * 7) % 5), 0, i);
    }
    for (int step = 0; step < 30; ++step) {
      const Event event = queue.pop();
      seen.emplace_back(event.time, event.seq);
      if (step < 10) {
        queue.schedule(static_cast<double>((step * 3) % 4), 0, 100 + step);
      }
    }
    return seen;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventQueue, ScheduleValidatesNegativeAndNanDelays) {
  // Regression: `schedule` documents delay >= 0 and must reject bad
  // delays like schedule_at does — a negative or NaN delay accepted here
  // would corrupt heap ordering and rewind now().
  EventQueue queue;
  queue.schedule(10.0, 0, 0);
  queue.pop();  // now = 10
  EXPECT_THROW(queue.schedule(-0.5, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(-1e-300, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(std::nan(""), 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(-std::numeric_limits<double>::infinity(), 0, 0),
               std::invalid_argument);
  // Nothing slipped in, the clock did not move.
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
  EXPECT_NO_THROW(queue.schedule(0.0, 0, 0));  // zero delay is legal
}

TEST(EventQueue, ScheduleBulkMatchesPerEventSchedule) {
  // schedule_bulk must assign the same (time, seq) keys as a loop of
  // schedule() calls, so the pop sequences are identical.
  const std::vector<PendingEvent> events{
      {.delay = 3.0, .kind = 1, .actor = 10},
      {.delay = 1.0, .kind = 2, .actor = 11},
      {.delay = 3.0, .kind = 3, .actor = 12},  // time tie with entry 0
      {.delay = 0.0, .kind = 4, .actor = 13},
  };
  EventQueue loop_queue;
  EventQueue bulk_queue;
  loop_queue.schedule(5.0, 0, 0);
  bulk_queue.schedule(5.0, 0, 0);
  for (const PendingEvent& event : events) {
    loop_queue.schedule(event.delay, event.kind, event.actor);
  }
  const std::uint64_t first = bulk_queue.schedule_bulk(events);
  EXPECT_EQ(first, 1u);  // seq 0 went to the pre-scheduled event

  while (!loop_queue.empty()) {
    const Event a = loop_queue.pop();
    const Event b = bulk_queue.pop();
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.actor, b.actor);
  }
  EXPECT_TRUE(bulk_queue.empty());
}

TEST(EventQueue, ScheduleBulkValidatesAllOrNothing) {
  EventQueue queue;
  const std::vector<PendingEvent> bad{
      {.delay = 1.0, .kind = 0, .actor = 0},
      {.delay = -2.0, .kind = 0, .actor = 1},
  };
  EXPECT_THROW(queue.schedule_bulk(bad), std::invalid_argument);
  EXPECT_TRUE(queue.empty());  // the valid prefix was not scheduled
  const std::vector<PendingEvent> nan_delay{
      {.delay = std::nan(""), .kind = 0, .actor = 0}};
  EXPECT_THROW(queue.schedule_bulk(nan_delay), std::invalid_argument);
  EXPECT_EQ(queue.schedule_bulk({}), 0u);  // empty bulk is a no-op
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PopBatchDrainsExactlyTheEarliestTimestamp) {
  EventQueue queue;
  queue.schedule_at(2.0, 0, 1);
  queue.schedule_at(1.0, 0, 2);
  queue.schedule_at(1.0, 0, 3);
  queue.schedule_at(3.0, 0, 4);
  queue.schedule_at(1.0, 0, 5);

  std::vector<Event> batch;
  queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 3u);
  // Insertion (seq) order within the shared timestamp.
  EXPECT_EQ(batch[0].actor, 2u);
  EXPECT_EQ(batch[1].actor, 3u);
  EXPECT_EQ(batch[2].actor, 5u);
  EXPECT_DOUBLE_EQ(queue.now(), 1.0);
  EXPECT_EQ(queue.size(), 2u);

  queue.pop_batch(batch);  // reuses (and clears) the out vector
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].actor, 1u);

  queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].actor, 4u);
  EXPECT_THROW(queue.pop_batch(batch), std::logic_error);
}

TEST(EventQueue, PopBatchReplaysThePerEventPopSequence) {
  // Determinism contract for the batched engine loops: consuming the
  // queue via pop_batch — *including* schedules interleaved mid-batch,
  // as the engines do — yields the identical (time, seq, kind, actor)
  // stream as one-at-a-time pop.  Schedule times are quantized so time
  // ties (the interesting case) are common.
  const auto feed = [](EventQueue& queue, std::uint64_t i) {
    util::Rng rng(900 + i);
    std::vector<PendingEvent> burst(1 + rng.uniform_index(4));
    for (PendingEvent& event : burst) {
      event.delay = static_cast<double>(rng.uniform_index(3));
      event.kind = rng.uniform_index(3);
      event.actor = i;
    }
    queue.schedule_bulk(burst);
  };

  const auto run_single = [&] {
    EventQueue queue;
    std::vector<Event> seen;
    for (std::uint64_t i = 0; i < 16; ++i) feed(queue, i);
    std::size_t handled = 0;
    while (!queue.empty()) {
      const Event event = queue.pop();
      seen.push_back(event);
      if (handled < 40) feed(queue, 100 + handled);
      ++handled;
    }
    return seen;
  };
  const auto run_batched = [&] {
    EventQueue queue;
    std::vector<Event> seen;
    std::vector<Event> batch;
    for (std::uint64_t i = 0; i < 16; ++i) feed(queue, i);
    std::size_t handled = 0;
    while (!queue.empty()) {
      queue.pop_batch(batch);
      for (const Event& event : batch) {
        seen.push_back(event);
        if (handled < 40) feed(queue, 100 + handled);
        ++handled;
      }
    }
    return seen;
  };

  const std::vector<Event> single = run_single();
  const std::vector<Event> batched = run_batched();
  ASSERT_EQ(single.size(), batched.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].time, batched[i].time) << i;
    EXPECT_EQ(single[i].seq, batched[i].seq) << i;
    EXPECT_EQ(single[i].kind, batched[i].kind) << i;
    EXPECT_EQ(single[i].actor, batched[i].actor) << i;
  }
}

TEST(EventQueue, PopUntilDrainsHorizonInOrder) {
  EventQueue queue;
  for (std::uint64_t i = 0; i < 10; ++i) {
    queue.schedule_at(static_cast<double>((i * 3) % 7), 0, i);
  }
  std::vector<Event> out;
  queue.pop_until(3.0, out);  // inclusive horizon
  ASSERT_EQ(out.size(), 6u);  // times 0,0,1,2,3,3
  for (std::size_t i = 1; i < out.size(); ++i) {
    const bool ordered =
        out[i - 1].time < out[i].time ||
        (out[i - 1].time == out[i].time && out[i - 1].seq < out[i].seq);
    EXPECT_TRUE(ordered) << i;
  }
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  queue.pop_until(2.0, out);  // nothing left at or before 2: no-op
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, GeneralizesVirtualClockAdvance) {
  // A single repeatedly-rescheduled actor reduces to VirtualClock: now()
  // is the cumulative sum of the scheduled delays.
  EventQueue queue;
  double expected = 0.0;
  for (double delay : {3.0, 1.5, 0.0, 2.25}) {
    queue.schedule(delay, 0, 0);
    queue.pop();
    expected += delay;
    EXPECT_DOUBLE_EQ(queue.now(), expected);
  }
}

}  // namespace
}  // namespace tifl::sim
