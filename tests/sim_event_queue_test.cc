#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tifl::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.now(), 0.0);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule_at(5.0, /*kind=*/0, /*actor=*/50);
  queue.schedule_at(1.0, 0, 10);
  queue.schedule_at(3.0, 0, 30);
  queue.schedule_at(4.0, 0, 40);
  queue.schedule_at(2.0, 0, 20);

  std::vector<std::uint64_t> actors;
  while (!queue.empty()) actors.push_back(queue.pop().actor);
  EXPECT_EQ(actors, (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, SimultaneousEventsPopInInsertionOrder) {
  // The stable tie-break: equal times resolve by seq, i.e. FIFO.
  EventQueue queue;
  for (std::uint64_t actor = 0; actor < 8; ++actor) {
    queue.schedule_at(7.0, 0, actor);
  }
  queue.schedule_at(3.0, 0, 99);
  for (std::uint64_t actor = 8; actor < 16; ++actor) {
    queue.schedule_at(7.0, 0, actor);
  }

  EXPECT_EQ(queue.pop().actor, 99u);
  for (std::uint64_t actor = 0; actor < 16; ++actor) {
    const Event event = queue.pop();
    EXPECT_EQ(event.actor, actor);
    EXPECT_EQ(event.time, 7.0);
  }
}

TEST(EventQueue, PopAdvancesNow) {
  EventQueue queue;
  queue.schedule_at(2.5, 0, 0);
  queue.schedule_at(6.0, 0, 0);
  EXPECT_EQ(queue.now(), 0.0);
  queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
  queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 6.0);
}

TEST(EventQueue, ScheduleIsRelativeToNow) {
  EventQueue queue;
  queue.schedule(4.0, 0, 1);
  queue.pop();  // now = 4
  queue.schedule(1.5, 0, 2);
  const Event event = queue.pop();
  EXPECT_DOUBLE_EQ(event.time, 5.5);
}

TEST(EventQueue, SeqIsMonotoneAcrossScheduleCalls) {
  EventQueue queue;
  const std::uint64_t a = queue.schedule(1.0, 0, 0);
  const std::uint64_t b = queue.schedule(0.5, 0, 0);
  const std::uint64_t c = queue.schedule_at(9.0, 0, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(EventQueue, RejectsPastAndInvalidTimes) {
  EventQueue queue;
  queue.schedule_at(5.0, 0, 0);
  queue.pop();  // now = 5
  EXPECT_THROW(queue.schedule_at(4.9, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(-1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(std::nan(""), 0, 0), std::invalid_argument);
  EXPECT_NO_THROW(queue.schedule_at(5.0, 0, 0));  // "now" itself is fine
}

TEST(EventQueue, PeekDoesNotRemoveOrAdvance) {
  EventQueue queue;
  queue.schedule_at(3.0, 7, 42);
  const Event& head = queue.peek();
  EXPECT_EQ(head.actor, 42u);
  EXPECT_EQ(head.kind, 7u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.now(), 0.0);
}

TEST(EventQueue, EmptyPeekAndPopThrow) {
  EventQueue queue;
  EXPECT_THROW(queue.peek(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
}

TEST(EventQueue, ResetClearsEventsAndRewindsClockButNotSeq) {
  EventQueue queue;
  const std::uint64_t before = queue.schedule_at(2.0, 0, 0);
  queue.pop();
  queue.schedule_at(9.0, 0, 0);
  queue.reset();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 0.0);
  // seq keeps counting so pre- and post-reset events never collide.
  EXPECT_GT(queue.schedule_at(1.0, 0, 0), before);
}

TEST(EventQueue, DeterministicPopSequence) {
  // The pop sequence is a pure function of the push sequence: replaying
  // an interleaved schedule (including pushes between pops) yields the
  // identical event stream.
  const auto run = [] {
    EventQueue queue;
    std::vector<std::pair<double, std::uint64_t>> seen;
    for (std::uint64_t i = 0; i < 20; ++i) {
      queue.schedule_at(static_cast<double>((i * 7) % 5), 0, i);
    }
    for (int step = 0; step < 30; ++step) {
      const Event event = queue.pop();
      seen.emplace_back(event.time, event.seq);
      if (step < 10) {
        queue.schedule(static_cast<double>((step * 3) % 4), 0, 100 + step);
      }
    }
    return seen;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventQueue, GeneralizesVirtualClockAdvance) {
  // A single repeatedly-rescheduled actor reduces to VirtualClock: now()
  // is the cumulative sum of the scheduled delays.
  EventQueue queue;
  double expected = 0.0;
  for (double delay : {3.0, 1.5, 0.0, 2.25}) {
    queue.schedule(delay, 0, 0);
    queue.pop();
    expected += delay;
    EXPECT_DOUBLE_EQ(queue.now(), expected);
  }
}

}  // namespace
}  // namespace tifl::sim
