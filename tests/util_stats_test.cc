#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/histogram.h"
#include "util/rng.h"

namespace tifl::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStat s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_NEAR(s.variance(), 37.2, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  Rng rng(5);
  RunningStat combined, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    combined.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Mape, MatchesPaperDefinition) {
  // Eq. 7: |est - act| / act * 100.
  EXPECT_DOUBLE_EQ(mape_percent(46242.0, 44977.0),
                   std::abs(46242.0 - 44977.0) / 44977.0 * 100.0);
  EXPECT_NEAR(mape_percent(46242.0, 44977.0), 2.8125, 0.01);
}

TEST(Mape, ZeroActualIsInfUnlessEstimateExact) {
  // A nonzero estimate of a zero actual is infinitely wrong — returning 0
  // here (the old behavior) reported a perfectly wrong estimator as
  // perfect.
  EXPECT_TRUE(std::isinf(mape_percent(5.0, 0.0)));
  EXPECT_GT(mape_percent(5.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(mape_percent(-5.0, 0.0)));
  EXPECT_EQ(mape_percent(0.0, 0.0), 0.0);
}

TEST(Mape, ExactEstimateIsZero) { EXPECT_EQ(mape_percent(7.0, 7.0), 0.0); }

TEST(SpanStats, SumMeanStddev) {
  const std::vector<double> xs{2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(sum(xs), 20.0);
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(20.0 / 3.0), 1e-12);
}

TEST(SpanStats, EmptyInputs) {
  const std::vector<double> empty;
  EXPECT_EQ(sum(empty), 0.0);
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(stddev(empty), 0.0);
}

TEST(Percentile, KnownQuartiles) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Percentile, SelectionMatchesSortBasedDefinitionBitForBit) {
  // The nth_element implementation must reproduce the historical
  // sort-then-interpolate values exactly: same order statistics, same
  // interpolation, bit-identical doubles — on unsorted data with ties.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(1 + static_cast<std::size_t>(rng.uniform_index(400)));
    for (double& x : xs) {
      x = trial % 2 ? std::floor(rng.normal(0.0, 3.0)) /*heavy ties*/
                    : rng.lognormal(0.0, 1.0);
    }
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
      const double rank =
          p / 100.0 * static_cast<double>(sorted.size() - 1);
      const std::size_t lo = static_cast<std::size_t>(rank);
      const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
      const double frac = rank - static_cast<double>(lo);
      const double expected =
          sorted[lo] + frac * (sorted[hi] - sorted[lo]);
      EXPECT_EQ(percentile(xs, p), expected) << "p=" << p;
    }
  }
}

TEST(ArgMinMax, Basic) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.5, 9.0};
  EXPECT_EQ(argmin(xs), 1u);
  EXPECT_EQ(argmax(xs), 4u);
  EXPECT_EQ(argmin(std::vector<double>{}), 0u);
}

TEST(Normalized, SumsToOne) {
  const std::vector<double> out = normalized({2.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(out[0], 0.2);
  EXPECT_DOUBLE_EQ(out[1], 0.3);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(Normalized, AllZeroBecomesUniform) {
  const std::vector<double> out = normalized({0.0, 0.0, 0.0, 0.0});
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(Normalized, MixedSignClampsToProbabilities) {
  // Mixed-sign weights with a positive total used to divide through and
  // emit negative "probabilities"; negatives must clamp to 0 first.
  const std::vector<double> out = normalized({3.0, -1.0, 1.0});
  EXPECT_DOUBLE_EQ(out[0], 0.75);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 0.25);
  double total = 0.0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(Normalized, AllNegativeBecomesUniform) {
  const std::vector<double> out = normalized({-2.0, -3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

// --- histogram -------------------------------------------------------------

TEST(Histogram, EqualWidthEdgesAndCounts) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  Histogram h(xs, 4, BinningMode::kEqualWidth);
  ASSERT_EQ(h.bin_count(), 4u);
  ASSERT_EQ(h.edges().size(), 5u);
  EXPECT_DOUBLE_EQ(h.edges().front(), 0.0);
  EXPECT_DOUBLE_EQ(h.edges().back(), 7.0);
  std::size_t total = 0;
  for (std::size_t b = 0; b < 4; ++b) total += h.count(b);
  EXPECT_EQ(total, xs.size());
}

TEST(Histogram, QuantileBinsAreBalanced) {
  Rng rng(3);
  std::vector<double> xs(1000);
  for (double& x : xs) x = rng.lognormal(0.0, 1.0);  // heavy skew
  Histogram h(xs, 5, BinningMode::kQuantile);
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_NEAR(static_cast<double>(h.count(b)), 200.0, 1.0) << "bin " << b;
  }
}

TEST(Histogram, EqualWidthSkewedDataUnbalanced) {
  // Sanity check the two modes actually differ on skewed data.
  Rng rng(4);
  std::vector<double> xs(1000);
  for (double& x : xs) x = rng.lognormal(0.0, 1.0);
  Histogram h(xs, 5, BinningMode::kEqualWidth);
  EXPECT_GT(h.count(0), 600u);  // the long tail packs the first bin
}

TEST(Histogram, BinOfClampsOutOfRange) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  Histogram h(xs, 2, BinningMode::kEqualWidth);
  EXPECT_EQ(h.bin_of(-100.0), 0u);
  EXPECT_EQ(h.bin_of(100.0), 1u);
}

TEST(Histogram, AllValuesEqualStillValid) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  Histogram h(xs, 3, BinningMode::kQuantile);
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.count(b);
  EXPECT_EQ(total, 3u);
}

TEST(Histogram, ThrowsOnEmptyOrZeroBins) {
  const std::vector<double> empty;
  EXPECT_THROW(Histogram(empty, 3, BinningMode::kEqualWidth),
               std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(Histogram(xs, 0, BinningMode::kEqualWidth),
               std::invalid_argument);
}

TEST(Histogram, SingleBinHoldsEverything) {
  const std::vector<double> xs{1.0, 5.0, 9.0};
  Histogram h(xs, 1, BinningMode::kQuantile);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.bin_of(5.0), 0u);
}

TEST(Histogram, PercentileEndpointsAreEdges) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  Histogram h(xs, 2, BinningMode::kEqualWidth);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.edges().front());
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.edges().back());
  // Out-of-range quantiles clamp rather than extrapolate.
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.edges().front());
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.edges().back());
}

TEST(Histogram, PercentileInterpolatesInsideBin) {
  // 8 uniform samples over [0, 8) in 4 bins of 2: the distribution is
  // uniform, so quantiles are (near) linear in q.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  Histogram h(xs, 4, BinningMode::kEqualWidth);
  const double lo = h.edges().front(), hi = h.edges().back();
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(h.percentile(q), lo + q * (hi - lo), (hi - lo) / 4.0)
        << "q=" << q;
  }
  // Monotone in q.
  double prev = h.percentile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    EXPECT_GE(h.percentile(q), prev);
    prev = h.percentile(q);
  }
}

TEST(Histogram, PercentileSingleSample) {
  const std::vector<double> xs{42.0};
  Histogram h(xs, 3, BinningMode::kEqualWidth);
  // Degenerate range (the constructor widens it by an epsilon): every
  // quantile collapses to the sample up to that widening.
  EXPECT_NEAR(h.percentile(0.0), 42.0, 1e-6);
  EXPECT_NEAR(h.percentile(0.5), 42.0, 1e-6);
  EXPECT_NEAR(h.percentile(1.0), 42.0, 1e-6);
  EXPECT_GE(h.percentile(0.5), h.edges().front());
  EXPECT_LE(h.percentile(0.5), h.edges().back());
}

TEST(Histogram, PercentileNegativeValues) {
  const std::vector<double> xs{-8.0, -4.0, -2.0, -1.0};
  Histogram h(xs, 2, BinningMode::kQuantile);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), -8.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), -1.0);
  const double median = h.percentile(0.5);
  EXPECT_GE(median, -8.0);
  EXPECT_LE(median, -1.0);
}

// --- hdr log-linear buckets (obs::Histo geometry) ---------------------------

TEST(HdrBuckets, IndexIsMonotoneAndTotal) {
  // Monotone over a wide sweep, and every value lands in a valid bucket.
  double prev_value = 0.0;
  int prev_index = hdr::bucket_index(0.0);
  EXPECT_EQ(prev_index, 0);
  for (double v = 1e-12; v < 1e12; v *= 1.7) {
    const int index = hdr::bucket_index(v);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, hdr::kBucketCount);
    EXPECT_GE(index, prev_index) << "v=" << v << " prev=" << prev_value;
    prev_index = index;
    prev_value = v;
  }
}

TEST(HdrBuckets, ValueFallsInsideItsBucketRange) {
  for (double v : {1e-9, 3.7e-5, 0.5, 1.0, 2.0, 9.99, 10.0, 123.0, 8.8e8}) {
    const int b = hdr::bucket_index(v);
    EXPECT_GE(v, hdr::bucket_lower(b)) << "v=" << v;
    EXPECT_LT(v, hdr::bucket_upper(b)) << "v=" << v;
  }
}

TEST(HdrBuckets, UnderflowAndOverflowBuckets) {
  // Zero, negatives and NaN all land in the underflow bucket; huge values
  // land in the terminal bucket with an infinite upper edge.
  EXPECT_EQ(hdr::bucket_index(0.0), 0);
  EXPECT_EQ(hdr::bucket_index(-5.0), 0);
  EXPECT_EQ(hdr::bucket_index(std::nan("")), 0);
  EXPECT_EQ(hdr::bucket_index(1e-10), 0);
  EXPECT_EQ(hdr::bucket_index(1e9), hdr::kBucketCount - 1);
  EXPECT_EQ(hdr::bucket_index(1e300), hdr::kBucketCount - 1);
  EXPECT_TRUE(std::isinf(hdr::bucket_upper(hdr::kBucketCount - 1)));
  EXPECT_DOUBLE_EQ(hdr::bucket_lower(0), 0.0);
}

TEST(HdrBuckets, LeadingDigitSubBuckets) {
  // Within a decade, the sub-bucket is the leading digit: 1.x and 1.99
  // share a bucket; 2.0 starts the next one.
  EXPECT_EQ(hdr::bucket_index(1.0), hdr::bucket_index(1.99));
  EXPECT_NE(hdr::bucket_index(1.99), hdr::bucket_index(2.0));
  EXPECT_EQ(hdr::bucket_index(2.0), hdr::bucket_index(2.5));
  // Decade boundary: 9.99 and 10.0 differ.
  EXPECT_NE(hdr::bucket_index(9.99), hdr::bucket_index(10.0));
}

}  // namespace
}  // namespace tifl::util
