#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "nn/checkpoint.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tifl::nn {
namespace {

using tensor::Tensor;

// --- SoftmaxCrossEntropy -------------------------------------------------------

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits({2, 4}, 0.0f);
  const std::vector<std::int32_t> labels{0, 3};
  SoftmaxCrossEntropy loss;
  const LossResult r = loss.compute(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Tensor logits({1, 3}, std::vector<float>{20.0f, 0.0f, 0.0f});
  const std::vector<std::int32_t> labels{0};
  SoftmaxCrossEntropy loss;
  const LossResult r = loss.compute(logits, labels);
  EXPECT_LT(r.loss, 1e-4);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST(Loss, AccuracyCountsArgmaxHits) {
  Tensor logits({4, 2},
                std::vector<float>{2, 1,   // -> 0 (correct)
                                   1, 2,   // -> 1 (correct)
                                   2, 1,   // -> 0 (wrong, label 1)
                                   1, 2}); // -> 1 (wrong, label 0)
  const std::vector<std::int32_t> labels{0, 1, 1, 0};
  SoftmaxCrossEntropy loss;
  EXPECT_DOUBLE_EQ(loss.compute(logits, labels).accuracy, 0.5);
}

TEST(Loss, GradientIsSoftmaxMinusOnehotOverBatch) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, 0, 0, 0});
  const std::vector<std::int32_t> labels{2, 0};
  SoftmaxCrossEntropy loss;
  const LossResult r = loss.compute(logits, labels, /*with_grad=*/true);
  // Row sums of the gradient are zero (softmax sums to 1, onehot sums to 1).
  for (std::int64_t row = 0; row < 2; ++row) {
    float s = 0.0f;
    for (std::int64_t c = 0; c < 3; ++c) s += r.dlogits.at(row, c);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
  // Label entries are negative, others positive.
  EXPECT_LT(r.dlogits.at(0, 2), 0.0f);
  EXPECT_GT(r.dlogits.at(0, 0), 0.0f);
  EXPECT_LT(r.dlogits.at(1, 0), 0.0f);
}

TEST(Loss, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<std::int32_t> labels{1, 4, 0};
  SoftmaxCrossEntropy loss;
  const LossResult r = loss.compute(logits, labels, /*with_grad=*/true);
  const double h = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); i += 2) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(h);
    const double fp = loss.compute(logits, labels, false).loss;
    logits[i] = saved - static_cast<float>(h);
    const double fm = loss.compute(logits, labels, false).loss;
    logits[i] = saved;
    EXPECT_NEAR(r.dlogits[i], (fp - fm) / (2.0 * h), 5e-3) << "logit " << i;
  }
}

TEST(Loss, EvalOnlySkipsGradient) {
  Tensor logits({1, 2}, std::vector<float>{1, 2});
  const std::vector<std::int32_t> labels{0};
  SoftmaxCrossEntropy loss;
  EXPECT_TRUE(loss.compute(logits, labels, false).dlogits.empty());
}

TEST(Loss, RejectsBadInputs) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  EXPECT_THROW(loss.compute(logits, std::vector<std::int32_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(loss.compute(logits, std::vector<std::int32_t>{0, 5}),
               std::out_of_range);
  Tensor bad({6});
  EXPECT_THROW(loss.compute(bad, std::vector<std::int32_t>{0}),
               std::invalid_argument);
}

// --- Optimizers ----------------------------------------------------------------

TEST(Sgd, SingleStepIsLrTimesGrad) {
  Tensor w({3}, std::vector<float>{1, 1, 1});
  Tensor g({3}, std::vector<float>{1, -2, 0.5f});
  Sgd opt(0.1);
  std::vector<Tensor*> params{&w}, grads{&g};
  opt.step(params, grads);
  EXPECT_FLOAT_EQ(w[0], 0.9f);
  EXPECT_FLOAT_EQ(w[1], 1.2f);
  EXPECT_FLOAT_EQ(w[2], 0.95f);
}

TEST(Sgd, MismatchedSpansThrow) {
  Tensor w({1});
  Sgd opt(0.1);
  std::vector<Tensor*> params{&w}, grads{};
  EXPECT_THROW(opt.step(params, grads), std::invalid_argument);
}

TEST(RmsProp, ConvergesOnQuadraticFasterThanPlainGradient) {
  // Minimize f(w) = 0.5 * sum(a_i * w_i^2) with wildly scaled curvatures;
  // RMSProp's per-coordinate scaling must drive both coordinates down.
  Tensor w({2}, std::vector<float>{5.0f, 5.0f});
  Tensor g({2});
  const float a0 = 100.0f, a1 = 0.01f;
  RmsProp opt(0.1);
  std::vector<Tensor*> params{&w}, grads{&g};
  for (int step = 0; step < 300; ++step) {
    g[0] = a0 * w[0];
    g[1] = a1 * w[1];
    opt.step(params, grads);
  }
  EXPECT_LT(std::abs(w[0]), 0.1f);
  EXPECT_LT(std::abs(w[1]), 0.5f);
}

TEST(RmsProp, FirstStepMagnitudeIsLrOverSqrtOneMinusRho) {
  // With zero cache, update = lr * g / (sqrt((1-rho) g^2) + eps).
  Tensor w({1}, std::vector<float>{0.0f});
  Tensor g({1}, std::vector<float>{2.0f});
  RmsProp opt(0.01, 0.9);
  std::vector<Tensor*> params{&w}, grads{&g};
  opt.step(params, grads);
  EXPECT_NEAR(w[0], -0.01 / std::sqrt(0.1), 1e-4);
}

TEST(MomentumSgd, AcceleratesAlongPersistentGradient) {
  // With a constant gradient, velocity accumulates: after k steps the
  // update magnitude approaches lr * g / (1 - mu).
  Tensor w({1}, std::vector<float>{0.0f});
  Tensor g({1}, std::vector<float>{1.0f});
  MomentumSgd opt(0.1, 0.5);
  std::vector<Tensor*> params{&w}, grads{&g};
  // Step 1: v = 1, w -= 0.1 -> -0.1. Step 2: v = 1.5, w -= 0.15 -> -0.25.
  opt.step(params, grads);
  EXPECT_NEAR(w[0], -0.1f, 1e-6f);
  opt.step(params, grads);
  EXPECT_NEAR(w[0], -0.25f, 1e-6f);
}

TEST(MomentumSgd, ZeroMomentumMatchesPlainSgd) {
  Tensor w1({2}, std::vector<float>{1.0f, -1.0f});
  Tensor w2 = w1;
  Tensor g({2}, std::vector<float>{0.3f, 0.7f});
  MomentumSgd momentum(0.05, 0.0);
  Sgd plain(0.05);
  std::vector<Tensor*> p1{&w1}, p2{&w2}, gs{&g};
  for (int i = 0; i < 5; ++i) {
    momentum.step(p1, gs);
    plain.step(p2, gs);
  }
  EXPECT_EQ(tensor::max_abs_diff(w1, w2), 0.0f);
}

TEST(MomentumSgd, ConvergesOnQuadratic) {
  Tensor w({1}, std::vector<float>{10.0f});
  Tensor g({1});
  MomentumSgd opt(0.05, 0.9);
  std::vector<Tensor*> params{&w}, grads{&g};
  for (int step = 0; step < 200; ++step) {
    g[0] = w[0];  // f(w) = w^2 / 2
    opt.step(params, grads);
  }
  EXPECT_LT(std::abs(w[0]), 0.05f);
}

TEST(Optimizer, LrDecay) {
  Sgd opt(0.01);
  opt.decay_lr(0.995);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.00995);
  opt.set_lr(0.5);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.5);
}

TEST(OptimizerConfig, MakeProducesConfiguredKind) {
  OptimizerConfig config;
  config.kind = OptimizerConfig::Kind::kSgd;
  auto sgd = config.make(0.02);
  EXPECT_DOUBLE_EQ(sgd->lr(), 0.02);
  config.kind = OptimizerConfig::Kind::kRmsProp;
  auto rms = config.make(0.03);
  EXPECT_DOUBLE_EQ(rms->lr(), 0.03);
  config.kind = OptimizerConfig::Kind::kMomentumSgd;
  auto momentum = config.make(0.04);
  EXPECT_DOUBLE_EQ(momentum->lr(), 0.04);
}

// --- checkpoints ---------------------------------------------------------------

TEST(Checkpoint, RoundTripsExactBits) {
  const std::string path = ::testing::TempDir() + "tifl_ckpt_test.bin";
  util::Rng rng(1);
  std::vector<float> weights(1000);
  for (float& w : weights) w = static_cast<float>(rng.normal());
  save_weights(path, weights);
  EXPECT_EQ(load_weights(path), weights);
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoresModelBehaviour) {
  const std::string path = ::testing::TempDir() + "tifl_ckpt_model.bin";
  Sequential trained = mlp(8, 6, 3, 1);
  save_weights(path, trained.weights());
  Sequential restored = mlp(8, 6, 3, 2);  // different init
  restored.set_weights(load_weights(path));
  util::Rng rng(3);
  const Tensor x = Tensor::randn({4, 8}, rng);
  PassContext ctx{};
  EXPECT_EQ(tensor::max_abs_diff(trained.forward(x, ctx),
                                 restored.forward(x, ctx)),
            0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptyWeightsAllowed) {
  const std::string path = ::testing::TempDir() + "tifl_ckpt_empty.bin";
  save_weights(path, {});
  EXPECT_TRUE(load_weights(path).empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_weights("/nonexistent/tifl.bin"), std::runtime_error);
}

TEST(Checkpoint, CorruptMagicThrows) {
  const std::string path = ::testing::TempDir() + "tifl_ckpt_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAWGT1garbage";
  }
  EXPECT_THROW(load_weights(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedPayloadThrows) {
  const std::string path = ::testing::TempDir() + "tifl_ckpt_trunc.bin";
  save_weights(path, std::vector<float>(100, 1.0f));
  // Chop the file short.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_weights(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tifl::nn
