#include "core/profiler.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace tifl::core {
namespace {

using testing::tiny_federation;
using testing::TinyFederation;

TEST(Profiler, MeanLatencyMatchesExpectationWithoutJitter) {
  TinyFederation fed = tiny_federation();  // jitter_sigma = 0
  ProfilerConfig config;
  config.sync_rounds = 3;
  config.tmax = 1e6;
  util::Rng rng(1);
  const ProfileResult result =
      profile_clients(fed.clients, fed.latency, config, rng);
  ASSERT_EQ(result.mean_latency.size(), fed.clients.size());
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    const double expected = fed.latency.expected_latency(
        fed.clients[c].resource(), fed.clients[c].train_size(), 1);
    EXPECT_NEAR(result.mean_latency[c], expected, 1e-9);
    EXPECT_NEAR(result.accumulated_latency[c], 3.0 * expected, 1e-9);
    EXPECT_FALSE(result.dropout[c]);
  }
  EXPECT_EQ(result.dropout_count(), 0u);
}

TEST(Profiler, SlowClientsAreChargedTmax) {
  TinyFederation fed = tiny_federation();
  // Find the slowest client's expected latency and set tmax below it.
  double slowest = 0.0;
  for (const auto& client : fed.clients) {
    slowest = std::max(slowest, fed.latency.expected_latency(
                                    client.resource(), client.train_size(), 1));
  }
  ProfilerConfig config;
  config.sync_rounds = 4;
  config.tmax = slowest * 0.9;
  util::Rng rng(2);
  const ProfileResult result =
      profile_clients(fed.clients, fed.latency, config, rng);
  bool any_clamped = false;
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    EXPECT_LE(result.mean_latency[c], config.tmax + 1e-9);
    any_clamped = any_clamped ||
                  result.accumulated_latency[c] == 4.0 * config.tmax;
  }
  EXPECT_TRUE(any_clamped);
}

TEST(Profiler, TimedOutEveryRoundMeansDropout) {
  TinyFederation fed = tiny_federation();
  fed.clients[3].resource().unavailable = true;  // never responds
  ProfilerConfig config;
  config.sync_rounds = 3;
  config.tmax = 1e5;
  util::Rng rng(3);
  const ProfileResult result =
      profile_clients(fed.clients, fed.latency, config, rng);
  EXPECT_TRUE(result.dropout[3]);
  EXPECT_EQ(result.dropout_count(), 1u);
  // The dropout accumulated exactly sync_rounds * tmax.
  EXPECT_DOUBLE_EQ(result.accumulated_latency[3], 3.0 * 1e5);
  // Everyone else survived.
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    if (c != 3) {
      EXPECT_FALSE(result.dropout[c]);
    }
  }
}

TEST(Profiler, ProfilingTimeIsSumOfRoundMaxima) {
  TinyFederation fed = tiny_federation();
  ProfilerConfig config;
  config.sync_rounds = 2;
  config.tmax = 1e6;
  util::Rng rng(4);
  const ProfileResult result =
      profile_clients(fed.clients, fed.latency, config, rng);
  // Zero jitter: every profiling round is bounded by the same slowest
  // client, so profiling_time = sync_rounds * max latency.
  double slowest = 0.0;
  for (const auto& client : fed.clients) {
    slowest = std::max(slowest, fed.latency.expected_latency(
                                    client.resource(), client.train_size(), 1));
  }
  EXPECT_NEAR(result.profiling_time, 2.0 * slowest, 1e-9);
}

TEST(Profiler, JitteredProfilingStillSeparatesGroups) {
  TinyFederation fed = tiny_federation(20);
  for (auto& client : fed.clients) client.resource().jitter_sigma = 0.1;
  ProfilerConfig config;
  config.sync_rounds = 5;
  config.tmax = 1e6;
  util::Rng rng(5);
  const ProfileResult result =
      profile_clients(fed.clients, fed.latency, config, rng);
  // The fastest resource group (4 CPUs, clients 0..3) must profile faster
  // than the slowest (0.1 CPUs, clients 16..19) despite jitter.
  for (std::size_t fast = 0; fast < 4; ++fast) {
    for (std::size_t slow = 16; slow < 20; ++slow) {
      EXPECT_LT(result.mean_latency[fast], result.mean_latency[slow]);
    }
  }
}

TEST(Profiler, ConfigValidation) {
  TinyFederation fed = tiny_federation();
  util::Rng rng(6);
  ProfilerConfig bad_rounds;
  bad_rounds.sync_rounds = 0;
  EXPECT_THROW(profile_clients(fed.clients, fed.latency, bad_rounds, rng),
               std::invalid_argument);
  ProfilerConfig bad_tmax;
  bad_tmax.tmax = 0.0;
  EXPECT_THROW(profile_clients(fed.clients, fed.latency, bad_tmax, rng),
               std::invalid_argument);
  EXPECT_THROW(profile_clients({}, fed.latency, ProfilerConfig{}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace tifl::core
