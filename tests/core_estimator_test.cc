#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/static_policy.h"
#include "core/system.h"
#include "test_helpers.h"

namespace tifl::core {
namespace {

TEST(Estimator, Eq6ExactOnKnownInputs) {
  // L_all = sum(L_tier_i * P_i) * R.
  const std::vector<double> latency{10.0, 20.0, 40.0};
  const std::vector<double> probs{0.5, 0.3, 0.2};
  // per-round = 5 + 6 + 8 = 19; 100 rounds -> 1900.
  EXPECT_DOUBLE_EQ(estimate_training_time(latency, probs, 100), 1900.0);
}

TEST(Estimator, DegeneratePolicyIsTierLatencyTimesRounds) {
  const std::vector<double> latency{10.0, 50.0};
  EXPECT_DOUBLE_EQ(
      estimate_training_time(latency, std::vector<double>{0.0, 1.0}, 7),
      350.0);
}

TEST(Estimator, ZeroRoundsIsZero) {
  EXPECT_DOUBLE_EQ(estimate_training_time(std::vector<double>{5.0},
                                          std::vector<double>{1.0}, 0),
                   0.0);
}

TEST(Estimator, SizeMismatchThrows) {
  EXPECT_THROW(estimate_training_time(std::vector<double>{1.0, 2.0},
                                      std::vector<double>{1.0}, 10),
               std::invalid_argument);
}

TEST(Estimator, TierInfoOverloadUsesAvgLatencies) {
  TierInfo tiers;
  tiers.members = {{0}, {1}};
  tiers.avg_latency = {3.0, 7.0};
  EXPECT_DOUBLE_EQ(
      estimate_training_time(tiers, std::vector<double>{0.5, 0.5}, 10),
      50.0);
}

TEST(Estimator, MapeMatchesTable2Definition) {
  // Table 2's "slow" row: estimated 46242, actual 44977 -> 2.76 % (paper
  // rounds to 2 digits).
  EXPECT_NEAR(estimation_mape(46242, 44977), 2.81, 0.1);
  EXPECT_DOUBLE_EQ(estimation_mape(100, 100), 0.0);
}

TEST(Estimator, EndToEndMapeSmallForStaticPolicies) {
  // Table 2's regime: estimate vs engine-measured training time under
  // each static policy.  With mild jitter the MAPE must stay small
  // (the paper reports <= 5.01 %).
  testing::TinyFederation fed = testing::tiny_federation(20);
  for (auto& client : fed.clients) client.resource().jitter_sigma = 0.05;

  SystemConfig config;
  config.num_tiers = 5;
  config.clients_per_round = 3;
  config.engine = testing::tiny_engine_config(40);
  config.engine.eval_every = 50;  // evaluation off the hot path
  config.profiler.tmax = 1e6;
  TiflSystem system(config, testing::tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);

  for (const char* name : {"uniform", "random", "fast", "slow"}) {
    auto policy = system.make_static(name);
    const fl::RunResult result = system.run(*policy);
    const double estimated = system.estimate_time(name);
    const double actual = result.total_time();
    ASSERT_GT(actual, 0.0);
    EXPECT_LT(estimation_mape(estimated, actual), 12.0)
        << name << ": est " << estimated << " vs act " << actual;
  }
}

}  // namespace
}  // namespace tifl::core
