#include "data/dataset.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace tifl::data {
namespace {

Dataset tiny_dataset() {
  // 6 samples, 3 classes, 1x2x2 images with value = label.
  tensor::Tensor features({6, 1, 2, 2});
  std::vector<std::int32_t> labels{0, 1, 2, 0, 1, 2};
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      features[i * 4 + j] = static_cast<float>(labels[i]);
    }
  }
  return Dataset(std::move(features), std::move(labels), 3);
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.dims().channels, 1);
  EXPECT_EQ(d.dims().height, 2);
  EXPECT_EQ(d.dims().flat(), 4);
  EXPECT_EQ(d.label(4), 1);
}

TEST(Dataset, ConstructorValidation) {
  tensor::Tensor bad_rank({4, 4});
  EXPECT_THROW(Dataset(bad_rank, {0, 0, 0, 0}, 2), std::invalid_argument);

  tensor::Tensor ok({2, 1, 2, 2});
  EXPECT_THROW(Dataset(ok, {0}, 2), std::invalid_argument);       // count
  EXPECT_THROW(Dataset(ok, {0, 5}, 2), std::invalid_argument);    // range
  EXPECT_THROW(Dataset(ok, {0, -1}, 2), std::invalid_argument);   // negative
}

TEST(Dataset, GatherPreservesOrderAndValues) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> indices{5, 0, 2};
  const Dataset::Batch batch = d.gather(indices);
  EXPECT_EQ(batch.x.shape(), (tensor::Shape{3, 1, 2, 2}));
  EXPECT_EQ(batch.y, (std::vector<std::int32_t>{2, 0, 2}));
  EXPECT_EQ(batch.x[0], 2.0f);   // first gathered sample has value 2
  EXPECT_EQ(batch.x[4], 0.0f);   // second has value 0
}

TEST(Dataset, GatherOutOfRangeThrows) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> indices{99};
  EXPECT_THROW(d.gather(indices), std::out_of_range);
}

TEST(Dataset, SubsetIsStandaloneDataset) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> indices{1, 3};
  const Dataset s = d.subset(indices);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.num_classes(), 3);
  EXPECT_EQ(s.label(0), 1);
  EXPECT_EQ(s.label(1), 0);
}

TEST(Dataset, IndicesByClass) {
  const Dataset d = tiny_dataset();
  const auto by_class = d.indices_by_class();
  ASSERT_EQ(by_class.size(), 3u);
  EXPECT_EQ(by_class[0], (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(by_class[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(by_class[2], (std::vector<std::size_t>{2, 5}));
}

TEST(Dataset, ClassDistribution) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> indices{0, 1, 2, 3};
  const auto dist = d.class_distribution(indices);
  EXPECT_DOUBLE_EQ(dist[0], 0.5);
  EXPECT_DOUBLE_EQ(dist[1], 0.25);
  EXPECT_DOUBLE_EQ(dist[2], 0.25);
}

TEST(Dataset, ClassDistributionEmptyIndices) {
  const Dataset d = tiny_dataset();
  const auto dist = d.class_distribution(std::vector<std::size_t>{});
  for (double v : dist) EXPECT_EQ(v, 0.0);
}

TEST(Dataset, FeatureSkewAppliesGainAndBias) {
  Dataset d = tiny_dataset();
  const std::vector<std::size_t> indices{1};  // value 1 everywhere
  d.apply_feature_skew(indices, 2.0f, 0.5f);
  const auto batch = d.gather(indices);
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(batch.x[j], 2.5f);
  // Other samples untouched.
  const auto other = d.gather(std::vector<std::size_t>{4});
  EXPECT_FLOAT_EQ(other.x[0], 1.0f);
}

// --- synthetic generator -------------------------------------------------------

TEST(Synthetic, ShapesAndBalancedLabels) {
  SyntheticSpec spec;
  spec.classes = 5;
  spec.dims = ImageDims{2, 6, 6};
  spec.train_samples = 100;
  spec.test_samples = 50;
  const SyntheticData data = make_synthetic(spec);
  EXPECT_EQ(data.train.size(), 100u);
  EXPECT_EQ(data.test.size(), 50u);
  EXPECT_EQ(data.train.dims().channels, 2);
  // Balanced marginal: each class has exactly 20 train samples.
  const auto by_class = data.train.indices_by_class();
  for (const auto& pool : by_class) EXPECT_EQ(pool.size(), 20u);
}

TEST(Synthetic, DeterministicAcrossCalls) {
  SyntheticSpec spec;
  spec.train_samples = 40;
  spec.test_samples = 20;
  const SyntheticData a = make_synthetic(spec);
  const SyntheticData b = make_synthetic(spec);
  EXPECT_EQ(tensor::max_abs_diff(a.train.features(), b.train.features()),
            0.0f);
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

TEST(Synthetic, DifferentSeedsDifferentData) {
  SyntheticSpec a_spec, b_spec;
  a_spec.train_samples = b_spec.train_samples = 40;
  a_spec.test_samples = b_spec.test_samples = 10;
  b_spec.seed = a_spec.seed + 1;
  const SyntheticData a = make_synthetic(a_spec);
  const SyntheticData b = make_synthetic(b_spec);
  EXPECT_GT(tensor::max_abs_diff(a.train.features(), b.train.features()),
            0.1f);
}

TEST(Synthetic, TaskIsLearnableAndTransfersToTest) {
  // A model trained on the synthetic train split must beat chance on the
  // held-out split — the property every accuracy experiment rests on.
  SyntheticSpec spec;
  spec.classes = 4;
  spec.dims = ImageDims{1, 6, 6};
  spec.train_samples = 300;
  spec.test_samples = 200;
  spec.class_sep = 1.2f;
  spec.noise = 0.8f;
  const SyntheticData data = make_synthetic(spec);

  nn::Sequential model = nn::mlp(spec.dims.flat(), 16, spec.classes, 7);
  nn::RmsProp opt(0.01);
  util::Rng rng(8);
  std::vector<std::size_t> all(data.train.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  for (int epoch = 0; epoch < 6; ++epoch) {
    rng.shuffle(all);
    for (std::size_t start = 0; start + 20 <= all.size(); start += 20) {
      const auto batch = data.train.gather(
          std::span<const std::size_t>(all).subspan(start, 20));
      model.train_batch(batch.x, batch.y, opt, rng);
    }
  }
  std::vector<std::size_t> test_all(data.test.size());
  std::iota(test_all.begin(), test_all.end(), std::size_t{0});
  const auto test_batch = data.test.gather(test_all);
  const double acc = model.evaluate(test_batch.x, test_batch.y).accuracy;
  EXPECT_GT(acc, 0.6) << "synthetic task should be well above 0.25 chance";
}

TEST(Synthetic, SpecPresetsScaleGeometryAndSamples) {
  const SyntheticSpec full = cifar_like_spec(1.0);
  EXPECT_EQ(full.dims.height, 32);
  EXPECT_EQ(full.dims.channels, 3);
  EXPECT_EQ(full.train_samples, 50000);

  const SyntheticSpec quarter = cifar_like_spec(0.25);
  EXPECT_EQ(quarter.dims.height, 8);
  // Sample counts shrink as scale^1.5 (slower than pixels' scale^2).
  EXPECT_EQ(quarter.train_samples, 6250);

  const SyntheticSpec femnist = femnist_like_spec(0.5);
  EXPECT_EQ(femnist.classes, 62);
  EXPECT_EQ(femnist.dims.height, 14);
}

TEST(Synthetic, RejectsDegenerateClassCount) {
  SyntheticSpec spec;
  spec.classes = 1;
  EXPECT_THROW(make_synthetic(spec), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::data
