#include "fl/secure_aggregation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fl/aggregator.h"
#include "util/rng.h"

namespace tifl::fl {
namespace {

std::vector<std::vector<float>> random_updates(std::size_t clients,
                                               std::size_t params,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> updates(clients,
                                          std::vector<float>(params));
  for (auto& w : updates) {
    for (float& v : w) v = static_cast<float>(rng.normal());
  }
  return updates;
}

TEST(PairwiseMaskSeed, SymmetricAndRoundDependent) {
  EXPECT_EQ(pairwise_mask_seed(7, 3, 9, 0), pairwise_mask_seed(7, 9, 3, 0));
  EXPECT_NE(pairwise_mask_seed(7, 3, 9, 0), pairwise_mask_seed(7, 3, 9, 1));
  EXPECT_NE(pairwise_mask_seed(7, 3, 9, 0), pairwise_mask_seed(8, 3, 9, 0));
  EXPECT_NE(pairwise_mask_seed(7, 3, 9, 0), pairwise_mask_seed(7, 3, 8, 0));
}

TEST(SecureAggregation, MasksCancelToFedAvgResult) {
  const std::size_t kClients = 6, kParams = 500;
  const auto raw = random_updates(kClients, kParams, 1);
  const std::vector<double> counts{10, 20, 30, 40, 50, 60};
  std::vector<std::size_t> cohort{0, 1, 2, 3, 4, 5};

  std::vector<MaskedUpdate> masked;
  for (std::size_t c = 0; c < kClients; ++c) {
    masked.push_back(
        mask_update(raw[c], counts[c], c, cohort, /*session=*/42,
                    /*round=*/3));
  }
  const std::vector<float> secure = secure_fedavg(masked);

  std::vector<WeightedUpdate> plain;
  for (std::size_t c = 0; c < kClients; ++c) {
    plain.push_back(WeightedUpdate{raw[c], counts[c]});
  }
  const std::vector<float> expected = fedavg(plain);

  ASSERT_EQ(secure.size(), expected.size());
  for (std::size_t i = 0; i < secure.size(); ++i) {
    // Masks are +-64-scale floats; cancellation leaves small fp residue.
    EXPECT_NEAR(secure[i], expected[i], 2e-3f) << "param " << i;
  }
}

TEST(SecureAggregation, IndividualUpdatesAreHidden) {
  const std::size_t kParams = 200;
  const auto raw = random_updates(2, kParams, 2);
  std::vector<std::size_t> cohort{0, 1};
  const MaskedUpdate masked =
      mask_update(raw[0], 10.0, 0, cohort, 7, 0);
  // The masked vector must be dominated by the mask, not the update.
  double diff = 0.0;
  for (std::size_t i = 0; i < kParams; ++i) {
    diff += std::abs(masked.masked_weights[i] - 10.0f * raw[0][i]);
  }
  EXPECT_GT(diff / kParams, kMaskScale / 4.0);
}

TEST(SecureAggregation, SingleClientCohortHasNoMask) {
  const auto raw = random_updates(1, 50, 3);
  std::vector<std::size_t> cohort{4};
  const MaskedUpdate masked = mask_update(raw[0], 5.0, 4, cohort, 7, 0);
  for (std::size_t i = 0; i < raw[0].size(); ++i) {
    EXPECT_FLOAT_EQ(masked.masked_weights[i], 5.0f * raw[0][i]);
  }
}

TEST(SecureAggregation, DifferentRoundsDifferentMasks) {
  const auto raw = random_updates(2, 100, 4);
  std::vector<std::size_t> cohort{0, 1};
  const MaskedUpdate round0 = mask_update(raw[0], 1.0, 0, cohort, 7, 0);
  const MaskedUpdate round1 = mask_update(raw[0], 1.0, 0, cohort, 7, 1);
  EXPECT_NE(round0.masked_weights, round1.masked_weights);
}

TEST(SecureAggregation, WorksWithAnyCohortComposition) {
  // Tiered selection hands arbitrary client-id cohorts to the protocol;
  // the ids need not be contiguous or sorted.
  const auto raw = random_updates(3, 64, 5);
  std::vector<std::size_t> cohort{17, 3, 42};
  std::vector<double> counts{5, 7, 9};
  std::vector<MaskedUpdate> masked;
  for (std::size_t k = 0; k < 3; ++k) {
    masked.push_back(mask_update(raw[k], counts[k], cohort[k], cohort, 9, 2));
  }
  const std::vector<float> secure = secure_fedavg(masked);
  std::vector<WeightedUpdate> plain;
  for (std::size_t k = 0; k < 3; ++k) {
    plain.push_back(WeightedUpdate{raw[k], counts[k]});
  }
  const std::vector<float> expected = fedavg(plain);
  for (std::size_t i = 0; i < secure.size(); ++i) {
    EXPECT_NEAR(secure[i], expected[i], 2e-3f);
  }
}

TEST(SecureAggregation, Validation) {
  const auto raw = random_updates(1, 10, 6);
  std::vector<std::size_t> cohort{0, 1};
  EXPECT_THROW(mask_update(raw[0], 0.0, 0, cohort, 7, 0),
               std::invalid_argument);
  EXPECT_THROW(mask_update(raw[0], 1.0, 9, cohort, 7, 0),
               std::invalid_argument);
  EXPECT_THROW(secure_fedavg({}), std::invalid_argument);
  std::vector<MaskedUpdate> mismatched(2);
  mismatched[0].masked_weights.resize(3);
  mismatched[0].sample_count = 1;
  mismatched[1].masked_weights.resize(4);
  mismatched[1].sample_count = 1;
  EXPECT_THROW(secure_fedavg(mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::fl
