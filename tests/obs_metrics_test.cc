#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace tifl::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetMaxIsHighWaterMark) {
  Gauge g;
  g.set(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Histo, EmptyHistogram) {
  Histo h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_GT(h.min(), 0.0);
  EXPECT_TRUE(std::isinf(h.max()));
  EXPECT_LT(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(Histo, SingleSampleExactExtremes) {
  Histo h;
  h.record(3.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);
  EXPECT_DOUBLE_EQ(h.min(), 3.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  // Percentiles clamp to the exact observed range.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.5);
}

TEST(Histo, NegativeAndZeroLandInUnderflowBucket) {
  Histo h;
  h.record(-2.0);
  h.record(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -2.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  const std::vector<Histo::Bucket> buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].n, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].lo, 0.0);
}

TEST(Histo, PercentilesBracketTheData) {
  Histo h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Log-linear buckets give ~4-11% relative resolution; accept 15%.
  EXPECT_NEAR(h.percentile(0.5), 500.0, 75.0);
  EXPECT_NEAR(h.percentile(0.9), 900.0, 135.0);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 149.0);
  // Monotone in q and clamped to the observed range.
  double prev = h.percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, h.min());
    EXPECT_LE(p, h.max());
    prev = p;
  }
}

TEST(Histo, ResetClearsEverything) {
  Histo h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
  // Recording after reset re-establishes exact extremes.
  h.record(9.0);
  EXPECT_DOUBLE_EQ(h.min(), 9.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Registry, LookupIsStableAndIdempotent) {
  Registry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(r.counter("x").value(), 3u);
  // Distinct kinds with the same name are distinct instruments.
  r.gauge("x").set(1.5);
  EXPECT_EQ(r.counter("x").value(), 3u);
  EXPECT_DOUBLE_EQ(r.gauge("x").value(), 1.5);
}

TEST(Registry, ResetZeroesButKeepsReferences) {
  Registry r;
  Counter& c = r.counter("events");
  Gauge& g = r.gauge("depth");
  Histo& h = r.histogram("latency");
  c.add(7);
  g.set(2.5);
  h.record(1.0);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Cached references still feed the same registry entries.
  c.add(1);
  EXPECT_EQ(r.counter("events").value(), 1u);
}

TEST(Registry, ToJsonIsSortedAndParseable) {
  Registry r;
  r.counter("b.second").add(2);
  r.counter("a.first").add(1);
  r.gauge("z.level").set(0.5);
  r.histogram("m.lat").record(3.0);
  const std::string json = r.to_json();
  // Keys walk in lexicographic order.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  // Deterministic: same values, same bytes.
  EXPECT_EQ(json, r.to_json());
}

TEST(Registry, ConcurrentUpdatesUnderThreadPool) {
  Registry r;
  Counter& hits = r.counter("hits");
  Gauge& high = r.gauge("high");
  Histo& lat = r.histogram("lat");
  constexpr std::size_t kIters = 20000;
  util::ThreadPool pool(4);
  pool.parallel_for(0, kIters, [&](std::size_t i) {
    hits.add();
    high.set_max(static_cast<double>(i));
    lat.record(static_cast<double>(i % 100) + 1.0);
  });
  EXPECT_EQ(hits.value(), kIters);
  EXPECT_DOUBLE_EQ(high.value(), static_cast<double>(kIters - 1));
  EXPECT_EQ(lat.count(), kIters);
  EXPECT_DOUBLE_EQ(lat.min(), 1.0);
  EXPECT_DOUBLE_EQ(lat.max(), 100.0);
  // Gauge::add is a CAS loop: concurrent increments must not lose updates.
  Gauge& sum = r.gauge("sum");
  pool.parallel_for(0, kIters, [&](std::size_t) { sum.add(1.0); });
  EXPECT_DOUBLE_EQ(sum.value(), static_cast<double>(kIters));
}

TEST(Histo, MergeFromMatchesRecordingBothMultisets) {
  Histo direct;
  Histo left;
  Histo right;
  for (int i = 1; i <= 200; ++i) {
    const double v = static_cast<double>(i) * 0.5;
    direct.record(v);
    (i % 2 == 0 ? left : right).record(v);
  }
  left.merge_from(right);
  EXPECT_EQ(left.count(), direct.count());
  EXPECT_DOUBLE_EQ(left.min(), direct.min());
  EXPECT_DOUBLE_EQ(left.max(), direct.max());
  EXPECT_DOUBLE_EQ(left.sum(), direct.sum());
  const auto a = left.buckets();
  const auto b = direct.buckets();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].n, b[i].n);
  }
  // Merging an empty histogram is a no-op, even into an empty target.
  Histo empty;
  left.merge_from(empty);
  EXPECT_EQ(left.count(), direct.count());
  Histo target;
  target.merge_from(empty);
  EXPECT_EQ(target.count(), 0u);
  EXPECT_TRUE(std::isinf(target.min()));
}

TEST(Registry, MergeFromSumsCountersAndHistosMaxesGauges) {
  Registry a;
  Registry b;
  a.counter("events").add(3);
  b.counter("events").add(4);
  b.counter("only_b").add(9);
  a.gauge("depth").set(5.0);
  b.gauge("depth").set(2.0);
  a.histogram("lat").record(1.0);
  b.histogram("lat").record(10.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("events").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 9u);
  EXPECT_DOUBLE_EQ(a.gauge("depth").value(), 5.0);  // high-water, not sum
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("lat").min(), 1.0);
  EXPECT_DOUBLE_EQ(a.histogram("lat").max(), 10.0);
  // `b` is untouched, and self-merge is a no-op.
  EXPECT_EQ(b.counter("events").value(), 4u);
  a.merge_from(a);
  EXPECT_EQ(a.counter("events").value(), 7u);
}

TEST(Registry, ShardSplitMergeIsShardCountInvariant) {
  // The per-shard metrics guarantee: recording one workload split across
  // any number of shard registries and merging in shard order yields
  // byte-identical snapshots.  This is what keeps merged engine metrics
  // independent of --shards.
  const auto run = [](std::size_t shards) {
    std::vector<Registry> views(shards);
    for (std::size_t i = 0; i < 1000; ++i) {
      Registry& view = views[i % shards];
      view.counter("sim.events_scheduled").add();
      view.gauge("sim.queue_depth_max").set_max(static_cast<double>(i % 37));
      view.histogram("sim.schedule_horizon")
          .record(static_cast<double>(i % 13) * 0.25);
    }
    Registry merged;
    for (const Registry& view : views) merged.merge_from(view);
    return merged.to_json();
  };
  const std::string golden = run(1);
  EXPECT_EQ(run(2), golden);
  EXPECT_EQ(run(4), golden);
  EXPECT_EQ(run(8), golden);
}

TEST(Registry, FilteredToJsonDropsRejectedNames) {
  Registry r;
  r.counter("sim.events_popped").add(5);
  r.counter("pool.lease_hits").add(2);
  r.histogram("sim.pop_ns").record(100.0);
  r.histogram("sim.schedule_horizon").record(0.5);
  const std::string json = r.to_json([](std::string_view name) {
    return !name.ends_with("_ns") && !name.starts_with("pool.");
  });
  EXPECT_NE(json.find("sim.events_popped"), std::string::npos);
  EXPECT_NE(json.find("sim.schedule_horizon"), std::string::npos);
  EXPECT_EQ(json.find("pool.lease_hits"), std::string::npos);
  EXPECT_EQ(json.find("sim.pop_ns"), std::string::npos);
  // Keep-everything filter reproduces the unfiltered snapshot.
  EXPECT_EQ(r.to_json([](std::string_view) { return true; }), r.to_json());
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  Registry r;
  util::ThreadPool pool(4);
  pool.parallel_for(0, 64, [&](std::size_t i) {
    // Few distinct names, many racing first-lookups.
    r.counter("name" + std::to_string(i % 4)).add();
  });
  std::uint64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    total += r.counter("name" + std::to_string(k)).value();
  }
  EXPECT_EQ(total, 64u);
}

}  // namespace
}  // namespace tifl::obs
