// ChurnModel: deterministic, seeded lifecycle event streams.
#include "sim/churn_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tifl::sim {
namespace {

ChurnConfig full_config() {
  ChurnConfig config;
  config.join_rate = 0.2;
  config.leave_rate = 0.1;
  config.slowdown_rate = 0.5;
  return config;
}

TEST(ChurnModel, SameSeedYieldsIdenticalStreams) {
  ChurnModel a(full_config(), /*run_seed=*/42);
  ChurnModel b(full_config(), /*run_seed=*/42);
  const std::vector<LifecycleEvent> ea = a.generate(200.0);
  const std::vector<LifecycleEvent> eb = b.generate(200.0);
  ASSERT_FALSE(ea.empty());
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].time, eb[i].time);
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].pick, eb[i].pick);
    EXPECT_DOUBLE_EQ(ea[i].factor, eb[i].factor);
  }
}

TEST(ChurnModel, DifferentSeedsDiverge) {
  ChurnModel a(full_config(), 42);
  ChurnModel b(full_config(), 43);
  const std::vector<LifecycleEvent> ea = a.generate(100.0);
  const std::vector<LifecycleEvent> eb = b.generate(100.0);
  ASSERT_FALSE(ea.empty());
  ASSERT_FALSE(eb.empty());
  bool any_differs = ea.size() != eb.size();
  for (std::size_t i = 0; !any_differs && i < ea.size(); ++i) {
    any_differs = ea[i].time != eb[i].time || ea[i].pick != eb[i].pick;
  }
  EXPECT_TRUE(any_differs);
}

TEST(ChurnModel, ExplicitSeedOverridesRunSeed) {
  ChurnConfig pinned = full_config();
  pinned.seed = 7777;
  ChurnModel a(pinned, /*run_seed=*/1);
  ChurnModel b(pinned, /*run_seed=*/2);
  const std::vector<LifecycleEvent> ea = a.generate(100.0);
  const std::vector<LifecycleEvent> eb = b.generate(100.0);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].time, eb[i].time);
    EXPECT_EQ(ea[i].pick, eb[i].pick);
  }
}

TEST(ChurnModel, NextMatchesGenerate) {
  // generate() is documented as a pure view of the same stream next()
  // walks: drawing both from one model must agree event for event.
  ChurnModel model(full_config(), 11);
  const std::vector<LifecycleEvent> all = model.generate(50.0);
  ASSERT_FALSE(all.empty());
  for (const LifecycleEvent& expected : all) {
    const std::optional<LifecycleEvent> got = model.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(got->time, expected.time);
    EXPECT_EQ(got->kind, expected.kind);
    EXPECT_EQ(got->pick, expected.pick);
    EXPECT_DOUBLE_EQ(got->factor, expected.factor);
  }
}

TEST(ChurnModel, GenerateIsPureUnderInterleavingWithNext) {
  // The header claims generate() "does not perturb this model's next()".
  // Interleave the two aggressively and check both directions: next()
  // walks the reference stream unaffected by generate() calls in between,
  // and generate() always previews exactly the events next() goes on to
  // return.
  const std::vector<LifecycleEvent> reference =
      ChurnModel(full_config(), 23).generate(300.0);
  ASSERT_GT(reference.size(), 10u);

  ChurnModel model(full_config(), 23);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Before every next(), a generate() whose horizon sweeps widely —
    // including past events already consumed and far into the future.
    const double horizon = (i % 3 == 0) ? 1.0 : (i % 3 == 1) ? 150.0 : 400.0;
    const std::vector<LifecycleEvent> preview = model.generate(horizon);
    // The preview must be the untaken tail of the reference stream.
    for (std::size_t j = 0; j < preview.size() && i + j < reference.size();
         ++j) {
      EXPECT_DOUBLE_EQ(preview[j].time, reference[i + j].time);
      EXPECT_EQ(preview[j].kind, reference[i + j].kind);
      EXPECT_EQ(preview[j].pick, reference[i + j].pick);
      EXPECT_DOUBLE_EQ(preview[j].factor, reference[i + j].factor);
    }

    const std::optional<LifecycleEvent> got = model.next();
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_DOUBLE_EQ(got->time, reference[i].time) << i;
    EXPECT_EQ(got->kind, reference[i].kind) << i;
    EXPECT_EQ(got->pick, reference[i].pick) << i;
    EXPECT_DOUBLE_EQ(got->factor, reference[i].factor) << i;
  }
}

TEST(ChurnModel, StreamIsTimeOrderedAndKindsMatchRates) {
  ChurnConfig config;
  config.leave_rate = 0.3;  // joins and slowdowns disabled
  ChurnModel model(config, 5);
  const std::vector<LifecycleEvent> events = model.generate(500.0);
  ASSERT_FALSE(events.empty());
  double previous = 0.0;
  for (const LifecycleEvent& event : events) {
    EXPECT_GE(event.time, previous);
    previous = event.time;
    EXPECT_EQ(event.kind, EventKind::kClientLeave);
    EXPECT_DOUBLE_EQ(event.factor, 1.0);
  }
  // ~150 expected events for rate 0.3 over 500 s; allow generous slack.
  EXPECT_GT(events.size(), 75u);
  EXPECT_LT(events.size(), 300u);
}

TEST(ChurnModel, SlowdownFactorsArePositiveAndCenteredAboveOne) {
  ChurnConfig config;
  config.slowdown_rate = 1.0;
  ChurnModel model(config, 9);
  const std::vector<LifecycleEvent> events = model.generate(300.0);
  ASSERT_GT(events.size(), 100u);
  double log_sum = 0.0;
  for (const LifecycleEvent& event : events) {
    EXPECT_EQ(event.kind, EventKind::kClientSlowdown);
    ASSERT_GT(event.factor, 0.0);
    log_sum += std::log(event.factor);
  }
  // Mean log factor ~ slowdown_log_mu (0.7 by default).
  EXPECT_NEAR(log_sum / static_cast<double>(events.size()), 0.7, 0.2);
}

TEST(ChurnModel, AllRatesZeroYieldsNoEvents) {
  ChurnModel model(ChurnConfig{}, 1);
  EXPECT_FALSE(model.next().has_value());
  EXPECT_TRUE(model.generate(1e9).empty());
  EXPECT_FALSE(ChurnConfig{}.active());
}

TEST(ChurnModel, NegativeConfigThrows) {
  ChurnConfig bad_rate;
  bad_rate.join_rate = -0.1;
  EXPECT_THROW(ChurnModel(bad_rate, 1), std::invalid_argument);
  ChurnConfig bad_sigma;
  bad_sigma.slowdown_rate = 0.1;
  bad_sigma.slowdown_log_sigma = -1.0;
  EXPECT_THROW(ChurnModel(bad_sigma, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::sim
