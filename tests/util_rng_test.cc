#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace tifl::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(42);
  Rng child = parent.fork(7);
  const std::uint64_t child_first = child.next();
  // Re-derive: same parent state sequence produces the same child.
  Rng parent2(42);
  Rng child2 = parent2.fork(7);
  EXPECT_EQ(child_first, child2.next());
}

TEST(Rng, ForkDistinctTagsDistinctStreams) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(10);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexZeroAndOneAlwaysZero) {
  Rng rng(10);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexApproximatelyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 7;
  constexpr int kDraws = 70000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, LognormalMeanPreservingParameterization) {
  // E[lognormal(-s^2/2, s)] = 1; the latency model relies on this.
  Rng rng(15);
  const double s = 0.3;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(-0.5 * s * s, s);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights{0.7, 0.1, 0.1, 0.05, 0.05};
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  for (std::size_t k = 0; k < weights.size(); ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, weights[k], 0.01)
        << "bucket " << k;
  }
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(18);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexAllZeroFallsBackToFirst) {
  Rng rng(19);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(21);
  for (double shape : {0.4, 1.0, 3.5}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.08 * shape + 0.02) << "shape " << shape;
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> d = rng.dirichlet(0.4, 8);
    EXPECT_EQ(d.size(), 8u);
    double total = 0.0;
    for (double v : d) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletSmallAlphaIsSparse) {
  Rng rng(23);
  // alpha << 1 concentrates mass on few categories.
  double max_sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const std::vector<double> d = rng.dirichlet(0.05, 10);
    max_sum += *std::max_element(d.begin(), d.end());
  }
  EXPECT_GT(max_sum / trials, 0.6);
}

TEST(MixSeed, DistinctInputsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      for (std::uint64_t c = 0; c < 10; ++c) {
        seeds.insert(mix_seed(a, b, c));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MixSeed, IsDeterministic) {
  EXPECT_EQ(mix_seed(1, 2, 3), mix_seed(1, 2, 3));
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(3, 2, 1));
}

}  // namespace
}  // namespace tifl::util
