#include "fl/policy_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/policy_registry.h"

namespace tifl::fl {
namespace {

// A context rich enough to instantiate every builtin: 10 clients over two
// tiers with profiling data.
PolicyContext rich_context() {
  PolicyContext context;
  context.num_clients = 10;
  context.clients_per_round = 3;
  context.total_rounds = 40;
  context.tier_members = {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  context.tier_avg_latency = {1.0, 4.0};
  context.client_mean_latency = {1, 1, 1, 1, 1, 4, 4, 4, 4, 4};
  context.client_dropout.assign(10, false);
  return context;
}

TEST(PolicyRegistry, BuiltinsResolveByNameWithMatchingNames) {
  core::register_builtin_policies();
  const PolicyContext context = rich_context();
  for (const char* name : {"vanilla", "overprovision", "uniform-async",
                           "adaptive", "deadline", "slow", "uniform",
                           "fast", "fast1", "fast2", "fast3"}) {
    auto policy = make_policy(name, context);
    ASSERT_NE(policy, nullptr) << name;
    // Table 1 presets report their preset name; the rest their class name.
    if (std::string(name) != "uniform-async") {
      EXPECT_EQ(policy->name(), name);
    }
  }
  // "random" is a 5-tier preset; two tiers must throw from table1_probs.
  EXPECT_THROW(make_policy("random", context), std::invalid_argument);
  // The alias produces the same policy class as "adaptive".
  EXPECT_EQ(make_policy("TiFL", context)->name(), "adaptive");
}

TEST(PolicyRegistry, UnknownNameErrorListsValidOptions) {
  core::register_builtin_policies();
  try {
    make_policy("definitely-not-registered", rich_context());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("definitely-not-registered"), std::string::npos);
    for (const char* option : {"adaptive", "vanilla", "uniform",
                               "deadline", "overprovision"}) {
      EXPECT_NE(message.find(option), std::string::npos)
          << "missing '" << option << "' in: " << message;
    }
  }
}

TEST(PolicyRegistry, RegistrationValidatesAndRejectsDuplicates) {
  PolicyRegistry& registry = PolicyRegistry::instance();
  EXPECT_THROW(registry.add("vanilla", {.factory =
                                            [](const PolicyContext&) {
                                              return std::unique_ptr<
                                                  SelectionPolicy>();
                                            },
                                        .summary = "dup"}),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", {.factory =
                                     [](const PolicyContext&) {
                                       return std::unique_ptr<
                                           SelectionPolicy>();
                                     },
                                 .summary = "unnamed"}),
               std::invalid_argument);
  EXPECT_THROW(registry.add("null-factory", {.factory = nullptr,
                                             .summary = "no factory"}),
               std::invalid_argument);
}

TEST(PolicyRegistry, CustomPoliciesRegisterAndResolve) {
  PolicyRegistry& registry = PolicyRegistry::instance();
  if (!registry.contains("registry-test-policy")) {
    registry.add("registry-test-policy",
                 {.factory =
                      [](const PolicyContext& context) {
                        return std::make_unique<VanillaPolicy>(
                            context.num_clients, context.clients_per_round);
                      },
                  .summary = "test-only",
                  .sync = true,
                  .async = false});
  }
  EXPECT_TRUE(registry.contains("registry-test-policy"));
  auto policy = registry.make(rich_context(), "registry-test-policy");
  EXPECT_EQ(policy->name(), "vanilla");
  const std::vector<std::string> names = registry.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "registry-test-policy"),
            names.end());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistry, EngineAnnotationsMatchInstantiatedPolicies) {
  // The registry's sync/async flags feed tifl_run's --help and its
  // capability errors; they must agree with what the instantiated policy
  // actually reports, or the documentation drifts from the code.
  core::register_builtin_policies();
  const PolicyRegistry& registry = PolicyRegistry::instance();
  const PolicyContext context = rich_context();
  for (const std::string& name : registry.names()) {
    if (name == "random") continue;  // needs 5 tiers
    if (name == "registry-test-policy") continue;  // test artifact
    const PolicyRegistry::Entry& entry = registry.entry(name);
    auto policy = registry.make(context, name);
    EXPECT_EQ(policy->supports(EngineKind::kSync), entry.sync) << name;
    EXPECT_EQ(policy->supports(EngineKind::kAsync), entry.async) << name;
  }
}

TEST(PolicyRegistry, EngineFilteredNamesAreSubsets) {
  core::register_builtin_policies();
  const PolicyRegistry& registry = PolicyRegistry::instance();
  const std::vector<std::string> all = registry.names();
  for (EngineKind kind : {EngineKind::kSync, EngineKind::kAsync}) {
    for (const std::string& name : registry.names(kind)) {
      EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
      EXPECT_TRUE(kind == EngineKind::kSync ? registry.entry(name).sync
                                            : registry.entry(name).async);
    }
  }
  EXPECT_FALSE(registry.names(EngineKind::kAsync).empty());
}

}  // namespace
}  // namespace tifl::fl
