// End-to-end tests over the whole stack: synthetic data -> partition ->
// clients -> profiling -> tiering -> engine -> policies.  These assert
// the *qualitative* paper results at miniature scale: tiered selection
// cuts training time without destroying accuracy, and the adaptive policy
// balances both.
#include <gtest/gtest.h>

#include "core/system.h"
#include "test_helpers.h"

namespace tifl::core {
namespace {

using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::tiny_federation;
using testing::TinyFederation;

SystemConfig tiny_system_config(std::size_t rounds = 20,
                                std::size_t clients_per_round = 3) {
  SystemConfig config;
  config.num_tiers = 5;
  config.clients_per_round = clients_per_round;
  config.engine = tiny_engine_config(rounds);
  config.profiler.tmax = 1e6;
  return config;
}

TEST(TiflSystem, ProfilesAndTiersOnConstruction) {
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  EXPECT_EQ(system.tiers().tier_count(), 5u);
  EXPECT_EQ(system.tier_sizes(), (std::vector<std::size_t>{4, 4, 4, 4, 4}));
  EXPECT_EQ(system.profile().dropout_count(), 0u);
  EXPECT_GT(system.profile().profiling_time, 0.0);
}

TEST(TiflSystem, FastBeatsUniformBeatsSlowOnTrainingTime) {
  // The core Fig. 3a ordering: selecting faster tiers shortens rounds.
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(12), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  auto fast = system.make_static("fast");
  auto uniform = system.make_static("uniform");
  auto slow = system.make_static("slow");
  const double fast_time = system.run(*fast).total_time();
  const double uniform_time = system.run(*uniform).total_time();
  const double slow_time = system.run(*slow).total_time();
  EXPECT_LT(fast_time, uniform_time);
  EXPECT_LT(uniform_time, slow_time);
}

TEST(TiflSystem, TieredUniformBeatsVanillaOnTrainingTime) {
  // Fig. 3a's second claim: even uniform tier selection beats vanilla
  // because rounds never mix fast and slow clients (Eq. 1).
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(15), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  auto uniform = system.make_static("uniform");
  auto vanilla = system.make_vanilla();
  const double uniform_time = system.run(*uniform).total_time();
  const double vanilla_time = system.run(*vanilla).total_time();
  EXPECT_LT(uniform_time, vanilla_time);
}

TEST(TiflSystem, AllPoliciesLearnAboveChance) {
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(20, 3), tiny_factory(),
                    &fed.data.test, fed.clients, fed.latency);
  for (const char* name : {"uniform", "random", "fast"}) {
    auto policy = system.make_static(name);
    const fl::RunResult result = system.run(*policy);
    EXPECT_GT(result.final_accuracy(), 0.45) << name;  // chance = 0.25
  }
  auto vanilla = system.make_vanilla();
  EXPECT_GT(system.run(*vanilla).final_accuracy(), 0.45);
}

TEST(TiflSystem, AdaptivePolicyRunsSelectsMultipleTiersAndLearns) {
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(25, 3), tiny_factory(),
                    &fed.data.test, fed.clients, fed.latency);
  AdaptiveConfig adaptive;
  adaptive.interval = 5;
  auto policy = system.make_adaptive(adaptive);
  const fl::RunResult result = system.run(*policy);
  EXPECT_EQ(result.policy_name, "adaptive");
  EXPECT_GT(result.final_accuracy(), 0.45);
  std::set<int> tiers_used;
  for (const auto& round : result.rounds) tiers_used.insert(round.selected_tier);
  EXPECT_GE(tiers_used.size(), 2u);
}

TEST(TiflSystem, AdaptiveFasterThanVanillaComparableAccuracy) {
  // Fig. 7's "Combine" headline at miniature scale: adaptive cuts time vs
  // vanilla without losing much accuracy.
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(25, 3), tiny_factory(),
                    &fed.data.test, fed.clients, fed.latency);
  auto adaptive = system.make_adaptive();
  auto vanilla = system.make_vanilla();
  const fl::RunResult a = system.run(*adaptive);
  const fl::RunResult v = system.run(*vanilla);
  EXPECT_LT(a.total_time(), v.total_time());
  EXPECT_GT(a.final_accuracy(), v.final_accuracy() - 0.15);
}

TEST(TiflSystem, DropoutClientsAreExcludedFromTiers) {
  TinyFederation fed = tiny_federation(20);
  fed.clients[7].resource().unavailable = true;
  TiflSystem system(tiny_system_config(), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  EXPECT_EQ(system.profile().dropout_count(), 1u);
  ASSERT_EQ(system.tiers().dropouts.size(), 1u);
  EXPECT_EQ(system.tiers().dropouts[0], 7u);
  // No tier contains client 7, so no policy can ever select it.
  EXPECT_EQ(system.tiers().tier_of(7), system.tiers().tier_count());
}

TEST(TiflSystem, TierEvalSetsMatchTierMembership) {
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  const auto sets = build_tier_eval_sets(system.tiers(),
                                         system.engine().clients(),
                                         fed.data.test);
  ASSERT_EQ(sets.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    std::size_t expected = 0;
    for (std::size_t id : system.tiers().members[t]) {
      expected += system.engine().clients()[id].test_indices().size();
    }
    EXPECT_EQ(sets[t].size(), expected) << "tier " << t;
  }
}

TEST(TiflSystem, EstimateTimeTracksActualUniformRun) {
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(30), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  auto uniform = system.make_static("uniform");
  const double actual = system.run(*uniform).total_time();
  const double estimated = system.estimate_time("uniform");
  EXPECT_LT(estimation_mape(estimated, actual), 10.0);
}

TEST(TiflSystem, FullRunIsDeterministic) {
  TinyFederation fed = tiny_federation(20);
  auto run_once = [&fed]() {
    TiflSystem system(tiny_system_config(8, 3), tiny_factory(),
                      &fed.data.test, fed.clients, fed.latency);
    auto policy = system.make_adaptive();
    return system.run(*policy);
  };
  const fl::RunResult a = run_once();
  const fl::RunResult b = run_once();
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].selected_clients, b.rounds[r].selected_clients);
    EXPECT_DOUBLE_EQ(a.rounds[r].global_accuracy,
                     b.rounds[r].global_accuracy);
  }
}

TEST(TiflSystem, ReprofilingTracksResourceDrift) {
  // §4.2: periodic re-profiling regroups clients whose performance
  // changed.  Degrade a fastest-tier client to the slowest CPU share and
  // verify the refreshed tiering moves it to the slowest tier.
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  const std::size_t fast_client = system.tiers().members[0][0];
  EXPECT_EQ(system.tiers().tier_of(fast_client), 0u);

  system.client(fast_client).resource().cpus = 0.01;  // thermal throttling
  const double cost = system.reprofile(99);
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(system.tiers().tier_of(fast_client),
            system.tiers().tier_count() - 1);

  // A policy built from the refreshed tiers never mixes the degraded
  // client into the fastest tier.
  auto fast = system.make_static("fast");
  util::Rng rng(1);
  for (std::size_t round = 0; round < 30; ++round) {
    const fl::Selection s = fast->select(round, rng);
    for (std::size_t c : s.clients) EXPECT_NE(c, fast_client);
  }
}

TEST(TiflSystem, ReprofilingPicksUpRecoveredDropout) {
  TinyFederation fed = tiny_federation(20);
  fed.clients[5].resource().unavailable = true;
  TiflSystem system(tiny_system_config(), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  EXPECT_EQ(system.profile().dropout_count(), 1u);

  system.client(5).resource().unavailable = false;  // device came back
  system.reprofile(100);
  EXPECT_EQ(system.profile().dropout_count(), 0u);
  EXPECT_LT(system.tiers().tier_of(5), system.tiers().tier_count());
}

TEST(TiflSystem, DpEnabledFederationStillLearns) {
  TinyFederation fed = tiny_federation(20);
  SystemConfig config = tiny_system_config(20, 3);
  config.engine.local.dp_clip_norm = 5.0;
  config.engine.local.dp_noise_sigma = 1e-4;
  TiflSystem system(config, tiny_factory(), &fed.data.test, fed.clients,
                    fed.latency);
  auto policy = system.make_static("uniform");
  const fl::RunResult result = system.run(*policy);
  EXPECT_GT(result.final_accuracy(), 0.4);  // chance = 0.25
}

TEST(TiflSystem, HierarchicalAggregationEndToEnd) {
  TinyFederation fed = tiny_federation(20);
  SystemConfig flat_config = tiny_system_config(8, 3);
  SystemConfig tree_config = flat_config;
  tree_config.engine.hierarchical_aggregation = true;
  tree_config.engine.aggregator_fanout = 3;
  TiflSystem flat(flat_config, tiny_factory(), &fed.data.test, fed.clients,
                  fed.latency);
  TiflSystem tree(tree_config, tiny_factory(), &fed.data.test, fed.clients,
                  fed.latency);
  auto p1 = flat.make_static("uniform");
  auto p2 = tree.make_static("uniform");
  const fl::RunResult r1 = flat.run(*p1);
  const fl::RunResult r2 = tree.run(*p2);
  for (std::size_t i = 0; i < r1.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.rounds[i].global_accuracy,
                     r2.rounds[i].global_accuracy);
  }
}

TEST(TiflSystem, NonIidDataHurtsVanillaAccuracy) {
  // Fig. 1b's qualitative claim: fewer classes per client -> lower
  // accuracy after the same number of rounds.
  auto run_with_classes = [](std::size_t classes_per_client) {
    TinyFederation fed = testing::FederationBuilder()
                             .clients(20)
                             .seed(11)
                             .train_samples(800)
                             .test_samples(300)
                             .classes_per_client(classes_per_client)
                             .cpu_groups(sim::homogeneous_cpu_groups())
                             .build();
    fl::Engine engine(tiny_engine_config(25), tiny_factory(), fed.clients,
                      &fed.data.test, fed.latency);
    fl::VanillaPolicy policy(fed.clients.size(), 5);
    return engine.run(policy).final_accuracy();
  };

  // IID (0 = no class cap) should clearly beat 1-class-per-client.
  EXPECT_GT(run_with_classes(0), run_with_classes(1));
}

TEST(TiflSystem, RegistryPoliciesMatchTypedFactories) {
  // make_policy(name) must build the same policies the typed factories
  // do: identical selection streams mean identical runs.
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(8), tiny_factory(), &fed.data.test,
                    fed.clients, fed.latency);
  {
    auto by_name = system.make_policy("uniform");
    auto typed = system.make_static("uniform");
    const fl::RunResult a = system.run(*by_name);
    const fl::RunResult b = system.run(*typed);
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
      EXPECT_EQ(a.rounds[i].selected_clients, b.rounds[i].selected_clients);
      EXPECT_DOUBLE_EQ(a.rounds[i].global_accuracy,
                       b.rounds[i].global_accuracy);
    }
  }
  {
    auto vanilla = system.make_policy("vanilla");
    EXPECT_EQ(vanilla->name(), "vanilla");
    EXPECT_GT(system.run(*vanilla).final_accuracy(), 0.0);
  }
}

TEST(TiflSystem, AsyncAdaptivePolicyRunsAlg2EndToEnd) {
  // Alg. 2 on the async path: per-tier eval sets are materialized and the
  // run produces exactly the requested versions under the policy seam.
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(16, 3), tiny_factory(),
                    &fed.data.test, fed.clients, fed.latency);
  auto adaptive = system.make_policy("adaptive");
  fl::AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 3;
  async.eval_every = 2;
  const fl::AsyncRunResult run = system.run_async(async, {}, adaptive.get());
  EXPECT_EQ(run.result.rounds.size(), 16u);
  EXPECT_EQ(run.result.policy_name, "async/adaptive/constant");
  std::size_t total = 0;
  for (std::size_t updates : run.tier_updates) total += updates;
  EXPECT_EQ(total, 16u);
  EXPECT_GT(run.result.final_accuracy(), 0.3);  // chance = 0.25
}

TEST(TiflSystem, AsyncDefaultIsBitIdenticalWithAndWithoutNullPolicy) {
  // Passing no policy and passing nullptr are the same run.
  TinyFederation fed = tiny_federation(20);
  TiflSystem system(tiny_system_config(10, 3), tiny_factory(),
                    &fed.data.test, fed.clients, fed.latency);
  fl::AsyncConfig async;
  async.total_updates = 10;
  async.clients_per_tier_round = 3;
  const fl::AsyncRunResult a = system.run_async(async);
  const fl::AsyncRunResult b = system.run_async(async, {}, nullptr);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

}  // namespace
}  // namespace tifl::core
