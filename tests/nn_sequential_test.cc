#include "nn/sequential.h"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model_zoo.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tifl::nn {
namespace {

using tensor::Tensor;

Sequential small_mlp(std::uint64_t seed) { return mlp(8, 6, 3, seed); }

TEST(Sequential, ReluFusionIsBitIdenticalToUnfused) {
  // The fusion pass folds Dense/Conv2D + ReLU pairs into GEMM epilogues;
  // training trajectories with fusion on and off must match bit for bit.
  const nn::ImageGeometry geo{.channels = 1, .height = 8, .width = 8};
  Sequential fused = mnist_cnn(geo, 4, /*seed=*/5);
  Sequential plain = mnist_cnn(geo, 4, /*seed=*/5);
  plain.set_fusion_enabled(false);

  util::Rng data_rng(31);
  Tensor x = Tensor::randn({6, 1, 8, 8}, data_rng);
  std::vector<std::int32_t> labels(6);
  for (auto& l : labels) {
    l = static_cast<std::int32_t>(data_rng.uniform_index(4));
  }

  for (int step = 0; step < 3; ++step) {
    Sgd opt_f(0.05), opt_p(0.05);
    util::Rng rng_f(7), rng_p(7);
    const LossResult rf = fused.train_batch(x, labels, opt_f, rng_f);
    const LossResult rp = plain.train_batch(x, labels, opt_p, rng_p);
    EXPECT_EQ(rf.loss, rp.loss) << "step " << step;
    EXPECT_EQ(fused.weights(), plain.weights()) << "step " << step;
  }
}

TEST(Sequential, WeightsRoundTrip) {
  Sequential model = small_mlp(1);
  const std::vector<float> w = model.weights();
  EXPECT_EQ(w.size(), model.weight_count());
  Sequential other = small_mlp(2);
  EXPECT_NE(other.weights(), w);  // different init
  other.set_weights(w);
  EXPECT_EQ(other.weights(), w);
}

TEST(Sequential, WeightCountMatchesArchitecture) {
  // mlp(8,6,3): Dense(8,6): 8*6+6; Dense(6,3): 6*3+3.
  Sequential model = small_mlp(1);
  EXPECT_EQ(model.weight_count(), 8u * 6u + 6u + 6u * 3u + 3u);
}

TEST(Sequential, SetWeightsRejectsWrongLength) {
  Sequential model = small_mlp(1);
  std::vector<float> tooShort(model.weight_count() - 1, 0.0f);
  std::vector<float> tooLong(model.weight_count() + 1, 0.0f);
  EXPECT_THROW(model.set_weights(tooShort), std::invalid_argument);
  EXPECT_THROW(model.set_weights(tooLong), std::invalid_argument);
}

TEST(Sequential, SameSeedSameInit) {
  EXPECT_EQ(small_mlp(7).weights(), small_mlp(7).weights());
}

TEST(Sequential, ForwardShape) {
  Sequential model = small_mlp(1);
  util::Rng rng(1);
  PassContext ctx{};
  const Tensor y = model.forward(Tensor::randn({5, 8}, rng), ctx);
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 3}));
}

TEST(Sequential, TrainingReducesLossOnFixedBatch) {
  Sequential model = small_mlp(3);
  util::Rng rng(4);
  const Tensor x = Tensor::randn({16, 8}, rng);
  std::vector<std::int32_t> labels(16);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int32_t>(i % 3);
  }
  Sgd opt(0.1);
  const double initial = model.evaluate(x, labels).loss;
  for (int step = 0; step < 60; ++step) {
    model.train_batch(x, labels, opt, rng);
  }
  const double final = model.evaluate(x, labels).loss;
  EXPECT_LT(final, initial * 0.5);
}

TEST(Sequential, EvaluateIsDeterministicDespiteDropout) {
  Sequential model;
  util::Rng rng(5);
  model.add(std::make_unique<Dense>(4, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dropout>(0.5f));
  model.add(std::make_unique<Dense>(8, 2, rng));
  const Tensor x = Tensor::randn({6, 4}, rng);
  const std::vector<std::int32_t> labels{0, 1, 0, 1, 0, 1};
  const LossResult a = model.evaluate(x, labels);
  const LossResult b = model.evaluate(x, labels);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Sequential, ZeroGradsClearsAll) {
  Sequential model = small_mlp(6);
  util::Rng rng(6);
  Sgd opt(0.01);
  const Tensor x = Tensor::randn({4, 8}, rng);
  model.train_batch(x, std::vector<std::int32_t>{0, 1, 2, 0}, opt, rng);
  model.zero_grads();
  for (Tensor* g : model.grads()) {
    for (float v : g->flat()) EXPECT_EQ(v, 0.0f);
  }
}

// --- model zoo -----------------------------------------------------------------

TEST(ModelZoo, MnistCnnShapesAtReducedGeometry) {
  const ImageGeometry g{1, 12, 12};
  Sequential model = mnist_cnn(g, 10, 1);
  util::Rng rng(1);
  PassContext ctx{};
  const Tensor y = model.forward(Tensor::randn({2, 1, 12, 12}, rng), ctx);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
}

TEST(ModelZoo, CifarCnnShapesAtReducedGeometry) {
  const ImageGeometry g{3, 12, 12};
  Sequential model = cifar_cnn(g, 10, 2);
  util::Rng rng(2);
  PassContext ctx{};
  const Tensor y = model.forward(Tensor::randn({2, 3, 12, 12}, rng), ctx);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
}

TEST(ModelZoo, FemnistCnnShapes) {
  const ImageGeometry g{1, 12, 12};
  Sequential model = femnist_cnn(g, 62, 3, /*hidden=*/64);
  util::Rng rng(3);
  PassContext ctx{};
  const Tensor y = model.forward(Tensor::randn({1, 1, 12, 12}, rng), ctx);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 62}));
}

TEST(ModelZoo, MnistCnnTrainsOnTinyBatch) {
  const ImageGeometry g{1, 10, 10};
  Sequential model = mnist_cnn(g, 4, 4);
  util::Rng rng(4);
  const Tensor x = Tensor::randn({8, 1, 10, 10}, rng);
  const std::vector<std::int32_t> labels{0, 1, 2, 3, 0, 1, 2, 3};
  RmsProp opt(0.005);
  const double initial = model.evaluate(x, labels).loss;
  for (int step = 0; step < 25; ++step) {
    model.train_batch(x, labels, opt, rng);
  }
  EXPECT_LT(model.evaluate(x, labels).loss, initial);
}

TEST(ModelZoo, Mlp2HasTwoHiddenLayers) {
  Sequential model = mlp2(10, 8, 6, 3, 5);
  // Flatten + 3 Dense + 2 ReLU = 6 layers.
  EXPECT_EQ(model.layer_count(), 6u);
  EXPECT_EQ(model.weight_count(),
            10u * 8 + 8 + 8u * 6 + 6 + 6u * 3 + 3);
}

TEST(ModelZoo, FactoriesInteroperateThroughFlatWeights) {
  // Two instances from the same factory must accept each other's weights —
  // the property FL weight exchange depends on.
  nn::ModelFactory factory = [](std::uint64_t seed) {
    return mlp(12, 5, 3, seed);
  };
  Sequential a = factory(1);
  Sequential b = factory(2);
  b.set_weights(a.weights());
  util::Rng rng(9);
  const Tensor x = Tensor::randn({3, 12}, rng);
  PassContext ctx{};
  const Tensor ya = a.forward(x, ctx);
  const Tensor yb = b.forward(x, ctx);
  EXPECT_EQ(tensor::max_abs_diff(ya, yb), 0.0f);
}

}  // namespace
}  // namespace tifl::nn
