#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/latency_model.h"
#include "sim/resource_profile.h"
#include "sim/virtual_clock.h"

namespace tifl::sim {
namespace {

TEST(VirtualClock, AdvancesAndResets) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(2.5);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(VirtualClock, IgnoresNonPositiveAdvance) {
  VirtualClock clock;
  clock.advance(-1.0);
  clock.advance(0.0);
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(ResourceGroups, PaperPresets) {
  EXPECT_EQ(casestudy_cpu_groups(),
            (std::vector<double>{4.0, 2.0, 1.0, 1.0 / 3.0, 1.0 / 5.0}));
  EXPECT_EQ(mnist_cpu_groups(), (std::vector<double>{2, 1, 0.75, 0.5, 0.25}));
  EXPECT_EQ(cifar_cpu_groups(), (std::vector<double>{4, 2, 1, 0.5, 0.1}));
  EXPECT_EQ(homogeneous_cpu_groups(2.0), std::vector<double>(5, 2.0));
}

TEST(AssignEqualGroups, EqualCountsPerGroup) {
  util::Rng rng(1);
  const auto profiles =
      assign_equal_groups(50, cifar_cpu_groups(), 0.5, 0.05, rng);
  ASSERT_EQ(profiles.size(), 50u);
  std::map<double, int> counts;
  for (const auto& p : profiles) {
    ++counts[p.cpus];
    EXPECT_DOUBLE_EQ(p.comm_seconds, 0.5);
    EXPECT_DOUBLE_EQ(p.jitter_sigma, 0.05);
  }
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [cpus, n] : counts) EXPECT_EQ(n, 10) << cpus << " CPUs";
}

TEST(AssignEqualGroups, OrderedAssignmentIsBlocked) {
  util::Rng rng(2);
  const auto profiles =
      assign_equal_groups(10, {4.0, 1.0}, 0.0, 0.0, rng, /*shuffled=*/false);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(profiles[c].cpus, 4.0);
  for (std::size_t c = 5; c < 10; ++c) EXPECT_EQ(profiles[c].cpus, 1.0);
}

TEST(AssignEqualGroups, ShuffledAssignmentStillBalanced) {
  util::Rng rng(3);
  const auto profiles =
      assign_equal_groups(20, {4.0, 1.0}, 0.0, 0.0, rng, /*shuffled=*/true);
  int fast = 0;
  for (const auto& p : profiles) fast += p.cpus == 4.0;
  EXPECT_EQ(fast, 10);
  // With shuffling, the first half should not be all-fast.
  int fast_first_half = 0;
  for (std::size_t c = 0; c < 10; ++c) fast_first_half += profiles[c].cpus == 4.0;
  EXPECT_NE(fast_first_half, 10);
}

TEST(AssignEqualGroups, EmptyGroupsThrow) {
  util::Rng rng(4);
  EXPECT_THROW(assign_equal_groups(10, {}, 0.0, 0.0, rng),
               std::invalid_argument);
}

// --- latency model --------------------------------------------------------------

TEST(LatencyModel, ExpectedLatencyAffineInSamples) {
  const LatencyModel model(CostModel{0.01, 3.0});
  ResourceProfile profile{.cpus = 2.0, .comm_seconds = 1.0};
  // L = epochs*samples*0.01/2 + 3 + 1.
  EXPECT_DOUBLE_EQ(model.expected_latency(profile, 1000, 1), 9.0);
  EXPECT_DOUBLE_EQ(model.expected_latency(profile, 2000, 1), 14.0);
  EXPECT_DOUBLE_EQ(model.expected_latency(profile, 1000, 2), 14.0);
}

TEST(LatencyModel, MoreCpusIsFaster) {
  const LatencyModel model(CostModel{0.01, 3.0});
  ResourceProfile fast{.cpus = 4.0};
  ResourceProfile slow{.cpus = 0.1};
  EXPECT_LT(model.expected_latency(fast, 1000, 1),
            model.expected_latency(slow, 1000, 1));
  // Compute term scales exactly with 1/cpus.
  EXPECT_NEAR(model.expected_latency(slow, 1000, 1) - 3.0,
              (model.expected_latency(fast, 1000, 1) - 3.0) * 40.0, 1e-9);
}

TEST(LatencyModel, UnavailableClientNeverResponds) {
  const LatencyModel model;
  ResourceProfile gone{.unavailable = true};
  util::Rng rng(5);
  EXPECT_TRUE(std::isinf(model.expected_latency(gone, 10, 1)));
  EXPECT_TRUE(std::isinf(model.sample_latency(gone, 10, 1, rng)));
}

TEST(LatencyModel, JitterIsMeanPreserving) {
  const LatencyModel model(CostModel{0.01, 0.0});
  ResourceProfile profile{.cpus = 1.0, .jitter_sigma = 0.2};
  util::Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += model.sample_latency(profile, 1000, 1, rng);
  }
  EXPECT_NEAR(sum / n, model.expected_latency(profile, 1000, 1), 0.05);
}

TEST(LatencyModel, ZeroJitterSamplesEqualExpectation) {
  const LatencyModel model(CostModel{0.02, 1.0});
  ResourceProfile profile{.cpus = 0.5, .comm_seconds = 0.25,
                          .jitter_sigma = 0.0};
  util::Rng rng(7);
  EXPECT_DOUBLE_EQ(model.sample_latency(profile, 500, 1, rng),
                   model.expected_latency(profile, 500, 1));
}

TEST(LatencyModel, Fig1aShapeNearLinearInDataAndInverseCpu) {
  // Reproduce the case study's qualitative claims (Fig. 1a): with fixed
  // CPU, 10x data -> ~10x compute time; with fixed data, 20x CPU
  // (4 vs 1/5) -> ~20x faster compute.
  const LatencyModel model = LatencyModel(cifar_cost_model());
  ResourceProfile cpu4{.cpus = 4.0};
  ResourceProfile cpu02{.cpus = 0.2};
  const double overhead = model.cost().fixed_overhead;
  const double t500 = model.expected_latency(cpu4, 500, 1) - overhead;
  const double t5000 = model.expected_latency(cpu4, 5000, 1) - overhead;
  EXPECT_NEAR(t5000 / t500, 10.0, 1e-6);
  const double slow = model.expected_latency(cpu02, 1000, 1) - overhead;
  const double fast = model.expected_latency(cpu4, 1000, 1) - overhead;
  EXPECT_NEAR(slow / fast, 20.0, 1e-6);
}

TEST(LatencyModel, PresetsOrdering) {
  // The heavier the workload, the larger the per-sample cost.
  EXPECT_GT(cifar_cost_model().seconds_per_sample,
            mnist_cost_model().seconds_per_sample);
  EXPECT_GE(femnist_cost_model().seconds_per_sample,
            cifar_cost_model().seconds_per_sample);
}

}  // namespace
}  // namespace tifl::sim
