// ClientPool: the lazy client-state substrate for million-client
// federations — materialized pass-through backend, virtual LRU backend,
// and the equivalence between the two.
#include "fl/client_pool.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/profiler.h"
#include "core/system.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "test_helpers.h"

namespace tifl::fl {
namespace {

using testing::FederationBuilder;
using testing::tiny_data;
using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::TinyFederation;

ClientPool make_virtual_pool(const data::Dataset* train,
                             std::size_t num_clients,
                             std::size_t cache_capacity,
                             std::size_t samples_per_client = 30) {
  ClientPool::VirtualConfig config;
  config.train = train;
  config.shards =
      data::LazyShards(train->size(), num_clients,
                       {.samples_per_client = samples_per_client}, 77);
  config.profiles.assign(num_clients, sim::ResourceProfile{});
  for (std::size_t c = 0; c < num_clients; ++c) {
    config.profiles[c].cpus = 1.0 + static_cast<double>(c % 5);
  }
  config.cache_capacity = cache_capacity;
  return ClientPool(std::move(config));
}

TEST(ClientPool, MaterializedBackendAliasesTheVector) {
  TinyFederation fed = FederationBuilder().clients(6).build();
  ClientPool pool(&fed.clients);
  EXPECT_FALSE(pool.virtualized());
  EXPECT_EQ(pool.size(), 6u);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_EQ(pool.train_size(c), fed.clients[c].train_size());
    EXPECT_EQ(pool.resource(c).cpus, fed.clients[c].resource().cpus);
    ClientPool::Lease lease = pool.lease(c);
    EXPECT_EQ(&*lease, &fed.clients[c]);  // no copy, no cache
  }
  EXPECT_EQ(pool.materializations(), 0u);
  EXPECT_THROW(pool.resource(99), std::out_of_range);
}

TEST(ClientPool, VirtualBackendMaterializesOnDemand) {
  const data::SyntheticData data = tiny_data();
  ClientPool pool = make_virtual_pool(&data.train, 100, /*cache=*/4);
  EXPECT_TRUE(pool.virtualized());
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_EQ(pool.live_clients(), 0u);  // nothing exists until leased

  // Pool-level accessors never materialize.
  for (std::size_t c = 0; c < 100; ++c) {
    EXPECT_GT(pool.train_size(c), 0u);
    EXPECT_GT(pool.resource(c).cpus, 0.0);
  }
  EXPECT_EQ(pool.live_clients(), 0u);
  EXPECT_EQ(pool.materializations(), 0u);

  {
    ClientPool::Lease lease = pool.lease(42);
    EXPECT_EQ(lease->id(), 42u);
    EXPECT_EQ(lease->train_size(), pool.train_size(42));
    for (std::size_t idx : lease->train_indices()) {
      EXPECT_LT(idx, data.train.size());
    }
    EXPECT_EQ(pool.live_clients(), 1u);
    EXPECT_EQ(pool.materializations(), 1u);
  }
  // Released but under capacity: stays cached, re-lease is a hit.
  EXPECT_EQ(pool.live_clients(), 1u);
  ClientPool::Lease again = pool.lease(42);
  EXPECT_EQ(pool.materializations(), 1u);
}

TEST(ClientPool, LruEvictsColdClientsButNeverPinnedOnes) {
  const data::SyntheticData data = tiny_data();
  ClientPool pool = make_virtual_pool(&data.train, 100, /*cache=*/3);

  {
    // Pin 5 clients at once with capacity 3: the cache must grow rather
    // than evict a leased client.
    std::vector<ClientPool::Lease> leases;
    for (std::size_t c = 0; c < 5; ++c) leases.push_back(pool.lease(c));
    EXPECT_EQ(pool.live_clients(), 5u);
    EXPECT_EQ(pool.peak_live_clients(), 5u);
  }
  // All unpinned: shrink back to capacity.
  EXPECT_EQ(pool.live_clients(), 3u);

  // Touch a long run of distinct clients: live set stays at capacity.
  for (std::size_t c = 10; c < 60; ++c) pool.lease(c);
  EXPECT_EQ(pool.live_clients(), 3u);
  EXPECT_EQ(pool.peak_live_clients(), 5u);
  EXPECT_GE(pool.materializations(), 50u);
}

TEST(ClientPool, CacheSegmentsPartitionContiguousIdRanges) {
  const data::SyntheticData data = tiny_data();
  ClientPool pool = make_virtual_pool(&data.train, 100, /*cache=*/8);
  EXPECT_EQ(pool.cache_segments(), 1u);
  pool.set_cache_segments(4);
  EXPECT_EQ(pool.cache_segments(), 4u);
  // Contiguous, monotone ownership covering every segment.
  std::size_t previous = 0;
  for (std::size_t id = 0; id < 100; ++id) {
    const std::size_t s = pool.segment_of(id);
    ASSERT_LT(s, 4u);
    ASSERT_GE(s, previous);
    previous = s;
  }
  EXPECT_EQ(pool.segment_of(0), 0u);
  EXPECT_EQ(pool.segment_of(99), 3u);

  // Each segment ages its own LRU: 3 distinct clients per segment with a
  // per-segment capacity share of 2 evicts one per segment.
  for (std::size_t id : {0ul, 1ul, 2ul, 30ul, 31ul, 32ul}) pool.lease(id);
  EXPECT_EQ(pool.live_clients(), 4u);
  EXPECT_EQ(pool.peak_live_clients(), 5u);

  // Re-segmenting with materialized clients is rejected.
  EXPECT_THROW(pool.set_cache_segments(2), std::logic_error);

  // Segment count clamps: zero is one, huge is the population.
  ClientPool fresh = make_virtual_pool(&data.train, 10, 4);
  fresh.set_cache_segments(0);
  EXPECT_EQ(fresh.cache_segments(), 1u);
  fresh.set_cache_segments(1000);
  EXPECT_EQ(fresh.cache_segments(), 10u);

  // Materialized backend: no-op.
  TinyFederation fed = FederationBuilder().clients(4).build();
  ClientPool materialized(&fed.clients);
  materialized.set_cache_segments(8);
  EXPECT_EQ(materialized.cache_segments(), 0u);
}

TEST(ClientPool, SegmentCountNeverChangesClientBytes) {
  // Segmentation moves cache boundaries, never data: a lease must yield
  // identical training state at every segment count.
  const data::SyntheticData data = tiny_data();
  std::vector<std::vector<std::size_t>> golden;
  for (std::size_t segments : {1ul, 2ul, 4ul, 8ul}) {
    ClientPool pool = make_virtual_pool(&data.train, 64, /*cache=*/4);
    pool.set_cache_segments(segments);
    std::vector<std::vector<std::size_t>> indices;
    for (std::size_t id = 0; id < 64; id += 7) {
      ClientPool::Lease lease = pool.lease(id);
      indices.push_back(lease->train_indices());
    }
    if (golden.empty()) {
      golden = std::move(indices);
    } else {
      EXPECT_EQ(indices, golden) << "segments " << segments;
    }
  }
}

TEST(ClientPool, VirtualClientsTrainIdenticallyToMaterializedTwins) {
  // A client materialized through the pool must behave exactly like a
  // Client built eagerly from the same shard: same indices, same local
  // update bit for bit.
  const data::SyntheticData data = tiny_data();
  const std::size_t num_clients = 12;
  ClientPool pool = make_virtual_pool(&data.train, num_clients, 4);

  data::LazyShards shards(data.train.size(), num_clients,
                          {.samples_per_client = 30}, 77);
  nn::Sequential model = tiny_factory()(1);
  nn::Sequential scratch = tiny_factory()(2);
  const std::vector<float> global = model.weights();
  LocalTrainParams params;
  params.epochs = 1;
  params.batch_size = 10;
  params.optimizer.kind = nn::OptimizerConfig::Kind::kSgd;
  params.lr = 0.05;

  for (std::size_t c = 0; c < num_clients; c += 3) {
    const Client twin(c, &data.train, shards.shard(c).materialize(), {},
                      pool.resource(c));
    const LocalUpdate expected =
        twin.local_update(global, model, params, util::Rng(1000 + c));
    ClientPool::Lease lease = pool.lease(c);
    const LocalUpdate got =
        lease->local_update(global, scratch, params, util::Rng(1000 + c));
    EXPECT_EQ(got.num_samples, expected.num_samples);
    EXPECT_EQ(got.weights, expected.weights);
    EXPECT_DOUBLE_EQ(got.train_loss, expected.train_loss);
  }
}

TEST(ClientPool, ProfilerMatchesVectorOverloadOnWrappedPool) {
  // The pool overload of profile_clients must consume the identical RNG
  // stream and produce identical latencies to the historical vector
  // overload (which now delegates to it).
  TinyFederation fed = FederationBuilder().clients(10).jitter(0.05).build();
  core::ProfilerConfig config;
  config.sync_rounds = 3;
  config.tmax = 500.0;

  util::Rng rng_a(99);
  const core::ProfileResult via_vector =
      core::profile_clients(fed.clients, fed.latency, config, rng_a);
  util::Rng rng_b(99);
  const ClientPool pool(&fed.clients);
  const core::ProfileResult via_pool =
      core::profile_clients(pool, fed.latency, config, rng_b);

  ASSERT_EQ(via_vector.mean_latency.size(), via_pool.mean_latency.size());
  for (std::size_t c = 0; c < via_vector.mean_latency.size(); ++c) {
    EXPECT_DOUBLE_EQ(via_vector.mean_latency[c], via_pool.mean_latency[c]);
    EXPECT_EQ(via_vector.dropout[c], via_pool.dropout[c]);
  }
  EXPECT_DOUBLE_EQ(via_vector.profiling_time, via_pool.profiling_time);
}

TEST(ClientPool, VirtualSystemRunsAsyncWithChurnInBoundedLiveSet) {
  // End-to-end: a pool-mode TiflSystem over a virtual population runs the
  // dynamic async path (churn + re-tiering hooks) while only ever
  // materializing a cohort-sized working set.
  auto data = std::make_unique<data::SyntheticData>(tiny_data());
  const std::size_t num_clients = 5000;
  ClientPool pool = make_virtual_pool(&data->train, num_clients, 16);

  core::SystemConfig config;
  config.num_tiers = 3;
  config.clients_per_round = 4;
  config.profiler.tmax = 1000.0;
  config.engine.rounds = 24;
  config.engine.local.epochs = 1;
  config.engine.local.batch_size = 10;
  config.engine.local.optimizer.kind = nn::OptimizerConfig::Kind::kSgd;
  config.engine.local.optimizer.lr = 0.05;
  config.engine.eval_every = 8;
  config.engine.seed = 5;

  core::TiflSystem system(config, tiny_factory(), &data->test,
                          std::move(pool), sim::LatencyModel({0.01, 1.0}));
  EXPECT_TRUE(system.virtualized());
  EXPECT_THROW(system.engine(), std::logic_error);
  EXPECT_THROW(system.client(0), std::logic_error);
  EXPECT_EQ(system.profile().mean_latency.size(), num_clients);

  AsyncConfig async;
  async.total_updates = 24;
  async.clients_per_tier_round = 4;
  async.eval_every = 8;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  async.reprofile_every = 40.0;
  const AsyncRunResult run = system.run_async(async);

  EXPECT_EQ(run.result.rounds.size(), 24u);
  EXPECT_GE(run.processed_events, 24u);  // updates (+ churn + reprofiles)
  const ClientPool& used = system.client_pool();
  EXPECT_GT(used.materializations(), 0u);
  // The whole point: a 5000-client federation never materialized more
  // than the cache high-water mark of clients at once.
  EXPECT_LE(used.peak_live_clients(), 24u);

  // An identically-built virtual system replays the run bit for bit.
  core::TiflSystem twin(config, tiny_factory(), &data->test,
                        make_virtual_pool(&data->train, num_clients, 16),
                        sim::LatencyModel({0.01, 1.0}));
  const AsyncRunResult replay = twin.run_async(async);
  EXPECT_EQ(replay.final_weights, run.final_weights);
  ASSERT_EQ(replay.result.rounds.size(), run.result.rounds.size());
  for (std::size_t i = 0; i < run.result.rounds.size(); ++i) {
    EXPECT_EQ(replay.result.rounds[i].selected_clients,
              run.result.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(replay.result.rounds[i].virtual_time,
                     run.result.rounds[i].virtual_time);
  }
}

}  // namespace
}  // namespace tifl::fl
