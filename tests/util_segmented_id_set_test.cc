#include "util/segmented_id_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace tifl::util {
namespace {

TEST(SegmentedIdSet, InsertEraseContains) {
  SegmentedIdSet set(100);
  EXPECT_TRUE(set.empty());
  set.insert(5);
  set.insert(99);
  set.insert(0);
  set.insert(5);  // duplicate: no-op
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(6));
  set.erase(5);
  set.erase(5);  // absent: no-op
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.contains(5));
  EXPECT_EQ(set.to_vector(), (std::vector<std::size_t>{0, 99}));
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(SegmentedIdSet, RejectsIdsOutsideUniverse) {
  SegmentedIdSet set(10);
  EXPECT_THROW(set.insert(10), std::out_of_range);
  EXPECT_THROW(set.contains(11), std::out_of_range);
  EXPECT_THROW(set.kth(0), std::out_of_range);  // empty
}

TEST(SegmentedIdSet, KthAndRankMatchFlatSortedVectorAcrossBlocks) {
  // Universe spans multiple blocks so rank/select cross block boundaries.
  const std::size_t universe = SegmentedIdSet::kBlockSpan * 3 + 17;
  SegmentedIdSet set(universe);
  std::set<std::size_t> reference;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t id = rng.uniform_index(universe);
    if (rng.uniform_index(3) == 0) {
      set.erase(id);
      reference.erase(id);
    } else {
      set.insert(id);
      reference.insert(id);
    }
  }
  const std::vector<std::size_t> flat(reference.begin(), reference.end());
  ASSERT_EQ(set.size(), flat.size());
  EXPECT_EQ(set.to_vector(), flat);
  for (std::size_t k = 0; k < flat.size(); k += 37) {
    EXPECT_EQ(set.kth(k), flat[k]) << "k=" << k;
  }
  for (std::size_t probe = 0; probe < universe; probe += 1013) {
    const std::size_t expected = static_cast<std::size_t>(
        std::lower_bound(flat.begin(), flat.end(), probe) - flat.begin());
    EXPECT_EQ(set.rank(probe), expected) << "probe=" << probe;
  }
}

TEST(SegmentedIdSet, ForEachVisitsAscending) {
  SegmentedIdSet set(SegmentedIdSet::kBlockSpan * 2);
  set.insert(SegmentedIdSet::kBlockSpan + 1);
  set.insert(3);
  set.insert(SegmentedIdSet::kBlockSpan - 1);
  std::vector<std::size_t> seen;
  set.for_each([&seen](std::size_t id) { seen.push_back(id); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace tifl::util
