#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.h"
#include "util/log.h"
#include "util/table.h"

namespace tifl::util {
namespace {

// --- TablePrinter ------------------------------------------------------------

TEST(TablePrinter, AlignsColumnsAndPrintsHeaders) {
  TablePrinter table({"Policy", "Time [s]"});
  table.add_row({"vanilla", "44977"});
  table.add_row({"fast", "1750"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Policy"), std::string::npos);
  EXPECT_NE(out.find("vanilla"), std::string::npos);
  EXPECT_NE(out.find("1750"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinter, NumericRowFormatsPrecision) {
  TablePrinter table({"name", "v"});
  table.add_row("row", {3.14159}, 2);
  EXPECT_NE(table.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(table.to_string().find("3.142"), std::string::npos);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NE(table.to_string().find("only"), std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// --- CsvWriter ---------------------------------------------------------------

TEST(CsvWriter, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "tifl_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.write_row({"a", "with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, PlainRowUnquoted) {
  const std::string path = ::testing::TempDir() + "tifl_csv_test2.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"x", "1", "2.5"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,1,2.5");
  std::remove(path.c_str());
}

// --- Cli ---------------------------------------------------------------------

TEST(Cli, ParsesFlagsKeyValueAndEquals) {
  const char* argv[] = {"prog",     "--full",     "--rounds", "500",
                        "--lr=0.01", "positional", "--neg",    "-3"};
  Cli cli(8, argv);
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_EQ(cli.get_int("rounds", 0), 500);
  EXPECT_DOUBLE_EQ(cli.get_double("lr", 0.0), 0.01);
  EXPECT_EQ(cli.get_int("neg", 0), -3);
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "positional");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("anything"));
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("flag"));
  EXPECT_TRUE(cli.get_bool("flag", true));
}

TEST(Cli, ExplicitFalseValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no"};
  Cli cli(4, argv);
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("c", true));
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  const char* argv[] = {"prog", "--x", "--y", "7"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("x"));
  EXPECT_EQ(cli.get_int("y", 0), 7);
}

// --- Log ---------------------------------------------------------------------

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Nothing to assert on output without capturing stderr; the contract
  // here is that calls below the threshold are cheap no-ops and do not
  // crash.
  log_debug("invisible ", 1);
  log_info("invisible ", 2);
  log_warn("invisible ", 3);
  set_log_level(saved);
}

}  // namespace
}  // namespace tifl::util
