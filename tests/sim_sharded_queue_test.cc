// Oracle-backed determinism suite for the sharded event queue: every
// randomized schedule/schedule_bulk/pop/pop_batch/pop_until interleaving
// replayed on a ShardedEventQueue must produce the exact (time, seq) pop
// order of the single-heap sim::EventQueue fed the same calls — for shard
// counts 1/2/4/8, including bulk cohorts straddling shard-ownership
// boundaries and same-timestamp cross-shard drains.  This is the contract
// the engines' bit-reproducibility across --shards values rests on.
#include "sim/sharded_event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace tifl::sim {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

bool same_event(const Event& a, const Event& b) {
  return a.time == b.time && a.seq == b.seq && a.kind == b.kind &&
         a.actor == b.actor;
}

TEST(ShardedEventQueue, StartsEmptyAtTimeZero) {
  ShardedEventQueue queue(4, 100);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.now(), 0.0);
  EXPECT_EQ(queue.shard_count(), 4u);
}

TEST(ShardedEventQueue, ShardCountClampsToActorSpace) {
  EXPECT_EQ(ShardedEventQueue(0, 100).shard_count(), 1u);
  EXPECT_EQ(ShardedEventQueue(8, 3).shard_count(), 3u);
  EXPECT_EQ(ShardedEventQueue(8, 0).shard_count(), 1u);
}

TEST(ShardedEventQueue, OwnershipRangesAreContiguousAndComplete) {
  const std::size_t num_actors = 103;  // deliberately not divisible
  ShardedEventQueue queue(4, num_actors);
  std::size_t previous = 0;
  for (std::uint64_t actor = 0; actor < num_actors; ++actor) {
    const std::size_t shard = queue.shard_of(actor);
    ASSERT_LT(shard, queue.shard_count());
    ASSERT_GE(shard, previous) << "ownership must be contiguous";
    previous = shard;
  }
  EXPECT_EQ(queue.shard_of(0), 0u);
  EXPECT_EQ(queue.shard_of(num_actors - 1), queue.shard_count() - 1);
  // Control actors beyond the population fold onto the last shard.
  EXPECT_EQ(queue.shard_of(num_actors + 7), queue.shard_count() - 1);
}

TEST(ShardedEventQueue, SimultaneousCrossShardEventsPopInInsertionOrder) {
  // 16 actors spread across every shard, all at one timestamp: the drain
  // must interleave shards back into global seq (insertion) order.
  ShardedEventQueue queue(4, 16);
  for (std::uint64_t actor = 15; actor < 16; --actor) {
    queue.schedule_at(7.0, /*kind=*/0, actor);
    if (actor == 0) break;
  }
  std::vector<Event> batch;
  queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 16u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].seq, i);
    EXPECT_EQ(batch[i].actor, 15 - i);  // insertion order, not actor order
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 7.0);
}

TEST(ShardedEventQueue, ValidationMatchesEventQueue) {
  ShardedEventQueue queue(2, 10);
  EXPECT_THROW(queue.schedule(-1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.schedule(std::nan(""), 0, 0), std::invalid_argument);
  EXPECT_THROW(queue.peek(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
  std::vector<Event> batch;
  EXPECT_THROW(queue.pop_batch(batch), std::logic_error);
  queue.schedule_at(5.0, 0, 0);
  queue.pop();
  EXPECT_THROW(queue.schedule_at(4.0, 0, 0), std::invalid_argument);
  // Bulk validation is all-or-nothing: one bad delay schedules nothing.
  const std::vector<PendingEvent> bad{{1.0, 0, 1}, {-2.0, 0, 2}};
  EXPECT_THROW(queue.schedule_bulk(bad), std::invalid_argument);
  EXPECT_TRUE(queue.empty());
}

// One randomized op-sequence driver, replayed on the oracle (EventQueue)
// and on a ShardedEventQueue per shard count.  Ops are drawn from a
// seeded stream so failures reproduce; timestamps collide on a coarse
// grid to force same-timestamp cross-shard drains; bulk cohorts span the
// whole actor space so they straddle every ownership boundary.
template <typename Queue>
std::vector<Event> drive(Queue& queue, std::uint64_t seed,
                         std::size_t num_actors, std::size_t ops) {
  util::Rng rng(seed);
  std::vector<Event> popped;
  std::vector<Event> batch;
  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint64_t action = rng.uniform_index(6);
    switch (action) {
      case 0:
      case 1: {  // single schedule on a colliding time grid
        const double delay =
            static_cast<double>(rng.uniform_index(8)) * 0.25;
        queue.schedule(delay, /*kind=*/action,
                       /*actor=*/rng.uniform_index(num_actors));
        break;
      }
      case 2: {  // bulk cohort straddling shard boundaries
        const std::size_t count = 1 + rng.uniform_index(12);
        std::vector<PendingEvent> cohort;
        cohort.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          cohort.push_back(PendingEvent{
              .delay = static_cast<double>(rng.uniform_index(6)) * 0.5,
              .kind = 2,
              .actor = rng.uniform_index(num_actors)});
        }
        queue.schedule_bulk(cohort);
        break;
      }
      case 3: {  // pop one
        if (!queue.empty()) popped.push_back(queue.pop());
        break;
      }
      case 4: {  // same-timestamp batch drain
        if (!queue.empty()) {
          queue.pop_batch(batch);
          popped.insert(popped.end(), batch.begin(), batch.end());
        }
        break;
      }
      case 5: {  // horizon drain
        if (!queue.empty()) {
          queue.pop_until(queue.peek().time + 0.75, batch);
          popped.insert(popped.end(), batch.begin(), batch.end());
        }
        break;
      }
    }
  }
  while (!queue.empty()) popped.push_back(queue.pop());
  return popped;
}

TEST(ShardedEventQueue, RandomizedInterleavingsMatchSingleHeapOracle) {
  const std::size_t num_actors = 59;  // prime: uneven ownership ranges
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EventQueue oracle;
    const std::vector<Event> expected = drive(oracle, seed, num_actors, 200);
    for (std::size_t shards : kShardCounts) {
      ShardedEventQueue queue(shards, num_actors);
      const std::vector<Event> got = drive(queue, seed, num_actors, 200);
      ASSERT_EQ(got.size(), expected.size())
          << "seed " << seed << " shards " << shards;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(same_event(got[i], expected[i]))
            << "seed " << seed << " shards " << shards << " event " << i
            << ": got (t=" << got[i].time << ", seq=" << got[i].seq
            << ") want (t=" << expected[i].time
            << ", seq=" << expected[i].seq << ")";
      }
      EXPECT_EQ(queue.now(), oracle.now())
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardedEventQueue, ResetRewindsClockButKeepsSeqMonotone) {
  ShardedEventQueue queue(4, 16);
  queue.schedule_at(3.0, 0, 1);
  const std::uint64_t seq_before = queue.schedule_at(4.0, 0, 9);
  queue.pop();
  queue.reset();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 0.0);
  const std::uint64_t seq_after = queue.schedule_at(1.0, 0, 2);
  EXPECT_GT(seq_after, seq_before);
}

TEST(ShardedEventQueue, MergedMetricsAreShardCountInvariant) {
  // Same op sequence at every shard count: the merged registry snapshot —
  // dropping the wall-clock *_ns sampling histograms — must be
  // byte-identical, the per-shard-metrics determinism guarantee.
  const auto deterministic = [](std::string_view name) {
    return !name.ends_with("_ns");
  };
  std::string golden;
  for (std::size_t shards : kShardCounts) {
    ShardedEventQueue queue(shards, 59);
    drive(queue, /*seed=*/7, /*num_actors=*/59, /*ops=*/200);
    obs::Registry merged;
    queue.merge_metrics_into(merged);
    const std::string json = merged.to_json(deterministic);
    if (golden.empty()) {
      golden = json;
      EXPECT_NE(golden.find("sim.events_scheduled"), std::string::npos);
      EXPECT_NE(golden.find("sim.events_popped"), std::string::npos);
      EXPECT_NE(golden.find("sim.queue_depth_max"), std::string::npos);
    } else {
      EXPECT_EQ(json, golden) << "shards " << shards;
    }
  }
}

}  // namespace
}  // namespace tifl::sim
