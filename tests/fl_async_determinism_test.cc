// Cross-engine determinism regression: the async engine's results are a
// pure function of the seed, independent of how many worker threads train
// clients.  PR 1 asserted this only implicitly (event-ordered reductions,
// per-(dispatch, client) RNG forks); this locks it in by running the same
// federation on thread pools of size 1, 2 and 8 and comparing final model
// hashes bit for bit — for both the static and the dynamic lifecycle
// paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>

#include <sstream>

#include <string>
#include <string_view>

#include "core/adaptive_policy.h"
#include "fl/async_engine.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace tifl::fl {
namespace {

using testing::FederationBuilder;
using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::two_tiers;
using testing::TinyFederation;

// FNV-1a over the raw float bits: any single-bit divergence flips it.
std::uint64_t weight_hash(const std::vector<float>& weights) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (float w : weights) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(w));
    std::memcpy(&bits, &w, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

AsyncRunResult run_with_pool_size(const AsyncConfig& async,
                                  std::size_t threads,
                                  const nn::ModelFactory& factory,
                                  SelectionPolicy* policy = nullptr) {
  TinyFederation fed = FederationBuilder().clients(10).jitter(0.05).build();
  AsyncEngine engine(tiny_engine_config(1), async, factory, &fed.clients,
                     two_tiers(10), &fed.data.test, fed.latency);
  engine.set_policy(policy);
  util::ThreadPool pool(threads);
  engine.set_thread_pool(&pool);
  return engine.run();
}

void expect_pool_size_invariance(
    const AsyncConfig& async, const nn::ModelFactory& factory = tiny_factory()) {
  const AsyncRunResult r1 = run_with_pool_size(async, 1, factory);
  const AsyncRunResult r2 = run_with_pool_size(async, 2, factory);
  const AsyncRunResult r8 = run_with_pool_size(async, 8, factory);

  const std::uint64_t h1 = weight_hash(r1.final_weights);
  EXPECT_EQ(h1, weight_hash(r2.final_weights));
  EXPECT_EQ(h1, weight_hash(r8.final_weights));
  // Hash equality should reflect true bitwise equality, not collision.
  EXPECT_EQ(r1.final_weights, r2.final_weights);
  EXPECT_EQ(r1.final_weights, r8.final_weights);

  ASSERT_EQ(r1.result.rounds.size(), r8.result.rounds.size());
  for (std::size_t i = 0; i < r1.result.rounds.size(); ++i) {
    EXPECT_EQ(r1.result.rounds[i].selected_clients,
              r8.result.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(r1.result.rounds[i].virtual_time,
                     r8.result.rounds[i].virtual_time);
    EXPECT_DOUBLE_EQ(r1.result.rounds[i].global_accuracy,
                     r8.result.rounds[i].global_accuracy);
  }
}

TEST(AsyncDeterminism, StaticPathIsThreadPoolSizeInvariant) {
  AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 4;  // > 2 cores: chunks actually split
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  expect_pool_size_invariance(async);
}

TEST(AsyncDeterminism, CnnTrainingIsThreadPoolSizeInvariant) {
  // Same invariance through the conv stack: batch im2col, the blocked /
  // stream / small GEMM dispatch, fused ReLU epilogues and workspace reuse
  // must all be pool-size-oblivious.  Training runs inside pool workers
  // (serial kernels) while the shared evaluation forward runs at top level
  // (tiled kernels) — both paths are exercised here.
  AsyncConfig async;
  async.total_updates = 8;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kConstant;
  expect_pool_size_invariance(async, [](std::uint64_t seed) {
    util::Rng rng(seed);
    nn::Sequential model;
    model.add(std::make_unique<nn::Conv2D>(1, 8, 3, rng));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Flatten>());
    model.add(std::make_unique<nn::Dense>(8 * 4 * 4, 4, rng));
    return model;
  });
}

TEST(AsyncDeterminism, DynamicLifecyclePathIsThreadPoolSizeInvariant) {
  AsyncConfig async;
  async.total_updates = 24;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kPolynomial;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  expect_pool_size_invariance(async);
}

// --- policy seam --------------------------------------------------------------
//
// The default (no policy installed) must replay the pre-seam engine's
// uniform self-sampling bit for bit, and an *explicitly installed*
// UniformTierPolicy must be indistinguishable from it — on both run
// paths, across pool sizes 1/2/8.  Any drift here means the seam
// perturbed RNG stream consumption.

void expect_uniform_policy_matches_default(const AsyncConfig& async) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    UniformTierPolicy uniform(async.clients_per_tier_round);
    const AsyncRunResult with_default =
        run_with_pool_size(async, threads, tiny_factory());
    const AsyncRunResult with_policy =
        run_with_pool_size(async, threads, tiny_factory(), &uniform);
    EXPECT_EQ(weight_hash(with_default.final_weights),
              weight_hash(with_policy.final_weights));
    EXPECT_EQ(with_default.final_weights, with_policy.final_weights);
    ASSERT_EQ(with_default.result.rounds.size(),
              with_policy.result.rounds.size());
    for (std::size_t i = 0; i < with_default.result.rounds.size(); ++i) {
      EXPECT_EQ(with_default.result.rounds[i].selected_clients,
                with_policy.result.rounds[i].selected_clients);
      EXPECT_DOUBLE_EQ(with_default.result.rounds[i].virtual_time,
                       with_policy.result.rounds[i].virtual_time);
    }
    EXPECT_EQ(with_default.tier_updates, with_policy.tier_updates);
  }
}

TEST(AsyncDeterminism, ExplicitUniformPolicyReplaysDefaultStaticPath) {
  AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  expect_uniform_policy_matches_default(async);
}

TEST(AsyncDeterminism, ExplicitUniformPolicyReplaysDefaultDynamicPath) {
  AsyncConfig async;
  async.total_updates = 20;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kPolynomial;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  expect_uniform_policy_matches_default(async);
}

TEST(AsyncDeterminism, AdaptivePolicySeamIsThreadPoolSizeInvariant) {
  // The full Alg. 2 seam (per-tier counts, credits, ChangeProbs driven by
  // per-tier feedback) must stay a pure function of the seed too.
  AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 4;
  async.eval_every = 2;
  async.staleness = StalenessFn::kInverseFrequency;

  auto run_adaptive = [&](std::size_t threads) {
    core::TierInfo tiers;
    tiers.members = two_tiers(10);
    tiers.avg_latency = {1.0, 2.0};
    core::AdaptiveConfig adaptive;
    adaptive.clients_per_round = async.clients_per_tier_round;
    adaptive.interval = 4;
    core::AdaptiveTierPolicy policy(tiers, adaptive, async.total_updates);
    return run_with_pool_size(async, threads, tiny_factory(), &policy);
  };
  const AsyncRunResult r1 = run_adaptive(1);
  const AsyncRunResult r2 = run_adaptive(2);
  const AsyncRunResult r8 = run_adaptive(8);
  EXPECT_EQ(r1.final_weights, r2.final_weights);
  EXPECT_EQ(r1.final_weights, r8.final_weights);
  ASSERT_EQ(r1.result.rounds.size(), r8.result.rounds.size());
  for (std::size_t i = 0; i < r1.result.rounds.size(); ++i) {
    EXPECT_EQ(r1.result.rounds[i].selected_clients,
              r8.result.rounds[i].selected_clients);
  }
}

// --- batched event loop over a virtualized pool ------------------------------
//
// The engine's loops now consume same-timestamp batches (pop_batch) and
// bulk-schedule cohorts (schedule_bulk), and clients materialize lazily
// through a ClientPool LRU.  The same pool-size sweep must still be
// bitwise invariant: cache hits/misses, eviction order and batch
// boundaries may not leak into results.

AsyncRunResult run_virtual_with_pool_size(const AsyncConfig& async,
                                          std::size_t threads) {
  auto data = std::make_unique<data::SyntheticData>(testing::tiny_data());
  ClientPool::VirtualConfig config;
  config.train = &data->train;
  config.shards = data::LazyShards(
      data->train.size(), 64, {.samples_per_client = 30, .spread = 0.5}, 7);
  config.profiles.assign(64, sim::ResourceProfile{});
  for (std::size_t c = 0; c < 64; ++c) {
    config.profiles[c].cpus = c < 32 ? 2.0 : 0.5;
    config.profiles[c].jitter_sigma = 0.05;
  }
  config.cache_capacity = 8;  // smaller than the population: evictions occur
  ClientPool pool(std::move(config));

  AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(), &pool,
                     two_tiers(64), &data->test, sim::LatencyModel({0.01, 1.0}));
  util::ThreadPool workers(threads);
  engine.set_thread_pool(&workers);
  return engine.run();
}

TEST(AsyncDeterminism, VirtualPoolBatchedLoopIsThreadPoolSizeInvariant) {
  AsyncConfig async;
  async.total_updates = 20;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;

  const AsyncRunResult r1 = run_virtual_with_pool_size(async, 1);
  const AsyncRunResult r2 = run_virtual_with_pool_size(async, 2);
  const AsyncRunResult r8 = run_virtual_with_pool_size(async, 8);

  EXPECT_EQ(r1.final_weights, r2.final_weights);
  EXPECT_EQ(r1.final_weights, r8.final_weights);
  EXPECT_EQ(r1.processed_events, r8.processed_events);
  ASSERT_EQ(r1.result.rounds.size(), r8.result.rounds.size());
  for (std::size_t i = 0; i < r1.result.rounds.size(); ++i) {
    EXPECT_EQ(r1.result.rounds[i].selected_clients,
              r8.result.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(r1.result.rounds[i].virtual_time,
                     r8.result.rounds[i].virtual_time);
  }
}

// --- trace stream determinism -------------------------------------------------
//
// The obs::Tracer contract (src/obs/trace.h): built-in emitters record
// only seed-derived values in virtual time, so the trace stream is
// byte-identical across thread-pool sizes.  Any wall-clock, thread-id or
// FP-reduction-order leak into an emitted field breaks this.

std::string trace_with_pool_size(const AsyncConfig& async,
                                 std::size_t threads) {
  std::ostringstream out;
  obs::Tracer tracer(&out);
  obs::TracerScope scope(&tracer);
  run_with_pool_size(async, threads, tiny_factory());
  tracer.flush();
  return out.str();
}

void expect_trace_pool_size_invariance(const AsyncConfig& async) {
  const std::string t1 = trace_with_pool_size(async, 1);
  const std::string t2 = trace_with_pool_size(async, 2);
  const std::string t8 = trace_with_pool_size(async, 8);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  // Repeat at the same pool size: also a pure function of the seed.
  EXPECT_EQ(t1, trace_with_pool_size(async, 1));
}

TEST(AsyncDeterminism, StaticPathTraceIsByteIdenticalAcrossPoolSizes) {
  AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  expect_trace_pool_size_invariance(async);
}

TEST(AsyncDeterminism, DynamicPathTraceIsByteIdenticalAcrossPoolSizes) {
  AsyncConfig async;
  async.total_updates = 20;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kPolynomial;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  expect_trace_pool_size_invariance(async);
}

// --- worker-shard determinism -------------------------------------------------
//
// Tentpole contract of the sharded runtime: partitioning the event queue
// (sim::ShardedEventQueue) and the virtual client cache across worker
// shards may never change results.  Final weights, the per-version round
// series, the JSONL trace stream and the filtered metrics snapshot must
// be byte-identical across shard counts 1/2/4/8 — at every thread-pool
// size, on both run paths, with and without a barrier window.

// Metrics snapshot with the legitimately shard-variant instruments
// dropped: `*_ns` histograms record wall time, `pool.*` counters depend
// on cache/LRU segment locality, and sim.schedule_horizon's double-
// valued sum reassociates when per-shard partials merge (its integer
// count still has to match, via sim.events_scheduled).  Everything else
// — event counts, dispatch/round/churn counters, staleness histograms —
// must match byte for byte.
std::string filtered_metrics_snapshot() {
  return obs::Registry::global().to_json([](std::string_view name) {
    return !name.ends_with("_ns") && name.substr(0, 5) != "pool." &&
           name != "sim.schedule_horizon";
  });
}

struct ShardRunOutput {
  AsyncRunResult result;
  std::string trace;
  std::string metrics;
};

// One run at a given (shards, threads, window) with the global registry
// reset around it, so the snapshot covers exactly this run.
ShardRunOutput run_sharded(AsyncConfig async, std::size_t shards,
                           std::size_t threads, double window,
                           bool virtual_pool) {
  async.shards = shards;
  async.barrier_window = window;
  obs::Registry::global().reset();
  ShardRunOutput out;
  std::ostringstream trace_out;
  {
    obs::Tracer tracer(&trace_out);
    obs::TracerScope scope(&tracer);
    out.result = virtual_pool
                     ? run_virtual_with_pool_size(async, threads)
                     : run_with_pool_size(async, threads, tiny_factory());
    tracer.flush();
  }
  out.trace = trace_out.str();
  out.metrics = filtered_metrics_snapshot();
  return out;
}

void expect_shard_count_invariance(const AsyncConfig& async, double window,
                                   bool virtual_pool) {
  const ShardRunOutput base =
      run_sharded(async, 1, /*threads=*/1, window, virtual_pool);
  EXPECT_FALSE(base.trace.empty());
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      const ShardRunOutput run =
          run_sharded(async, shards, threads, window, virtual_pool);
      EXPECT_EQ(base.result.final_weights, run.result.final_weights)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(base.result.processed_events, run.result.processed_events);
      ASSERT_EQ(base.result.result.rounds.size(),
                run.result.result.rounds.size());
      for (std::size_t i = 0; i < base.result.result.rounds.size(); ++i) {
        EXPECT_EQ(base.result.result.rounds[i].selected_clients,
                  run.result.result.rounds[i].selected_clients);
        EXPECT_DOUBLE_EQ(base.result.result.rounds[i].virtual_time,
                         run.result.result.rounds[i].virtual_time);
      }
      EXPECT_EQ(base.trace, run.trace)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(base.metrics, run.metrics)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(AsyncDeterminism, StaticPathIsShardCountInvariant) {
  AsyncConfig async;
  async.total_updates = 16;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  expect_shard_count_invariance(async, /*window=*/0.0,
                                /*virtual_pool=*/false);
}

TEST(AsyncDeterminism, ChurnedVirtualPathIsShardCountInvariant) {
  AsyncConfig async;
  async.total_updates = 20;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kInverseFrequency;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  expect_shard_count_invariance(async, /*window=*/0.0, /*virtual_pool=*/true);
}

TEST(AsyncDeterminism, BarrierWindowReplaysWindowZeroByteForByte) {
  // Deferred cohort training: any barrier window must replay the window-0
  // run exactly — training tasks read only their dispatch-time snapshot
  // with RNGs forked from (dispatch seq, client id), so the flush point
  // cannot matter.  Cross-checked over shard counts and a churned run.
  AsyncConfig async;
  async.total_updates = 20;
  async.clients_per_tier_round = 4;
  async.eval_every = 4;
  async.staleness = StalenessFn::kPolynomial;
  async.churn.join_rate = 0.05;
  async.churn.leave_rate = 0.05;
  async.churn.slowdown_rate = 0.1;
  const ShardRunOutput base =
      run_sharded(async, 1, /*threads=*/2, /*window=*/0.0,
                  /*virtual_pool=*/false);
  for (double window : {0.05, 0.5, 5.0}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const ShardRunOutput run = run_sharded(async, shards, /*threads=*/2,
                                             window, /*virtual_pool=*/false);
      EXPECT_EQ(base.result.final_weights, run.result.final_weights)
          << "window=" << window << " shards=" << shards;
      EXPECT_EQ(base.trace, run.trace)
          << "window=" << window << " shards=" << shards;
    }
  }
  // The dynamic-path default config above with a wide window really does
  // defer: at least one barrier flushed more than one task.
  obs::Registry::global().reset();
  AsyncConfig wide = async;
  wide.shards = 2;
  wide.barrier_window = 5.0;
  run_with_pool_size(wide, 2, tiny_factory());
  const std::string snapshot = obs::Registry::global().to_json();
  EXPECT_NE(snapshot.find("async.barriers"), std::string::npos);
  EXPECT_NE(snapshot.find("async.barrier_tasks"), std::string::npos);
}

}  // namespace
}  // namespace tifl::fl
