#include "fl/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "test_helpers.h"

namespace tifl::fl {
namespace {

using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::tiny_federation;
using testing::TinyFederation;

TEST(Client, LocalUpdateReturnsShardSizeAndChangesWeights) {
  TinyFederation fed = tiny_federation();
  nn::Sequential model = tiny_factory()(1);
  const std::vector<float> global = model.weights();
  LocalTrainParams params;
  params.lr = 0.01;
  const LocalUpdate update =
      fed.clients[0].local_update(global, model, params, util::Rng(1));
  EXPECT_EQ(update.num_samples, fed.clients[0].train_size());
  EXPECT_EQ(update.weights.size(), global.size());
  bool changed = false;
  for (std::size_t i = 0; i < global.size(); ++i) {
    changed = changed || update.weights[i] != global[i];
  }
  EXPECT_TRUE(changed);
  EXPECT_GT(update.train_loss, 0.0);
}

TEST(Client, LocalUpdateIsDeterministicGivenRng) {
  TinyFederation fed = tiny_federation();
  nn::Sequential model = tiny_factory()(1);
  const std::vector<float> global = model.weights();
  LocalTrainParams params;
  const LocalUpdate a =
      fed.clients[2].local_update(global, model, params, util::Rng(42));
  const LocalUpdate b =
      fed.clients[2].local_update(global, model, params, util::Rng(42));
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.train_loss, b.train_loss);
}

TEST(Client, EmptyShardReturnsGlobalWeightsUnchanged) {
  TinyFederation fed = tiny_federation();
  Client empty(99, &fed.data.train, {}, {}, sim::ResourceProfile{});
  nn::Sequential model = tiny_factory()(1);
  const std::vector<float> global = model.weights();
  const LocalUpdate update =
      empty.local_update(global, model, LocalTrainParams{}, util::Rng(1));
  EXPECT_EQ(update.num_samples, 0u);
  EXPECT_EQ(update.weights, global);
}

TEST(Client, DpClipBoundsUpdateNorm) {
  TinyFederation fed = tiny_federation();
  nn::Sequential model = tiny_factory()(1);
  const std::vector<float> global = model.weights();
  LocalTrainParams params;
  params.lr = 0.1;  // big steps so clipping engages
  params.dp_clip_norm = 0.05;
  params.dp_noise_sigma = 0.0;
  const LocalUpdate update =
      fed.clients[0].local_update(global, model, params, util::Rng(3));
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    const double d = static_cast<double>(update.weights[i]) - global[i];
    norm_sq += d * d;
  }
  EXPECT_LE(std::sqrt(norm_sq), params.dp_clip_norm + 1e-5);
}

TEST(Client, DpNoisePerturbsUpdate) {
  TinyFederation fed = tiny_federation();
  nn::Sequential model = tiny_factory()(1);
  const std::vector<float> global = model.weights();
  LocalTrainParams clean, noisy;
  clean.dp_clip_norm = noisy.dp_clip_norm = 1.0;
  noisy.dp_noise_sigma = 0.01;
  const LocalUpdate a =
      fed.clients[0].local_update(global, model, clean, util::Rng(4));
  const LocalUpdate b =
      fed.clients[0].local_update(global, model, noisy, util::Rng(4));
  EXPECT_NE(a.weights, b.weights);
}

TEST(MakeClients, WiresIdsShardsAndResources) {
  TinyFederation fed = tiny_federation(10);
  ASSERT_EQ(fed.clients.size(), 10u);
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    EXPECT_EQ(fed.clients[c].id(), c);
    EXPECT_GT(fed.clients[c].train_size(), 0u);
  }
  // cifar groups, ordered assignment: first 2 clients have 4 CPUs.
  EXPECT_EQ(fed.clients[0].resource().cpus, 4.0);
  EXPECT_EQ(fed.clients[9].resource().cpus, 0.1);
}

TEST(MakeClients, SizeMismatchThrows) {
  TinyFederation fed = tiny_federation(4);
  data::Partition partition(3);
  std::vector<std::vector<std::size_t>> shards(4);
  std::vector<sim::ResourceProfile> resources(4);
  EXPECT_THROW(
      make_clients(&fed.data.train, partition, shards, resources),
      std::invalid_argument);
}

// --- engine ---------------------------------------------------------------------

TEST(Engine, RunProducesOneRecordPerRound) {
  TinyFederation fed = tiny_federation();
  Engine engine(tiny_engine_config(8), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  const RunResult result = engine.run(policy);
  ASSERT_EQ(result.rounds.size(), 8u);
  EXPECT_EQ(result.policy_name, "vanilla");
  for (std::size_t r = 0; r < result.rounds.size(); ++r) {
    EXPECT_EQ(result.rounds[r].round, r);
    EXPECT_EQ(result.rounds[r].selected_clients.size(), 3u);
    EXPECT_GT(result.rounds[r].round_latency, 0.0);
  }
}

TEST(Engine, VirtualTimeIsCumulativeSumOfRoundLatencies) {
  TinyFederation fed = tiny_federation();
  Engine engine(tiny_engine_config(6), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  const RunResult result = engine.run(policy);
  double expected = 0.0;
  for (const RoundRecord& r : result.rounds) {
    expected += r.round_latency;
    EXPECT_NEAR(r.virtual_time, expected, 1e-9);
  }
  EXPECT_NEAR(result.total_time(), expected, 1e-9);
}

TEST(Engine, RoundLatencyEqualsMaxSelectedClientLatency) {
  // Eq. 1: with zero jitter the round latency must equal the slowest
  // selected client's expected latency exactly.
  TinyFederation fed = tiny_federation();
  Engine engine(tiny_engine_config(5), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  VanillaPolicy policy(fed.clients.size(), 4);
  const RunResult result = engine.run(policy);
  for (const RoundRecord& r : result.rounds) {
    double expected = 0.0;
    for (std::size_t c : r.selected_clients) {
      expected = std::max(expected, engine.expected_client_latency(c));
    }
    EXPECT_DOUBLE_EQ(r.round_latency, expected);
  }
}

TEST(Engine, RunIsDeterministicForSameSeed) {
  TinyFederation fed = tiny_federation();
  const fl::EngineConfig config = tiny_engine_config(5);
  Engine e1(config, tiny_factory(), fed.clients, &fed.data.test, fed.latency);
  Engine e2(config, tiny_factory(), fed.clients, &fed.data.test, fed.latency);
  VanillaPolicy p1(fed.clients.size(), 3), p2(fed.clients.size(), 3);
  const RunResult r1 = e1.run(p1);
  const RunResult r2 = e2.run(p2);
  ASSERT_EQ(r1.rounds.size(), r2.rounds.size());
  for (std::size_t i = 0; i < r1.rounds.size(); ++i) {
    EXPECT_EQ(r1.rounds[i].selected_clients, r2.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(r1.rounds[i].global_accuracy,
                     r2.rounds[i].global_accuracy);
    EXPECT_DOUBLE_EQ(r1.rounds[i].virtual_time, r2.rounds[i].virtual_time);
  }
}

TEST(Engine, DifferentSeedsDiverge) {
  TinyFederation fed = tiny_federation();
  fl::EngineConfig c1 = tiny_engine_config(5);
  fl::EngineConfig c2 = tiny_engine_config(5);
  c2.seed = c1.seed + 1;
  Engine e1(c1, tiny_factory(), fed.clients, &fed.data.test, fed.latency);
  Engine e2(c2, tiny_factory(), fed.clients, &fed.data.test, fed.latency);
  VanillaPolicy p1(fed.clients.size(), 3), p2(fed.clients.size(), 3);
  EXPECT_NE(e1.run(p1).rounds[0].selected_clients,
            e2.run(p2).rounds[0].selected_clients);
}

TEST(Engine, HierarchicalAggregationMatchesFlat) {
  TinyFederation fed = tiny_federation();
  fl::EngineConfig flat_config = tiny_engine_config(5);
  fl::EngineConfig tree_config = flat_config;
  tree_config.hierarchical_aggregation = true;
  tree_config.aggregator_fanout = 3;
  Engine flat(flat_config, tiny_factory(), fed.clients, &fed.data.test,
              fed.latency);
  Engine tree(tree_config, tiny_factory(), fed.clients, &fed.data.test,
              fed.latency);
  VanillaPolicy p1(fed.clients.size(), 4), p2(fed.clients.size(), 4);
  const RunResult r1 = flat.run(p1);
  const RunResult r2 = tree.run(p2);
  for (std::size_t i = 0; i < r1.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.rounds[i].global_accuracy,
                     r2.rounds[i].global_accuracy);
  }
}

TEST(Engine, AccuracyImprovesOverTraining) {
  TinyFederation fed = tiny_federation();
  Engine engine(tiny_engine_config(15), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  VanillaPolicy policy(fed.clients.size(), 5);
  const RunResult result = engine.run(policy);
  EXPECT_GT(result.final_accuracy(), 0.5);  // 4 classes, chance = 0.25
  EXPECT_GT(result.final_accuracy(), result.rounds.front().global_accuracy);
}

TEST(Engine, EvalEverySkipsButCarriesForward) {
  TinyFederation fed = tiny_federation();
  fl::EngineConfig config = tiny_engine_config(6);
  config.eval_every = 3;
  Engine engine(config, tiny_factory(), fed.clients, &fed.data.test,
                fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  const RunResult result = engine.run(policy);
  // Rounds 1, 2 carry round 0's accuracy; round 3 re-evaluates.
  EXPECT_EQ(result.rounds[1].global_accuracy,
            result.rounds[0].global_accuracy);
  EXPECT_EQ(result.rounds[2].global_accuracy,
            result.rounds[0].global_accuracy);
}

TEST(Engine, TierEvalSetsProduceFeedback) {
  TinyFederation fed = tiny_federation();

  // Two fake "tiers": first half / second half of the test set.
  std::vector<std::size_t> first_half, second_half;
  for (std::size_t i = 0; i < fed.data.test.size(); ++i) {
    (i < fed.data.test.size() / 2 ? first_half : second_half).push_back(i);
  }
  std::vector<data::Dataset> tier_sets;
  tier_sets.push_back(fed.data.test.subset(first_half));
  tier_sets.push_back(fed.data.test.subset(second_half));

  Engine engine(tiny_engine_config(3), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  engine.set_tier_eval_sets(std::move(tier_sets));

  struct Recorder final : SelectionPolicy {
    VanillaPolicy inner;
    std::vector<std::size_t> feedback_sizes;
    explicit Recorder(std::size_t n) : inner(n, 3) {}
    Selection select(const SelectionContext& context) override {
      return inner.select(context);
    }
    void observe(const RoundFeedback& f) override {
      feedback_sizes.push_back(f.tier_accuracies.size());
    }
    std::string name() const override { return "recorder"; }
  } recorder(fed.clients.size());

  engine.run(recorder);
  ASSERT_EQ(recorder.feedback_sizes.size(), 3u);
  for (std::size_t n : recorder.feedback_sizes) EXPECT_EQ(n, 2u);
}

TEST(Engine, OverProvisioningDropsStragglersFromRoundLatency) {
  // With aggregate_count = k, the round latency is the k-th fastest
  // selected client's latency — strictly below the slowest selected
  // client's whenever a straggler was among the selection.
  TinyFederation fed = tiny_federation(20);
  Engine engine(tiny_engine_config(10), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  OverProvisionPolicy policy(fed.clients.size(), 5);  // selects 7
  const RunResult result = engine.run(policy);
  for (const RoundRecord& r : result.rounds) {
    ASSERT_EQ(r.selected_clients.size(), 7u);
    std::vector<double> latencies;
    for (std::size_t c : r.selected_clients) {
      latencies.push_back(engine.expected_client_latency(c));
    }
    std::sort(latencies.begin(), latencies.end());
    EXPECT_DOUBLE_EQ(r.round_latency, latencies[4]);  // 5th fastest
  }
}

TEST(Engine, OverProvisioningFasterThanVanillaAtSameTarget) {
  TinyFederation fed = tiny_federation(20);
  Engine engine(tiny_engine_config(12), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);
  VanillaPolicy vanilla(fed.clients.size(), 5);
  OverProvisionPolicy overprov(fed.clients.size(), 5);
  const double vanilla_time = engine.run(vanilla).total_time();
  const double overprov_time = engine.run(overprov).total_time();
  EXPECT_LT(overprov_time, vanilla_time);
}

TEST(Engine, AggregateCountZeroKeepsEveryUpdate) {
  // aggregate_count == 0 (or == n) must reproduce plain behaviour.
  TinyFederation fed = tiny_federation(10);
  Engine engine(tiny_engine_config(5), tiny_factory(), fed.clients,
                &fed.data.test, fed.latency);

  struct Full final : SelectionPolicy {
    VanillaPolicy inner;
    explicit Full(std::size_t n) : inner(n, 4) {}
    Selection select(const SelectionContext& context) override {
      Selection s = inner.select(context);
      s.aggregate_count = s.clients.size();  // "drop none"
      return s;
    }
    std::string name() const override { return "full"; }
  } full(fed.clients.size());

  VanillaPolicy plain(fed.clients.size(), 4);
  const RunResult a = engine.run(full);
  const RunResult b = engine.run(plain);
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].global_accuracy,
                     b.rounds[i].global_accuracy);
    EXPECT_DOUBLE_EQ(a.rounds[i].round_latency, b.rounds[i].round_latency);
  }
}

TEST(Engine, SecureAggregationMatchesPlainFedAvgClosely) {
  // Masks cancel: the securely aggregated federation must track the
  // plain one to float-mask-residue precision, round for round.
  TinyFederation fed = tiny_federation(10);
  fl::EngineConfig plain_config = tiny_engine_config(5);
  fl::EngineConfig secure_config = plain_config;
  secure_config.secure_aggregation = true;
  Engine plain(plain_config, tiny_factory(), fed.clients, &fed.data.test,
               fed.latency);
  Engine secure(secure_config, tiny_factory(), fed.clients, &fed.data.test,
                fed.latency);
  VanillaPolicy p1(fed.clients.size(), 4), p2(fed.clients.size(), 4);
  const RunResult a = plain.run(p1);
  const RunResult b = secure.run(p2);
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].selected_clients, b.rounds[i].selected_clients);
    EXPECT_NEAR(a.rounds[i].global_accuracy, b.rounds[i].global_accuracy,
                0.03);
  }
  EXPECT_GT(b.final_accuracy(), 0.5);
}

TEST(Engine, SecureAggregationRejectsStragglerDropping) {
  TinyFederation fed = tiny_federation(10);
  fl::EngineConfig config = tiny_engine_config(3);
  config.secure_aggregation = true;
  Engine engine(config, tiny_factory(), fed.clients, &fed.data.test,
                fed.latency);
  OverProvisionPolicy policy(fed.clients.size(), 4);  // drops stragglers
  EXPECT_THROW(engine.run(policy), std::logic_error);
}

TEST(Engine, TimeBudgetStopsEarly) {
  // §4.5: finite budgets.  The engine stops after the first round whose
  // completion crosses the budget.
  TinyFederation fed = tiny_federation(10);
  fl::EngineConfig config = tiny_engine_config(1000);
  Engine unbounded(config, tiny_factory(), fed.clients, &fed.data.test,
                   fed.latency);
  VanillaPolicy probe(fed.clients.size(), 3);
  const double one_round =
      unbounded.run(probe).rounds.front().round_latency;

  config.time_budget_seconds = one_round * 5.5;
  Engine budgeted(config, tiny_factory(), fed.clients, &fed.data.test,
                  fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  const RunResult result = budgeted.run(policy);
  EXPECT_LT(result.rounds.size(), 1000u);
  EXPECT_GE(result.total_time(), config.time_budget_seconds);
  // Exactly one round past the budget, never more.
  EXPECT_LT(result.rounds[result.rounds.size() - 2].virtual_time,
            config.time_budget_seconds);
}

TEST(Engine, ZeroTimeBudgetMeansUnlimited) {
  TinyFederation fed = tiny_federation(10);
  fl::EngineConfig config = tiny_engine_config(7);
  config.time_budget_seconds = 0.0;
  Engine engine(config, tiny_factory(), fed.clients, &fed.data.test,
                fed.latency);
  VanillaPolicy policy(fed.clients.size(), 3);
  EXPECT_EQ(engine.run(policy).rounds.size(), 7u);
}

TEST(Engine, ConstructorValidation) {
  TinyFederation fed = tiny_federation();
  EXPECT_THROW(Engine(tiny_engine_config(1), tiny_factory(), {},
                      &fed.data.test, fed.latency),
               std::invalid_argument);
  EXPECT_THROW(Engine(tiny_engine_config(1), tiny_factory(), fed.clients,
                      nullptr, fed.latency),
               std::invalid_argument);
}

// --- metrics --------------------------------------------------------------------

TEST(RunResult, TimeHelpers) {
  RunResult result;
  for (std::size_t r = 0; r < 4; ++r) {
    RoundRecord record;
    record.round = r;
    record.round_latency = 10.0;
    record.virtual_time = 10.0 * static_cast<double>(r + 1);
    record.global_accuracy = 0.2 * static_cast<double>(r + 1);
    result.rounds.push_back(record);
  }
  EXPECT_DOUBLE_EQ(result.total_time(), 40.0);
  EXPECT_DOUBLE_EQ(result.final_accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(result.best_accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(result.accuracy_at_time(25.0), 0.4);
  EXPECT_DOUBLE_EQ(result.accuracy_at_time(5.0), 0.0);
  EXPECT_DOUBLE_EQ(result.time_to_accuracy(0.55), 30.0);
  EXPECT_DOUBLE_EQ(result.time_to_accuracy(0.99), -1.0);
}

TEST(RunResult, WriteCsvEmitsHeaderAndRows) {
  RunResult result;
  for (std::size_t r = 0; r < 3; ++r) {
    RoundRecord record;
    record.round = r;
    record.virtual_time = 1.5 * static_cast<double>(r + 1);
    record.round_latency = 1.5;
    record.global_accuracy = 0.5;
    record.selected_tier = static_cast<int>(r);
    result.rounds.push_back(record);
  }
  const std::string path = ::testing::TempDir() + "tifl_run.csv";
  result.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "round,virtual_time,round_latency,accuracy,loss,tier");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3u);
  std::remove(path.c_str());
}

TEST(RunResult, EmptyIsSafe) {
  RunResult result;
  EXPECT_EQ(result.total_time(), 0.0);
  EXPECT_EQ(result.final_accuracy(), 0.0);
  EXPECT_EQ(result.best_accuracy(), 0.0);
  EXPECT_EQ(result.accuracy_at_time(100.0), 0.0);
}

}  // namespace
}  // namespace tifl::fl
