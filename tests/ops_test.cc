#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace tifl::tensor {
namespace {

TEST(Ops, AxpyAddsScaled) {
  Tensor x({3}, std::vector<float>{1, 2, 3});
  Tensor y({3}, std::vector<float>{10, 20, 30});
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[1], 24.0f);
  EXPECT_EQ(y[2], 36.0f);
}

TEST(Ops, AxpyShapeMismatchThrows) {
  Tensor x({3}), y({4});
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(Ops, Scale) {
  Tensor y({2}, std::vector<float>{3, -4});
  scale(y, 0.5f);
  EXPECT_EQ(y[0], 1.5f);
  EXPECT_EQ(y[1], -2.0f);
}

TEST(Ops, AddElementwise) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{10, 20});
  Tensor out({2});
  add(a, b, out);
  EXPECT_EQ(out[0], 11.0f);
  EXPECT_EQ(out[1], 22.0f);
}

TEST(Ops, AddRowBias) {
  Tensor m({2, 3}, std::vector<float>{0, 0, 0, 1, 1, 1});
  Tensor bias({3}, std::vector<float>{10, 20, 30});
  add_row_bias(m, bias);
  EXPECT_EQ(m.at(0, 0), 10.0f);
  EXPECT_EQ(m.at(0, 2), 30.0f);
  EXPECT_EQ(m.at(1, 1), 21.0f);
}

TEST(Ops, AddRowBiasShapeCheck) {
  Tensor m({2, 3});
  Tensor bias({2});
  EXPECT_THROW(add_row_bias(m, bias), std::invalid_argument);
}

TEST(Ops, ReluForwardClampsNegatives) {
  Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y({4});
  relu_forward(x, y);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(Ops, ReluForwardInPlace) {
  Tensor x({2}, std::vector<float>{-5, 5});
  relu_forward(x, x);
  EXPECT_EQ(x[0], 0.0f);
  EXPECT_EQ(x[1], 5.0f);
}

TEST(Ops, ReluBackwardMasksByInput) {
  Tensor x({4}, std::vector<float>{-1, 0.5f, 2, -3});
  Tensor dy({4}, std::vector<float>{10, 10, 10, 10});
  Tensor dx({4});
  relu_backward(x, dy, dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 10.0f);
  EXPECT_EQ(dx[2], 10.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(1);
  Tensor logits = Tensor::randn({7, 11}, rng, 3.0f);
  Tensor probs(logits.shape());
  softmax_rows(logits, probs);
  for (std::int64_t r = 0; r < 7; ++r) {
    float total = 0.0f;
    for (std::int64_t c = 0; c < 11; ++c) {
      EXPECT_GT(probs.at(r, c), 0.0f);
      total += probs.at(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  Tensor pa({1, 3}), pb({1, 3});
  softmax_rows(a, pa);
  softmax_rows(b, pb);
  EXPECT_LE(max_abs_diff(pa, pb), 1e-6f);
}

TEST(Ops, SoftmaxHandlesExtremeLogitsWithoutOverflow) {
  Tensor a({1, 2}, std::vector<float>{1000.0f, -1000.0f});
  Tensor p({1, 2});
  softmax_rows(a, p);
  EXPECT_NEAR(p[0], 1.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(p[1]));
}

TEST(Ops, ArgmaxRows) {
  Tensor m({2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, ArgmaxTakesFirstOnTies) {
  Tensor m({1, 3}, std::vector<float>{7, 7, 7});
  EXPECT_EQ(argmax_rows(m)[0], 0);
}

TEST(Ops, ColumnSums) {
  Tensor m({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor out({3});
  column_sums(m, out);
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[1], 7.0f);
  EXPECT_EQ(out[2], 9.0f);
}

TEST(Ops, SquaredNorm) {
  Tensor t({3}, std::vector<float>{1, 2, 2});
  EXPECT_DOUBLE_EQ(squared_norm(t), 9.0);
}

TEST(Ops, MaxAbsDiff) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{1, 2.5f, 2});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
  EXPECT_EQ(max_abs_diff(a, a), 0.0f);
}

}  // namespace
}  // namespace tifl::tensor
