// Aggregator-tree engine (fl/hier): the determinism oracle and the
// regional failure modes.
//
//  - Collapse-to-flat: a depth-1 topology replays the flat AsyncEngine
//    byte for byte — same final weights, same round series, byte-equal
//    trace stream and metrics snapshot.
//  - Multi-region runs are bit-reproducible across event-queue shard
//    counts 1/2/4/8 and training thread pools 1/2/8.
//  - Regional outages (sim::regional_outages composition) degrade the
//    affected region gracefully and never break determinism.
//  - A run crashed mid-tree and resumed from its checkpoint reproduces
//    the uninterrupted run exactly.
#include "fl/hier/tree_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fl/async_engine.h"
#include "fl/client_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/churn_model.h"
#include "sim/fault_model.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace tifl::fl::hier {
namespace {

using testing::FederationBuilder;
using testing::tiny_engine_config;
using testing::tiny_factory;
using testing::two_tiers;
using testing::TinyFederation;

constexpr std::size_t kClients = 12;

std::uint64_t weight_hash(const std::vector<float>& weights) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (float w : weights) {
    std::uint32_t bits;
    std::memcpy(&bits, &w, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

// Host-dependent instruments (wall clocks, cache locality) and checkpoint
// accounting (a crashed run writes checkpoints, the oracle run does not)
// are excluded; everything else must match bit for bit.
std::string metrics_snapshot() {
  return obs::Registry::global().to_json([](std::string_view name) {
    return !name.ends_with("_ns") && name.substr(0, 5) != "pool." &&
           name.substr(0, 11) != "checkpoint." &&
           name != "sim.schedule_horizon";
  });
}

// The 12 clients split contiguously across two regions (matching
// Topology::regions(2).assign_clients(12)), two tiers per region.
std::vector<std::vector<std::vector<std::size_t>>> two_region_tiers() {
  return {{{0, 1, 2}, {3, 4, 5}}, {{6, 7, 8}, {9, 10, 11}}};
}

AsyncConfig base_async() {
  AsyncConfig async;
  async.total_updates = 6;
  async.clients_per_tier_round = 3;
  async.eval_every = 2;
  return async;
}

HierConfig two_regions(std::vector<sim::RegionalOutage> outages = {}) {
  HierConfig hier;
  hier.topology = Topology::regions(2);
  hier.outages = std::move(outages);
  return hier;
}

struct HierOutput {
  HierRunResult run;
  std::string trace;
  std::string metrics;
};

// One tree run over the tiny federation with a fresh registry and tracer.
// Throws sim::SimulatedCrash through.
HierOutput run_tree(const HierConfig& hier, const AsyncConfig& async,
                    std::size_t shards, std::size_t threads,
                    HierLifecycleHooks hooks = {}) {
  obs::Registry::global().reset();
  HierOutput out;
  std::ostringstream trace_out;
  {
    obs::Tracer tracer(&trace_out);
    obs::TracerScope scope(&tracer);
    TinyFederation fed =
        FederationBuilder().clients(kClients).jitter(0.05).build();
    ClientPool pool(&fed.clients);
    AsyncConfig sharded = async;
    sharded.shards = shards;
    TreeEngine engine(tiny_engine_config(1), sharded, hier, tiny_factory(),
                      &pool, two_tiers(kClients), two_region_tiers(),
                      &fed.data.test, fed.latency);
    engine.set_lifecycle_hooks(std::move(hooks));
    util::ThreadPool workers(threads);
    engine.set_thread_pool(&workers);
    out.run = engine.run();
    tracer.flush();
  }
  out.trace = trace_out.str();
  out.metrics = metrics_snapshot();
  return out;
}

void expect_identical(const HierOutput& a, const HierOutput& b,
                      const std::string& label) {
  EXPECT_EQ(a.run.final_weights, b.run.final_weights) << label;
  EXPECT_EQ(weight_hash(a.run.final_weights),
            weight_hash(b.run.final_weights))
      << label;
  ASSERT_EQ(a.run.result.rounds.size(), b.run.result.rounds.size()) << label;
  for (std::size_t i = 0; i < a.run.result.rounds.size(); ++i) {
    EXPECT_EQ(a.run.result.rounds[i].selected_clients,
              b.run.result.rounds[i].selected_clients)
        << label << " round " << i;
    EXPECT_DOUBLE_EQ(a.run.result.rounds[i].virtual_time,
                     b.run.result.rounds[i].virtual_time)
        << label << " round " << i;
    EXPECT_DOUBLE_EQ(a.run.result.rounds[i].global_accuracy,
                     b.run.result.rounds[i].global_accuracy)
        << label << " round " << i;
  }
  EXPECT_EQ(a.run.node_rounds, b.run.node_rounds) << label;
  EXPECT_EQ(a.run.processed_events, b.run.processed_events) << label;
  EXPECT_EQ(a.trace, b.trace) << label;
  EXPECT_EQ(a.metrics, b.metrics) << label;
}

// --- collapse-to-flat oracle -------------------------------------------------

TEST(HierCollapse, FlatTopologyReplaysAsyncEngineByteForByte) {
  const AsyncConfig async = base_async();

  // Oracle: the flat engine run directly.
  obs::Registry::global().reset();
  std::ostringstream flat_trace;
  AsyncRunResult oracle;
  {
    obs::Tracer tracer(&flat_trace);
    obs::TracerScope scope(&tracer);
    TinyFederation fed =
        FederationBuilder().clients(kClients).jitter(0.05).build();
    ClientPool pool(&fed.clients);
    AsyncEngine engine(tiny_engine_config(1), async, tiny_factory(), &pool,
                       two_tiers(kClients), &fed.data.test, fed.latency);
    util::ThreadPool workers(2);
    engine.set_thread_pool(&workers);
    oracle = engine.run();
    tracer.flush();
  }
  const std::string oracle_metrics = metrics_snapshot();

  // Same federation through a depth-1 tree.
  HierConfig flat;
  flat.topology = Topology::flat();
  const HierOutput collapsed = run_tree(flat, async, /*shards=*/1,
                                        /*threads=*/2);

  EXPECT_TRUE(collapsed.run.collapsed);
  EXPECT_EQ(collapsed.run.final_weights, oracle.final_weights);
  EXPECT_EQ(weight_hash(collapsed.run.final_weights),
            weight_hash(oracle.final_weights));
  ASSERT_EQ(collapsed.run.result.rounds.size(), oracle.result.rounds.size());
  for (std::size_t i = 0; i < oracle.result.rounds.size(); ++i) {
    EXPECT_EQ(collapsed.run.result.rounds[i].selected_clients,
              oracle.result.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(collapsed.run.result.rounds[i].virtual_time,
                     oracle.result.rounds[i].virtual_time);
    EXPECT_DOUBLE_EQ(collapsed.run.result.rounds[i].global_accuracy,
                     oracle.result.rounds[i].global_accuracy);
  }
  EXPECT_EQ(collapsed.trace, flat_trace.str());
  EXPECT_EQ(collapsed.metrics, oracle_metrics);
  // The collapse also forwards the flat engine's full result.
  EXPECT_EQ(collapsed.run.flat.final_weights, oracle.final_weights);
}

// --- multi-region determinism ------------------------------------------------

TEST(HierDeterminism, ShardAndPoolSizeInvariant) {
  const AsyncConfig async = base_async();
  const HierConfig hier = two_regions();
  const HierOutput baseline = run_tree(hier, async, 1, 1);
  EXPECT_FALSE(baseline.run.collapsed);
  EXPECT_EQ(baseline.run.result.rounds.size(), async.total_updates);
  EXPECT_GT(baseline.run.uplinks, 0u);
  EXPECT_GT(baseline.run.downlinks, 0u);
  EXPECT_GT(baseline.run.root_link_bytes, 0u);

  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (std::size_t threads : {1u, 2u, 8u}) {
      if (shards == 1 && threads == 1) continue;
      expect_identical(baseline, run_tree(hier, async, shards, threads),
                       "shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(HierDeterminism, SeedChangesTheTrajectory) {
  const AsyncConfig async = base_async();
  const HierConfig hier = two_regions();
  obs::Registry::global().reset();
  TinyFederation fed =
      FederationBuilder().clients(kClients).jitter(0.05).build();
  ClientPool pool(&fed.clients);
  TreeEngine engine(tiny_engine_config(1), async, hier, tiny_factory(),
                    &pool, two_tiers(kClients), two_region_tiers(),
                    &fed.data.test, fed.latency);
  const HierRunResult a = engine.run(std::uint64_t{111});
  const HierRunResult b = engine.run(std::uint64_t{222});
  EXPECT_NE(weight_hash(a.final_weights), weight_hash(b.final_weights));
}

// --- regional outages --------------------------------------------------------

TEST(RegionalOutages, ComposesChurnIntoCoalescedSortedWindows) {
  sim::ChurnConfig churn;
  churn.leave_rate = 0.02;
  const std::vector<sim::RegionalOutage> a =
      sim::regional_outages(churn, 99, 3, 800.0, 60.0);
  const std::vector<sim::RegionalOutage> b =
      sim::regional_outages(churn, 99, 3, 800.0, 60.0);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region, b[i].region);
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
    EXPECT_LT(a[i].region, 3u);
    EXPECT_GE(a[i].start, 0.0);
    EXPECT_GE(a[i].duration, 60.0);  // coalescing can only lengthen
    if (i > 0) {
      EXPECT_GE(a[i].start, a[i - 1].start);
    }
  }
  // Same-region windows never overlap after coalescing.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if (a[i].region != a[j].region) continue;
      EXPECT_GE(a[j].start, a[i].start + a[i].duration);
    }
  }
  EXPECT_THROW(sim::regional_outages(churn, 99, 0, 800.0, 60.0),
               std::invalid_argument);
  EXPECT_THROW(sim::regional_outages(churn, 99, 3, 800.0, 0.0),
               std::invalid_argument);
}

TEST(RegionalOutages, DegradeGracefullyAndStayDeterministic) {
  const AsyncConfig async = base_async();
  // Region 0 (the fast clients, so tier rounds actually complete inside
  // the window) drops mid-run and rejoins before the end.
  const HierConfig hier =
      two_regions({sim::RegionalOutage{/*region=*/0, /*start=*/0.5,
                                       /*duration=*/1.0}});

  const HierOutput out = run_tree(hier, async, 1, 2);
  EXPECT_EQ(out.run.outage_count, 1u);
  EXPECT_EQ(out.run.rejoin_count, 1u);
  // Graceful degradation: the federation still completes every root round.
  EXPECT_EQ(out.run.result.rounds.size(), async.total_updates);

  // The outage changes the trajectory relative to the healthy run...
  const HierOutput healthy = run_tree(two_regions(), async, 1, 2);
  EXPECT_NE(weight_hash(out.run.final_weights),
            weight_hash(healthy.run.final_weights));
  // ...but never its reproducibility.
  expect_identical(out, run_tree(hier, async, 8, 8), "outage shards=8");
}

// --- re-tiering hooks --------------------------------------------------------

TEST(HierRetier, PerLeafHooksFireAndStayDeterministic) {
  AsyncConfig async = base_async();
  async.total_updates = 8;
  async.reprofile_every = 3.0;

  auto leaf_tiers = two_region_tiers();
  std::size_t observed = 0;
  HierLifecycleHooks hooks;
  hooks.observe = [&observed](std::size_t, std::size_t, double) {
    ++observed;
  };
  hooks.retier = [&leaf_tiers](std::size_t leaf) { return leaf_tiers[leaf]; };

  const HierOutput out = run_tree(two_regions(), async, 1, 2, hooks);
  EXPECT_GT(out.run.reprofile_count, 0u);
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(out.run.result.rounds.size(), async.total_updates);

  observed = 0;
  expect_identical(out, run_tree(two_regions(), async, 4, 2, hooks),
                   "retier shards=4");
}

TEST(HierRetier, ReprofileWithoutHooksThrows) {
  AsyncConfig async = base_async();
  async.reprofile_every = 3.0;
  obs::Registry::global().reset();
  TinyFederation fed =
      FederationBuilder().clients(kClients).jitter(0.05).build();
  ClientPool pool(&fed.clients);
  TreeEngine engine(tiny_engine_config(1), async, two_regions(),
                    tiny_factory(), &pool, two_tiers(kClients),
                    two_region_tiers(), &fed.data.test, fed.latency);
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

// --- config validation -------------------------------------------------------

TEST(HierValidation, RejectsUnsupportedFlatEngineFacilities) {
  TinyFederation fed =
      FederationBuilder().clients(kClients).jitter(0.05).build();
  ClientPool pool(&fed.clients);
  const auto make = [&](const AsyncConfig& async) {
    return TreeEngine(tiny_engine_config(1), async, two_regions(),
                      tiny_factory(), &pool, two_tiers(kClients),
                      two_region_tiers(), &fed.data.test, fed.latency);
  };
  AsyncConfig churned = base_async();
  churned.churn.join_rate = 0.1;
  EXPECT_THROW(make(churned), std::invalid_argument);

  AsyncConfig logged = base_async();
  logged.event_log_path = "/tmp/hier_events.log";
  EXPECT_THROW(make(logged), std::invalid_argument);

  AsyncConfig zero = base_async();
  zero.total_updates = 0;
  EXPECT_THROW(make(zero), std::invalid_argument);

  // Outage regions must exist.
  AsyncConfig ok = base_async();
  EXPECT_THROW(
      TreeEngine(tiny_engine_config(1), ok,
                 two_regions({sim::RegionalOutage{5, 1.0, 1.0}}),
                 tiny_factory(), &pool, two_tiers(kClients),
                 two_region_tiers(), &fed.data.test, fed.latency),
      std::invalid_argument);
}

// --- crash + resume ----------------------------------------------------------

TEST(HierResume, CrashedRunResumesToTheUninterruptedResult) {
  const AsyncConfig async = base_async();
  const HierConfig hier = two_regions();
  const HierOutput full = run_tree(hier, async, 2, 2);
  const double span = full.run.result.rounds.back().virtual_time;
  const std::string snap = ::testing::TempDir() + "/hier_resume.snap";

  AsyncConfig crashing = async;
  crashing.checkpoint_every = 0.3 * span;
  crashing.checkpoint_path = snap;
  crashing.fault.crash_at = 0.65 * span;
  bool crashed = false;
  try {
    run_tree(hier, crashing, 2, 2);
  } catch (const sim::SimulatedCrash&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  AsyncConfig resuming = async;
  resuming.resume_path = snap;
  const HierOutput resumed = run_tree(hier, resuming, 2, 2);
  EXPECT_EQ(full.run.final_weights, resumed.run.final_weights);
  ASSERT_EQ(full.run.result.rounds.size(),
            resumed.run.result.rounds.size());
  for (std::size_t i = 0; i < full.run.result.rounds.size(); ++i) {
    EXPECT_EQ(full.run.result.rounds[i].selected_clients,
              resumed.run.result.rounds[i].selected_clients);
    EXPECT_DOUBLE_EQ(full.run.result.rounds[i].virtual_time,
                     resumed.run.result.rounds[i].virtual_time);
  }
  EXPECT_EQ(full.run.processed_events, resumed.run.processed_events);
  EXPECT_EQ(full.run.node_rounds, resumed.run.node_rounds);
  // The resumed trace is a byte-exact suffix of the uninterrupted stream,
  // and the restored metrics match the oracle's totals.
  ASSERT_LE(resumed.trace.size(), full.trace.size());
  EXPECT_EQ(full.trace.substr(full.trace.size() - resumed.trace.size()),
            resumed.trace);
  EXPECT_EQ(full.metrics, resumed.metrics);

  // Resuming across shard counts is equally exact.
  const HierOutput resumed8 = run_tree(hier, resuming, 8, 4);
  EXPECT_EQ(full.run.final_weights, resumed8.run.final_weights);
}

TEST(HierResume, SnapshotRefusesADifferentTree) {
  const AsyncConfig async = base_async();
  const HierConfig hier = two_regions();
  const std::string snap = ::testing::TempDir() + "/hier_mismatch.snap";

  AsyncConfig crashing = async;
  crashing.checkpoint_every = 1.0;
  crashing.checkpoint_path = snap;
  crashing.fault.crash_at = 4.0;
  try {
    run_tree(hier, crashing, 1, 1);
  } catch (const sim::SimulatedCrash&) {
  }

  AsyncConfig resuming = async;
  resuming.resume_path = snap;
  // Different link latency = different tree fingerprint.
  HierConfig other = two_regions();
  other.topology.nodes[1].link.latency_seconds = 0.25;
  EXPECT_THROW(run_tree(other, resuming, 1, 1), std::runtime_error);
}

}  // namespace
}  // namespace tifl::fl::hier
