// Append-only CRC-framed event log: round trips, torn-tail tolerance,
// mid-file corruption containment and resume-time truncation.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event_log.h"

namespace tifl::sim {
namespace {

std::vector<Event> sample_events(std::size_t count) {
  std::vector<Event> events;
  for (std::size_t i = 0; i < count; ++i) {
    Event event;
    event.time = 0.25 * static_cast<double>(i);
    event.seq = i;
    event.kind = i % 5;
    event.actor = i * 3;
    events.push_back(event);
  }
  return events;
}

void expect_events_equal(const std::vector<Event>& a,
                         const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].actor, b[i].actor) << i;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(EventLog, AppendReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/elog_roundtrip.bin";
  std::remove(path.c_str());
  const std::vector<Event> events = sample_events(20);
  {
    EventLogWriter writer;
    writer.open(path);
    for (const Event& event : events) writer.append(event);
    writer.sync();
  }
  expect_events_equal(read_event_log(path), events);
}

TEST(EventLog, ReopenAppendsAfterExistingRecords) {
  const std::string path = ::testing::TempDir() + "/elog_reopen.bin";
  std::remove(path.c_str());
  const std::vector<Event> events = sample_events(10);
  {
    EventLogWriter writer;
    writer.open(path);
    for (std::size_t i = 0; i < 5; ++i) writer.append(events[i]);
  }
  {
    EventLogWriter writer;
    writer.open(path);
    for (std::size_t i = 5; i < 10; ++i) writer.append(events[i]);
  }
  expect_events_equal(read_event_log(path), events);
}

TEST(EventLog, TornTailIsDroppedSilently) {
  const std::string path = ::testing::TempDir() + "/elog_torn.bin";
  std::remove(path.c_str());
  const std::vector<Event> events = sample_events(8);
  {
    EventLogWriter writer;
    writer.open(path);
    for (const Event& event : events) writer.append(event);
  }
  const std::string pristine = slurp(path);
  // Chop the file mid-record at every offset inside the last record: the
  // reader must return exactly the first 7 records, never throw.
  for (std::size_t cut = 1; cut < kEventLogRecordSize; ++cut) {
    spit(path, pristine.substr(0, pristine.size() - cut));
    const std::vector<Event> read = read_event_log(path);
    expect_events_equal(read,
                        {events.begin(), events.begin() + 7});
  }
}

TEST(EventLog, CorruptRecordTerminatesTheScan) {
  const std::string path = ::testing::TempDir() + "/elog_corrupt.bin";
  std::remove(path.c_str());
  const std::vector<Event> events = sample_events(8);
  {
    EventLogWriter writer;
    writer.open(path);
    for (const Event& event : events) writer.append(event);
  }
  std::string bytes = slurp(path);
  // Flip one byte in the 4th record's payload: records 0-2 survive, the
  // scan stops at the corruption (a CRC mismatch, not a torn tail).
  const std::size_t offset = 8 + 3 * kEventLogRecordSize + 4;
  bytes[offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[offset]) ^ 0xFF);
  spit(path, bytes);
  expect_events_equal(read_event_log(path),
                      {events.begin(), events.begin() + 3});
}

TEST(EventLog, ForeignMagicIsRejected) {
  const std::string path = ::testing::TempDir() + "/elog_magic.bin";
  spit(path, "NOTANLOG-and-some-padding-bytes-here");
  EXPECT_THROW(read_event_log(path), std::runtime_error);
  EventLogWriter writer;
  EXPECT_THROW(writer.open(path), std::runtime_error);
  EXPECT_THROW(read_event_log(::testing::TempDir() + "/elog_missing.bin"),
               std::runtime_error);
}

TEST(EventLog, TruncateToTrimsBackToTheHorizon) {
  const std::string path = ::testing::TempDir() + "/elog_truncate.bin";
  std::remove(path.c_str());
  const std::vector<Event> events = sample_events(12);
  {
    EventLogWriter writer;
    writer.open(path);
    for (const Event& event : events) writer.append(event);
  }
  {
    // Resume at a horizon of 5 processed events, then replay 5..12.
    EventLogWriter writer;
    writer.truncate_to(path, 5);
    for (std::size_t i = 5; i < 12; ++i) writer.append(events[i]);
  }
  expect_events_equal(read_event_log(path), events);
}

TEST(EventLog, TruncatePastTheValidPrefixThrows) {
  const std::string path = ::testing::TempDir() + "/elog_overtrim.bin";
  std::remove(path.c_str());
  {
    EventLogWriter writer;
    writer.open(path);
    for (const Event& event : sample_events(3)) writer.append(event);
  }
  EventLogWriter writer;
  EXPECT_THROW(writer.truncate_to(path, 4), std::runtime_error);
}

}  // namespace
}  // namespace tifl::sim
