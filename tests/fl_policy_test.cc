#include "fl/policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace tifl::fl {
namespace {

TEST(SampleWithoutReplacement, ProducesDistinctInRange) {
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto picks = sample_without_replacement(20, 5, rng);
    EXPECT_EQ(picks.size(), 5u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 5u);
    for (std::size_t p : picks) EXPECT_LT(p, 20u);
  }
}

TEST(SampleWithoutReplacement, FullPopulationIsPermutation) {
  util::Rng rng(2);
  auto picks = sample_without_replacement(10, 10, rng);
  std::sort(picks.begin(), picks.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(picks[i], i);
}

TEST(SampleWithoutReplacement, CountExceedingPopulationThrows) {
  util::Rng rng(3);
  EXPECT_THROW(sample_without_replacement(3, 4, rng), std::invalid_argument);
}

TEST(SampleWithoutReplacement, UniformCoverage) {
  // Every element should be picked with probability count/n.
  util::Rng rng(4);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t p : sample_without_replacement(10, 3, rng)) ++hits[p];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.02);
  }
}

TEST(VanillaPolicy, SelectsRequestedCountUntiered) {
  VanillaPolicy policy(50, 5);
  util::Rng rng(5);
  const Selection s = policy.select(0, rng);
  EXPECT_EQ(s.clients.size(), 5u);
  EXPECT_EQ(s.tier, -1);
  EXPECT_EQ(policy.name(), "vanilla");
}

TEST(VanillaPolicy, DrawsSpanWholePopulationOverRounds) {
  VanillaPolicy policy(20, 5);
  util::Rng rng(6);
  std::set<std::size_t> seen;
  for (std::size_t r = 0; r < 50; ++r) {
    const Selection s = policy.select(r, rng);
    seen.insert(s.clients.begin(), s.clients.end());
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(VanillaPolicy, StragglerSelectionProbabilityMatchesEq3) {
  // §3.2: Prs = 1 - C(K-|tau_m|, C)/C(K, C).  With K=20, slowest level of
  // 4 clients, C=5: Prs = 1 - C(16,5)/C(20,5) ~= 0.718.  The empirical
  // frequency of "at least one slow client selected" must match.
  VanillaPolicy policy(20, 5);
  util::Rng rng(7);
  const std::set<std::size_t> slow{16, 17, 18, 19};
  int hit = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const Selection s = policy.select(0, rng);
    const bool any = std::any_of(s.clients.begin(), s.clients.end(),
                                 [&slow](std::size_t c) {
                                   return slow.count(c) != 0;
                                 });
    hit += any;
  }
  const double expected = 1.0 - (4368.0 / 15504.0);  // 1 - C(16,5)/C(20,5)
  EXPECT_NEAR(static_cast<double>(hit) / trials, expected, 0.015);
}

TEST(VanillaPolicy, InvalidConfigThrows) {
  EXPECT_THROW(VanillaPolicy(5, 0), std::invalid_argument);
  EXPECT_THROW(VanillaPolicy(5, 6), std::invalid_argument);
}

TEST(OverProvisionPolicy, Selects130PercentAndAggregatesTarget) {
  // Bonawitz et al.'s default: 30 % over-provisioning.
  OverProvisionPolicy policy(50, 10);
  EXPECT_EQ(policy.selected_per_round(), 13u);
  util::Rng rng(8);
  const Selection s = policy.select(0, rng);
  EXPECT_EQ(s.clients.size(), 13u);
  EXPECT_EQ(s.aggregate_count, 10u);
  EXPECT_EQ(s.tier, -1);
  std::set<std::size_t> unique(s.clients.begin(), s.clients.end());
  EXPECT_EQ(unique.size(), 13u);
}

TEST(OverProvisionPolicy, FactorRoundsUpAndClampsToPopulation) {
  OverProvisionPolicy tight(10, 9, 1.3);  // ceil(11.7) = 12 -> clamp 10
  EXPECT_EQ(tight.selected_per_round(), 10u);
  OverProvisionPolicy exact(100, 10, 1.0);  // no over-provisioning
  EXPECT_EQ(exact.selected_per_round(), 10u);
  util::Rng rng(9);
  EXPECT_EQ(exact.select(0, rng).aggregate_count, 10u);
}

TEST(OverProvisionPolicy, InvalidConfigThrows) {
  EXPECT_THROW(OverProvisionPolicy(50, 0), std::invalid_argument);
  EXPECT_THROW(OverProvisionPolicy(50, 10, 0.9), std::invalid_argument);
  EXPECT_THROW(OverProvisionPolicy(5, 6), std::invalid_argument);
}

TEST(OverProvisionPolicy, CeilBeyondPopulationSelectsEveryoneOnce) {
  // ceil(factor * target) > population: the selection clamps to the whole
  // pool (each client exactly once) while aggregate_count keeps the
  // original target, so the engine still drops the stragglers.
  OverProvisionPolicy policy(10, 8, 2.0);  // ceil(16) -> clamp 10
  EXPECT_EQ(policy.selected_per_round(), 10u);
  util::Rng rng(11);
  const Selection s = policy.select(0, rng);
  EXPECT_EQ(s.clients.size(), 10u);
  EXPECT_EQ(s.aggregate_count, 8u);
  std::set<std::size_t> unique(s.clients.begin(), s.clients.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(OverProvisionPolicy, TargetEqualToPopulationDegradesToFullRound) {
  // target == population: clamped selection equals the target, i.e. no
  // straggler can actually be dropped (aggregate_count == |selection|).
  OverProvisionPolicy policy(10, 10, 1.3);
  EXPECT_EQ(policy.selected_per_round(), 10u);
  util::Rng rng(12);
  const Selection s = policy.select(0, rng);
  EXPECT_EQ(s.clients.size(), 10u);
  EXPECT_EQ(s.aggregate_count, 10u);
}

// --- v2 context API ----------------------------------------------------------

TEST(SelectionPolicy, UntieredShimMatchesExplicitContext) {
  VanillaPolicy policy(30, 6);
  util::Rng rng_a(21), rng_b(21);
  const Selection via_shim = policy.select(3, rng_a);
  SelectionContext context;
  context.round = 3;
  context.rng = &rng_b;
  const Selection via_context = policy.select(context);
  EXPECT_EQ(via_shim.clients, via_context.clients);
}

TEST(SelectionPolicy, EngineSupportDefaultsAndOverrides) {
  VanillaPolicy vanilla(10, 2);
  EXPECT_TRUE(vanilla.supports(EngineKind::kSync));
  EXPECT_FALSE(vanilla.supports(EngineKind::kAsync));
  OverProvisionPolicy overprovision(10, 2);
  EXPECT_TRUE(overprovision.supports(EngineKind::kSync));
  EXPECT_FALSE(overprovision.supports(EngineKind::kAsync));
  UniformTierPolicy uniform(2);
  EXPECT_FALSE(uniform.supports(EngineKind::kSync));
  EXPECT_TRUE(uniform.supports(EngineKind::kAsync));
}

TEST(SampleWithoutReplacement, SparseBranchMatchesDenseBranch) {
  // The sparse (hash-map virtual-swap) branch must reproduce the dense
  // partial Fisher-Yates bit for bit: same rng draws, same sample.  Run a
  // reference dense shuffle by hand and compare against the library call
  // at population sizes that exercise the sparse branch (n >= 1024 with a
  // small count) and the dense one.
  for (std::uint64_t seed : {1u, 7u, 42u, 9001u}) {
    for (std::size_t n : {64ul, 1024ul, 4096ul, 100000ul}) {
      for (std::size_t count : {1ul, 8ul, 63ul}) {
        if (count > n) continue;
        util::Rng reference_rng(seed);
        std::vector<std::size_t> pool(n);
        std::iota(pool.begin(), pool.end(), std::size_t{0});
        for (std::size_t i = 0; i < count; ++i) {
          const std::size_t j = i + reference_rng.uniform_index(n - i);
          std::swap(pool[i], pool[j]);
        }
        pool.resize(count);
        util::Rng rng(seed);
        const auto got = sample_without_replacement(n, count, rng);
        EXPECT_EQ(got, pool) << "seed " << seed << " n " << n << " count "
                             << count;
        // Both must consume the same number of draws: the next value from
        // each stream agrees.
        EXPECT_EQ(rng.uniform_index(1u << 20),
                  reference_rng.uniform_index(1u << 20));
      }
    }
  }
}

TEST(UniformTierPolicy, SamplesWithinDispatchingTier) {
  UniformTierPolicy policy(3);
  const std::vector<std::size_t> candidates{10, 20, 30, 40, 50};
  util::Rng rng(31);
  SelectionContext context;
  context.round = 0;
  context.tier = 2;
  context.candidates = candidates;
  context.rng = &rng;
  const Selection s = policy.select(context);
  EXPECT_EQ(s.tier, 2);
  EXPECT_EQ(s.clients.size(), 3u);
  std::set<std::size_t> unique(s.clients.begin(), s.clients.end());
  EXPECT_EQ(unique.size(), 3u);
  for (std::size_t c : s.clients) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), c),
              candidates.end());
  }
}

TEST(UniformTierPolicy, CapsAtCandidateCountAndRejectsUntieredCalls) {
  UniformTierPolicy policy(8);
  const std::vector<std::size_t> candidates{1, 2, 3};
  util::Rng rng(32);
  SelectionContext context;
  context.tier = 0;
  context.candidates = candidates;
  context.rng = &rng;
  EXPECT_EQ(policy.select(context).clients.size(), 3u);
  EXPECT_THROW(policy.select(0, rng), std::logic_error);
  EXPECT_THROW(UniformTierPolicy(0), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::fl
