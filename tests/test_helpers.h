// Shared builders for the test suite: tiny synthetic federations that run
// in milliseconds while exercising the full production code paths.
#pragma once

#include <memory>
#include <vector>

#include "core/system.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/engine.h"
#include "nn/model_zoo.h"
#include "sim/latency_model.h"

namespace tifl::testing {

// Small, well-separated 4-class dataset an MLP learns in a few rounds.
inline data::SyntheticData tiny_data(std::uint64_t seed = 7,
                                     std::int64_t train = 400,
                                     std::int64_t test = 200) {
  data::SyntheticSpec spec;
  spec.classes = 4;
  spec.dims = data::ImageDims{1, 6, 6};
  spec.train_samples = train;
  spec.test_samples = test;
  spec.class_sep = 1.2f;
  spec.noise = 0.8f;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

inline nn::ModelFactory tiny_factory(std::int64_t inputs = 36,
                                     std::int64_t classes = 4) {
  return [inputs, classes](std::uint64_t seed) {
    return nn::mlp(inputs, 16, classes, seed);
  };
}

struct TinyFederation {
  data::SyntheticData data;
  std::vector<fl::Client> clients;
  sim::LatencyModel latency{sim::CostModel{0.01, 1.0}};
};

// `num_clients` clients over 5 equal CPU groups (paper's CIFAR fractions),
// IID data unless a partition is supplied.
inline TinyFederation tiny_federation(std::size_t num_clients = 10,
                                      std::uint64_t seed = 7) {
  TinyFederation fed{tiny_data(seed), {}, sim::LatencyModel{{0.01, 1.0}}};
  util::Rng rng(seed);
  const data::Partition partition =
      data::partition_iid(fed.data.train, num_clients, rng);
  const auto test_shards = data::matched_test_indices(
      fed.data.train, partition, fed.data.test, rng);
  const auto resources = sim::assign_equal_groups(
      num_clients, sim::cifar_cpu_groups(), /*comm=*/0.0, /*jitter=*/0.0,
      rng);
  fed.clients = fl::make_clients(&fed.data.train, partition, test_shards,
                                 resources);
  return fed;
}

inline fl::EngineConfig tiny_engine_config(std::size_t rounds = 10) {
  fl::EngineConfig config;
  config.rounds = rounds;
  config.local.epochs = 1;
  config.local.batch_size = 10;
  config.local.optimizer.kind = nn::OptimizerConfig::Kind::kRmsProp;
  config.local.optimizer.lr = 0.01;
  config.eval_every = 1;
  config.seed = 99;
  return config;
}

}  // namespace tifl::testing
