// Shared builders for the test suite: tiny synthetic federations that run
// in milliseconds while exercising the full production code paths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/system.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/engine.h"
#include "nn/model_zoo.h"
#include "sim/latency_model.h"

namespace tifl::testing {

// Small, well-separated 4-class dataset an MLP learns in a few rounds.
inline data::SyntheticData tiny_data(std::uint64_t seed = 7,
                                     std::int64_t train = 400,
                                     std::int64_t test = 200) {
  data::SyntheticSpec spec;
  spec.classes = 4;
  spec.dims = data::ImageDims{1, 6, 6};
  spec.train_samples = train;
  spec.test_samples = test;
  spec.class_sep = 1.2f;
  spec.noise = 0.8f;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

inline nn::ModelFactory tiny_factory(std::int64_t inputs = 36,
                                     std::int64_t classes = 4) {
  return [inputs, classes](std::uint64_t seed) {
    return nn::mlp(inputs, 16, classes, seed);
  };
}

struct TinyFederation {
  // The dataset lives on the heap: clients hold raw pointers into it,
  // and those must survive the move a by-value builder return implies
  // (NRVO is permitted, not guaranteed).
  std::unique_ptr<data::SyntheticData> owned;
  data::SyntheticData& data;  // alias of *owned; stable across moves
  std::vector<fl::Client> clients;
  sim::LatencyModel latency;
};

// One-call builder for heterogeneous client pools: latency profile
// (CPU groups, comm, jitter, cost model), data partition and seed in a
// single fluent chain.  Every knob defaults to the historical
// tiny_federation() setup, so `FederationBuilder().build()` is the
// 10-client IID pool most tests start from.
//
//   TinyFederation fed = FederationBuilder()
//                            .clients(20)
//                            .classes_per_client(2)
//                            .jitter(0.05)
//                            .build();
class FederationBuilder {
 public:
  FederationBuilder& clients(std::size_t n) { num_clients_ = n; return *this; }
  FederationBuilder& seed(std::uint64_t s) { seed_ = s; return *this; }
  FederationBuilder& train_samples(std::int64_t n) { train_ = n; return *this; }
  FederationBuilder& test_samples(std::int64_t n) { test_ = n; return *this; }
  // 0 = IID partition; k > 0 = at most k classes per client.
  FederationBuilder& classes_per_client(std::size_t k) {
    classes_per_client_ = k;
    return *this;
  }
  FederationBuilder& cpu_groups(std::vector<double> groups) {
    cpu_groups_ = std::move(groups);
    return *this;
  }
  FederationBuilder& comm_seconds(double s) { comm_ = s; return *this; }
  FederationBuilder& jitter(double sigma) { jitter_ = sigma; return *this; }
  FederationBuilder& cost(sim::CostModel c) { cost_ = c; return *this; }

  TinyFederation build() const {
    auto owned = std::make_unique<data::SyntheticData>(
        tiny_data(seed_, train_, test_));
    data::SyntheticData& data = *owned;
    TinyFederation fed{std::move(owned), data, {},
                       sim::LatencyModel{cost_}};
    util::Rng rng(seed_);
    const data::Partition partition =
        classes_per_client_ == 0
            ? data::partition_iid(fed.data.train, num_clients_, rng)
            : data::partition_classes(fed.data.train, num_clients_,
                                      classes_per_client_, rng);
    const auto test_shards = data::matched_test_indices(
        fed.data.train, partition, fed.data.test, rng);
    const auto resources = sim::assign_equal_groups(
        num_clients_, cpu_groups_, comm_, jitter_, rng);
    fed.clients = fl::make_clients(&fed.data.train, partition, test_shards,
                                   resources);
    return fed;
  }

 private:
  std::size_t num_clients_ = 10;
  std::uint64_t seed_ = 7;
  std::int64_t train_ = 400;
  std::int64_t test_ = 200;
  std::size_t classes_per_client_ = 0;
  std::vector<double> cpu_groups_ = sim::cifar_cpu_groups();
  double comm_ = 0.0;
  double jitter_ = 0.0;
  sim::CostModel cost_{0.01, 1.0};
};

// `num_clients` clients over 5 equal CPU groups (paper's CIFAR fractions),
// IID data — the historical default, now a thin builder wrapper.
inline TinyFederation tiny_federation(std::size_t num_clients = 10,
                                      std::uint64_t seed = 7) {
  return FederationBuilder().clients(num_clients).seed(seed).build();
}

// Two tiers split by the tiny federation's resource blocks: the first
// half of the ids are the fast CPU groups, the second half the slow.
inline std::vector<std::vector<std::size_t>> two_tiers(std::size_t n) {
  std::vector<std::vector<std::size_t>> tiers(2);
  for (std::size_t c = 0; c < n; ++c) tiers[c < n / 2 ? 0 : 1].push_back(c);
  return tiers;
}

inline fl::EngineConfig tiny_engine_config(std::size_t rounds = 10) {
  fl::EngineConfig config;
  config.rounds = rounds;
  config.local.epochs = 1;
  config.local.batch_size = 10;
  config.local.optimizer.kind = nn::OptimizerConfig::Kind::kRmsProp;
  config.local.optimizer.lr = 0.01;
  config.eval_every = 1;
  config.seed = 99;
  return config;
}

}  // namespace tifl::testing
