// Cross-module property sweeps: the suite's invariants checked over
// parameter grids rather than single configurations (gtest TEST_P).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

#include "core/adaptive_policy.h"
#include "core/static_policy.h"
#include "core/tiering.h"
#include "test_helpers.h"

namespace tifl {
namespace {

// --- engine invariants over (clients_per_round, eval_every, hierarchical) ---

using EngineGrid = std::tuple<std::size_t, std::size_t, bool>;

class EngineSweep : public ::testing::TestWithParam<EngineGrid> {};

TEST_P(EngineSweep, RunInvariantsHold) {
  const auto [per_round, eval_every, hierarchical] = GetParam();
  testing::TinyFederation fed = testing::tiny_federation(12);
  fl::EngineConfig config = testing::tiny_engine_config(6);
  config.eval_every = eval_every;
  config.hierarchical_aggregation = hierarchical;
  fl::Engine engine(config, testing::tiny_factory(), fed.clients,
                    &fed.data.test, fed.latency);
  fl::VanillaPolicy policy(fed.clients.size(), per_round);
  const fl::RunResult result = engine.run(policy);

  ASSERT_EQ(result.rounds.size(), 6u);
  double last_time = 0.0;
  for (const fl::RoundRecord& r : result.rounds) {
    EXPECT_EQ(r.selected_clients.size(), per_round);
    EXPECT_GT(r.round_latency, 0.0);
    EXPECT_GT(r.virtual_time, last_time);
    last_time = r.virtual_time;
    EXPECT_GE(r.global_accuracy, 0.0);
    EXPECT_LE(r.global_accuracy, 1.0);
    // No duplicate clients within a round.
    const std::set<std::size_t> unique(r.selected_clients.begin(),
                                       r.selected_clients.end());
    EXPECT_EQ(unique.size(), per_round);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweep,
    ::testing::Combine(::testing::Values(1, 3, 6),      // clients per round
                       ::testing::Values(1, 2, 5),      // eval cadence
                       ::testing::Bool()));             // aggregation tree

// --- tiering invariants over (clients, tiers, strategy) ----------------------

using TieringGrid = std::tuple<std::size_t, std::size_t, int>;

class TieringSweep : public ::testing::TestWithParam<TieringGrid> {};

TEST_P(TieringSweep, PartitionAndMonotonicity) {
  const auto [num_clients, tiers, strategy_int] = GetParam();
  const auto strategy = static_cast<core::TieringStrategy>(strategy_int);
  util::Rng rng(util::mix_seed(num_clients, tiers, strategy_int));
  std::vector<double> latency(num_clients);
  for (double& l : latency) l = rng.lognormal(1.0, 0.9);
  const std::vector<bool> dropout(num_clients, false);
  const core::TierInfo info =
      core::build_tiers(latency, dropout, tiers, strategy);

  // Every client in exactly one tier.
  std::vector<int> seen(num_clients, 0);
  for (const auto& tier : info.members) {
    for (std::size_t c : tier) ++seen[c];
  }
  for (int s : seen) EXPECT_EQ(s, 1);

  // Monotone averages over non-empty tiers.
  double last = -1.0;
  for (std::size_t t = 0; t < info.tier_count(); ++t) {
    if (info.members[t].empty()) continue;
    EXPECT_GT(info.avg_latency[t], last);
    last = info.avg_latency[t];
  }

  // No inversion: faster client never in a slower tier.
  for (std::size_t t = 0; t + 1 < info.tier_count(); ++t) {
    if (info.members[t].empty()) continue;
    double tier_max = 0.0;
    for (std::size_t c : info.members[t]) {
      tier_max = std::max(tier_max, latency[c]);
    }
    for (std::size_t u = t + 1; u < info.tier_count(); ++u) {
      for (std::size_t c : info.members[u]) {
        EXPECT_GE(latency[c], tier_max - 1e-12);
      }
      if (!info.members[u].empty()) break;  // adjacent non-empty only
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TieringSweep,
    ::testing::Combine(::testing::Values(10, 50, 137),  // clients
                       ::testing::Values(1, 3, 5, 10),  // tiers
                       ::testing::Values(0, 1)));       // strategy

// --- static policy invariants over every Table 1 preset -----------------------

class Table1Sweep : public ::testing::TestWithParam<const char*> {};

TEST_P(Table1Sweep, SelectionsHonorPresetSupport) {
  const std::string preset = GetParam();
  core::TierInfo tiers;
  tiers.members.resize(5);
  tiers.avg_latency.resize(5);
  std::size_t id = 0;
  for (auto& tier : tiers.members) {
    for (int i = 0; i < 8; ++i) tier.push_back(id++);
  }
  const std::vector<double> probs = core::table1_probs(preset);
  core::StaticTierPolicy policy(tiers, probs, 4, preset);
  util::Rng rng(3);
  std::vector<int> counts(5, 0);
  for (std::size_t round = 0; round < 2000; ++round) {
    const fl::Selection s = policy.select(round, rng);
    ++counts[static_cast<std::size_t>(s.tier)];
  }
  for (std::size_t t = 0; t < 5; ++t) {
    if (probs[t] == 0.0) {
      EXPECT_EQ(counts[t], 0) << preset << " tier " << t;
    } else {
      EXPECT_GT(counts[t], 0) << preset << " tier " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, Table1Sweep,
                         ::testing::Values("slow", "uniform", "random",
                                           "fast", "fast1", "fast2",
                                           "fast3"));

// --- adaptive invariants over (rule, interval) --------------------------------

using AdaptiveGrid = std::tuple<int, std::size_t>;

class AdaptiveSweep : public ::testing::TestWithParam<AdaptiveGrid> {};

TEST_P(AdaptiveSweep, ProbabilitiesStayADistributionAndCreditsNonNegative) {
  const auto [rule_int, interval] = GetParam();
  core::TierInfo tiers;
  tiers.members.resize(5);
  tiers.avg_latency.resize(5);
  std::size_t id = 0;
  for (auto& tier : tiers.members) {
    for (int i = 0; i < 10; ++i) tier.push_back(id++);
  }
  core::AdaptiveConfig config;
  config.clients_per_round = 5;
  config.interval = interval;
  config.prob_rule = static_cast<core::AdaptiveConfig::ProbRule>(rule_int);
  core::AdaptiveTierPolicy policy(tiers, config, 80);
  util::Rng rng(util::mix_seed(rule_int, interval));

  for (std::size_t round = 0; round < 80; ++round) {
    const fl::Selection s = policy.select(round, rng);
    EXPECT_EQ(s.clients.size(), 5u);
    // Noisy, tier-dependent accuracies to keep ChangeProbs busy.
    std::vector<double> accs(5);
    for (std::size_t t = 0; t < 5; ++t) {
      accs[t] = 0.3 + 0.1 * static_cast<double>(t) + 0.05 * rng.uniform();
    }
    fl::RoundFeedback feedback;
    feedback.round = round;
    feedback.tier_accuracies = accs;
    policy.observe(feedback);

    const double total = std::accumulate(policy.probs().begin(),
                                         policy.probs().end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double credit : policy.credits()) EXPECT_GE(credit, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AdaptiveSweep,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(2, 7, 40)));

// --- local training invariants over (epochs, batch size) ----------------------

using TrainGrid = std::tuple<std::size_t, std::size_t>;

class LocalTrainSweep : public ::testing::TestWithParam<TrainGrid> {};

TEST_P(LocalTrainSweep, UpdateReportsShardAndChangesWeights) {
  const auto [epochs, batch] = GetParam();
  testing::TinyFederation fed = testing::tiny_federation(6);
  nn::Sequential model = testing::tiny_factory()(1);
  const std::vector<float> global = model.weights();
  fl::LocalTrainParams params;
  params.epochs = epochs;
  params.batch_size = batch;
  params.lr = 0.01;
  const fl::LocalUpdate update = fed.clients[1].local_update(
      global, model, params, util::Rng(util::mix_seed(epochs, batch)));
  EXPECT_EQ(update.num_samples, fed.clients[1].train_size());
  EXPECT_NE(update.weights, global);
  EXPECT_GT(update.train_loss, 0.0);
  EXPECT_GE(update.train_accuracy, 0.0);
  EXPECT_LE(update.train_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, LocalTrainSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 7, 10,
                                                              1000)));

}  // namespace
}  // namespace tifl
