#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "data/synthetic.h"

namespace tifl::data {
namespace {

SyntheticData partition_data(std::int64_t classes = 10,
                             std::int64_t train = 1000) {
  SyntheticSpec spec;
  spec.classes = classes;
  spec.dims = ImageDims{1, 4, 4};
  spec.train_samples = train;
  spec.test_samples = train / 2;
  return make_synthetic(spec);
}

std::size_t total_assigned(const Partition& p) {
  std::size_t n = 0;
  for (const auto& shard : p) n += shard.size();
  return n;
}

std::set<std::int32_t> classes_of(const Dataset& d,
                                  const std::vector<std::size_t>& shard) {
  std::set<std::int32_t> out;
  for (std::size_t idx : shard) out.insert(d.label(idx));
  return out;
}

// --- IID -----------------------------------------------------------------------

TEST(PartitionIid, DisjointFullCoverageNearEqualSizes) {
  const SyntheticData data = partition_data();
  util::Rng rng(1);
  const Partition p = partition_iid(data.train, 7, rng);
  EXPECT_EQ(p.size(), 7u);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));
  EXPECT_EQ(total_assigned(p), data.train.size());
  for (const auto& shard : p) {
    EXPECT_NEAR(static_cast<double>(shard.size()), 1000.0 / 7.0, 1.0);
  }
}

TEST(PartitionIid, ShardsContainAllClasses) {
  const SyntheticData data = partition_data();
  util::Rng rng(2);
  const Partition p = partition_iid(data.train, 5, rng);
  for (const auto& shard : p) {
    EXPECT_EQ(classes_of(data.train, shard).size(), 10u);
  }
}

TEST(PartitionIid, ZeroClientsThrows) {
  const SyntheticData data = partition_data(4, 100);
  util::Rng rng(3);
  EXPECT_THROW(partition_iid(data.train, 0, rng), std::invalid_argument);
}

// --- shards (McMahan) ------------------------------------------------------------

TEST(PartitionShards, TwoShardsLimitToAtMostTwoClasses) {
  const SyntheticData data = partition_data();
  util::Rng rng(4);
  const Partition p = partition_shards(data.train, 50, 2, rng);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));
  EXPECT_EQ(total_assigned(p), data.train.size());
  for (const auto& shard : p) {
    EXPECT_LE(classes_of(data.train, shard).size(), 2u);
  }
}

TEST(PartitionShards, MoreShardsThanSamplesThrows) {
  const SyntheticData data = partition_data(4, 100);
  util::Rng rng(5);
  EXPECT_THROW(partition_shards(data.train, 60, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_shards(data.train, 10, 0, rng),
               std::invalid_argument);
}

// --- classes (Zhao et al.) --------------------------------------------------------

class PartitionClassesSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionClassesSweep, ClassLimitHolds) {
  const std::size_t k = GetParam();
  const SyntheticData data = partition_data();
  util::Rng rng(6);
  const Partition p = partition_classes(data.train, 20, k, rng);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));
  for (const auto& shard : p) {
    EXPECT_LE(classes_of(data.train, shard).size(), k);
    EXPECT_FALSE(shard.empty());
  }
  // Every sample assigned (class pools are fully dealt out).
  EXPECT_EQ(total_assigned(p), data.train.size());
}

INSTANTIATE_TEST_SUITE_P(NonIidLevels, PartitionClassesSweep,
                         ::testing::Values(2, 5, 10));

TEST(PartitionClasses, EveryClassIsCovered) {
  const SyntheticData data = partition_data();
  util::Rng rng(7);
  const Partition p = partition_classes(data.train, 20, 2, rng);
  std::set<std::int32_t> seen;
  for (const auto& shard : p) {
    const auto classes = classes_of(data.train, shard);
    seen.insert(classes.begin(), classes.end());
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(PartitionClasses, BadKThrows) {
  const SyntheticData data = partition_data();
  util::Rng rng(8);
  EXPECT_THROW(partition_classes(data.train, 5, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_classes(data.train, 5, 11, rng),
               std::invalid_argument);
}

// --- classes + quantity weights --------------------------------------------------

TEST(PartitionClassesWeighted, EqualWeightsReduceToPlainClasses) {
  const SyntheticData data = partition_data();
  util::Rng rng_a(20), rng_b(20);
  const Partition plain = partition_classes(data.train, 10, 3, rng_a);
  const Partition weighted = partition_classes_weighted(
      data.train, 10, 3, std::vector<double>(10, 2.5), rng_b);
  ASSERT_EQ(plain.size(), weighted.size());
  for (std::size_t c = 0; c < plain.size(); ++c) {
    // Same class membership; shard sizes match within rounding.
    EXPECT_EQ(classes_of(data.train, plain[c]),
              classes_of(data.train, weighted[c]));
    EXPECT_NEAR(static_cast<double>(plain[c].size()),
                static_cast<double>(weighted[c].size()), 3.0);
  }
}

TEST(PartitionClassesWeighted, HeavierClientsGetMoreSamples) {
  const SyntheticData data = partition_data(10, 2000);
  util::Rng rng(21);
  // Clients 5..9 weigh 3x clients 0..4.
  std::vector<double> weights(10, 1.0);
  for (std::size_t c = 5; c < 10; ++c) weights[c] = 3.0;
  const Partition p =
      partition_classes_weighted(data.train, 10, 5, weights, rng);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));
  double light = 0.0, heavy = 0.0;
  for (std::size_t c = 0; c < 5; ++c) light += static_cast<double>(p[c].size());
  for (std::size_t c = 5; c < 10; ++c) heavy += static_cast<double>(p[c].size());
  EXPECT_NEAR(heavy / light, 3.0, 0.5);
}

TEST(PartitionClassesWeighted, AllSamplesAssigned) {
  const SyntheticData data = partition_data(10, 1000);
  util::Rng rng(22);
  std::vector<double> weights{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Partition p =
      partition_classes_weighted(data.train, 10, 4, weights, rng);
  EXPECT_EQ(total_assigned(p), data.train.size());
}

TEST(PartitionClassesWeighted, WeightCountMismatchThrows) {
  const SyntheticData data = partition_data(4, 100);
  util::Rng rng(23);
  EXPECT_THROW(partition_classes_weighted(data.train, 5, 2,
                                          std::vector<double>(3, 1.0), rng),
               std::invalid_argument);
}

// --- class-skewed (group <-> class affinity) --------------------------------------

TEST(PartitionClassesSkewed, ZeroAffinityGivesNearUniformClassSpread) {
  const SyntheticData data = partition_data(10, 2000);
  util::Rng rng(24);
  ClassSkewOptions options;
  options.classes_per_client = 2;
  const Partition p =
      partition_classes_skewed(data.train, 40, options, rng);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));
  for (const auto& shard : p) {
    EXPECT_LE(classes_of(data.train, shard).size(), 2u);
  }
}

TEST(PartitionClassesSkewed, AffinityConcentratesHomeClassesInGroup) {
  const SyntheticData data = partition_data(10, 4000);
  util::Rng rng(25);
  ClassSkewOptions options;
  options.classes_per_client = 2;
  options.group_class_affinity = 8.0;
  options.client_groups.resize(50);
  for (std::size_t c = 0; c < 50; ++c) {
    options.client_groups[c] = c * 5 / 50;  // 5 groups of 10
  }
  const Partition p =
      partition_classes_skewed(data.train, 50, options, rng);

  // Classes 0-1 are home to group 0, ..., classes 8-9 to group 4.  Count
  // what fraction of each group's samples belong to its home classes.
  double home_fraction = 0.0;
  for (std::size_t g = 0; g < 5; ++g) {
    std::size_t home = 0, total = 0;
    for (std::size_t c = g * 10; c < (g + 1) * 10; ++c) {
      for (std::size_t idx : p[c]) {
        const std::size_t cls = static_cast<std::size_t>(data.train.label(idx));
        home += (cls * 5 / 10 == g);
        ++total;
      }
    }
    if (total > 0) home_fraction += static_cast<double>(home) / total;
  }
  home_fraction /= 5.0;
  // Uniform draws would give ~0.2; strong affinity must far exceed it.
  EXPECT_GT(home_fraction, 0.5);
}

TEST(PartitionClassesSkewed, DistinctClassesPerClient) {
  const SyntheticData data = partition_data(10, 1000);
  util::Rng rng(26);
  ClassSkewOptions options;
  options.classes_per_client = 4;
  options.group_class_affinity = 5.0;
  options.client_groups.assign(20, 0);
  const Partition p =
      partition_classes_skewed(data.train, 20, options, rng);
  for (const auto& shard : p) {
    EXPECT_LE(classes_of(data.train, shard).size(), 4u);
  }
}

TEST(PartitionClassesSkewed, Validation) {
  const SyntheticData data = partition_data(4, 100);
  util::Rng rng(27);
  ClassSkewOptions bad_k;
  bad_k.classes_per_client = 9;
  EXPECT_THROW(partition_classes_skewed(data.train, 5, bad_k, rng),
               std::invalid_argument);
  ClassSkewOptions bad_weights;
  bad_weights.classes_per_client = 2;
  bad_weights.client_weights = {1.0};
  EXPECT_THROW(partition_classes_skewed(data.train, 5, bad_weights, rng),
               std::invalid_argument);
  ClassSkewOptions bad_groups;
  bad_groups.classes_per_client = 2;
  bad_groups.client_groups = {0};
  EXPECT_THROW(partition_classes_skewed(data.train, 5, bad_groups, rng),
               std::invalid_argument);
  ClassSkewOptions bad_affinity;
  bad_affinity.classes_per_client = 2;
  bad_affinity.group_class_affinity = -1.0;
  EXPECT_THROW(partition_classes_skewed(data.train, 5, bad_affinity, rng),
               std::invalid_argument);
}

// --- quantity ----------------------------------------------------------------------

TEST(PartitionQuantity, PaperFractionsProduceMatchingShardSizes) {
  const SyntheticData data = partition_data(10, 2000);
  util::Rng rng(9);
  // §5.1: 10/15/20/25/30 % across 5 groups.
  const std::vector<double> fractions{0.10, 0.15, 0.20, 0.25, 0.30};
  const Partition p = partition_quantity(data.train, 10, fractions, rng);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));
  // Two clients per group; group share / 2 each.
  for (std::size_t g = 0; g < 5; ++g) {
    for (std::size_t c = 0; c < 2; ++c) {
      const double expected = 2000.0 * fractions[g] / 2.0;
      EXPECT_NEAR(static_cast<double>(p[g * 2 + c].size()), expected, 2.0)
          << "group " << g;
    }
  }
}

TEST(PartitionQuantity, GroupsMustDivideClients) {
  const SyntheticData data = partition_data(4, 100);
  util::Rng rng(10);
  EXPECT_THROW(partition_quantity(data.train, 7, {0.5, 0.5}, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_quantity(data.train, 4, {}, rng),
               std::invalid_argument);
}

TEST(PartitionQuantity, FractionsNeedNotSumToOne) {
  const SyntheticData data = partition_data(4, 100);
  util::Rng rng(11);
  const Partition p = partition_quantity(data.train, 2, {1.0, 3.0}, rng);
  EXPECT_NEAR(static_cast<double>(p[1].size()),
              3.0 * static_cast<double>(p[0].size()), 2.0);
}

// --- LEAF ---------------------------------------------------------------------------

TEST(PartitionLeaf, ProducesLongTailOfClientSizes) {
  const SyntheticData data = partition_data(10, 4000);
  util::Rng rng(12);
  LeafOptions options;
  options.num_clients = 50;
  const Partition p = partition_leaf(data.train, options, rng);
  EXPECT_EQ(p.size(), 50u);
  EXPECT_TRUE(is_disjoint_partition(p, data.train.size()));

  std::vector<double> sizes;
  for (const auto& shard : p) {
    EXPECT_GE(shard.size(), 1u);
    sizes.push_back(static_cast<double>(shard.size()));
  }
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_GT(*max_it, 2.0 * *min_it) << "LEAF counts should be heterogeneous";
}

TEST(PartitionLeaf, ClassMixturesAreSkewed) {
  const SyntheticData data = partition_data(10, 4000);
  util::Rng rng(13);
  LeafOptions options;
  options.num_clients = 30;
  options.dirichlet_alpha = 0.2;  // strong skew
  const Partition p = partition_leaf(data.train, options, rng);
  // Most clients should be dominated by a minority of classes.
  std::size_t skewed = 0;
  for (const auto& shard : p) {
    if (shard.size() < 20) continue;
    const auto dist = data.train.class_distribution(shard);
    const double top = *std::max_element(dist.begin(), dist.end());
    if (top > 0.35) ++skewed;
  }
  EXPECT_GT(skewed, p.size() / 3);
}

TEST(PartitionLeaf, RespectsMinSamples) {
  const SyntheticData data = partition_data(10, 4000);
  util::Rng rng(14);
  LeafOptions options;
  options.num_clients = 100;
  options.min_samples = 5;
  const Partition p = partition_leaf(data.train, options, rng);
  for (const auto& shard : p) EXPECT_GE(shard.size(), 1u);
}

// --- matched test shards --------------------------------------------------------------

TEST(MatchedTestIndices, DistributionTracksTrainShard) {
  const SyntheticData data = partition_data(10, 2000);
  util::Rng rng(15);
  const Partition train_p = partition_classes(data.train, 10, 2, rng);
  const auto test_shards =
      matched_test_indices(data.train, train_p, data.test, rng);
  ASSERT_EQ(test_shards.size(), train_p.size());
  for (std::size_t c = 0; c < train_p.size(); ++c) {
    const auto train_classes = classes_of(data.train, train_p[c]);
    // Every test label must be one of the client's train classes.
    for (std::size_t idx : test_shards[c]) {
      EXPECT_TRUE(train_classes.count(data.test.label(idx)))
          << "client " << c;
    }
    EXPECT_GE(test_shards[c].size(), 10u);
  }
}

TEST(IsDisjointPartition, DetectsOverlapAndRange) {
  EXPECT_TRUE(is_disjoint_partition({{0, 1}, {2, 3}}, 4));
  EXPECT_FALSE(is_disjoint_partition({{0, 1}, {1, 2}}, 4));  // overlap
  EXPECT_FALSE(is_disjoint_partition({{0, 9}}, 4));          // out of range
}

// --- lazy shards ------------------------------------------------------------

TEST(LazyShards, ShardsAreInRangeDeterministicAndMatchMaterialize) {
  const LazyShards shards(1000, 30, {.samples_per_client = 40, .spread = 0.5},
                          /*seed=*/7);
  const LazyShards replay(1000, 30, {.samples_per_client = 40, .spread = 0.5},
                          /*seed=*/7);
  EXPECT_EQ(shards.num_clients(), 30u);
  EXPECT_EQ(shards.dataset_size(), 1000u);
  for (std::size_t c = 0; c < 30; ++c) {
    const ShardView view = shards.shard(c);
    EXPECT_EQ(view.size(), shards.shard_size(c));
    EXPECT_GE(view.size(), 20u);  // base * (1 - spread)
    EXPECT_LE(view.size(), 60u);  // base * (1 + spread)
    const std::vector<std::size_t> materialized = view.materialize();
    ASSERT_EQ(materialized.size(), view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_LT(view[i], 1000u);
      EXPECT_EQ(view[i], materialized[i]);
      EXPECT_EQ(view[i], replay.shard(c)[i]);  // pure function of the seed
    }
  }
}

TEST(LazyShards, ZeroSpreadTilesTheDatasetDisjointly) {
  // While the population fits the dataset, lazy IID shards are an exact
  // partition: consecutive windows over one permutation.
  const LazyShards shards(1000, 20, {.samples_per_client = 50, .spread = 0.0},
                          3);
  Partition materialized;
  for (std::size_t c = 0; c < 20; ++c) {
    materialized.push_back(shards.shard(c).materialize());
    EXPECT_EQ(materialized.back().size(), 50u);
  }
  EXPECT_TRUE(is_disjoint_partition(materialized, 1000));
}

TEST(LazyShards, OversubscribedPopulationWrapsWithoutGrowth) {
  // 10k clients x 50 samples over a 1k-sample dataset: windows wrap, and
  // the only O(dataset) state is the shared permutation — shards stay
  // valid, in range, and distinct across clients.
  const LazyShards shards(1000, 10000, {.samples_per_client = 50}, 11);
  std::size_t checked = 0;
  for (std::size_t c = 0; c < 10000; c += 997) {
    const ShardView view = shards.shard(c);
    ASSERT_EQ(view.size(), 50u);
    std::set<std::size_t> unique;
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_LT(view[i], 1000u);
      unique.insert(view[i]);
    }
    // A 50-wide window of a permutation never repeats an index.
    EXPECT_EQ(unique.size(), view.size());
    ++checked;
  }
  EXPECT_GT(checked, 5u);
}

TEST(LazyShards, SpreadSizesVaryAcrossClients) {
  const LazyShards shards(4000, 64, {.samples_per_client = 50, .spread = 0.5},
                          21);
  std::set<std::size_t> sizes;
  for (std::size_t c = 0; c < 64; ++c) sizes.insert(shards.shard_size(c));
  EXPECT_GT(sizes.size(), 4u);  // the jitter actually spreads
}

TEST(LazyShards, ValidatesArguments) {
  EXPECT_THROW(LazyShards(0, 5, {}, 1), std::invalid_argument);
  EXPECT_THROW(LazyShards(100, 0, {}, 1), std::invalid_argument);
  EXPECT_THROW(LazyShards(100, 5, {.spread = -0.1}, 1),
               std::invalid_argument);
  EXPECT_THROW(LazyShards(100, 5, {.spread = 1.5}, 1), std::invalid_argument);
  const LazyShards shards(100, 5, {}, 1);
  EXPECT_THROW(shards.shard_size(5), std::out_of_range);
  EXPECT_THROW(ShardView(nullptr, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tifl::data
