#include "core/static_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace tifl::core {
namespace {

TierInfo synthetic_tiers(std::size_t tiers, std::size_t per_tier) {
  TierInfo info;
  info.members.resize(tiers);
  info.avg_latency.resize(tiers);
  std::size_t id = 0;
  for (std::size_t t = 0; t < tiers; ++t) {
    for (std::size_t i = 0; i < per_tier; ++i) {
      info.members[t].push_back(id++);
    }
    info.avg_latency[t] = static_cast<double>(t + 1) * 10.0;
  }
  return info;
}

// --- Table 1 presets -------------------------------------------------------------

TEST(Table1, PresetsMatchPaperExactly) {
  EXPECT_EQ(table1_probs("slow"), (std::vector<double>{0, 0, 0, 0, 1}));
  EXPECT_EQ(table1_probs("uniform"),
            (std::vector<double>{0.2, 0.2, 0.2, 0.2, 0.2}));
  EXPECT_EQ(table1_probs("random"),
            (std::vector<double>{0.7, 0.1, 0.1, 0.05, 0.05}));
  EXPECT_EQ(table1_probs("fast"), (std::vector<double>{1, 0, 0, 0, 0}));
  EXPECT_EQ(table1_probs("fast1"),
            (std::vector<double>{0.225, 0.225, 0.225, 0.225, 0.1}));
  EXPECT_EQ(table1_probs("fast2"),
            (std::vector<double>{0.2375, 0.2375, 0.2375, 0.2375, 0.05}));
  EXPECT_EQ(table1_probs("fast3"),
            (std::vector<double>{0.25, 0.25, 0.25, 0.25, 0.0}));
}

TEST(Table1, AllPresetsSumToOne) {
  for (const char* name :
       {"slow", "uniform", "random", "fast", "fast1", "fast2", "fast3"}) {
    const auto probs = table1_probs(name);
    const double total =
        std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12) << name;
  }
}

TEST(Table1, UnknownNameThrows) {
  EXPECT_THROW(table1_probs("nope"), std::invalid_argument);
  EXPECT_THROW(table1_probs("vanilla"), std::invalid_argument);  // not tiered
  EXPECT_THROW(table1_probs("random", 4), std::invalid_argument);
  EXPECT_THROW(table1_probs("uniform", 0), std::invalid_argument);
}

TEST(Table1, UniformGeneralizesToAnyTierCount) {
  const auto probs = table1_probs("uniform", 4);
  EXPECT_EQ(probs, (std::vector<double>{0.25, 0.25, 0.25, 0.25}));
}

// --- StaticTierPolicy --------------------------------------------------------------

TEST(StaticTierPolicy, SelectsOnlyWithinOneTierPerRound) {
  const TierInfo tiers = synthetic_tiers(5, 10);
  StaticTierPolicy policy(tiers, table1_probs("uniform"), 5, "uniform");
  util::Rng rng(1);
  for (std::size_t round = 0; round < 200; ++round) {
    const fl::Selection s = policy.select(round, rng);
    ASSERT_EQ(s.clients.size(), 5u);
    ASSERT_GE(s.tier, 0);
    const auto& pool = tiers.members[static_cast<std::size_t>(s.tier)];
    for (std::size_t c : s.clients) {
      EXPECT_TRUE(std::find(pool.begin(), pool.end(), c) != pool.end());
    }
    // No duplicate clients within a round.
    std::set<std::size_t> unique(s.clients.begin(), s.clients.end());
    EXPECT_EQ(unique.size(), s.clients.size());
  }
}

TEST(StaticTierPolicy, TierFrequenciesMatchProbabilities) {
  const TierInfo tiers = synthetic_tiers(5, 10);
  StaticTierPolicy policy(tiers, table1_probs("random"), 5, "random");
  util::Rng rng(2);
  std::vector<int> counts(5, 0);
  const int rounds = 50000;
  for (int round = 0; round < rounds; ++round) {
    ++counts[static_cast<std::size_t>(policy.select(round, rng).tier)];
  }
  const std::vector<double> expected{0.7, 0.1, 0.1, 0.05, 0.05};
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_NEAR(static_cast<double>(counts[t]) / rounds, expected[t], 0.01)
        << "tier " << t;
  }
}

TEST(StaticTierPolicy, FastOnlyEverPicksTierOne) {
  const TierInfo tiers = synthetic_tiers(5, 8);
  StaticTierPolicy policy(tiers, table1_probs("fast"), 5, "fast");
  util::Rng rng(3);
  for (std::size_t round = 0; round < 100; ++round) {
    EXPECT_EQ(policy.select(round, rng).tier, 0);
  }
}

TEST(StaticTierPolicy, SlowOnlyEverPicksLastTier) {
  const TierInfo tiers = synthetic_tiers(5, 8);
  StaticTierPolicy policy(tiers, table1_probs("slow"), 5, "slow");
  util::Rng rng(4);
  for (std::size_t round = 0; round < 100; ++round) {
    EXPECT_EQ(policy.select(round, rng).tier, 4);
  }
}

TEST(StaticTierPolicy, UndersizedTierGetsMassRedistributed) {
  // Tier 0 has fewer members than |C|; "fast"-leaning probabilities must
  // shift to eligible tiers instead of failing at selection time.
  TierInfo tiers = synthetic_tiers(3, 6);
  tiers.members[0].resize(2);  // too small for |C| = 5
  StaticTierPolicy policy(tiers, {0.8, 0.1, 0.1}, 5, "custom");
  EXPECT_EQ(policy.tier_probs()[0], 0.0);
  EXPECT_NEAR(policy.tier_probs()[1], 0.5, 1e-12);
  EXPECT_NEAR(policy.tier_probs()[2], 0.5, 1e-12);
  util::Rng rng(5);
  for (std::size_t round = 0; round < 50; ++round) {
    EXPECT_NE(policy.select(round, rng).tier, 0);
  }
}

TEST(StaticTierPolicy, ConstructionErrors) {
  const TierInfo tiers = synthetic_tiers(3, 4);
  EXPECT_THROW(StaticTierPolicy(tiers, {0.5, 0.5}, 2, "bad"),
               std::invalid_argument);  // prob count mismatch
  EXPECT_THROW(StaticTierPolicy(tiers, {0.3, 0.3, 0.4}, 0, "bad"),
               std::invalid_argument);  // zero per round
  // All mass on an undersized tier -> nothing eligible.
  TierInfo small = synthetic_tiers(2, 3);
  EXPECT_THROW(StaticTierPolicy(small, {1.0, 0.0}, 5, "bad"),
               std::invalid_argument);
}

TEST(StaticTierPolicy, NameIsReported) {
  const TierInfo tiers = synthetic_tiers(5, 6);
  StaticTierPolicy policy(tiers, table1_probs("uniform"), 3, "uniform");
  EXPECT_EQ(policy.name(), "uniform");
}

}  // namespace
}  // namespace tifl::core
