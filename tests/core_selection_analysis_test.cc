#include "core/selection_analysis.h"

#include <gtest/gtest.h>

#include "fl/policy.h"
#include "util/rng.h"

namespace tifl::core {
namespace {

TEST(SelectionAnalysis, KnownHypergeometricValue) {
  // K=20, |tau_m|=4, |C|=5: Pr = C(16,5)/C(20,5) = 4368/15504.
  EXPECT_NEAR(probability_avoid_slowest(20, 4, 5), 4368.0 / 15504.0, 1e-12);
  EXPECT_NEAR(straggler_selection_probability(20, 4, 5),
              1.0 - 4368.0 / 15504.0, 1e-12);
}

TEST(SelectionAnalysis, DegenerateCases) {
  // No slow level -> never hit a straggler.
  EXPECT_DOUBLE_EQ(straggler_selection_probability(50, 0, 5), 0.0);
  // Selecting everyone always includes the slow level.
  EXPECT_DOUBLE_EQ(straggler_selection_probability(50, 10, 50), 1.0);
  // Not enough fast clients to fill a round.
  EXPECT_DOUBLE_EQ(probability_avoid_slowest(10, 8, 5), 0.0);
}

TEST(SelectionAnalysis, Theorem31LowerBoundHolds) {
  // Eq. 5: Prs > 1 - ((K - m)/K)^C, strict whenever 0 < m, 1 < C < K.
  for (std::size_t k : {20ul, 50ul, 200ul}) {
    for (std::size_t m : {1ul, 4ul, 10ul}) {
      for (std::size_t c : {2ul, 5ul, 10ul}) {
        const double prs = straggler_selection_probability(k, m, c);
        const double bound = straggler_probability_lower_bound(k, m, c);
        EXPECT_GT(prs, bound) << "K=" << k << " m=" << m << " C=" << c;
      }
    }
  }
}

TEST(SelectionAnalysis, ApproachesOneAtFederationScale) {
  // §3.2's conclusion: with large K and proportional slow level, Prs ~ 1.
  const double prs = straggler_selection_probability(
      1000000, /*slowest=*/200000, /*per_round=*/100);
  EXPECT_GT(prs, 0.999999);
}

TEST(SelectionAnalysis, LargeInputsDoNotOverflow) {
  const double pr = probability_avoid_slowest(100000000, 20000000, 1000);
  EXPECT_GE(pr, 0.0);
  EXPECT_LE(pr, 1.0);
  EXPECT_LT(pr, 1e-30);  // essentially certain to hit a straggler
}

TEST(SelectionAnalysis, MonotoneInSlowLevelSizeAndRoundSize) {
  double last = 0.0;
  for (std::size_t m = 1; m <= 20; ++m) {
    const double prs = straggler_selection_probability(100, m, 10);
    EXPECT_GT(prs, last);
    last = prs;
  }
  last = 0.0;
  for (std::size_t c = 1; c <= 20; ++c) {
    const double prs = straggler_selection_probability(100, 10, c);
    EXPECT_GT(prs, last);
    last = prs;
  }
}

TEST(SelectionAnalysis, MatchesMonteCarloVanillaSelection) {
  // Cross-check Eq. 3 against the actual VanillaPolicy implementation.
  fl::VanillaPolicy policy(50, 5);
  util::Rng rng(9);
  const std::size_t slow_start = 40;  // last 10 clients form tau_m
  int hits = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const fl::Selection s = policy.select(0, rng);
    for (std::size_t c : s.clients) {
      if (c >= slow_start) {
        ++hits;
        break;
      }
    }
  }
  const double expected = straggler_selection_probability(50, 10, 5);
  EXPECT_NEAR(static_cast<double>(hits) / trials, expected, 0.01);
}

TEST(SelectionAnalysis, InvalidInputsThrow) {
  EXPECT_THROW(probability_avoid_slowest(10, 11, 2), std::invalid_argument);
  EXPECT_THROW(probability_avoid_slowest(10, 2, 11), std::invalid_argument);
  EXPECT_THROW(straggler_probability_lower_bound(0, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tifl::core
