// GEMM kernels checked against a naive triple-loop reference across a
// parameterized sweep of shapes, including the degenerate and prime-sized
// cases that trip blocking/parallel-split bugs.
#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tifl::tensor {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn({r, c}, rng);
}

Tensor reference_nn(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

using GemmShape = std::tuple<int, int, int>;  // M, K, N

class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, NnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Tensor a = random_matrix(m, k, 1);
  const Tensor b = random_matrix(k, n, 2);
  Tensor c({m, n});
  gemm_nn(a, b, c);
  EXPECT_LE(max_abs_diff(c, reference_nn(a, b)), 1e-4f);
}

TEST_P(GemmSweep, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Tensor a = random_matrix(m, k, 3);
  const Tensor b_t = random_matrix(n, k, 4);  // stores B^T
  Tensor c({m, n});
  gemm_nt(a, b_t, c);
  // Reference: multiply by explicit transpose.
  Tensor b({k, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < k; ++j) b.at(j, i) = b_t.at(i, j);
  }
  EXPECT_LE(max_abs_diff(c, reference_nn(a, b)), 1e-4f);
}

TEST_P(GemmSweep, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  const Tensor a_t = random_matrix(k, m, 5);  // stores A^T
  const Tensor b = random_matrix(k, n, 6);
  Tensor c({m, n});
  gemm_tn(a_t, b, c);
  Tensor a({m, k});
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < m; ++j) a.at(j, i) = a_t.at(i, j);
  }
  EXPECT_LE(max_abs_diff(c, reference_nn(a, b)), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 7, 1},
                      GemmShape{2, 3, 4}, GemmShape{5, 5, 5},
                      GemmShape{13, 17, 11},  // primes
                      GemmShape{10, 64, 10},  // dense-layer shape
                      GemmShape{64, 1, 64},   // rank-1 outer product
                      GemmShape{1, 128, 32},  // single row
                      GemmShape{100, 30, 70}  // larger than a row chunk
                      ));

TEST(Gemm, AccumulateAddsOntoExisting) {
  const Tensor a = random_matrix(4, 5, 7);
  const Tensor b = random_matrix(5, 6, 8);
  Tensor c({4, 6}, 1.0f);
  gemm_nn(a, b, c, /*accumulate=*/true);
  Tensor expected = reference_nn(a, b);
  for (std::int64_t i = 0; i < expected.numel(); ++i) expected[i] += 1.0f;
  EXPECT_LE(max_abs_diff(c, expected), 1e-4f);
}

TEST(Gemm, OverwriteClearsExisting) {
  const Tensor a = random_matrix(4, 5, 9);
  const Tensor b = random_matrix(5, 6, 10);
  Tensor c({4, 6}, 123.0f);
  gemm_nn(a, b, c, /*accumulate=*/false);
  EXPECT_LE(max_abs_diff(c, reference_nn(a, b)), 1e-4f);
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(gemm_nn(a, b, c), std::invalid_argument);
  Tensor b2({3, 5}), c2({3, 5});
  EXPECT_THROW(gemm_nn(a, b2, c2), std::invalid_argument);
}

TEST(Gemm, RankMismatchThrows) {
  Tensor a({2, 3, 1}), b({3, 4}), c({2, 4});
  EXPECT_THROW(gemm_nn(a, b, c), std::invalid_argument);
}

TEST(Gemm, ParallelResultIsDeterministic) {
  // Same inputs, two runs: results must be bitwise identical (each output
  // element is written by exactly one task).
  const Tensor a = random_matrix(200, 50, 11);
  const Tensor b = random_matrix(50, 80, 12);
  Tensor c1({200, 80}), c2({200, 80});
  gemm_nn(a, b, c1);
  gemm_nn(a, b, c2);
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0f);
}

// --- blocked-vs-naive equivalence over odd/edge shapes ----------------------
// M, K, N sweep {1, 3, 17, 64, 257} x accumulate on/off: exercises the
// small, stream and packed dispatch paths, ragged microtiles (257 = 42*6+5
// rows, 16*16+1 columns) and multi-KC reductions (257 > KC is false here,
// but 257 columns span multiple NR panels and the x2 tile pairing).
using EdgeCase = std::tuple<int, int, int, bool>;  // M, K, N, accumulate

class GemmEdgeSweep : public ::testing::TestWithParam<EdgeCase> {
 protected:
  static constexpr float kEdgeTol = 1e-3f;  // K=257 float reduction slack
};

TEST_P(GemmEdgeSweep, NnMatchesReference) {
  const auto [m, k, n, accumulate] = GetParam();
  const Tensor a = random_matrix(m, k, 21);
  const Tensor b = random_matrix(k, n, 22);
  Tensor c = random_matrix(m, n, 23);
  Tensor expected = reference_nn(a, b);
  if (accumulate) {
    for (std::int64_t i = 0; i < expected.numel(); ++i) expected[i] += c[i];
  }
  gemm_nn(a, b, c, accumulate);
  EXPECT_LE(max_abs_diff(c, expected), kEdgeTol);
}

TEST_P(GemmEdgeSweep, NtMatchesReference) {
  const auto [m, k, n, accumulate] = GetParam();
  const Tensor a = random_matrix(m, k, 24);
  const Tensor b_t = random_matrix(n, k, 25);
  Tensor b({k, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < k; ++j) b.at(j, i) = b_t.at(i, j);
  }
  Tensor c = random_matrix(m, n, 26);
  Tensor expected = reference_nn(a, b);
  if (accumulate) {
    for (std::int64_t i = 0; i < expected.numel(); ++i) expected[i] += c[i];
  }
  gemm_nt(a, b_t, c, accumulate);
  EXPECT_LE(max_abs_diff(c, expected), kEdgeTol);
}

TEST_P(GemmEdgeSweep, TnMatchesReference) {
  const auto [m, k, n, accumulate] = GetParam();
  const Tensor a_t = random_matrix(k, m, 27);
  const Tensor b = random_matrix(k, n, 28);
  Tensor a({m, k});
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < m; ++j) a.at(j, i) = a_t.at(i, j);
  }
  Tensor c = random_matrix(m, n, 29);
  Tensor expected = reference_nn(a, b);
  if (accumulate) {
    for (std::int64_t i = 0; i < expected.numel(); ++i) expected[i] += c[i];
  }
  gemm_tn(a_t, b, c, accumulate);
  EXPECT_LE(max_abs_diff(c, expected), kEdgeTol);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, GemmEdgeSweep,
    ::testing::Combine(::testing::Values(1, 3, 17, 64, 257),
                       ::testing::Values(1, 3, 17, 64, 257),
                       ::testing::Values(1, 3, 17, 64, 257),
                       ::testing::Bool()));

// --- fused epilogue ---------------------------------------------------------

TEST(GemmEpilogue, BiasAndReluMatchSeparatePasses) {
  // 128^3 takes the packed path; the epilogue must equal gemm + explicit
  // bias-and-relu passes bit for bit (same adds in the same order).
  const std::int64_t m = 128, k = 128, n = 128;
  const Tensor a = random_matrix(m, k, 31);
  const Tensor b = random_matrix(k, n, 32);
  const Tensor bias_n = random_matrix(1, n, 33).reshaped({n});
  const Tensor bias_m = random_matrix(1, m, 34).reshaped({m});

  Tensor plain({m, n});
  gemm_nn(a, b, plain);
  Tensor expected = plain;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float v = expected.at(i, j) + bias_m[i] + bias_n[j];
      expected.at(i, j) = v > 0.0f ? v : 0.0f;
    }
  }

  Tensor fused({m, n});
  Epilogue ep;
  ep.bias_m = bias_m.data();
  ep.bias_n = bias_n.data();
  ep.relu = true;
  gemm_nn(a, b, fused, /*accumulate=*/false, ep);
  EXPECT_EQ(max_abs_diff(fused, expected), 0.0f);
}

TEST(GemmEpilogue, AppliesOnSmallAndStreamPaths) {
  // 8x8x8 (small path) and 4x200x300 (stream path: short C) against the
  // same manual epilogue.
  for (const auto& [m, k, n] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t>{8, 8, 8},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{4, 200, 300}}) {
    const Tensor a = random_matrix(m, k, 41);
    const Tensor b = random_matrix(k, n, 42);
    const Tensor bias = random_matrix(1, n, 43).reshaped({n});
    Tensor expected({m, n});
    gemm_nn(a, b, expected);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const float v = expected.at(i, j) + bias[j];
        expected.at(i, j) = v > 0.0f ? v : 0.0f;
      }
    }
    Tensor fused({m, n});
    Epilogue ep;
    ep.bias_n = bias.data();
    ep.relu = true;
    gemm_nn(a, b, fused, /*accumulate=*/false, ep);
    EXPECT_EQ(max_abs_diff(fused, expected), 0.0f) << m << "x" << k << "x" << n;
  }
}

// --- dispatch determinism ---------------------------------------------------

TEST(Gemm, NestedSerialMatchesTopLevelBitwise) {
  // From the top level the blocked kernel tiles across the pool; from a
  // worker thread it degrades to the serial blocked kernel.  Both must
  // produce bit-identical C — the pool-size determinism contract.
  const Tensor a = random_matrix(300, 200, 51);
  const Tensor b = random_matrix(200, 300, 52);
  Tensor top({300, 300}), nested({300, 300});
  gemm_nn(a, b, top);
  util::global_pool()
      .submit([&] { gemm_nn(a, b, nested); })
      .get();
  EXPECT_EQ(max_abs_diff(top, nested), 0.0f);
}

TEST(Gemm, NtNnConsistency) {
  // A*B via nn must equal A*(B^T)^T via nt.
  const Tensor a = random_matrix(6, 7, 13);
  const Tensor b = random_matrix(7, 8, 14);
  Tensor b_t({8, 7});
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) b_t.at(j, i) = b.at(i, j);
  }
  Tensor c_nn({6, 8}), c_nt({6, 8});
  gemm_nn(a, b, c_nn);
  gemm_nt(a, b_t, c_nt);
  EXPECT_LE(max_abs_diff(c_nn, c_nt), 1e-4f);
}

}  // namespace
}  // namespace tifl::tensor
