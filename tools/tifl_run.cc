// tifl_run — config-driven experiment runner.
//
// Compose any dataset preset x partition scheme x selection policy from
// the command line without writing C++:
//
//   tifl_run --dataset cifar --partition classes --classes 5
//            --policy adaptive --rounds 100 --clients 50 --per-round 5
//            --csv run.csv
//
// Flags (defaults in brackets):
//   --dataset    cifar | mnist | fmnist | femnist            [cifar]
//   --partition  iid | classes | quantity | combine | leaf   [iid]
//   --classes    k for class-limited partitions              [5]
//   --affinity   group<->class affinity for combine          [0]
//   --policy     any name in the selection-policy registry; `--help`
//                prints the live list with per-engine support
//                                    [sync: adaptive; async: uniform]
//   --rounds N [100]   --clients N [50]   --per-round N [5]
//   --tiers M [5]      --seed S [1]       --scale S [0.25]
//   --time-budget SECONDS [0 = unlimited]
//   --csv FILE   per-round series output
//   --engine     sync | async                                [sync]
//   --staleness  constant | poly | invfreq (async only)      [constant]
//   --alpha      polynomial staleness decay exponent         [0.5]
//   --churn RATE            join/leave/slowdown events per virtual
//                           second, each stream at RATE (async only) [0]
//   --reprofile-every SECS  online re-tiering period; tiers are rebuilt
//                           from decayed observed latencies without
//                           restarting the run (async only)          [0]
//   --churn-seed S          pin the churn stream independently of
//                           --seed (0 = derive from the run seed)    [0]
//   --shards N              worker shards for the event queue and the
//                           virtual client cache (async only): each
//                           shard owns a contiguous client range and
//                           its own event heap/LRU.  Results are
//                           bit-identical at every shard count.      [1]
//   --barrier-window SECS   virtual-time barrier window for deferred
//                           cohort training on the dynamic path; any
//                           window replays window 0 byte for byte    [0]
//   --virtual               virtualize the client population: lazy IID
//                           shards + on-demand client materialization
//                           (fl::ClientPool), so --clients 1000000 runs
//                           in bounded memory.  async engine only; auto-
//                           enabled at >= 100000 clients.
//   --samples-per-client N  virtual shard size (0 = dataset/clients) [50]
//   --shard-spread F        virtual shard-size jitter in [0,1]       [0.5]
//   --log-level  debug | info | warn | error                  [warn]
//   --metrics-out FILE      write the global metrics registry snapshot
//                           (counters/gauges/histograms) as JSON
//   --trace-out FILE        stream the structured event trace as JSONL
//                           (virtual-time stamped; convert with
//                           trace2chrome for chrome://tracing)
//   --report                print the wall-clock phase profile
//                           (profile/select/train/aggregate/eval)
//
// Durability & fault injection (async engine only):
//   --checkpoint FILE       snapshot target; written atomically (temp +
//                           fsync + rename), so the file is always a
//                           complete, loadable snapshot
//   --checkpoint-every SECS virtual-time checkpoint period (requires
//                           --checkpoint)                            [0]
//   --resume FILE           resume a run from a snapshot; the completed
//                           run is byte-identical to the uninterrupted
//                           one (same final model hash, same trace
//                           suffix) at every --shards count
//   --event-log FILE        append-only CRC-framed record of every
//                           processed event (torn tails tolerated; on
//                           resume the log is truncated back to the
//                           snapshot's event horizon)
//   --fault-loss P          per-delivery update loss probability; lost
//                           updates retry with exponential backoff    [0]
//   --fault-retries N       retry budget before an update is dropped  [3]
//   --fault-backoff SECS    base retry backoff (doubles per attempt) [0.5]
//   --fault-crash-at T      inject a server crash at virtual time T;
//                           the process exits with status 3 and the
//                           last checkpoint stays loadable            [0]
//   --fault-seed S          pin the fault stream independently of
//                           --seed (0 = derive from the run seed)     [0]
//
// Hierarchical aggregation (async engine only):
//   --topology FILE         aggregator-tree topology file (see
//                           src/fl/hier/topology.h for the format);
//                           clients split across the leaf regions and
//                           every inner node aggregates at its own
//                           cadence over latency/bandwidth-costed links
//   --regions N             shorthand for a root + N identical leaf
//                           regions; --regions 1 collapses to the flat
//                           async engine byte for byte               [0]
//   --region-tiers M        tiers formed per leaf region              [2]
//   --region-outage-rate R  regional outages per virtual second: all
//                           clients of one leaf drop together and
//                           rejoin after the outage window            [0]
//   --region-outage-duration SECS  outage window length             [500]
//   --region-outage-horizon SECS   outage sampling horizon          [5000]
//
// All output locations (--csv, --metrics-out, --trace-out, --checkpoint,
// --event-log) are checked for writability up front: an unwritable
// directory fails fast with a clear message before any data loads.
//
// With --engine async every tier trains at its own cadence; --policy
// drives per-tier member selection (e.g. `--policy adaptive` runs Alg. 2
// against the async per-tier accuracies; omit it for the default uniform
// self-sampling) and --rounds counts global model versions (tier
// submissions) instead of synchronized rounds.  Policies that cannot
// drive the selected engine are rejected up front with the list of
// capable ones.  Any positive --churn or --reprofile-every switches the async
// engine to the dynamic client lifecycle: clients join, leave and slow
// down mid-round on the event timeline, updates are submitted per client
// with their own staleness, and ReProfile events migrate clients between
// tiers with tier models intact.  --churn 0 --reprofile-every 0 replays
// the static async engine bit for bit.
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/policy_registry.h"
#include "fl/hier/topology.h"
#include "fl/policy_registry.h"
#include "nn/checkpoint.h"
#include "sim/churn_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenarios.h"
#include "sim/fault_model.h"
#include "util/log.h"

namespace {

using namespace tifl;
using namespace tifl::bench;

// The policy list is rendered from the live registry so the help text
// cannot drift from the code.
void print_usage() {
  core::register_builtin_policies();
  const fl::PolicyRegistry& registry = fl::PolicyRegistry::instance();
  std::cout <<
      "tifl_run — config-driven experiment runner\n"
      "\n"
      "usage: tifl_run [flags]\n"
      "  --dataset    cifar | mnist | fmnist | femnist            [cifar]\n"
      "  --partition  iid | classes | quantity | combine | leaf   [iid]\n"
      "  --classes N  --affinity F  (partition knobs)\n"
      "  --policy     selection policy by name (see list below)\n"
      "               [sync default: adaptive; async default: uniform\n"
      "               self-sampling]\n"
      "  --rounds N [100]   --clients N [50]   --per-round N [5]\n"
      "  --tiers M [5]      --seed S [1]       --scale S [0.25]\n"
      "  --time-budget SECONDS [0 = unlimited]   --csv FILE\n"
      "  --engine     sync | async                                [sync]\n"
      "  --staleness  constant | poly | invfreq (async)    [constant]\n"
      "  --alpha F    --churn RATE  --reprofile-every SECS\n"
      "  --churn-seed S  --virtual  --samples-per-client N\n"
      "  --shard-spread F   --shards N [1]   --barrier-window SECS [0]\n"
      "  --log-level  debug | info | warn | error          [warn]\n"
      "  --metrics-out FILE   metrics registry snapshot (JSON)\n"
      "  --trace-out FILE     structured event trace (JSONL)\n"
      "  --report             wall-clock phase profile table\n"
      "  --checkpoint FILE    atomic snapshot target (async)\n"
      "  --checkpoint-every SECS  virtual-time checkpoint period [0]\n"
      "  --resume FILE        resume from a snapshot; byte-identical to\n"
      "                       the uninterrupted run\n"
      "  --event-log FILE     append-only CRC-framed event record\n"
      "  --fault-loss P       update loss probability [0]\n"
      "  --fault-retries N    retries before an update is dropped [3]\n"
      "  --fault-backoff SECS base retry backoff, doubles per try [0.5]\n"
      "  --fault-crash-at T   inject a server crash at virtual time T\n"
      "                       (exit status 3)\n"
      "  --fault-seed S       pin the fault stream (0 = derive) [0]\n"
      "  --topology FILE      aggregator-tree topology file (async)\n"
      "  --regions N          root + N leaf regions; 1 = flat [0]\n"
      "  --region-tiers M     tiers per leaf region [2]\n"
      "  --region-outage-rate R       regional outages per virtual sec [0]\n"
      "  --region-outage-duration S   outage window length [500]\n"
      "  --region-outage-horizon S    outage sampling horizon [5000]\n"
      "\n"
      "selection policies (from the registry):\n";
  for (const std::string& name : registry.names()) {
    const fl::PolicyRegistry::Entry& entry = registry.entry(name);
    std::string engines = entry.sync && entry.async ? "sync+async"
                          : entry.sync              ? "sync"
                                                    : "async";
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 14; ++pad) std::cout << ' ';
    std::cout << "[" << engines << "]  " << entry.summary << "\n";
  }
}

// Fail fast on unwritable output locations *before* any data loads: a
// multi-minute run must not die at the end because --metrics-out pointed
// into a read-only (or missing) directory.
void require_writable(const std::string& flag, const std::string& path) {
  if (path.empty()) return;
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  if (::access(dir.c_str(), W_OK) != 0) {
    throw std::runtime_error("--" + flag + " " + path + ": directory '" +
                             dir + "' is not writable (" +
                             std::strerror(errno) + ")");
  }
  // An existing target must itself be replaceable.
  if (::access(path.c_str(), F_OK) == 0 &&
      ::access(path.c_str(), W_OK) != 0) {
    throw std::runtime_error("--" + flag + " " + path +
                             ": file exists and is not writable");
  }
}

std::string hash_hex(std::span<const float> weights) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0')
      << nn::weights_fnv1a(weights);
  return out.str();
}

ScenarioConfig from_flags(const util::Cli& cli, const BenchOptions& options) {
  ScenarioConfig config = cifar_base(options);
  config.name = "tifl_run";
  config.rounds = static_cast<std::size_t>(cli.get_int("rounds", 100));
  config.num_clients = static_cast<std::size_t>(cli.get_int("clients", 50));
  config.clients_per_round =
      static_cast<std::size_t>(cli.get_int("per-round", 5));
  config.num_tiers = static_cast<std::size_t>(cli.get_int("tiers", 5));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const double scale = cli.get_double("scale", 0.25);
  const std::string dataset = cli.get("dataset", "cifar");
  if (dataset == "cifar") {
    config.spec = data::cifar_like_spec(scale);
    config.cost = sim::cifar_cost_model();
    config.cpu_groups = sim::cifar_cpu_groups();
  } else if (dataset == "mnist") {
    config.spec = data::mnist_like_spec(scale);
    config.cost = sim::mnist_cost_model();
    config.cpu_groups = sim::mnist_cpu_groups();
  } else if (dataset == "fmnist") {
    config.spec = data::fmnist_like_spec(scale);
    config.cost = sim::mnist_cost_model();
    config.cpu_groups = sim::mnist_cpu_groups();
  } else if (dataset == "femnist") {
    config.spec = data::femnist_like_spec(scale);
    config.cost = sim::femnist_cost_model();
    config.cpu_groups = sim::cifar_cpu_groups();
    config.optimizer.kind = nn::OptimizerConfig::Kind::kSgd;
    config.optimizer.lr = 0.06;
    config.lr_decay = 1.0;
    config.mlp_hidden = 64;
  } else {
    throw std::invalid_argument("unknown --dataset " + dataset);
  }

  const std::string partition = cli.get("partition", "iid");
  config.classes_per_client =
      static_cast<std::size_t>(cli.get_int("classes", 5));
  if (partition == "iid") {
    config.partition = ScenarioConfig::Partition::kIid;
  } else if (partition == "classes") {
    config.partition = ScenarioConfig::Partition::kClasses;
  } else if (partition == "quantity") {
    config.partition = ScenarioConfig::Partition::kQuantity;
    config.quantity_fractions = {0.10, 0.15, 0.20, 0.25, 0.30};
  } else if (partition == "combine") {
    config.partition = ScenarioConfig::Partition::kClassesQuantity;
    config.quantity_fractions = {0.10, 0.15, 0.20, 0.25, 0.30};
    config.group_class_affinity = cli.get_double("affinity", 0.0);
  } else if (partition == "leaf") {
    config.partition = ScenarioConfig::Partition::kLeaf;
    config.shuffle_groups = true;
  } else {
    throw std::invalid_argument("unknown --partition " + partition);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }
  BenchOptions options = BenchOptions::from_cli(argc, argv);

  try {
    const std::string level_name = cli.get("log-level", "warn");
    const std::optional<util::LogLevel> level =
        util::parse_log_level(level_name);
    if (!level.has_value()) {
      throw std::invalid_argument("unknown --log-level " + level_name +
                                  " (debug | info | warn | error)");
    }
    util::set_log_level(*level);

    require_writable("csv", cli.get("csv", ""));
    require_writable("metrics-out", cli.get("metrics-out", ""));
    require_writable("trace-out", cli.get("trace-out", ""));
    require_writable("checkpoint", cli.get("checkpoint", ""));
    require_writable("event-log", cli.get("event-log", ""));

    ScenarioConfig config = from_flags(cli, options);
    config.time_budget_seconds = cli.get_double("time-budget", 0.0);

    const std::string engine = cli.get("engine", "sync");
    if (engine != "sync" && engine != "async") {
      throw std::invalid_argument("unknown --engine " + engine +
                                  " (sync | async)");
    }
    if (engine != "async" &&
        (!cli.get("topology", "").empty() || cli.get_int("regions", 0) > 0)) {
      throw std::invalid_argument(
          "--topology / --regions require --engine async: the aggregator "
          "tree runs on the asynchronous event timeline");
    }
    // Paper-scale populations never materialize a Client per id: beyond
    // 100k clients (or on request) the population is virtualized — lazy
    // shards over a shared permutation plus an LRU of in-flight clients.
    const bool virtualized =
        cli.get_bool("virtual") || config.num_clients >= 100000;
    if (virtualized) {
      if (engine != "async") {
        throw std::invalid_argument(
            "--virtual (and populations >= 100000 clients) requires "
            "--engine async: the synchronous engine materializes every "
            "client");
      }
      config.lazy.samples_per_client = static_cast<std::size_t>(
          cli.get_int("samples-per-client", 50));
      config.lazy.spread = cli.get_double("shard-spread", 0.5);
    }
    Scenario scenario = virtualized ? build_virtual_scenario(std::move(config))
                                    : build_scenario(std::move(config));

    // Tracing covers the run only (installed after scenario setup so data
    // loading stays out of the stream); metrics snapshot after the run.
    const std::string trace_out = cli.get("trace-out", "");
    std::ofstream trace_stream;
    std::optional<obs::Tracer> tracer;
    std::optional<obs::TracerScope> trace_scope;
    if (!trace_out.empty()) {
      trace_stream.open(trace_out);
      if (!trace_stream) {
        throw std::runtime_error("cannot open --trace-out file " + trace_out);
      }
      tracer.emplace(&trace_stream);
      trace_scope.emplace(&*tracer);
    }
    const std::string metrics_out = cli.get("metrics-out", "");
    const bool report = cli.has("report");
    const auto finish = [&](const fl::RunResult& result) {
      if (tracer.has_value()) {
        trace_scope.reset();
        tracer->flush();
        trace_stream.close();
        std::cout << "trace written to " << trace_out << "\n";
      }
      if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        if (!out) {
          throw std::runtime_error("cannot open --metrics-out file " +
                                   metrics_out);
        }
        out << obs::Registry::global().to_json() << "\n";
        std::cout << "metrics written to " << metrics_out << "\n";
      }
      if (report && !result.phases.empty()) {
        util::TablePrinter phase_table({"phase", "seconds", "calls"});
        for (const obs::PhaseStat& stat : result.phases) {
          phase_table.add_row({stat.name,
                               util::format_double(stat.seconds, 3),
                               std::to_string(stat.calls)});
        }
        std::cout << "\nphase profile (wall seconds)\n"
                  << phase_table.to_string();
      }
    };

    print_tiering(*scenario.system);
    if (engine == "async") {
      fl::AsyncConfig async;
      async.staleness = fl::parse_staleness(cli.get("staleness", "constant"));
      async.poly_alpha = cli.get_double("alpha", 0.5);
      async.time_budget_seconds = cli.get_double("time-budget", 0.0);
      const double churn = cli.get_double("churn", 0.0);
      async.churn.join_rate = churn;
      async.churn.leave_rate = churn;
      async.churn.slowdown_rate = churn;
      async.churn.seed =
          static_cast<std::uint64_t>(cli.get_int("churn-seed", 0));
      async.reprofile_every = cli.get_double("reprofile-every", 0.0);
      async.shards =
          static_cast<std::size_t>(cli.get_int("shards", 1));
      async.barrier_window = cli.get_double("barrier-window", 0.0);
      async.checkpoint_every = cli.get_double("checkpoint-every", 0.0);
      async.checkpoint_path = cli.get("checkpoint", "");
      async.resume_path = cli.get("resume", "");
      async.event_log_path = cli.get("event-log", "");
      async.fault.loss_prob = cli.get_double("fault-loss", 0.0);
      async.fault.crash_at = cli.get_double("fault-crash-at", 0.0);
      async.fault.max_retries =
          static_cast<std::size_t>(cli.get_int("fault-retries", 3));
      async.fault.backoff_base = cli.get_double("fault-backoff", 0.5);
      async.fault.seed =
          static_cast<std::uint64_t>(cli.get_int("fault-seed", 0));

      // --policy drives per-tier member selection; unset keeps the
      // engine's default uniform self-sampling (bit-identical to the
      // pre-policy-seam engine).
      std::unique_ptr<fl::SelectionPolicy> policy;
      const std::string policy_name = cli.get("policy", "");
      if (!policy_name.empty()) {
        policy = scenario.system->make_policy(policy_name);
        if (!policy->supports(fl::EngineKind::kAsync)) {
          throw std::invalid_argument(
              "policy '" + policy_name +
              "' does not support the async engine (async-capable: " +
              fl::join_policy_names(fl::PolicyRegistry::instance().names(
                  fl::EngineKind::kAsync)) +
              ")");
        }
      }
      // --topology / --regions switch the run onto the aggregator tree.
      const std::string topology_path = cli.get("topology", "");
      const std::size_t regions =
          static_cast<std::size_t>(cli.get_int("regions", 0));
      if (!topology_path.empty() || regions > 0) {
        fl::hier::HierConfig hier;
        hier.topology = !topology_path.empty()
                            ? fl::hier::Topology::load(topology_path)
                            : fl::hier::Topology::regions(regions);
        hier.tiers_per_region =
            static_cast<std::size_t>(cli.get_int("region-tiers", 2));
        const double outage_rate = cli.get_double("region-outage-rate", 0.0);
        if (outage_rate > 0.0) {
          sim::ChurnConfig outage_churn;
          outage_churn.leave_rate = outage_rate;
          hier.outages = sim::regional_outages(
              outage_churn,
              static_cast<std::uint64_t>(cli.get_int("seed", 1)),
              hier.topology.leaves().size(),
              cli.get_double("region-outage-horizon", 5000.0),
              cli.get_double("region-outage-duration", 500.0));
        }
        const fl::hier::HierRunResult run =
            scenario.system->run_hier(std::move(hier), async, {},
                                      policy.get());
        const fl::RunResult& result = run.result;

        util::TablePrinter table({"metric", "value"});
        table.add_row({"engine", result.policy_name});
        table.add_row(
            {"global versions", std::to_string(result.rounds.size())});
        table.add_row({"training time [s]",
                       util::format_double(result.total_time(), 1)});
        table.add_row({"final accuracy [%]",
                       util::format_double(result.final_accuracy() * 100, 2)});
        table.add_row({"best accuracy [%]",
                       util::format_double(result.best_accuracy() * 100, 2)});
        table.add_row({"final model hash", hash_hex(run.final_weights)});
        table.add_row({"tree nodes", std::to_string(run.node_rounds.size())});
        if (!run.collapsed) {
          table.add_row({"uplinks / downlinks",
                         std::to_string(run.uplinks) + " / " +
                             std::to_string(run.downlinks)});
          table.add_row(
              {"root link [bytes]", std::to_string(run.root_link_bytes)});
          if (run.outage_count > 0 || run.rejoin_count > 0) {
            table.add_row({"regional outages / rejoins",
                           std::to_string(run.outage_count) + " / " +
                               std::to_string(run.rejoin_count)});
          }
          if (run.reprofile_count > 0) {
            table.add_row(
                {"re-tierings", std::to_string(run.reprofile_count)});
          }
        }
        std::cout << "\n" << table.to_string();
        finish(result);

        const std::string csv = cli.get("csv", "");
        if (!csv.empty()) {
          result.write_csv(csv);
          std::cout << "per-version series written to " << csv << "\n";
        }
        return 0;
      }

      const fl::AsyncRunResult run =
          scenario.system->run_async(async, {}, policy.get());
      const fl::RunResult& result = run.result;

      util::TablePrinter tiers = async_cadence_table(run);
      util::TablePrinter table({"metric", "value"});
      table.add_row({"engine", result.policy_name});
      table.add_row({"global versions", std::to_string(result.rounds.size())});
      table.add_row(
          {"training time [s]", util::format_double(result.total_time(), 1)});
      table.add_row({"final accuracy [%]",
                     util::format_double(result.final_accuracy() * 100, 2)});
      table.add_row({"best accuracy [%]",
                     util::format_double(result.best_accuracy() * 100, 2)});
      // FNV-1a over the final weight bits: the one-line byte-identity
      // probe the kill-and-resume smoke diffs across runs.
      table.add_row({"final model hash", hash_hex(run.final_weights)});
      if (churn > 0.0 || async.reprofile_every > 0.0) {
        table.add_row({"joins / leaves", std::to_string(run.join_count) +
                                             " / " +
                                             std::to_string(run.leave_count)});
        table.add_row({"slowdowns", std::to_string(run.slowdown_count)});
        table.add_row({"re-tierings", std::to_string(run.reprofile_count)});
        table.add_row({"live clients at end",
                       std::to_string(run.final_live_clients)});
      }
      std::cout << "\n" << tiers.to_string() << "\n" << table.to_string();
      finish(result);

      const std::string csv = cli.get("csv", "");
      if (!csv.empty()) {
        result.write_csv(csv);
        std::cout << "per-version series written to " << csv << "\n";
      }
      return 0;
    }

    // Sync path: run_policies resolves the name through the registry and
    // rejects async-only policies with the sync-capable list.
    const std::string policy_name = cli.get("policy", "adaptive");
    const std::vector<PolicyRun> runs =
        run_policies(scenario, {policy_name}, options);
    const fl::RunResult& result = runs.front().result;

    util::TablePrinter table({"metric", "value"});
    table.add_row({"policy", policy_name});
    table.add_row({"rounds run", std::to_string(result.rounds.size())});
    table.add_row(
        {"training time [s]", util::format_double(result.total_time(), 1)});
    table.add_row({"final accuracy [%]",
                   util::format_double(result.final_accuracy() * 100, 2)});
    table.add_row({"best accuracy [%]",
                   util::format_double(result.best_accuracy() * 100, 2)});
    std::cout << "\n" << table.to_string();
    finish(result);

    const std::string csv = cli.get("csv", "");
    if (!csv.empty()) {
      result.write_csv(csv);
      std::cout << "per-round series written to " << csv << "\n";
    }
  } catch (const sim::SimulatedCrash& crash) {
    // Injected server crash (--fault-crash-at): distinct exit status so
    // harnesses can tell "crashed as asked" from real failures.  The last
    // checkpoint written before the crash point is complete and loadable.
    std::cerr << "tifl_run: simulated crash at t=" << crash.time()
              << " (resume with --resume)\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "tifl_run: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
