#include "lint_rules.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace tifl::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// --- comment capture ---------------------------------------------------------

struct Comment {
  std::size_t start_line = 0;
  std::size_t end_line = 0;
  bool own_line = false;  // no code precedes the comment on start_line
  std::string text;
};

// Raw-string prefixes the lexer must recognize before a quote.
bool raw_string_prefix_ends_at(std::string_view s, std::size_t quote) {
  static constexpr std::array<std::string_view, 5> kPrefixes = {
      "R", "uR", "u8R", "UR", "LR"};
  for (std::string_view prefix : kPrefixes) {
    if (quote < prefix.size()) continue;
    const std::size_t start = quote - prefix.size();
    if (s.substr(start, prefix.size()) != prefix) continue;
    if (start > 0 && is_ident_char(s[start - 1])) continue;
    return true;
  }
  return false;
}

// --- allow-pragma parsing ----------------------------------------------------

void parse_allows(const Comment& comment, std::vector<Allow>& out) {
  std::string_view text = comment.text;
  std::size_t pos = 0;
  while ((pos = text.find("tifl-lint:", pos)) != std::string_view::npos) {
    pos += std::string_view("tifl-lint:").size();
    // Line of this pragma within a multi-line block comment.
    const std::size_t line =
        comment.start_line +
        static_cast<std::size_t>(
            std::count(text.begin(), text.begin() + static_cast<long>(pos),
                       '\n'));
    std::size_t cursor = pos;
    while (cursor < text.size() &&
           std::isspace(static_cast<unsigned char>(text[cursor])) != 0) {
      ++cursor;
    }
    if (text.substr(cursor, 6) != "allow(") continue;
    cursor += 6;
    const std::size_t close = text.find(')', cursor);
    if (close == std::string_view::npos) continue;
    // Rule names are kebab-case; anything else (e.g. the `<rule>`
    // placeholder documentation uses) is prose, not an escape.
    const std::string_view name = text.substr(cursor, close - cursor);
    if (name.empty() ||
        !std::all_of(name.begin(), name.end(), [](char c) {
          return (std::islower(static_cast<unsigned char>(c)) != 0) ||
                 (std::isdigit(static_cast<unsigned char>(c)) != 0) ||
                 c == '-';
        })) {
      continue;
    }
    Allow allow;
    allow.line = line;
    allow.target_line = comment.own_line ? comment.end_line + 1 : line;
    allow.rule = std::string(name);
    // Justified form: "allow(rule): non-empty reason".
    std::size_t after = close + 1;
    while (after < text.size() &&
           (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    if (after < text.size() && text[after] == ':') {
      ++after;
      while (after < text.size() &&
             std::isspace(static_cast<unsigned char>(text[after])) != 0) {
        ++after;
      }
      allow.justified = after < text.size();
    }
    out.push_back(std::move(allow));
    pos = close;
  }
}

// --- token stream ------------------------------------------------------------

struct Tok {
  std::string_view text;
  std::size_t line = 0;
  bool ident = false;
};

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    // Two-char operators the rules care about; everything else is one char.
    if ((c == ':' && i + 1 < code.size() && code[i + 1] == ':') ||
        (c == '-' && i + 1 < code.size() && code[i + 1] == '>')) {
      toks.push_back({code.substr(i, 2), line, false});
      i += 2;
      continue;
    }
    toks.push_back({code.substr(i, 1), line, false});
    ++i;
  }
  return toks;
}

bool prev_is(const std::vector<Tok>& toks, std::size_t i,
             std::string_view text) {
  return i > 0 && toks[i - 1].text == text;
}

// True when toks[i] is qualified as std::<name> (exactly, not foo::name).
bool std_qualified(const std::vector<Tok>& toks, std::size_t i) {
  return i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
}

// --- path scoping ------------------------------------------------------------

struct Scope {
  bool determinism = false;  // src/{sim,fl,core,nn,data}
  bool in_src = false;
  bool thread_pool_file = false;  // src/util/thread_pool.*
  bool log_file = false;          // src/util/log.*
};

Scope classify(std::string_view path) {
  Scope scope;
  // src/fl/hier/ is covered by the src/fl/ prefix; it is listed anyway so
  // the aggregator-tree subsystem stays in the determinism set even if the
  // flat engine ever moves out from under src/fl/.
  for (std::string_view dir :
       {"src/sim/", "src/fl/", "src/fl/hier/", "src/core/", "src/nn/",
        "src/data/"}) {
    if (path.starts_with(dir)) scope.determinism = true;
  }
  scope.in_src = path.starts_with("src/");
  scope.thread_pool_file = path.starts_with("src/util/thread_pool.");
  scope.log_file = path.starts_with("src/util/log.");
  return scope;
}

// --- individual rules --------------------------------------------------------

void add(std::vector<Diagnostic>& diags, std::string_view path,
         std::size_t line, std::string_view rule, std::string message) {
  diags.push_back(
      {std::string(path), line, std::string(rule), std::move(message)});
}

void rule_rng(const std::vector<Tok>& toks, std::string_view path,
              std::vector<Diagnostic>& diags) {
  static constexpr std::array<std::string_view, 7> kBanned = {
      "rand", "srand", "random_device", "drand48", "lrand48", "srand48",
      "rand_r"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    if (std::find(kBanned.begin(), kBanned.end(), toks[i].text) ==
        kBanned.end()) {
      continue;
    }
    // Member access (foo.rand(), foo->rand()) is someone else's API, not
    // the C library.
    if (prev_is(toks, i, ".") || prev_is(toks, i, "->")) continue;
    add(diags, path, toks[i].line, "rng",
        "non-deterministic randomness source '" + std::string(toks[i].text) +
            "' — derive streams from util::Rng (mix_seed) instead");
  }
}

void rule_wall_clock(const std::vector<Tok>& toks, std::string_view path,
                     std::vector<Diagnostic>& diags) {
  static constexpr std::array<std::string_view, 10> kBanned = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime",
      "localtime_r",  "gmtime",        "gmtime_r",
      "strftime"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string_view name = toks[i].text;
    if (std::find(kBanned.begin(), kBanned.end(), name) != kBanned.end()) {
      add(diags, path, toks[i].line, "wall-clock",
          "wall-clock source '" + std::string(name) +
              "' — simulation code runs on virtual time; profile through "
              "obs::wall_* instead");
      continue;
    }
    // C `time(arg)`: unqualified or std::-qualified call with at least one
    // argument.  Zero-arg `time()` is a member/declaration (e.g.
    // FaultModel::time()), and `x.time(...)` is member access.
    if (name != "time") continue;
    if (prev_is(toks, i, ".") || prev_is(toks, i, "->")) continue;
    if (i > 0 && toks[i - 1].text == "::" && !std_qualified(toks, i)) {
      continue;  // Foo::time — qualified member, not <ctime>
    }
    if (i + 2 >= toks.size() || toks[i + 1].text != "(" ||
        toks[i + 2].text == ")") {
      continue;
    }
    add(diags, path, toks[i].line, "wall-clock",
        "C library time() call — simulation code runs on virtual time");
  }
}

void rule_unordered_iter(const std::vector<Tok>& toks, std::string_view path,
                         std::vector<Diagnostic>& diags) {
  static constexpr std::array<std::string_view, 4> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  // Pass 1: identifiers declared with an unordered type in this file.
  std::vector<std::string_view> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || std::find(kUnordered.begin(), kUnordered.end(),
                                    toks[i].text) == kUnordered.end()) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < toks.size() && toks[j].ident) names.push_back(toks[j].text);
  }
  if (names.empty()) return;
  const auto is_tracked = [&](std::string_view name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // (a) range-for whose range expression mentions a tracked container.
    if (toks[i].ident && toks[i].text == "for" && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].ident && is_tracked(toks[j].text)) {
          add(diags, path, toks[i].line, "unordered-iter",
              "range-for over unordered container '" +
                  std::string(toks[j].text) +
                  "' — hash order is not deterministic; use an ordered "
                  "container or sort a snapshot");
          break;
        }
      }
      continue;
    }
    // (b) explicit iterator walk: tracked.begin()/cbegin()/rbegin().
    // `.end()` alone is deliberately not flagged — it is the sentinel in
    // every `find(...) == x.end()` membership test; iteration needs a
    // begin.
    if (toks[i].ident &&
        (toks[i].text == "begin" || toks[i].text == "cbegin" ||
         toks[i].text == "rbegin" || toks[i].text == "crbegin") &&
        (prev_is(toks, i, ".") || prev_is(toks, i, "->")) && i >= 2 &&
        toks[i - 2].ident && is_tracked(toks[i - 2].text) &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      add(diags, path, toks[i].line, "unordered-iter",
          "iteration over unordered container '" +
              std::string(toks[i - 2].text) +
              "' — hash order is not deterministic");
    }
  }
}

void rule_raw_thread(const std::vector<Tok>& toks, std::string_view path,
                     std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string_view name = toks[i].text;
    if (name == "pthread_create") {
      add(diags, path, toks[i].line, "raw-thread",
          "pthread_create — all parallelism goes through util::ThreadPool");
      continue;
    }
    if ((name == "thread" || name == "jthread" || name == "async" ||
         name == "this_thread") &&
        std_qualified(toks, i)) {
      add(diags, path, toks[i].line, "raw-thread",
          "std::" + std::string(name) +
              " — all parallelism goes through util::ThreadPool (its "
              "nested-dispatch guard is what prevents oversubscription "
              "and pool deadlock)");
    }
  }
}

void rule_raw_io(const std::vector<Tok>& toks, std::string_view path,
                 std::vector<Diagnostic>& diags) {
  static constexpr std::array<std::string_view, 6> kCStdio = {
      "printf", "fprintf", "vprintf", "vfprintf", "puts", "putchar"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string_view name = toks[i].text;
    if (std::find(kCStdio.begin(), kCStdio.end(), name) != kCStdio.end() &&
        i + 1 < toks.size() && toks[i + 1].text == "(" &&
        !prev_is(toks, i, ".") && !prev_is(toks, i, "->")) {
      add(diags, path, toks[i].line, "raw-io",
          std::string(name) +
              " — logging goes through util::log_* (leveled, timestamped, "
              "serialized)");
      continue;
    }
    if ((name == "cout" || name == "cerr" || name == "clog") &&
        std_qualified(toks, i)) {
      add(diags, path, toks[i].line, "raw-io",
          "std::" + std::string(name) +
              " — logging goes through util::log_*; tools and benches own "
              "their stdout, library code does not");
    }
  }
}

void rule_state_pairing(const std::vector<Tok>& toks, std::string_view path,
                        std::vector<Diagnostic>& diags) {
  std::size_t save_line = 0;
  std::size_t restore_line = 0;
  for (const Tok& tok : toks) {
    if (!tok.ident) continue;
    if (tok.text == "save_state" && save_line == 0) save_line = tok.line;
    if (tok.text == "restore_state" && restore_line == 0) {
      restore_line = tok.line;
    }
  }
  if (save_line != 0 && restore_line == 0) {
    add(diags, path, save_line, "state-pairing",
        "save_state without restore_state in this file — one-sided "
        "checkpoint plumbing cannot resume deterministically");
  }
  if (restore_line != 0 && save_line == 0) {
    add(diags, path, restore_line, "state-pairing",
        "restore_state without save_state in this file — one-sided "
        "checkpoint plumbing cannot resume deterministically");
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "rng",        "wall-clock", "unordered-iter",
      "raw-thread", "raw-io",     "state-pairing"};
  return kNames;
}

Preprocessed preprocess(std::string_view source) {
  Preprocessed result;
  result.code.reserve(source.size());
  std::vector<Comment> comments;

  std::size_t line = 1;
  bool line_has_code = false;
  std::size_t i = 0;
  const auto emit = [&](char c) { result.code.push_back(c); };
  const auto blank = [&](char c) { emit(c == '\n' ? '\n' : ' '); };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      emit('\n');
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      Comment comment;
      comment.start_line = line;
      comment.own_line = !line_has_code;
      emit(' ');
      emit(' ');
      i += 2;
      while (i < source.size() && source[i] != '\n') {
        comment.text.push_back(source[i]);
        emit(' ');
        ++i;
      }
      comment.end_line = line;
      comments.push_back(std::move(comment));
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      Comment comment;
      comment.start_line = line;
      comment.own_line = !line_has_code;
      emit(' ');
      emit(' ');
      i += 2;
      while (i + 1 < source.size() &&
             !(source[i] == '*' && source[i + 1] == '/')) {
        comment.text.push_back(source[i]);
        blank(source[i]);
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 < source.size()) {
        emit(' ');
        emit(' ');
        i += 2;
      } else {
        i = source.size();  // unterminated: swallow to EOF
      }
      comment.end_line = line;
      comments.push_back(std::move(comment));
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == '"' && raw_string_prefix_ends_at(source, i)) {
      line_has_code = true;
      emit('"');
      ++i;
      std::string delim;
      while (i < source.size() && source[i] != '(') {
        delim.push_back(source[i]);
        emit(' ');
        ++i;
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = source.find(closer, i);
      const std::size_t stop =
          end == std::string_view::npos ? source.size() : end + closer.size();
      while (i < stop) {
        blank(source[i]);
        if (source[i] == '\n') ++line;
        ++i;
      }
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      line_has_code = true;
      emit('"');
      ++i;
      while (i < source.size() && source[i] != '"' && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < source.size()) {
          emit(' ');
          emit(' ');
          i += 2;
          continue;
        }
        emit(' ');
        ++i;
      }
      if (i < source.size() && source[i] == '"') {
        emit('"');
        ++i;
      }
      continue;
    }
    // Char literal — but not a digit separator (1'000'000).
    if (c == '\'' && (i == 0 || !is_ident_char(source[i - 1]))) {
      line_has_code = true;
      emit('\'');
      ++i;
      while (i < source.size() && source[i] != '\'' && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < source.size()) {
          emit(' ');
          emit(' ');
          i += 2;
          continue;
        }
        emit(' ');
        ++i;
      }
      if (i < source.size() && source[i] == '\'') {
        emit('\'');
        ++i;
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      line_has_code = true;
    }
    emit(c);
    ++i;
  }

  for (const Comment& comment : comments) {
    parse_allows(comment, result.allows);
  }
  return result;
}

std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view source) {
  const Scope scope = classify(path);
  Preprocessed pre = preprocess(source);
  const std::vector<Tok> toks = tokenize(pre.code);

  std::vector<Diagnostic> raw;
  if (scope.determinism) {
    rule_rng(toks, path, raw);
    rule_wall_clock(toks, path, raw);
    rule_unordered_iter(toks, path, raw);
  }
  if (scope.in_src && !scope.thread_pool_file) {
    rule_raw_thread(toks, path, raw);
  }
  if (scope.in_src && !scope.log_file) {
    rule_raw_io(toks, path, raw);
  }
  if (scope.in_src) {
    rule_state_pairing(toks, path, raw);
  }

  // Apply allow escapes.  A justified allow waives matching diagnostics on
  // its target line; defective escapes become diagnostics themselves.
  std::vector<Diagnostic> diags;
  std::vector<bool> used(pre.allows.size(), false);
  for (Diagnostic& diag : raw) {
    bool waived = false;
    for (std::size_t a = 0; a < pre.allows.size(); ++a) {
      const Allow& allow = pre.allows[a];
      if (allow.rule != diag.rule || allow.target_line != diag.line) continue;
      used[a] = true;
      // An unjustified escape matches but does not waive: the diagnostic
      // stays and the escape is reported below.
      if (allow.justified) waived = true;
    }
    if (!waived) diags.push_back(std::move(diag));
  }
  for (std::size_t a = 0; a < pre.allows.size(); ++a) {
    const Allow& allow = pre.allows[a];
    const auto& known = rule_names();
    if (std::find(known.begin(), known.end(), allow.rule) == known.end()) {
      add(diags, path, allow.line, "unknown-rule",
          "allow(" + allow.rule + ") names no known rule (--rules lists them)");
      continue;
    }
    if (!allow.justified) {
      add(diags, path, allow.line, "unexplained-allow",
          "allow(" + allow.rule +
              ") without a justification — write 'allow(" + allow.rule +
              "): <why this line is safe>'");
      continue;
    }
    if (!used[a]) {
      add(diags, path, allow.line, "unused-allow",
          "allow(" + allow.rule +
              ") waives nothing — stale escapes must be removed");
    }
  }

  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& fs_path,
                                  const std::string& display_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) {
    return {{display_path, 0, "io", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(display_path, buffer.str());
}

}  // namespace tifl::lint
