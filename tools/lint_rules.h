// tifl_lint rule engine: project-specific determinism and architecture
// invariants, checked lexically over the source tree.
//
// TiFL's headline property is bit-reproducible tiered execution, and most
// of the ways to lose it are one careless line: seeding from
// std::random_device, branching on wall-clock time inside the simulator,
// iterating an unordered container whose order feeds an aggregate,
// spawning a thread outside the pool's nested-dispatch guard.  The
// runtime byte-equality ctests catch these hours later; this engine
// catches them at lint time with file:line diagnostics.
//
// The scanner is comment- and string-aware (diagnostics never fire inside
// either), and every rule can be waived per line with an inline escape
// that must carry a justification — a trailing comment of the form
// `tifl-lint: allow(<rule>): <why this line is safe>` on the offending
// line (or a comment-only line directly above it).  An escape with no
// justification, for an unknown rule, or that matches no diagnostic is
// itself an error — the allowlist can only ever shrink.
//
// Rules (see kRuleTable for the scoping matrix):
//   rng             rand/srand/random_device/drand48/... in determinism
//                   dirs (src/{sim,fl,core,nn,data}) — util::Rng only.
//   wall-clock      system_clock/steady_clock/time(...)/gettimeofday in
//                   determinism dirs — virtual time or obs::wall_* only.
//   unordered-iter  iteration over std::unordered_{map,set} declared in
//                   the same file, in determinism dirs — hash order is
//                   not a stable order.
//   raw-thread      std::thread/jthread/std::async/pthread_create in src/
//                   outside util/thread_pool — the pool is the only
//                   execution substrate (nested-dispatch guard lives
//                   there).
//   raw-io          printf/cout/cerr logging in src/ outside util/log —
//                   logging goes through util::log_* (leveled, stamped,
//                   serialized).
//   state-pairing   a file declaring save_state must declare
//                   restore_state and vice versa — one-sided checkpoint
//                   plumbing is how resume drifts off the oracle.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tifl::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Every enforceable rule name, in reporting order.
const std::vector<std::string>& rule_names();

// An inline escape parsed from a comment.
struct Allow {
  std::size_t line = 0;         // line the pragma sits on
  std::size_t target_line = 0;  // line it waives (next line when the
                                // pragma is a comment-only line)
  std::string rule;
  bool justified = false;  // text after "allow(rule):" present
};

// Comment/string-aware scan result: `code` mirrors the input byte for
// byte except that comment bodies and string/char literal contents are
// blanked to spaces (newlines kept, so line/column arithmetic holds), and
// `allows` lists every tifl-lint escape found in the stripped comments.
struct Preprocessed {
  std::string code;
  std::vector<Allow> allows;
};

// Exposed for tests: the lexer alone.
Preprocessed preprocess(std::string_view source);

// Lints one in-memory source file.  `path` decides which rules apply
// (repo-relative, e.g. "src/fl/policy.cc"); diagnostics come back sorted
// by line.  Allow escapes are applied here: waived diagnostics are
// dropped, and defective escapes (unknown rule, unjustified, unused)
// surface as diagnostics of their own.
std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view source);

// Reads and lints a file on disk; `display_path` (usually the path
// relative to the repo root) is what diagnostics carry and what rule
// scoping keys on.  Unreadable files produce a single "io" diagnostic.
std::vector<Diagnostic> lint_file(const std::string& fs_path,
                                  const std::string& display_path);

}  // namespace tifl::lint
