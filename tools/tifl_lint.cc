// tifl_lint: the project determinism/architecture linter.
//
//   tifl_lint [--rules] [--quiet] <file-or-dir>...
//
// Walks the given files/directories (recursing into *.h, *.cc, *.cpp),
// runs the lint_rules engine over each, and prints one
// `file:line: [rule] message` diagnostic per finding.  Exit status: 0
// when clean, 1 on any diagnostic, 2 on usage errors.  Run from the repo
// root so rule scoping sees repo-relative paths (`tifl_lint src tools
// tests` is the CI invocation).
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Forward slashes regardless of platform, no leading "./": rule scoping
// matches on "src/..." prefixes.
std::string display(const fs::path& path) {
  std::string out = path.generic_string();
  while (out.starts_with("./")) out.erase(0, 2);
  return out;
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
    return;
  }
  files.push_back(root);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      for (const std::string& rule : tifl::lint::rule_names()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tifl_lint [--rules] [--quiet] <file-or-dir>...\n";
      return 0;
    }
    if (arg.starts_with("-")) {
      std::cerr << "tifl_lint: unknown option '" << arg << "'\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: tifl_lint [--rules] [--quiet] <file-or-dir>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& path : paths) {
    if (!fs::exists(path)) {
      std::cerr << "tifl_lint: no such path: " << path << "\n";
      return 2;
    }
    collect(path, files);
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const fs::path& file : files) {
    const std::vector<tifl::lint::Diagnostic> diags =
        tifl::lint::lint_file(file.string(), display(file));
    total += diags.size();
    for (const tifl::lint::Diagnostic& diag : diags) {
      std::cout << diag.file << ":" << diag.line << ": [" << diag.rule
                << "] " << diag.message << "\n";
    }
  }
  if (!quiet) {
    std::cerr << "tifl_lint: " << files.size() << " files, " << total
              << (total == 1 ? " diagnostic\n" : " diagnostics\n");
  }
  return total == 0 ? 0 : 1;
}
