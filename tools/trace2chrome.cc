// trace2chrome — converts a tifl trace stream (the JSONL written by
// `tifl_run --trace-out`, see src/obs/trace.h) into Chrome trace_event
// JSON loadable by chrome://tracing or https://ui.perfetto.dev.
//
//   trace2chrome run.jsonl > run.json
//   trace2chrome run.jsonl run.json
//   tifl_run ... --trace-out /dev/stdout | trace2chrome - run.json
//
// Mapping: each line becomes one trace event; virtual seconds scale to
// trace microseconds, spans ("dur" present) become "X" complete events,
// instants become "i" events, the actor id (tier or client) becomes the
// tid so each actor gets its own track, and "args" pass through verbatim.
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

namespace {

// Extracts the JSON value that follows `"<key>": ` or nullopt if the key
// is absent.  Works on the tracer's flat fixed-order lines; values are
// numbers, quoted strings, or (for "args") a trailing object.
std::optional<std::string_view> raw_value(std::string_view line,
                                          std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 4);
  needle += '"';
  needle += key;
  needle += "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t begin = at + needle.size();
  std::size_t end;
  if (begin < line.size() && line[begin] == '"') {
    // Quoted string: scan to the closing quote (tracer escapes inner ones).
    end = begin + 1;
    while (end < line.size() && (line[end] != '"' || line[end - 1] == '\\')) {
      ++end;
    }
    ++end;
  } else if (begin < line.size() && line[begin] == '{') {
    // Object ("args" is last): everything up to the line's final brace.
    end = line.rfind('}');
  } else {
    end = line.find_first_of(",}", begin);
  }
  if (end == std::string_view::npos || end <= begin) return std::nullopt;
  return line.substr(begin, end - begin);
}

std::optional<double> number_value(std::string_view line,
                                   std::string_view key) {
  const std::optional<std::string_view> raw = raw_value(line, key);
  if (!raw.has_value()) return std::nullopt;
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), parsed);
  if (ec != std::errc() || ptr != raw->data() + raw->size()) {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3 || std::string_view(argv[1]) == "--help") {
    std::cerr << "usage: trace2chrome <trace.jsonl | -> [out.json]\n";
    return argc >= 2 ? 0 : 1;
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (std::string_view(argv[1]) != "-") {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "trace2chrome: cannot open " << argv[1] << "\n";
      return 1;
    }
    in = &file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (argc == 3) {
    out_file.open(argv[2]);
    if (!out_file) {
      std::cerr << "trace2chrome: cannot open " << argv[2] << "\n";
      return 1;
    }
    out = &out_file;
  }

  // Shortest-round-trip for the scaled timestamps (default ostream
  // precision truncates microsecond values to 6 significant digits).
  out->precision(17);
  *out << "{\"traceEvents\": [";
  std::string line;
  std::size_t events = 0;
  std::size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::optional<double> ts = number_value(line, "ts");
    const std::optional<std::string_view> cat = raw_value(line, "cat");
    const std::optional<std::string_view> name = raw_value(line, "name");
    const std::optional<std::string_view> actor = raw_value(line, "actor");
    if (!ts.has_value() || !cat.has_value() || !name.has_value() ||
        !actor.has_value()) {
      std::cerr << "trace2chrome: skipping malformed line " << lineno << "\n";
      continue;
    }
    const std::optional<double> dur = number_value(line, "dur");
    const std::optional<std::string_view> args = raw_value(line, "args");

    if (events > 0) *out << ",";
    *out << "\n{\"name\": " << *name << ", \"cat\": " << *cat
         << ", \"ph\": \"" << (dur.has_value() ? "X" : "i") << "\""
         << ", \"ts\": " << *ts * 1e6;
    if (dur.has_value()) *out << ", \"dur\": " << *dur * 1e6;
    *out << ", \"pid\": 1, \"tid\": " << *actor;
    if (!dur.has_value()) *out << ", \"s\": \"t\"";
    if (args.has_value()) *out << ", \"args\": " << *args;
    *out << "}";
    ++events;
  }
  *out << "\n], \"displayTimeUnit\": \"ms\"}\n";

  std::cerr << "trace2chrome: " << events << " events converted\n";
  return 0;
}
