file(REMOVE_RECURSE
  "CMakeFiles/core_estimator_test.dir/tests/core_estimator_test.cc.o"
  "CMakeFiles/core_estimator_test.dir/tests/core_estimator_test.cc.o.d"
  "core_estimator_test"
  "core_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
