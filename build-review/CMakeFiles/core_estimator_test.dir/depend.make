# Empty dependencies file for core_estimator_test.
# This may be replaced when dependencies are built.
