# Empty compiler generated dependencies file for heterogeneous_cifar.
# This may be replaced when dependencies are built.
