file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_cifar.dir/examples/heterogeneous_cifar.cpp.o"
  "CMakeFiles/heterogeneous_cifar.dir/examples/heterogeneous_cifar.cpp.o.d"
  "heterogeneous_cifar"
  "heterogeneous_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
