# Empty dependencies file for bench_fig5_mnist_fmnist.
# This may be replaced when dependencies are built.
