file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mnist_fmnist.dir/bench/bench_fig5_mnist_fmnist.cc.o"
  "CMakeFiles/bench_fig5_mnist_fmnist.dir/bench/bench_fig5_mnist_fmnist.cc.o.d"
  "bench_fig5_mnist_fmnist"
  "bench_fig5_mnist_fmnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mnist_fmnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
