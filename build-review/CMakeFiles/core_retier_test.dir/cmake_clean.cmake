file(REMOVE_RECURSE
  "CMakeFiles/core_retier_test.dir/tests/core_retier_test.cc.o"
  "CMakeFiles/core_retier_test.dir/tests/core_retier_test.cc.o.d"
  "core_retier_test"
  "core_retier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_retier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
