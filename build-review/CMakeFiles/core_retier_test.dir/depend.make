# Empty dependencies file for core_retier_test.
# This may be replaced when dependencies are built.
