# Empty compiler generated dependencies file for fl_async_determinism_test.
# This may be replaced when dependencies are built.
