file(REMOVE_RECURSE
  "CMakeFiles/bench_micro.dir/bench/bench_micro.cc.o"
  "CMakeFiles/bench_micro.dir/bench/bench_micro.cc.o.d"
  "bench_micro"
  "bench_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
