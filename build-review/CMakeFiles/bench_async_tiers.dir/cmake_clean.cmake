file(REMOVE_RECURSE
  "CMakeFiles/bench_async_tiers.dir/bench/bench_async_tiers.cc.o"
  "CMakeFiles/bench_async_tiers.dir/bench/bench_async_tiers.cc.o.d"
  "bench_async_tiers"
  "bench_async_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
