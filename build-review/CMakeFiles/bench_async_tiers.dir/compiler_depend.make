# Empty compiler generated dependencies file for bench_async_tiers.
# This may be replaced when dependencies are built.
