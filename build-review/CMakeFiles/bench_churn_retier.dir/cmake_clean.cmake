file(REMOVE_RECURSE
  "CMakeFiles/bench_churn_retier.dir/bench/bench_churn_retier.cc.o"
  "CMakeFiles/bench_churn_retier.dir/bench/bench_churn_retier.cc.o.d"
  "bench_churn_retier"
  "bench_churn_retier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_churn_retier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
