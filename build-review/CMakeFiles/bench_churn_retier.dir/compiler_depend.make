# Empty compiler generated dependencies file for bench_churn_retier.
# This may be replaced when dependencies are built.
