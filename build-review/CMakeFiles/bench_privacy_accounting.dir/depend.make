# Empty dependencies file for bench_privacy_accounting.
# This may be replaced when dependencies are built.
