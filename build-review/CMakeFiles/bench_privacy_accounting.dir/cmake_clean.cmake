file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_accounting.dir/bench/bench_privacy_accounting.cc.o"
  "CMakeFiles/bench_privacy_accounting.dir/bench/bench_privacy_accounting.cc.o.d"
  "bench_privacy_accounting"
  "bench_privacy_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
