file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_casestudy.dir/bench/bench_fig1_casestudy.cc.o"
  "CMakeFiles/bench_fig1_casestudy.dir/bench/bench_fig1_casestudy.cc.o.d"
  "bench_fig1_casestudy"
  "bench_fig1_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
