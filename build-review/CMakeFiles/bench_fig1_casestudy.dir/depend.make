# Empty dependencies file for bench_fig1_casestudy.
# This may be replaced when dependencies are built.
