# Empty dependencies file for sim_churn_model_test.
# This may be replaced when dependencies are built.
