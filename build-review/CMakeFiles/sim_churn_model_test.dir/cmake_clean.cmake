file(REMOVE_RECURSE
  "CMakeFiles/sim_churn_model_test.dir/tests/sim_churn_model_test.cc.o"
  "CMakeFiles/sim_churn_model_test.dir/tests/sim_churn_model_test.cc.o.d"
  "sim_churn_model_test"
  "sim_churn_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_churn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
