# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_churn_model_test.
