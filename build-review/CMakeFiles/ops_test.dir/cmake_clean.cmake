file(REMOVE_RECURSE
  "CMakeFiles/ops_test.dir/tests/ops_test.cc.o"
  "CMakeFiles/ops_test.dir/tests/ops_test.cc.o.d"
  "ops_test"
  "ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
