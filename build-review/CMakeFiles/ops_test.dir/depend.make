# Empty dependencies file for ops_test.
# This may be replaced when dependencies are built.
