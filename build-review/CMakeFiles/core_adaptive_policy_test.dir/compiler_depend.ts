# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_adaptive_policy_test.
