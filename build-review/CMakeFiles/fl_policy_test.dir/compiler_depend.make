# Empty compiler generated dependencies file for fl_policy_test.
# This may be replaced when dependencies are built.
