file(REMOVE_RECURSE
  "CMakeFiles/fl_policy_test.dir/tests/fl_policy_test.cc.o"
  "CMakeFiles/fl_policy_test.dir/tests/fl_policy_test.cc.o.d"
  "fl_policy_test"
  "fl_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
