file(REMOVE_RECURSE
  "CMakeFiles/core_profiler_test.dir/tests/core_profiler_test.cc.o"
  "CMakeFiles/core_profiler_test.dir/tests/core_profiler_test.cc.o.d"
  "core_profiler_test"
  "core_profiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
