# Empty compiler generated dependencies file for core_profiler_test.
# This may be replaced when dependencies are built.
