file(REMOVE_RECURSE
  "CMakeFiles/leaf_femnist.dir/examples/leaf_femnist.cpp.o"
  "CMakeFiles/leaf_femnist.dir/examples/leaf_femnist.cpp.o.d"
  "leaf_femnist"
  "leaf_femnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_femnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
