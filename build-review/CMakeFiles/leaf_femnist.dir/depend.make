# Empty dependencies file for leaf_femnist.
# This may be replaced when dependencies are built.
