# Empty dependencies file for fl_async_engine_test.
# This may be replaced when dependencies are built.
