file(REMOVE_RECURSE
  "CMakeFiles/fl_async_engine_test.dir/tests/fl_async_engine_test.cc.o"
  "CMakeFiles/fl_async_engine_test.dir/tests/fl_async_engine_test.cc.o.d"
  "fl_async_engine_test"
  "fl_async_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_async_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
