file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_combined.dir/bench/bench_fig6_combined.cc.o"
  "CMakeFiles/bench_fig6_combined.dir/bench/bench_fig6_combined.cc.o.d"
  "bench_fig6_combined"
  "bench_fig6_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
