file(REMOVE_RECURSE
  "CMakeFiles/fl_evaluation_test.dir/tests/fl_evaluation_test.cc.o"
  "CMakeFiles/fl_evaluation_test.dir/tests/fl_evaluation_test.cc.o.d"
  "fl_evaluation_test"
  "fl_evaluation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
