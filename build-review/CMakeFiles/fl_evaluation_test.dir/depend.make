# Empty dependencies file for fl_evaluation_test.
# This may be replaced when dependencies are built.
