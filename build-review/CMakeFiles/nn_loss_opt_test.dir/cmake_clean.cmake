file(REMOVE_RECURSE
  "CMakeFiles/nn_loss_opt_test.dir/tests/nn_loss_opt_test.cc.o"
  "CMakeFiles/nn_loss_opt_test.dir/tests/nn_loss_opt_test.cc.o.d"
  "nn_loss_opt_test"
  "nn_loss_opt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_loss_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
