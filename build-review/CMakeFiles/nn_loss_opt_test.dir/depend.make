# Empty dependencies file for nn_loss_opt_test.
# This may be replaced when dependencies are built.
