# Empty dependencies file for bench_fig8_adaptive_noniid.
# This may be replaced when dependencies are built.
