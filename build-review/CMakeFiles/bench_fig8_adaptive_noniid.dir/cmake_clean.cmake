file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_adaptive_noniid.dir/bench/bench_fig8_adaptive_noniid.cc.o"
  "CMakeFiles/bench_fig8_adaptive_noniid.dir/bench/bench_fig8_adaptive_noniid.cc.o.d"
  "bench_fig8_adaptive_noniid"
  "bench_fig8_adaptive_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_adaptive_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
