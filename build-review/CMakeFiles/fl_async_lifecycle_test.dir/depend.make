# Empty dependencies file for fl_async_lifecycle_test.
# This may be replaced when dependencies are built.
