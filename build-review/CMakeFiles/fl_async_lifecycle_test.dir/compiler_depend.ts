# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fl_async_lifecycle_test.
