# Empty compiler generated dependencies file for bench_fig7_adaptive.
# This may be replaced when dependencies are built.
