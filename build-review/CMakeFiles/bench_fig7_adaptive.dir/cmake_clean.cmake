file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_adaptive.dir/bench/bench_fig7_adaptive.cc.o"
  "CMakeFiles/bench_fig7_adaptive.dir/bench/bench_fig7_adaptive.cc.o.d"
  "bench_fig7_adaptive"
  "bench_fig7_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
