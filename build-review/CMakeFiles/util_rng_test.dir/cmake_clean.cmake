file(REMOVE_RECURSE
  "CMakeFiles/util_rng_test.dir/tests/util_rng_test.cc.o"
  "CMakeFiles/util_rng_test.dir/tests/util_rng_test.cc.o.d"
  "util_rng_test"
  "util_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
