file(REMOVE_RECURSE
  "CMakeFiles/partition_test.dir/tests/partition_test.cc.o"
  "CMakeFiles/partition_test.dir/tests/partition_test.cc.o.d"
  "partition_test"
  "partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
