# Empty compiler generated dependencies file for core_selection_analysis_test.
# This may be replaced when dependencies are built.
