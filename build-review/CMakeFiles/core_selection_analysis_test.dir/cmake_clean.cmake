file(REMOVE_RECURSE
  "CMakeFiles/core_selection_analysis_test.dir/tests/core_selection_analysis_test.cc.o"
  "CMakeFiles/core_selection_analysis_test.dir/tests/core_selection_analysis_test.cc.o.d"
  "core_selection_analysis_test"
  "core_selection_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selection_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
