# Empty compiler generated dependencies file for nn_sequential_test.
# This may be replaced when dependencies are built.
