file(REMOVE_RECURSE
  "CMakeFiles/nn_sequential_test.dir/tests/nn_sequential_test.cc.o"
  "CMakeFiles/nn_sequential_test.dir/tests/nn_sequential_test.cc.o.d"
  "nn_sequential_test"
  "nn_sequential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
