# Empty dependencies file for property_sweeps_test.
# This may be replaced when dependencies are built.
