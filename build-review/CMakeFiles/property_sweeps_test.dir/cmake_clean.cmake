file(REMOVE_RECURSE
  "CMakeFiles/property_sweeps_test.dir/tests/property_sweeps_test.cc.o"
  "CMakeFiles/property_sweeps_test.dir/tests/property_sweeps_test.cc.o.d"
  "property_sweeps_test"
  "property_sweeps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
