file(REMOVE_RECURSE
  "CMakeFiles/fl_secure_aggregation_test.dir/tests/fl_secure_aggregation_test.cc.o"
  "CMakeFiles/fl_secure_aggregation_test.dir/tests/fl_secure_aggregation_test.cc.o.d"
  "fl_secure_aggregation_test"
  "fl_secure_aggregation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_secure_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
