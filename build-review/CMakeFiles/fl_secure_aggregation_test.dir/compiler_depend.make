# Empty compiler generated dependencies file for fl_secure_aggregation_test.
# This may be replaced when dependencies are built.
