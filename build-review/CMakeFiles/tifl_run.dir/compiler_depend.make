# Empty compiler generated dependencies file for tifl_run.
# This may be replaced when dependencies are built.
