file(REMOVE_RECURSE
  "CMakeFiles/tifl_run.dir/tools/tifl_run.cc.o"
  "CMakeFiles/tifl_run.dir/tools/tifl_run.cc.o.d"
  "tifl_run"
  "tifl_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tifl_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
