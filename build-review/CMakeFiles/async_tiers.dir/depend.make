# Empty dependencies file for async_tiers.
# This may be replaced when dependencies are built.
