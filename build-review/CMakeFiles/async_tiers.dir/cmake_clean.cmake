file(REMOVE_RECURSE
  "CMakeFiles/async_tiers.dir/examples/async_tiers.cpp.o"
  "CMakeFiles/async_tiers.dir/examples/async_tiers.cpp.o.d"
  "async_tiers"
  "async_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
