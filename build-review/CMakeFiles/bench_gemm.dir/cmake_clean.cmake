file(REMOVE_RECURSE
  "CMakeFiles/bench_gemm.dir/bench/bench_gemm.cc.o"
  "CMakeFiles/bench_gemm.dir/bench/bench_gemm.cc.o.d"
  "bench_gemm"
  "bench_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
