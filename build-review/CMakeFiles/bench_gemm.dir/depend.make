# Empty dependencies file for bench_gemm.
# This may be replaced when dependencies are built.
