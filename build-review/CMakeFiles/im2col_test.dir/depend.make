# Empty dependencies file for im2col_test.
# This may be replaced when dependencies are built.
