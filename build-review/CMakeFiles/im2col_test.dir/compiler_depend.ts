# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for im2col_test.
