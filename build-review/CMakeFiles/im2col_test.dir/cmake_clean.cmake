file(REMOVE_RECURSE
  "CMakeFiles/im2col_test.dir/tests/im2col_test.cc.o"
  "CMakeFiles/im2col_test.dir/tests/im2col_test.cc.o.d"
  "im2col_test"
  "im2col_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/im2col_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
