file(REMOVE_RECURSE
  "CMakeFiles/data_test.dir/tests/data_test.cc.o"
  "CMakeFiles/data_test.dir/tests/data_test.cc.o.d"
  "data_test"
  "data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
