# Empty compiler generated dependencies file for churn_retier.
# This may be replaced when dependencies are built.
