file(REMOVE_RECURSE
  "CMakeFiles/churn_retier.dir/examples/churn_retier.cpp.o"
  "CMakeFiles/churn_retier.dir/examples/churn_retier.cpp.o.d"
  "churn_retier"
  "churn_retier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_retier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
