file(REMOVE_RECURSE
  "CMakeFiles/private_fl.dir/examples/private_fl.cpp.o"
  "CMakeFiles/private_fl.dir/examples/private_fl.cpp.o.d"
  "private_fl"
  "private_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
