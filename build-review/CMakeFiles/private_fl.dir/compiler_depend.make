# Empty compiler generated dependencies file for private_fl.
# This may be replaced when dependencies are built.
