# Empty compiler generated dependencies file for core_privacy_test.
# This may be replaced when dependencies are built.
