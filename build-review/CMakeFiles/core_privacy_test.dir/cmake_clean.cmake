file(REMOVE_RECURSE
  "CMakeFiles/core_privacy_test.dir/tests/core_privacy_test.cc.o"
  "CMakeFiles/core_privacy_test.dir/tests/core_privacy_test.cc.o.d"
  "core_privacy_test"
  "core_privacy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_privacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
