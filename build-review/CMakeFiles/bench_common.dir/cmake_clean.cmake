file(REMOVE_RECURSE
  "CMakeFiles/bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_common.dir/bench/bench_common.cc.o.d"
  "libbench_common.a"
  "libbench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
