# Empty dependencies file for bench_common.
# This may be replaced when dependencies are built.
