file(REMOVE_RECURSE
  "libbench_common.a"
)
