file(REMOVE_RECURSE
  "CMakeFiles/sim_event_queue_test.dir/tests/sim_event_queue_test.cc.o"
  "CMakeFiles/sim_event_queue_test.dir/tests/sim_event_queue_test.cc.o.d"
  "sim_event_queue_test"
  "sim_event_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_event_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
