# Empty compiler generated dependencies file for sim_event_queue_test.
# This may be replaced when dependencies are built.
