# Empty compiler generated dependencies file for bench_ablation_adaptive.
# This may be replaced when dependencies are built.
