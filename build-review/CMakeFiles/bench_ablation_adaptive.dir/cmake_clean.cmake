file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive.dir/bench/bench_ablation_adaptive.cc.o"
  "CMakeFiles/bench_ablation_adaptive.dir/bench/bench_ablation_adaptive.cc.o.d"
  "bench_ablation_adaptive"
  "bench_ablation_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
