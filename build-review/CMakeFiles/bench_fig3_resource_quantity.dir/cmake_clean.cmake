file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_resource_quantity.dir/bench/bench_fig3_resource_quantity.cc.o"
  "CMakeFiles/bench_fig3_resource_quantity.dir/bench/bench_fig3_resource_quantity.cc.o.d"
  "bench_fig3_resource_quantity"
  "bench_fig3_resource_quantity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_resource_quantity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
