# Empty dependencies file for bench_fig3_resource_quantity.
# This may be replaced when dependencies are built.
