# Empty compiler generated dependencies file for gemm_test.
# This may be replaced when dependencies are built.
