# Empty compiler generated dependencies file for custom_policy.
# This may be replaced when dependencies are built.
