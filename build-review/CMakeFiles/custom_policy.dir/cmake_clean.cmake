file(REMOVE_RECURSE
  "CMakeFiles/custom_policy.dir/examples/custom_policy.cpp.o"
  "CMakeFiles/custom_policy.dir/examples/custom_policy.cpp.o.d"
  "custom_policy"
  "custom_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
