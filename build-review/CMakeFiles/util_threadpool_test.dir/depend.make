# Empty dependencies file for util_threadpool_test.
# This may be replaced when dependencies are built.
