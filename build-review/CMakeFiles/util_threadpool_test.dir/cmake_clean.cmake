file(REMOVE_RECURSE
  "CMakeFiles/util_threadpool_test.dir/tests/util_threadpool_test.cc.o"
  "CMakeFiles/util_threadpool_test.dir/tests/util_threadpool_test.cc.o.d"
  "util_threadpool_test"
  "util_threadpool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
