# Empty dependencies file for bench_fig9_leaf.
# This may be replaced when dependencies are built.
