file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_leaf.dir/bench/bench_fig9_leaf.cc.o"
  "CMakeFiles/bench_fig9_leaf.dir/bench/bench_fig9_leaf.cc.o.d"
  "bench_fig9_leaf"
  "bench_fig9_leaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_leaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
