# Empty compiler generated dependencies file for util_misc_test.
# This may be replaced when dependencies are built.
