file(REMOVE_RECURSE
  "CMakeFiles/util_misc_test.dir/tests/util_misc_test.cc.o"
  "CMakeFiles/util_misc_test.dir/tests/util_misc_test.cc.o.d"
  "util_misc_test"
  "util_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
