file(REMOVE_RECURSE
  "CMakeFiles/core_static_policy_test.dir/tests/core_static_policy_test.cc.o"
  "CMakeFiles/core_static_policy_test.dir/tests/core_static_policy_test.cc.o.d"
  "core_static_policy_test"
  "core_static_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_static_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
