# Empty dependencies file for core_static_policy_test.
# This may be replaced when dependencies are built.
