# Empty dependencies file for fl_engine_test.
# This may be replaced when dependencies are built.
