file(REMOVE_RECURSE
  "CMakeFiles/core_tiering_test.dir/tests/core_tiering_test.cc.o"
  "CMakeFiles/core_tiering_test.dir/tests/core_tiering_test.cc.o.d"
  "core_tiering_test"
  "core_tiering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tiering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
