# Empty compiler generated dependencies file for core_tiering_test.
# This may be replaced when dependencies are built.
