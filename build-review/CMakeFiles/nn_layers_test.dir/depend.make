# Empty dependencies file for nn_layers_test.
# This may be replaced when dependencies are built.
