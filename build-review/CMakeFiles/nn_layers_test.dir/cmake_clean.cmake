file(REMOVE_RECURSE
  "CMakeFiles/nn_layers_test.dir/tests/nn_layers_test.cc.o"
  "CMakeFiles/nn_layers_test.dir/tests/nn_layers_test.cc.o.d"
  "nn_layers_test"
  "nn_layers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
