# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nn_layers_test.
