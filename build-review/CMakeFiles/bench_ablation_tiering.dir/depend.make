# Empty dependencies file for bench_ablation_tiering.
# This may be replaced when dependencies are built.
