file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tiering.dir/bench/bench_ablation_tiering.cc.o"
  "CMakeFiles/bench_ablation_tiering.dir/bench/bench_ablation_tiering.cc.o.d"
  "bench_ablation_tiering"
  "bench_ablation_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
