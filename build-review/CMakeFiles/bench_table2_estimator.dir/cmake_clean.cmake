file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_estimator.dir/bench/bench_table2_estimator.cc.o"
  "CMakeFiles/bench_table2_estimator.dir/bench/bench_table2_estimator.cc.o.d"
  "bench_table2_estimator"
  "bench_table2_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
