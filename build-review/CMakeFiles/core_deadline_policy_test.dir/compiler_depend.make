# Empty compiler generated dependencies file for core_deadline_policy_test.
# This may be replaced when dependencies are built.
