# Empty dependencies file for tifl.
# This may be replaced when dependencies are built.
