
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_policy.cc" "CMakeFiles/tifl.dir/src/core/adaptive_policy.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/adaptive_policy.cc.o.d"
  "/root/repo/src/core/deadline_policy.cc" "CMakeFiles/tifl.dir/src/core/deadline_policy.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/deadline_policy.cc.o.d"
  "/root/repo/src/core/estimator.cc" "CMakeFiles/tifl.dir/src/core/estimator.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/estimator.cc.o.d"
  "/root/repo/src/core/privacy.cc" "CMakeFiles/tifl.dir/src/core/privacy.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/privacy.cc.o.d"
  "/root/repo/src/core/profiler.cc" "CMakeFiles/tifl.dir/src/core/profiler.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/profiler.cc.o.d"
  "/root/repo/src/core/retier.cc" "CMakeFiles/tifl.dir/src/core/retier.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/retier.cc.o.d"
  "/root/repo/src/core/selection_analysis.cc" "CMakeFiles/tifl.dir/src/core/selection_analysis.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/selection_analysis.cc.o.d"
  "/root/repo/src/core/static_policy.cc" "CMakeFiles/tifl.dir/src/core/static_policy.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/static_policy.cc.o.d"
  "/root/repo/src/core/system.cc" "CMakeFiles/tifl.dir/src/core/system.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/system.cc.o.d"
  "/root/repo/src/core/tiering.cc" "CMakeFiles/tifl.dir/src/core/tiering.cc.o" "gcc" "CMakeFiles/tifl.dir/src/core/tiering.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/tifl.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/tifl.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/partition.cc" "CMakeFiles/tifl.dir/src/data/partition.cc.o" "gcc" "CMakeFiles/tifl.dir/src/data/partition.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "CMakeFiles/tifl.dir/src/data/synthetic.cc.o" "gcc" "CMakeFiles/tifl.dir/src/data/synthetic.cc.o.d"
  "/root/repo/src/fl/aggregator.cc" "CMakeFiles/tifl.dir/src/fl/aggregator.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/aggregator.cc.o.d"
  "/root/repo/src/fl/async_engine.cc" "CMakeFiles/tifl.dir/src/fl/async_engine.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/async_engine.cc.o.d"
  "/root/repo/src/fl/client.cc" "CMakeFiles/tifl.dir/src/fl/client.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/client.cc.o.d"
  "/root/repo/src/fl/engine.cc" "CMakeFiles/tifl.dir/src/fl/engine.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/engine.cc.o.d"
  "/root/repo/src/fl/evaluation.cc" "CMakeFiles/tifl.dir/src/fl/evaluation.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/evaluation.cc.o.d"
  "/root/repo/src/fl/metrics.cc" "CMakeFiles/tifl.dir/src/fl/metrics.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/metrics.cc.o.d"
  "/root/repo/src/fl/policy.cc" "CMakeFiles/tifl.dir/src/fl/policy.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/policy.cc.o.d"
  "/root/repo/src/fl/secure_aggregation.cc" "CMakeFiles/tifl.dir/src/fl/secure_aggregation.cc.o" "gcc" "CMakeFiles/tifl.dir/src/fl/secure_aggregation.cc.o.d"
  "/root/repo/src/nn/activations.cc" "CMakeFiles/tifl.dir/src/nn/activations.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/activations.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "CMakeFiles/tifl.dir/src/nn/checkpoint.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/checkpoint.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "CMakeFiles/tifl.dir/src/nn/conv2d.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/conv2d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "CMakeFiles/tifl.dir/src/nn/dense.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/dense.cc.o.d"
  "/root/repo/src/nn/loss.cc" "CMakeFiles/tifl.dir/src/nn/loss.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/loss.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "CMakeFiles/tifl.dir/src/nn/model_zoo.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/model_zoo.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "CMakeFiles/tifl.dir/src/nn/optimizer.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pool.cc" "CMakeFiles/tifl.dir/src/nn/pool.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/pool.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "CMakeFiles/tifl.dir/src/nn/sequential.cc.o" "gcc" "CMakeFiles/tifl.dir/src/nn/sequential.cc.o.d"
  "/root/repo/src/sim/churn_model.cc" "CMakeFiles/tifl.dir/src/sim/churn_model.cc.o" "gcc" "CMakeFiles/tifl.dir/src/sim/churn_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "CMakeFiles/tifl.dir/src/sim/event_queue.cc.o" "gcc" "CMakeFiles/tifl.dir/src/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/latency_model.cc" "CMakeFiles/tifl.dir/src/sim/latency_model.cc.o" "gcc" "CMakeFiles/tifl.dir/src/sim/latency_model.cc.o.d"
  "/root/repo/src/sim/resource_profile.cc" "CMakeFiles/tifl.dir/src/sim/resource_profile.cc.o" "gcc" "CMakeFiles/tifl.dir/src/sim/resource_profile.cc.o.d"
  "/root/repo/src/tensor/gemm.cc" "CMakeFiles/tifl.dir/src/tensor/gemm.cc.o" "gcc" "CMakeFiles/tifl.dir/src/tensor/gemm.cc.o.d"
  "/root/repo/src/tensor/im2col.cc" "CMakeFiles/tifl.dir/src/tensor/im2col.cc.o" "gcc" "CMakeFiles/tifl.dir/src/tensor/im2col.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "CMakeFiles/tifl.dir/src/tensor/ops.cc.o" "gcc" "CMakeFiles/tifl.dir/src/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/pack.cc" "CMakeFiles/tifl.dir/src/tensor/pack.cc.o" "gcc" "CMakeFiles/tifl.dir/src/tensor/pack.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/tifl.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/tifl.dir/src/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/workspace.cc" "CMakeFiles/tifl.dir/src/tensor/workspace.cc.o" "gcc" "CMakeFiles/tifl.dir/src/tensor/workspace.cc.o.d"
  "/root/repo/src/util/cli.cc" "CMakeFiles/tifl.dir/src/util/cli.cc.o" "gcc" "CMakeFiles/tifl.dir/src/util/cli.cc.o.d"
  "/root/repo/src/util/histogram.cc" "CMakeFiles/tifl.dir/src/util/histogram.cc.o" "gcc" "CMakeFiles/tifl.dir/src/util/histogram.cc.o.d"
  "/root/repo/src/util/log.cc" "CMakeFiles/tifl.dir/src/util/log.cc.o" "gcc" "CMakeFiles/tifl.dir/src/util/log.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/tifl.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/tifl.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/tifl.dir/src/util/table.cc.o" "gcc" "CMakeFiles/tifl.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/tifl.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/tifl.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
