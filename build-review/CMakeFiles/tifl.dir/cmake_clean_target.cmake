file(REMOVE_RECURSE
  "libtifl.a"
)
