file(REMOVE_RECURSE
  "CMakeFiles/fl_aggregator_test.dir/tests/fl_aggregator_test.cc.o"
  "CMakeFiles/fl_aggregator_test.dir/tests/fl_aggregator_test.cc.o.d"
  "fl_aggregator_test"
  "fl_aggregator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
