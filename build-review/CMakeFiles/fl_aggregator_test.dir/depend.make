# Empty dependencies file for fl_aggregator_test.
# This may be replaced when dependencies are built.
