file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_noniid_policies.dir/bench/bench_fig4_noniid_policies.cc.o"
  "CMakeFiles/bench_fig4_noniid_policies.dir/bench/bench_fig4_noniid_policies.cc.o.d"
  "bench_fig4_noniid_policies"
  "bench_fig4_noniid_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_noniid_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
