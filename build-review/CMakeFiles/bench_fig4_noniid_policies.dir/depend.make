# Empty dependencies file for bench_fig4_noniid_policies.
# This may be replaced when dependencies are built.
