file(REMOVE_RECURSE
  "CMakeFiles/util_stats_test.dir/tests/util_stats_test.cc.o"
  "CMakeFiles/util_stats_test.dir/tests/util_stats_test.cc.o.d"
  "util_stats_test"
  "util_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
