#include "core/adaptive_policy.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/log.h"
#include "util/stats.h"

namespace tifl::core {

std::vector<double> default_credits(std::size_t rounds,
                                    std::size_t num_tiers) {
  std::vector<double> credits(num_tiers);
  double budget = static_cast<double>(rounds);
  for (std::size_t t = 0; t < num_tiers; ++t) {
    credits[t] = std::ceil(budget);
    budget /= 2.0;
  }
  return credits;
}

AdaptiveTierPolicy::AdaptiveTierPolicy(const TierInfo& tiers,
                                       AdaptiveConfig config,
                                       std::size_t total_rounds)
    : members_(tiers.members), config_(config) {
  const std::size_t T = members_.size();
  if (T == 0) throw std::invalid_argument("AdaptiveTierPolicy: no tiers");
  if (config_.interval == 0) {
    throw std::invalid_argument("AdaptiveTierPolicy: interval must be >= 1");
  }
  probs_.assign(T, 1.0 / static_cast<double>(T));  // Alg. 2 line 1
  credits_ = config_.credits.empty() ? default_credits(total_rounds, T)
                                     : config_.credits;
  if (credits_.size() != T) {
    throw std::invalid_argument("AdaptiveTierPolicy: credits size mismatch");
  }
}

bool AdaptiveTierPolicy::tier_eligible(std::size_t t) const {
  // Sync rounds must fill |C| slots from one tier (§4.3's n_j > |C|); an
  // async tier round simply caps at the live member count.
  return async_mode_ ? !members_[t].empty()
                     : members_[t].size() >= config_.clients_per_round;
}

void AdaptiveTierPolicy::change_probs() {
  // NewProbs = ChangeProbs(A_1^r .. A_T^r): lower accuracy -> higher
  // selection probability, restricted to tiers that still have credits
  // and enough members.
  const std::vector<double>& latest = accuracy_history_.back();
  const std::size_t T = members_.size();
  std::vector<double> weight(T, 0.0);

  if (config_.prob_rule == AdaptiveConfig::ProbRule::kDeficit) {
    double max_acc = 0.0;
    for (std::size_t t = 0; t < T; ++t) max_acc = std::max(max_acc, latest[t]);
    for (std::size_t t = 0; t < T; ++t) {
      if (credits_[t] <= 0.0 || !tier_eligible(t)) continue;
      weight[t] = (max_acc - latest[t]) + config_.deficit_epsilon;
    }
  } else {
    // Rank rule: sort by accuracy ascending; worst tier gets weight T,
    // best gets 1.
    std::vector<std::size_t> order(T);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&latest](std::size_t a, std::size_t b) {
                       return latest[a] < latest[b];
                     });
    for (std::size_t rank = 0; rank < T; ++rank) {
      const std::size_t t = order[rank];
      if (credits_[t] <= 0.0 || !tier_eligible(t)) continue;
      weight[t] = static_cast<double>(T - rank);
    }
  }

  const double total = std::accumulate(weight.begin(), weight.end(), 0.0);
  if (total > 0.0) {
    for (double& w : weight) w /= total;
    probs_ = std::move(weight);
    ++prob_changes_;
  }
}

void AdaptiveTierPolicy::maybe_change_probs(std::size_t round,
                                            std::size_t reference_tier) {
  // Alg. 2 lines 3-7: every I rounds, re-derive probabilities if the
  // reference tier's accuracy stalled relative to I rounds ago.  The
  // async engine asks once per tier round, so guard to one stall check
  // per global version.
  if (round % config_.interval != 0 || round < config_.interval ||
      accuracy_history_.size() < config_.interval + 1) {
    return;
  }
  if (round == last_stall_check_) return;
  last_stall_check_ = round;
  const std::vector<double>& now = accuracy_history_.back();
  const std::vector<double>& before =
      accuracy_history_[accuracy_history_.size() - 1 - config_.interval];
  if (now[reference_tier] <= before[reference_tier]) {
    change_probs();
  }
}

fl::Selection AdaptiveTierPolicy::select(const fl::SelectionContext& context) {
  // Per-call, not sticky: a policy instance that served an async run must
  // apply the strict sync eligibility again when a sync engine drives it.
  async_mode_ = context.tier >= 0;
  if (context.tier >= 0) return select_tier_round(context);

  maybe_change_probs(context.round, current_tier_);

  // Alg. 2 lines 8-14: draw tiers until one with credits remains.
  const std::size_t T = members_.size();
  std::vector<double> effective = probs_;
  for (std::size_t t = 0; t < T; ++t) {
    if (credits_[t] <= 0.0 || !tier_eligible(t)) effective[t] = 0.0;
  }
  double mass = std::accumulate(effective.begin(), effective.end(), 0.0);
  if (mass <= 0.0) {
    // Custom credit schedules can exhaust every tier; restore liveness.
    util::log_warn("AdaptiveTierPolicy: all tier credits exhausted; "
                   "granting one credit per eligible tier");
    for (std::size_t t = 0; t < T; ++t) {
      if (tier_eligible(t)) {
        credits_[t] = 1.0;
        effective[t] = 1.0;
      }
    }
    mass = std::accumulate(effective.begin(), effective.end(), 0.0);
    if (mass <= 0.0) {
      throw std::logic_error("AdaptiveTierPolicy: no eligible tier");
    }
  }

  current_tier_ = context.stream().weighted_index(effective);
  credits_[current_tier_] -= 1.0;  // Alg. 2 line 11

  const std::vector<std::size_t>& pool = members_[current_tier_];
  const std::vector<std::size_t> picks = fl::sample_without_replacement(
      pool.size(), config_.clients_per_round, context.stream());

  fl::Selection selection;
  selection.tier = static_cast<int>(current_tier_);
  selection.clients.reserve(picks.size());
  for (std::size_t p : picks) selection.clients.push_back(pool[p]);
  return selection;
}

// Async per-tier cadence: the engine fixed the tier; Alg. 2's
// probabilities scale that tier's share of the work instead of drawing
// the tier.  round(p_t * T * |C|) members per tier round keeps a
// uniform-probability policy at exactly the engine's default |C|.
fl::Selection AdaptiveTierPolicy::select_tier_round(
    const fl::SelectionContext& context) {
  const std::size_t tier = static_cast<std::size_t>(context.tier);
  if (tier >= members_.size()) {
    throw std::invalid_argument("AdaptiveTierPolicy: tier out of range");
  }
  maybe_change_probs(context.round, tier);
  if (context.candidates.empty()) return {};

  const double share =
      probs_[tier] * static_cast<double>(members_.size()) *
      static_cast<double>(config_.clients_per_round);
  std::size_t count = static_cast<std::size_t>(std::llround(share));
  if (credits_[tier] <= 0.0) {
    // Out of credits: throttle to a minimal presence rather than a hard
    // stop — async tiers do not block each other, so the time cost Alg. 2
    // guards against is per-tier work, not round latency.
    count = std::min<std::size_t>(count, 1);
  }
  count = std::min(count, context.candidates.size());
  if (count == 0) return {};  // parked; the engine retries next version

  if (credits_[tier] > 0.0) credits_[tier] -= 1.0;
  const std::vector<std::size_t> picks = fl::sample_without_replacement(
      context.candidates.size(), count, context.stream());

  fl::Selection selection;
  selection.tier = context.tier;
  selection.clients.reserve(picks.size());
  for (std::size_t p : picks) {
    selection.clients.push_back(context.candidates[p]);
  }
  return selection;
}

void AdaptiveTierPolicy::observe(const fl::RoundFeedback& feedback) {
  // Alg. 2 lines 22-24: record A_t^r for every tier.  If the engine did
  // not evaluate tiers this round, carry the previous values forward.
  if (!feedback.tier_accuracies.empty()) {
    if (feedback.tier_accuracies.size() != members_.size()) {
      throw std::invalid_argument(
          "AdaptiveTierPolicy: tier accuracy count mismatch");
    }
    accuracy_history_.push_back(feedback.tier_accuracies);
  } else if (!accuracy_history_.empty()) {
    accuracy_history_.push_back(accuracy_history_.back());
  } else {
    accuracy_history_.emplace_back(members_.size(), 0.0);
  }
}

void AdaptiveTierPolicy::on_join(std::size_t client, std::size_t tier) {
  if (tier >= members_.size()) return;
  members_[tier].push_back(client);
}

void AdaptiveTierPolicy::on_leave(std::size_t client) {
  for (std::vector<std::size_t>& tier : members_) {
    const auto it = std::find(tier.begin(), tier.end(), client);
    if (it != tier.end()) {
      tier.erase(it);
      return;
    }
  }
}

void AdaptiveTierPolicy::on_retier(
    std::span<const std::vector<std::size_t>> members) {
  if (members.size() != members_.size()) {
    throw std::invalid_argument(
        "AdaptiveTierPolicy: re-tiering changed the tier count");
  }
  members_.assign(members.begin(), members.end());
}

void AdaptiveTierPolicy::save_state(util::ByteSink& sink) const {
  sink.put_u64(members_.size());
  for (const std::vector<std::size_t>& tier : members_) {
    sink.put_size_vec(tier);
  }
  sink.put_f64_vec(probs_);
  sink.put_f64_vec(credits_);
  sink.put_u64(accuracy_history_.size());
  for (const std::vector<double>& row : accuracy_history_) {
    sink.put_f64_vec(row);
  }
  sink.put_u64(current_tier_);
  sink.put_u64(prob_changes_);
  sink.put_bool(async_mode_);
  sink.put_u64(last_stall_check_);
}

void AdaptiveTierPolicy::restore_state(util::ByteSource& source) {
  const std::size_t tiers = source.checked_count(source.get_u64(), 8);
  if (tiers != members_.size()) {
    throw std::runtime_error(
        "AdaptiveTierPolicy: snapshot tier count mismatch");
  }
  for (std::vector<std::size_t>& tier : members_) {
    tier = source.get_size_vec();
  }
  probs_ = source.get_f64_vec();
  credits_ = source.get_f64_vec();
  if (probs_.size() != tiers || credits_.size() != tiers) {
    throw std::runtime_error("AdaptiveTierPolicy: snapshot vector mismatch");
  }
  const std::size_t history = source.checked_count(source.get_u64(), 8);
  accuracy_history_.clear();
  accuracy_history_.reserve(history);
  for (std::size_t r = 0; r < history; ++r) {
    accuracy_history_.push_back(source.get_f64_vec());
  }
  current_tier_ = source.get_u64();
  prob_changes_ = source.get_u64();
  async_mode_ = source.get_bool();
  last_stall_check_ = source.get_u64();
}

}  // namespace tifl::core
