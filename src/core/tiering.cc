#include "core/tiering.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/histogram.h"
#include "util/stats.h"

namespace tifl::core {

std::size_t TierInfo::tier_of(std::size_t client_id) const {
  for (std::size_t t = 0; t < members.size(); ++t) {
    if (std::find(members[t].begin(), members[t].end(), client_id) !=
        members[t].end()) {
      return t;
    }
  }
  return members.size();
}

std::string TierInfo::to_string() const {
  std::ostringstream os;
  for (std::size_t t = 0; t < members.size(); ++t) {
    os << "tier " << t + 1 << ": " << members[t].size()
       << " clients, avg latency " << avg_latency[t] << "s\n";
  }
  if (!dropouts.empty()) os << "dropouts: " << dropouts.size() << "\n";
  return os.str();
}

TierInfo build_tiers(const ProfileResult& profile, std::size_t num_tiers,
                     TieringStrategy strategy) {
  return build_tiers(profile.mean_latency, profile.dropout, num_tiers,
                     strategy);
}

TierInfo build_tiers(std::span<const double> mean_latency,
                     const std::vector<bool>& dropout, std::size_t num_tiers,
                     TieringStrategy strategy) {
  if (mean_latency.size() != dropout.size()) {
    throw std::invalid_argument("build_tiers: latency/dropout size mismatch");
  }
  if (num_tiers == 0) {
    throw std::invalid_argument("build_tiers: need at least one tier");
  }

  TierInfo info;
  info.members.assign(num_tiers, {});
  info.avg_latency.assign(num_tiers, 0.0);

  std::vector<double> alive_latency;
  std::vector<std::size_t> alive_ids;
  for (std::size_t c = 0; c < mean_latency.size(); ++c) {
    if (dropout[c]) {
      info.dropouts.push_back(c);
    } else {
      alive_latency.push_back(mean_latency[c]);
      alive_ids.push_back(c);
    }
  }
  if (alive_latency.empty()) {
    throw std::invalid_argument("build_tiers: every client dropped out");
  }

  const util::Histogram histogram(
      alive_latency, num_tiers,
      strategy == TieringStrategy::kQuantile ? util::BinningMode::kQuantile
                                             : util::BinningMode::kEqualWidth);

  std::vector<util::RunningStat> stats(num_tiers);
  for (std::size_t i = 0; i < alive_ids.size(); ++i) {
    const std::size_t tier = histogram.bin_of(alive_latency[i]);
    info.members[tier].push_back(alive_ids[i]);
    stats[tier].add(alive_latency[i]);
  }
  for (std::size_t t = 0; t < num_tiers; ++t) {
    info.avg_latency[t] = stats[t].mean();
    std::sort(info.members[t].begin(), info.members[t].end());
  }
  return info;
}

}  // namespace tifl::core
