#include "core/profiler.h"

#include <algorithm>
#include <stdexcept>

namespace tifl::core {

std::size_t ProfileResult::dropout_count() const {
  return static_cast<std::size_t>(
      std::count(dropout.begin(), dropout.end(), true));
}

ProfileResult profile_clients(const std::vector<fl::Client>& clients,
                              const sim::LatencyModel& latency_model,
                              const ProfilerConfig& config, util::Rng& rng) {
  if (clients.empty()) {
    throw std::invalid_argument("profile_clients: no clients");
  }
  const fl::ClientPool pool(&clients);
  return profile_clients(pool, latency_model, config, rng);
}

ProfileResult profile_clients(const fl::ClientPool& pool,
                              const sim::LatencyModel& latency_model,
                              const ProfilerConfig& config, util::Rng& rng) {
  const std::size_t num_clients = pool.size();
  if (num_clients == 0) {
    throw std::invalid_argument("profile_clients: no clients");
  }
  if (config.sync_rounds == 0 || config.tmax <= 0.0) {
    throw std::invalid_argument("profile_clients: bad config");
  }

  ProfileResult result;
  result.accumulated_latency.assign(num_clients, 0.0);
  result.mean_latency.assign(num_clients, 0.0);
  result.dropout.assign(num_clients, false);

  for (std::size_t round = 0; round < config.sync_rounds; ++round) {
    double round_time = 0.0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      const double observed = latency_model.sample_latency(
          pool.resource(c), pool.train_size(c), config.epochs, rng);
      // Clients answering within Tmax contribute their actual latency;
      // the rest are charged the full deadline.
      const double charged = observed < config.tmax ? observed : config.tmax;
      result.accumulated_latency[c] += charged;
      round_time = std::max(round_time, charged);
    }
    result.profiling_time += round_time;
  }

  const double dropout_threshold =
      static_cast<double>(config.sync_rounds) * config.tmax;
  for (std::size_t c = 0; c < num_clients; ++c) {
    result.mean_latency[c] = result.accumulated_latency[c] /
                             static_cast<double>(config.sync_rounds);
    // ">=" per the paper: only clients that timed out *every* round drop.
    result.dropout[c] = result.accumulated_latency[c] >= dropout_threshold;
  }
  return result;
}

}  // namespace tifl::core
