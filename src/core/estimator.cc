#include "core/estimator.h"

#include <stdexcept>

#include "util/stats.h"

namespace tifl::core {

double estimate_training_time(std::span<const double> tier_latency,
                              std::span<const double> tier_probs,
                              std::size_t rounds) {
  if (tier_latency.size() != tier_probs.size()) {
    throw std::invalid_argument(
        "estimate_training_time: latency/probability size mismatch");
  }
  double per_round = 0.0;
  for (std::size_t i = 0; i < tier_latency.size(); ++i) {
    per_round += tier_latency[i] * tier_probs[i];
  }
  return per_round * static_cast<double>(rounds);
}

double estimate_training_time(const TierInfo& tiers,
                              std::span<const double> tier_probs,
                              std::size_t rounds) {
  return estimate_training_time(tiers.avg_latency, tier_probs, rounds);
}

double estimation_mape(double estimated_seconds, double actual_seconds) {
  return util::mape_percent(estimated_seconds, actual_seconds);
}

}  // namespace tifl::core
