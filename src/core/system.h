// TiflSystem — the top-level public API tying the whole reproduction
// together, mirroring Fig. 2 of the paper: profiler & tiering algorithm +
// tier scheduler wrapped around a conventional FL aggregator/engine.
//
// Construction runs the profiling phase and builds the tiers; the caller
// then creates policies bound to those tiers and runs federations:
//
//   core::TiflSystem system(cfg, factory, &train, &test, clients, latency);
//   auto policy = system.make_static("uniform");
//   fl::RunResult result = system.run(*policy);
//
// TiFL is non-intrusive by design (§4.1): policies only regulate client
// selection; the underlying engine and training loop are the vanilla FL
// substrate from src/fl.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/estimator.h"
#include "core/profiler.h"
#include "core/static_policy.h"
#include "core/tiering.h"
#include "fl/async_engine.h"
#include "fl/client_pool.h"
#include "fl/engine.h"
#include "fl/hier/tree_engine.h"
#include "fl/policy_registry.h"
#include "obs/phase.h"

namespace tifl::core {

struct SystemConfig {
  std::size_t num_tiers = 5;          // m
  TieringStrategy tiering = TieringStrategy::kQuantile;
  ProfilerConfig profiler;
  fl::EngineConfig engine;
  // Defaults for run_async; zero-valued fields inherit from `engine` /
  // `clients_per_round` at run time.
  fl::AsyncConfig async;
  std::size_t clients_per_round = 5;  // |C|
  std::uint64_t profile_seed = 7;
};

class TiflSystem {
 public:
  TiflSystem(SystemConfig config, nn::ModelFactory factory,
             const data::Dataset* test, std::vector<fl::Client> clients,
             sim::LatencyModel latency_model);

  // Virtualized population (million-client federations): profiling and
  // tiering run off the pool's O(1) per-client state, and only run_async
  // is available — the synchronous engine (and its per-tier evaluation
  // sets) requires materialized clients.  engine(), run() and client()
  // throw in this mode.
  TiflSystem(SystemConfig config, nn::ModelFactory factory,
             const data::Dataset* test, fl::ClientPool pool,
             sim::LatencyModel latency_model);

  const TierInfo& tiers() const { return tiers_; }
  const ProfileResult& profile() const { return profile_; }
  fl::Engine& engine();
  const SystemConfig& config() const { return config_; }
  // The population every engine run draws from: wraps the sync engine's
  // clients in classic mode, owns the virtual population in pool mode.
  fl::ClientPool& client_pool() { return *pool_; }
  bool virtualized() const { return engine_ == nullptr; }

  // --- policy factories bound to this system's tiers ----------------------
  // The registry is the canonical way to resolve a policy by name
  // ("adaptive", "vanilla", every Table 1 preset, "deadline", …): it
  // builds the policy against this system's population, tiering and
  // profiling snapshot, and unknown names throw listing the valid
  // options.  See fl/policy_registry.h; custom policies registered there
  // resolve here too.
  std::unique_ptr<fl::SelectionPolicy> make_policy(
      const std::string& name) const;
  // The snapshot make_policy hands to registry factories — exposed so
  // callers can resolve names through fl::make_policy directly.
  fl::PolicyContext policy_context() const;

  // Typed factories for programmatic construction (custom probability
  // vectors, custom AdaptiveConfig).  For by-name lookup prefer
  // make_policy; these remain for configs the registry cannot express.
  std::unique_ptr<fl::SelectionPolicy> make_vanilla() const;
  // `table1_name` in {"slow","uniform","random","fast","fast1".."fast3"}.
  std::unique_ptr<fl::SelectionPolicy> make_static(
      const std::string& table1_name) const;
  std::unique_ptr<fl::SelectionPolicy> make_static(
      std::vector<double> probs, const std::string& name) const;
  std::unique_ptr<fl::SelectionPolicy> make_adaptive(
      AdaptiveConfig config = {}) const;

  fl::RunResult run(fl::SelectionPolicy& policy,
                    std::optional<std::uint64_t> seed_override = {});

  // Asynchronous tier execution (FedAT-style): every tier trains at its
  // own cadence on a discrete-event timeline and the server keeps
  // per-tier model versions combined by a staleness-weighted average.
  // `async` overrides config().async; zero-valued total_updates /
  // clients_per_tier_round / time_budget_seconds inherit engine.rounds /
  // clients_per_round / engine.time_budget_seconds.
  // `policy` (non-owning, optional) drives per-tier member selection: the
  // engine asks it for every tier round's sample, so Alg. 2 runs on the
  // async path (`make_policy("adaptive")`), fed by per-tier accuracies
  // from the materialized tier evaluation sets.  Null keeps the default
  // uniform self-sampling, bit-identical to the policy-free engine.
  //
  // Dynamic client lifecycle: when async.churn has a positive rate or
  // async.reprofile_every > 0, the run handles joins, leaves and
  // mid-round slowdowns on the event queue, and on every ReProfile event
  // rebuilds the tiers from an exponentially-decayed observed-latency
  // estimate (OnlineReTierer over the same build_tiers algorithm) without
  // restarting — tier models survive the migration, and tiers() reflects
  // the final membership after the run.  All-zero churn with
  // reprofile_every == 0 replays the static-population engine bit for
  // bit.
  fl::AsyncRunResult run_async(
      std::optional<fl::AsyncConfig> async = {},
      std::optional<std::uint64_t> seed_override = {},
      fl::SelectionPolicy* policy = nullptr);

  // Hierarchical multi-level aggregation (edge → regional → global):
  // splits the population across the topology's leaf regions, re-runs the
  // §4.2 tiering *per region* over the profiled latencies, and executes
  // the aggregator tree on the async discrete-event timeline
  // (fl::hier::TreeEngine).  `async` resolves exactly like run_async's;
  // `--rounds` (total_updates) counts root aggregations.  A flat (single
  // node) topology delegates to run_async outright — byte-for-byte the
  // flat federation, with full policy / dynamic-lifecycle support —
  // while multi-region trees accept a policy only on that collapse path.
  // When async.reprofile_every > 0, one core::OnlineReTierer per leaf
  // rebuilds that region's tier membership from observed latencies; the
  // re-tierers' state rides the run snapshot, so --resume re-tiers
  // exactly as the uninterrupted run would have.
  fl::hier::HierRunResult run_hier(
      fl::hier::HierConfig hier, std::optional<fl::AsyncConfig> async = {},
      std::optional<std::uint64_t> seed_override = {},
      fl::SelectionPolicy* policy = nullptr);

  // Eq. 6 estimate for a Table 1 policy under this system's tiering.
  double estimate_time(const std::string& table1_name) const;
  double estimate_time(std::span<const double> tier_probs) const;

  // Sizes of each tier (used by privacy accounting and tests).
  std::vector<std::size_t> tier_sizes() const;

  // Re-runs profiling and tiering against the clients' *current* resource
  // profiles and rebuilds the per-tier evaluation sets (§4.2: "the
  // profiling and tiering can be conducted periodically for systems with
  // changing computation and communication performance over time").
  // Policies hold a snapshot of the tiers, so create fresh policies from
  // the factories after calling this.  Returns the new profiling cost in
  // virtual seconds.
  double reprofile(std::uint64_t seed);

  // Mutable access so callers can model mid-run resource drift before a
  // reprofile (e.g. a device heating up or moving to a slower link).
  fl::Client& client(std::size_t id);

 private:
  void profile_and_tier();
  // Splices the profiling phase's wall time ahead of a run's own phase
  // stats, so `tifl_run --report` shows the full profile/select/train/
  // aggregate/eval breakdown.
  void prepend_profile_phases(fl::RunResult& result) const;

  SystemConfig config_;
  // Wall time spent in profile_and_tier / reprofile (obs::Phase::kProfile).
  obs::PhaseTimer profile_phases_;
  TierInfo tiers_;
  // True while tiers_ is verbatim build_tiers(profile_) output (set by
  // profile_and_tier / reprofile, cleared once a dynamic run evolves the
  // membership).  Lets run_async seed the OnlineReTierer with the
  // already-built partition instead of re-running the O(n log n) tiering
  // over a million clients — bit-identical, since build_tiers is a pure
  // function of inputs the retierer would pass unchanged.
  bool tiers_match_profile_ = false;
  ProfileResult profile_;
  sim::LatencyModel latency_model_;
  const data::Dataset* test_ = nullptr;
  nn::ModelFactory factory_;  // kept for run_async engine construction
  std::unique_ptr<fl::Engine> engine_;  // null in pool (virtualized) mode
  // Classic mode: pass-through wrapper over engine_->clients() (engine_
  // owns the vector; its heap address is stable).  Pool mode: the owned
  // virtual population.  Engaged in both modes after construction.
  std::optional<fl::ClientPool> pool_;
};

// Builds the per-tier evaluation datasets (Alg. 2's TestData_t): the union
// of the member clients' matched held-out shards, materialized from the
// global test set.
std::vector<data::Dataset> build_tier_eval_sets(
    const TierInfo& tiers, const std::vector<fl::Client>& clients,
    const data::Dataset& test);

}  // namespace tifl::core
