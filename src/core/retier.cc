#include "core/retier.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tifl::core {

namespace {

void validate(const RetierConfig& config, const std::vector<double>& latency,
              const std::vector<bool>& inactive) {
  if (latency.size() != inactive.size()) {
    throw std::invalid_argument("OnlineReTierer: latency/inactive mismatch");
  }
  if (latency.empty()) {
    throw std::invalid_argument("OnlineReTierer: no clients");
  }
  if (config.ema_alpha <= 0.0 || config.ema_alpha > 1.0) {
    throw std::invalid_argument("OnlineReTierer: ema_alpha outside (0, 1]");
  }
  if (config.num_tiers == 0) {
    throw std::invalid_argument("OnlineReTierer: need at least one tier");
  }
}

}  // namespace

OnlineReTierer::OnlineReTierer(RetierConfig config,
                               std::vector<double> initial_latency,
                               std::vector<bool> inactive)
    : config_(config),
      latency_(std::move(initial_latency)),
      inactive_(std::move(inactive)) {
  validate(config_, latency_, inactive_);
  rebuild();
}

OnlineReTierer::OnlineReTierer(RetierConfig config,
                               std::vector<double> initial_latency,
                               std::vector<bool> inactive,
                               TierInfo initial_tiers)
    : config_(config),
      latency_(std::move(initial_latency)),
      inactive_(std::move(inactive)),
      tiers_(std::move(initial_tiers)) {
  validate(config_, latency_, inactive_);
  if (tiers_.tier_count() != config_.num_tiers) {
    throw std::invalid_argument(
        "OnlineReTierer: initial tiers do not match num_tiers");
  }
}

void OnlineReTierer::observe(std::size_t client, double latency) {
  if (std::isnan(latency) || latency < 0.0) {
    throw std::invalid_argument("OnlineReTierer: bad latency observation");
  }
  double& estimate = latency_.at(client);
  estimate = (1.0 - config_.ema_alpha) * estimate +
             config_.ema_alpha * latency;
}

void OnlineReTierer::set_active(std::size_t client, bool active) {
  inactive_.at(client) = !active;
}

void OnlineReTierer::seed_latency(std::size_t client, double latency) {
  latency_.at(client) = latency;
}

std::size_t OnlineReTierer::place(std::size_t client) const {
  const double estimate = latency_.at(client);
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < tiers_.tier_count(); ++t) {
    if (tiers_.members[t].empty()) continue;
    const double distance = std::abs(tiers_.avg_latency[t] - estimate);
    if (distance < best_distance) {
      best_distance = distance;
      best = t;
    }
  }
  return best;
}

const TierInfo& OnlineReTierer::rebuild() {
  tiers_ = build_tiers(latency_, inactive_, config_.num_tiers,
                       config_.strategy);
  return tiers_;
}

}  // namespace tifl::core
