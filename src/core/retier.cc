#include "core/retier.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tifl::core {

namespace {

void validate(const RetierConfig& config, const std::vector<double>& latency,
              const std::vector<bool>& inactive) {
  if (latency.size() != inactive.size()) {
    throw std::invalid_argument("OnlineReTierer: latency/inactive mismatch");
  }
  if (latency.empty()) {
    throw std::invalid_argument("OnlineReTierer: no clients");
  }
  if (config.ema_alpha <= 0.0 || config.ema_alpha > 1.0) {
    throw std::invalid_argument("OnlineReTierer: ema_alpha outside (0, 1]");
  }
  if (config.num_tiers == 0) {
    throw std::invalid_argument("OnlineReTierer: need at least one tier");
  }
}

}  // namespace

OnlineReTierer::OnlineReTierer(RetierConfig config,
                               std::vector<double> initial_latency,
                               std::vector<bool> inactive)
    : config_(config),
      latency_(std::move(initial_latency)),
      inactive_(std::move(inactive)) {
  validate(config_, latency_, inactive_);
  rebuild();
}

OnlineReTierer::OnlineReTierer(RetierConfig config,
                               std::vector<double> initial_latency,
                               std::vector<bool> inactive,
                               TierInfo initial_tiers)
    : config_(config),
      latency_(std::move(initial_latency)),
      inactive_(std::move(inactive)),
      tiers_(std::move(initial_tiers)) {
  validate(config_, latency_, inactive_);
  if (tiers_.tier_count() != config_.num_tiers) {
    throw std::invalid_argument(
        "OnlineReTierer: initial tiers do not match num_tiers");
  }
}

void OnlineReTierer::observe(std::size_t client, double latency) {
  if (std::isnan(latency) || latency < 0.0) {
    throw std::invalid_argument("OnlineReTierer: bad latency observation");
  }
  double& estimate = latency_.at(client);
  estimate = (1.0 - config_.ema_alpha) * estimate +
             config_.ema_alpha * latency;
}

void OnlineReTierer::set_active(std::size_t client, bool active) {
  inactive_.at(client) = !active;
}

void OnlineReTierer::seed_latency(std::size_t client, double latency) {
  latency_.at(client) = latency;
}

std::size_t OnlineReTierer::place(std::size_t client) const {
  const double estimate = latency_.at(client);
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < tiers_.tier_count(); ++t) {
    if (tiers_.members[t].empty()) continue;
    const double distance = std::abs(tiers_.avg_latency[t] - estimate);
    if (distance < best_distance) {
      best_distance = distance;
      best = t;
    }
  }
  return best;
}

const TierInfo& OnlineReTierer::rebuild() {
  tiers_ = build_tiers(latency_, inactive_, config_.num_tiers,
                       config_.strategy);
  return tiers_;
}

void OnlineReTierer::save_state(util::ByteSink& sink) const {
  sink.put_f64_vec(latency_);
  sink.put_u64(inactive_.size());
  for (bool flag : inactive_) sink.put_bool(flag);
  sink.put_u64(tiers_.members.size());
  for (const std::vector<std::size_t>& tier : tiers_.members) {
    sink.put_size_vec(tier);
  }
  sink.put_f64_vec(tiers_.avg_latency);
  sink.put_size_vec(tiers_.dropouts);
}

void OnlineReTierer::restore_state(util::ByteSource& source) {
  std::vector<double> latency = source.get_f64_vec();
  if (latency.size() != latency_.size()) {
    throw std::runtime_error("OnlineReTierer: snapshot population mismatch");
  }
  latency_ = std::move(latency);
  const std::size_t flags = source.checked_count(source.get_u64(), 1);
  if (flags != inactive_.size()) {
    throw std::runtime_error("OnlineReTierer: snapshot population mismatch");
  }
  for (std::size_t c = 0; c < flags; ++c) inactive_[c] = source.get_bool();
  const std::size_t tiers = source.checked_count(source.get_u64(), 8);
  tiers_.members.assign(tiers, {});
  for (std::vector<std::size_t>& tier : tiers_.members) {
    tier = source.get_size_vec();
  }
  tiers_.avg_latency = source.get_f64_vec();
  tiers_.dropouts = source.get_size_vec();
}

}  // namespace tifl::core
