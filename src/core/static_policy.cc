#include "core/static_policy.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/stats.h"

namespace tifl::core {

StaticTierPolicy::StaticTierPolicy(const TierInfo& tiers,
                                   std::vector<double> tier_probs,
                                   std::size_t clients_per_round,
                                   std::string policy_name)
    : members_(tiers.members),
      probs_(std::move(tier_probs)),
      clients_per_round_(clients_per_round),
      name_(std::move(policy_name)) {
  if (probs_.size() != members_.size()) {
    throw std::invalid_argument(
        "StaticTierPolicy: probability/tier count mismatch");
  }
  if (clients_per_round_ == 0) {
    throw std::invalid_argument("StaticTierPolicy: clients_per_round == 0");
  }
  // Zero out tiers that cannot fill a round, then renormalize.
  bool any = false;
  for (std::size_t t = 0; t < members_.size(); ++t) {
    if (members_[t].size() < clients_per_round_) probs_[t] = 0.0;
    any = any || probs_[t] > 0.0;
  }
  if (!any) {
    throw std::invalid_argument(
        "StaticTierPolicy: no tier is both eligible and has probability");
  }
  probs_ = util::normalized(std::move(probs_));
}

fl::Selection StaticTierPolicy::select(const fl::SelectionContext& context) {
  if (context.tier >= 0) {
    // Async per-tier cadence: scale the dispatching tier's sample count
    // by its probability share (uniform probabilities -> the engine's
    // default |C|); zero-probability tiers park.
    const std::size_t tier = static_cast<std::size_t>(context.tier);
    if (tier >= probs_.size()) {
      throw std::invalid_argument("StaticTierPolicy: tier out of range");
    }
    const double share = probs_[tier] * static_cast<double>(probs_.size()) *
                         static_cast<double>(clients_per_round_);
    const std::size_t count =
        std::min(static_cast<std::size_t>(std::llround(share)),
                 context.candidates.size());
    fl::Selection selection;
    selection.tier = context.tier;
    if (count == 0) return selection;
    selection.clients.reserve(count);
    for (std::size_t p : fl::sample_without_replacement(
             context.candidates.size(), count, context.stream())) {
      selection.clients.push_back(context.candidates[p]);
    }
    return selection;
  }

  const std::size_t tier = context.stream().weighted_index(probs_);
  const std::vector<std::size_t>& pool = members_[tier];

  const std::vector<std::size_t> picks = fl::sample_without_replacement(
      pool.size(), clients_per_round_, context.stream());
  fl::Selection selection;
  selection.tier = static_cast<int>(tier);
  selection.clients.reserve(picks.size());
  for (std::size_t p : picks) selection.clients.push_back(pool[p]);
  return selection;
}

std::vector<double> table1_probs(const std::string& name,
                                 std::size_t num_tiers) {
  if (num_tiers == 0) {
    throw std::invalid_argument("table1_probs: num_tiers == 0");
  }
  std::vector<double> probs(num_tiers, 0.0);
  if (name == "slow") {
    probs.back() = 1.0;
  } else if (name == "uniform") {
    std::fill(probs.begin(), probs.end(), 1.0 / static_cast<double>(num_tiers));
  } else if (name == "random") {
    // Table 1: 0.7, 0.1, 0.1, 0.05, 0.05 (fast tier prioritized).
    if (num_tiers != 5) {
      throw std::invalid_argument("table1_probs: 'random' is a 5-tier preset");
    }
    probs = {0.7, 0.1, 0.1, 0.05, 0.05};
  } else if (name == "fast") {
    probs.front() = 1.0;
  } else if (name == "fast1" || name == "fast2" || name == "fast3") {
    // MNIST/FMNIST sensitivity presets: slowest tier gets 0.1 / 0.05 / 0,
    // all other tiers share the rest equally.
    const double slow_prob =
        name == "fast1" ? 0.1 : (name == "fast2" ? 0.05 : 0.0);
    const double rest = (1.0 - slow_prob) / static_cast<double>(num_tiers - 1);
    std::fill(probs.begin(), probs.end() - 1, rest);
    probs.back() = slow_prob;
  } else {
    throw std::invalid_argument(
        "table1_probs: unknown policy '" + name +
        "' (valid: slow, uniform, random, fast, fast1, fast2, fast3)");
  }
  return probs;
}

}  // namespace tifl::core
