#include "core/deadline_policy.h"

#include <stdexcept>

namespace tifl::core {

DeadlinePolicy::DeadlinePolicy(const ProfileResult& profile,
                               double deadline_seconds,
                               std::size_t clients_per_round)
    : clients_per_round_(clients_per_round) {
  if (deadline_seconds <= 0.0) {
    throw std::invalid_argument("DeadlinePolicy: deadline must be > 0");
  }
  for (std::size_t c = 0; c < profile.mean_latency.size(); ++c) {
    if (!profile.dropout[c] &&
        profile.mean_latency[c] <= deadline_seconds) {
      eligible_.push_back(c);
    }
  }
  if (eligible_.size() < clients_per_round_) {
    throw std::invalid_argument(
        "DeadlinePolicy: fewer eligible clients than clients_per_round");
  }
}

fl::Selection DeadlinePolicy::select(const fl::SelectionContext& context) {
  const std::vector<std::size_t> picks = fl::sample_without_replacement(
      eligible_.size(), clients_per_round_, context.stream());
  fl::Selection selection;
  selection.clients.reserve(picks.size());
  for (std::size_t p : picks) selection.clients.push_back(eligible_[p]);
  return selection;
}

}  // namespace tifl::core
