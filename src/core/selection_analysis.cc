#include "core/selection_analysis.h"

#include <cmath>
#include <stdexcept>

namespace tifl::core {

namespace {
// log C(n, k) via lgamma; exact enough for probabilities.
double log_choose(double n, double k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}
}  // namespace

double probability_avoid_slowest(std::size_t total_clients,
                                 std::size_t slowest_level_size,
                                 std::size_t clients_per_round) {
  if (clients_per_round > total_clients ||
      slowest_level_size > total_clients) {
    throw std::invalid_argument("probability_avoid_slowest: bad sizes");
  }
  const double k = static_cast<double>(total_clients);
  const double m = static_cast<double>(slowest_level_size);
  const double c = static_cast<double>(clients_per_round);
  if (k - m < c) return 0.0;  // cannot fill a round without stragglers
  const double log_pr =
      log_choose(k - m, c) - log_choose(k, c);
  return std::exp(log_pr);
}

double straggler_selection_probability(std::size_t total_clients,
                                       std::size_t slowest_level_size,
                                       std::size_t clients_per_round) {
  return 1.0 - probability_avoid_slowest(total_clients, slowest_level_size,
                                         clients_per_round);
}

double straggler_probability_lower_bound(std::size_t total_clients,
                                         std::size_t slowest_level_size,
                                         std::size_t clients_per_round) {
  if (total_clients == 0) {
    throw std::invalid_argument("straggler_probability_lower_bound: K == 0");
  }
  const double ratio =
      static_cast<double>(total_clients - slowest_level_size) /
      static_cast<double>(total_clients);
  return 1.0 - std::pow(ratio, static_cast<double>(clients_per_round));
}

}  // namespace tifl::core
