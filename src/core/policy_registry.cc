#include "core/policy_registry.h"

#include <algorithm>
#include <stdexcept>

#include "core/adaptive_policy.h"
#include "core/deadline_policy.h"
#include "core/static_policy.h"
#include "core/tiering.h"
#include "fl/policy_registry.h"

namespace tifl::core {

namespace {

TierInfo tiers_from(const fl::PolicyContext& context) {
  if (context.tier_members.empty()) {
    throw std::invalid_argument(
        "policy context has no tier structure (tiered policies need a "
        "profiled TiflSystem)");
  }
  TierInfo tiers;
  tiers.members = context.tier_members;
  tiers.avg_latency = context.tier_avg_latency;
  return tiers;
}

std::unique_ptr<fl::SelectionPolicy> make_adaptive(
    const fl::PolicyContext& context) {
  AdaptiveConfig adaptive;
  adaptive.clients_per_round = context.clients_per_round;
  // The bench harness's historical scaling: re-examine probabilities
  // roughly 25 times over the run, never more often than every 2 rounds.
  adaptive.interval =
      std::max<std::size_t>(2, context.total_rounds / 25);
  return std::make_unique<AdaptiveTierPolicy>(tiers_from(context), adaptive,
                                              context.total_rounds);
}

std::unique_ptr<fl::SelectionPolicy> make_table1(
    const fl::PolicyContext& context, const std::string& name) {
  const TierInfo tiers = tiers_from(context);
  return std::make_unique<StaticTierPolicy>(
      tiers, table1_probs(name, tiers.tier_count()),
      context.clients_per_round, name);
}

std::unique_ptr<fl::SelectionPolicy> make_deadline(
    const fl::PolicyContext& context) {
  // FedCS-style filtering at the median tier's average latency — slower
  // clients never participate (the bench harness's historical choice).
  if (context.tier_avg_latency.empty() ||
      context.client_mean_latency.empty()) {
    throw std::invalid_argument(
        "policy context has no profiling data (deadline needs a profiled "
        "TiflSystem)");
  }
  ProfileResult profile;
  profile.mean_latency = context.client_mean_latency;
  profile.dropout = context.client_dropout.empty()
                        ? std::vector<bool>(context.client_mean_latency.size(),
                                            false)
                        : context.client_dropout;
  const double deadline =
      context.tier_avg_latency[context.tier_avg_latency.size() / 2];
  return std::make_unique<DeadlinePolicy>(profile, deadline,
                                          context.clients_per_round);
}

}  // namespace

void register_builtin_policies() {
  static const bool registered = [] {
    fl::PolicyRegistry& registry = fl::PolicyRegistry::instance();
    registry.add("adaptive",
                 {.factory = make_adaptive,
                  .summary = "TiFL Alg. 2: accuracy-driven tier "
                             "probabilities + credits",
                  .sync = true,
                  .async = true});
    registry.add("TiFL",
                 {.factory = make_adaptive,
                  .summary = "alias of 'adaptive'",
                  .sync = true,
                  .async = true});
    registry.add("deadline",
                 {.factory = make_deadline,
                  .summary = "FedCS baseline: only clients under the median "
                             "tier latency",
                  .sync = true,
                  .async = false});
    struct Preset {
      const char* name;
      const char* summary;
    };
    for (const Preset& preset : {
             Preset{"slow", "Table 1: always the slowest tier"},
             Preset{"uniform", "Table 1: every tier equally likely"},
             Preset{"random", "Table 1: 0.7/0.1/0.1/0.05/0.05 (5 tiers)"},
             Preset{"fast", "Table 1: always the fastest tier"},
             Preset{"fast1", "Table 1: slowest tier at p=0.1"},
             Preset{"fast2", "Table 1: slowest tier at p=0.05"},
             Preset{"fast3", "Table 1: slowest tier excluded"},
         }) {
      const std::string name = preset.name;
      registry.add(name,
                   {.factory =
                        [name](const fl::PolicyContext& context) {
                          return make_table1(context, name);
                        },
                    .summary = preset.summary,
                    .sync = true,
                    .async = true});
    }
    return true;
  }();
  (void)registered;
}

}  // namespace tifl::core
