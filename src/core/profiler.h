// Lightweight client profiler (§4.2 of the paper).
//
// All clients start with response latency 0 and run `sync_rounds`
// profiling rounds.  In each round every client is asked to train once on
// its local data; clients responding within `tmax` seconds have their
// accumulated latency RT_i incremented by the observed time, clients that
// time out are charged `tmax`.  After `sync_rounds` rounds, clients with
// RT_i >= sync_rounds * tmax are declared dropouts and excluded from
// tiering.  Observed latencies come from the simulated latency model
// (with jitter), exactly what the testbed's wall-clock measurement would
// produce.
#pragma once

#include <cstddef>
#include <vector>

#include "fl/client.h"
#include "fl/client_pool.h"
#include "sim/latency_model.h"
#include "util/rng.h"

namespace tifl::core {

struct ProfilerConfig {
  std::size_t sync_rounds = 5;
  double tmax = 120.0;          // per-round response deadline [s]
  std::size_t epochs = 1;       // local epochs per profiling task
};

struct ProfileResult {
  // RT_i: accumulated (tmax-clamped) response latency per client.
  std::vector<double> accumulated_latency;
  // Mean per-round latency RT_i / sync_rounds (the tiering input).
  std::vector<double> mean_latency;
  std::vector<bool> dropout;
  // Virtual time the profiling phase itself consumed: sync_rounds rounds,
  // each bounded by the slowest (or timed-out) client.
  double profiling_time = 0.0;

  std::size_t dropout_count() const;
};

ProfileResult profile_clients(const std::vector<fl::Client>& clients,
                              const sim::LatencyModel& latency_model,
                              const ProfilerConfig& config, util::Rng& rng);

// Pool-backed profiling: identical latency draws and RNG consumption to
// the vector overload (which delegates here through a pass-through pool).
// Profiling needs only resource profiles and shard sizes, so a
// million-client virtualized pool is profiled without materializing a
// single client.
ProfileResult profile_clients(const fl::ClientPool& pool,
                              const sim::LatencyModel& latency_model,
                              const ProfilerConfig& config, util::Rng& rng);

}  // namespace tifl::core
