// Closed-form straggler-selection analysis (§3.2, Eqs. 2-5).
//
// Under vanilla random selection of |C| clients from |K|, the probability
// that *no* client comes from the slowest level tau_m is
//
//     Pr  = C(K - |tau_m|, |C|) / C(K, |C|)                        (Eq. 2)
//
// and the straggler probability is Prs = 1 - Pr (Eq. 3).  Theorem 3.1
// gives the lower bound Prs > 1 - ((K - |tau_m|) / K)^|C| (Eq. 5), which
// approaches 1 at federation scale — the analytical core of the paper's
// argument that conventional FL is straggler-bound.
#pragma once

#include <cstddef>

namespace tifl::core {

// Eq. 2: probability that a uniform |C|-subset of K clients avoids the
// slowest level of size `slowest_level_size`.  Computed in log space so
// federation-scale inputs (K ~ 1e10) do not overflow.
double probability_avoid_slowest(std::size_t total_clients,
                                 std::size_t slowest_level_size,
                                 std::size_t clients_per_round);

// Eq. 3: Prs = 1 - Pr.
double straggler_selection_probability(std::size_t total_clients,
                                       std::size_t slowest_level_size,
                                       std::size_t clients_per_round);

// Eq. 5's lower bound: 1 - ((K - |tau_m|)/K)^|C|.
double straggler_probability_lower_bound(std::size_t total_clients,
                                         std::size_t slowest_level_size,
                                         std::size_t clients_per_round);

}  // namespace tifl::core
