// Adaptive tier selection (Algorithm 2, §4.4) — TiFL's headline policy.
//
// State per tier t: selection probability p_t, remaining Credits_t, and
// the test-accuracy history A_t^r measured by the engine on TestData_t
// (a held-out set matching the tier's training distribution).
//
// Every I rounds, if the current tier's accuracy has not improved since
// I rounds ago, `ChangeProbs` recomputes the probabilities from the
// latest per-tier accuracies so *lower-accuracy tiers are selected more*.
// Tier credits bound how often a (typically slow) tier can be chosen:
// selection loops until it draws a tier with credits remaining, then
// decrements that tier's credits.  Together the two mechanisms trade off
// accuracy (deficit-driven probabilities) against training time (credits
// throttling slow tiers).
//
// Both engines are supported (SelectionContext-driven):
//  * Sync (`context.tier == -1`): Alg. 2 verbatim — draw a tier from the
//    credit-gated probabilities, sample |C| members from it.
//  * Async (`context.tier >= 0`): tiers dispatch at their own cadence, so
//    the probabilities cannot pick *when* a tier runs; instead they bias
//    *how much* each tier contributes per round: tier t samples
//    round(p_t * T * |C|) members (uniform probabilities reproduce the
//    engine's default |C|), a credit is spent per dispatched round, and a
//    tier whose credits are exhausted is throttled to a single member.
//    A zero share parks the tier until the next global version.  The
//    stall test compares the *dispatching* tier's accuracy I versions
//    apart, at most once per version.
//
// Unspecified details in the paper, resolved here (see DESIGN.md):
//  * ChangeProbs rule — default kDeficit: p_t proportional to
//    (max_s A_s − A_t + epsilon); alternative kRank: probabilities
//    proportional to the tier's accuracy rank (worst accuracy gets the
//    largest weight).  Both make low-accuracy tiers likelier, as the text
//    requires.
//  * Initial credits — default: tier t gets ceil(rounds / 2^t), i.e. the
//    fastest tier is effectively unbounded and each slower tier can serve
//    at most half as many rounds as the one before; total credits ~2x
//    rounds so selection never deadlocks.
//  * If every tier's credits hit zero (possible only with custom credit
//    vectors), all credits are reset to 1 rather than looping forever.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/tiering.h"
#include "fl/policy.h"

namespace tifl::core {

struct AdaptiveConfig {
  std::size_t clients_per_round = 5;
  std::size_t interval = 20;  // I: rounds between ChangeProbs evaluations
  enum class ProbRule { kDeficit, kRank };
  ProbRule prob_rule = ProbRule::kDeficit;
  double deficit_epsilon = 0.01;  // keeps every credited tier selectable
  // Per-tier credits; when empty, default_credits(rounds) is used.
  std::vector<double> credits;
};

// The default Credits_t schedule described above.
std::vector<double> default_credits(std::size_t rounds,
                                    std::size_t num_tiers);

class AdaptiveTierPolicy final : public fl::SelectionPolicy {
 public:
  AdaptiveTierPolicy(const TierInfo& tiers, AdaptiveConfig config,
                     std::size_t total_rounds);

  using fl::SelectionPolicy::select;
  fl::Selection select(const fl::SelectionContext& context) override;
  void observe(const fl::RoundFeedback& feedback) override;
  std::string name() const override { return "adaptive"; }
  bool needs_tier_feedback() const override { return true; }  // A_t^r
  bool supports(fl::EngineKind kind) const override {
    (void)kind;
    return true;
  }

  // Track dynamic populations so ChangeProbs eligibility and the member
  // snapshot stay live under churn/re-tiering.
  void on_join(std::size_t client, std::size_t tier) override;
  void on_leave(std::size_t client) override;
  void on_retier(
      std::span<const std::vector<std::size_t>> members) override;

  const std::vector<double>& probs() const { return probs_; }
  const std::vector<double>& credits() const { return credits_; }
  std::size_t change_probs_invocations() const { return prob_changes_; }

  // Checkpoint/resume: the full Alg. 2 mutable state (membership snapshot,
  // probabilities, credits, accuracy history, stall-check cursors).
  void save_state(util::ByteSink& sink) const override;
  void restore_state(util::ByteSource& source) override;

 private:
  fl::Selection select_tier_round(const fl::SelectionContext& context);
  void maybe_change_probs(std::size_t round, std::size_t reference_tier);
  void change_probs();
  bool tier_eligible(std::size_t t) const;

  std::vector<std::vector<std::size_t>> members_;
  AdaptiveConfig config_;
  std::vector<double> probs_;
  std::vector<double> credits_;
  // accuracy_history_[r][t] = A_t^r (rounds without tier feedback reuse
  // the previous entry so interval lookbacks stay well-defined).
  std::vector<std::vector<double>> accuracy_history_;
  std::size_t current_tier_ = 0;
  std::size_t prob_changes_ = 0;
  // Which engine drove the *latest* select (set per call): async relaxes
  // eligibility to "has members" (tier rounds cap at the candidate
  // count) and guards the stall test to once per version.
  bool async_mode_ = false;
  std::size_t last_stall_check_ = static_cast<std::size_t>(-1);
};

}  // namespace tifl::core
