// Registration of the TiFL core policies (adaptive, Table 1 static
// presets, deadline) into fl::PolicyRegistry.  Idempotent — call it from
// any entry point that resolves policies by name before a TiflSystem
// exists (tifl_run's --help, for instance); TiflSystem's constructors
// call it themselves.
#pragma once

namespace tifl::core {

void register_builtin_policies();

}  // namespace tifl::core
