// Tiering algorithm (§4.2): split the profiled latency histogram into m
// groups; clients falling in the same group form a tier.  Tier 0 is the
// fastest.  The paper's phrase "split into m groups" admits two readings
// — equal-width latency bins or equal-population (quantile) bins — both
// are implemented; with well-separated resource groups (the paper's
// testbed) they coincide.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/profiler.h"

namespace tifl::core {

enum class TieringStrategy { kQuantile, kEqualWidth };

struct TierInfo {
  // members[t] = client ids of tier t, fastest tier first.
  std::vector<std::vector<std::size_t>> members;
  // Mean profiled response latency per tier (the scheduler's L_tier_i).
  std::vector<double> avg_latency;
  // Clients excluded as dropouts.
  std::vector<std::size_t> dropouts;

  std::size_t tier_count() const { return members.size(); }
  // Tier id of a client; returns tier_count() for dropouts/unknown.
  std::size_t tier_of(std::size_t client_id) const;
  std::string to_string() const;
};

// Builds tiers from profiled mean latencies; dropout clients are excluded.
// `num_tiers` is m in the paper (5 in all experiments).  Empty tiers are
// possible with equal-width binning of skewed latency distributions and
// are kept (the scheduler never assigns them probability mass).
TierInfo build_tiers(const ProfileResult& profile, std::size_t num_tiers,
                     TieringStrategy strategy = TieringStrategy::kQuantile);

// Lower-level entry used by tests: tiers from raw latency/dropout arrays.
// (vector<bool> rather than span because the standard bitset
// specialization has no contiguous storage to view.)
TierInfo build_tiers(std::span<const double> mean_latency,
                     const std::vector<bool>& dropout, std::size_t num_tiers,
                     TieringStrategy strategy = TieringStrategy::kQuantile);

}  // namespace tifl::core
