// Deadline-based client selection — the FedCS baseline the paper
// discusses in §2 [Nishio & Yonetani]: the coordinator only considers
// clients whose (profiled) response latency fits within a round deadline
// and samples the round's participants uniformly from that set.  Filters
// stragglers like TiFL's fast tiers do, but with a hard cutoff that
// permanently excludes slow clients' data instead of scheduling them
// deliberately.  Sync only: a round deadline is meaningless when every
// tier proceeds at its own pace (the default supports() already says so).
#pragma once

#include <string>
#include <vector>

#include "core/profiler.h"
#include "fl/policy.h"

namespace tifl::core {

class DeadlinePolicy final : public fl::SelectionPolicy {
 public:
  // Eligible clients: not dropouts and mean profiled latency <= deadline.
  // Throws if fewer than `clients_per_round` clients qualify.
  DeadlinePolicy(const ProfileResult& profile, double deadline_seconds,
                 std::size_t clients_per_round);

  using fl::SelectionPolicy::select;
  fl::Selection select(const fl::SelectionContext& context) override;
  std::string name() const override { return "deadline"; }

  const std::vector<std::size_t>& eligible_clients() const {
    return eligible_;
  }

 private:
  std::vector<std::size_t> eligible_;
  std::size_t clients_per_round_;
};

}  // namespace tifl::core
