// Straw-man static tier selection (§4.3): each round, draw one tier from a
// fixed probability vector, then select |C| clients uniformly at random
// within that tier.  Table 1 of the paper defines the named policy
// presets ("slow", "uniform", "random", "fast", "fast1".."fast3"),
// reproduced by `table1_probs`.
//
// On the async engine (context.tier >= 0) the probabilities bias per-tier
// participation instead of a per-round tier draw: tier t samples
// round(p_t * T * |C|) members each tier round, so "uniform" reproduces
// the engine's default |C| everywhere while "fast"/"slow" concentrate all
// work in one tier and park the rest.
#pragma once

#include <string>
#include <vector>

#include "core/tiering.h"
#include "fl/policy.h"

namespace tifl::core {

class StaticTierPolicy final : public fl::SelectionPolicy {
 public:
  // `tier_probs` must match tiers.tier_count() and sum to ~1.  Tiers whose
  // member count is below `clients_per_round` get their probability mass
  // redistributed (a tier must be able to fill a round, §4.3's
  // n_j > |C| assumption).
  StaticTierPolicy(const TierInfo& tiers, std::vector<double> tier_probs,
                   std::size_t clients_per_round, std::string policy_name);

  using fl::SelectionPolicy::select;
  fl::Selection select(const fl::SelectionContext& context) override;
  std::string name() const override { return name_; }
  bool supports(fl::EngineKind kind) const override {
    (void)kind;
    return true;
  }

  const std::vector<double>& tier_probs() const { return probs_; }

 private:
  std::vector<std::vector<std::size_t>> members_;
  std::vector<double> probs_;
  std::size_t clients_per_round_;
  std::string name_;
};

// Table 1 presets.  `name` in {"slow", "uniform", "random", "fast",
// "fast1", "fast2", "fast3"}; probabilities are returned fastest-tier
// first, matching TierInfo ordering.  Throws on unknown names, listing
// the valid presets.
std::vector<double> table1_probs(const std::string& name,
                                 std::size_t num_tiers = 5);

}  // namespace tifl::core
