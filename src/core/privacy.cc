#include "core/privacy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tifl::core {

double uniform_sampling_rate(std::size_t clients_per_round,
                             std::size_t total_clients) {
  if (total_clients == 0 || clients_per_round > total_clients) {
    throw std::invalid_argument("uniform_sampling_rate: bad sizes");
  }
  return static_cast<double>(clients_per_round) /
         static_cast<double>(total_clients);
}

double tier_sampling_rate(double tier_prob, std::size_t clients_per_round,
                          std::size_t tier_size) {
  if (tier_size == 0) return 0.0;
  const double within =
      std::min(1.0, static_cast<double>(clients_per_round) /
                        static_cast<double>(tier_size));
  return tier_prob * within;
}

double max_tier_sampling_rate(std::span<const double> tier_probs,
                              std::span<const std::size_t> tier_sizes,
                              std::size_t clients_per_round) {
  if (tier_probs.size() != tier_sizes.size()) {
    throw std::invalid_argument("max_tier_sampling_rate: size mismatch");
  }
  double q_max = 0.0;
  for (std::size_t j = 0; j < tier_probs.size(); ++j) {
    q_max = std::max(q_max, tier_sampling_rate(tier_probs[j],
                                               clients_per_round,
                                               tier_sizes[j]));
  }
  return q_max;
}

PrivacyParams amplify(PrivacyParams per_round, double sampling_rate) {
  if (sampling_rate < 0.0 || sampling_rate > 1.0) {
    throw std::invalid_argument("amplify: sampling rate outside [0, 1]");
  }
  return PrivacyParams{per_round.epsilon * sampling_rate,
                       per_round.delta * sampling_rate};
}

PrivacyParams compose_rounds(PrivacyParams amplified, std::size_t rounds) {
  return PrivacyParams{amplified.epsilon * static_cast<double>(rounds),
                       amplified.delta * static_cast<double>(rounds)};
}

double gaussian_sigma(const PrivacyParams& params, double l2_sensitivity) {
  if (params.epsilon <= 0.0 || params.delta <= 0.0 || params.delta >= 1.0) {
    throw std::invalid_argument("gaussian_sigma: bad privacy params");
  }
  return std::sqrt(2.0 * std::log(1.25 / params.delta)) * l2_sensitivity /
         params.epsilon;
}

double simulate_client_selection_rate(std::span<const double> tier_probs,
                                      std::span<const std::size_t> tier_sizes,
                                      std::size_t clients_per_round,
                                      std::size_t client_tier,
                                      std::size_t trials, util::Rng& rng) {
  if (client_tier >= tier_probs.size()) {
    throw std::invalid_argument("simulate_client_selection_rate: bad tier");
  }
  std::size_t hits = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::size_t tier = rng.weighted_index(tier_probs);
    if (tier != client_tier) continue;
    // Within the tier, the tracked client is one of tier_sizes[tier]
    // members, of whom clients_per_round are chosen uniformly.
    if (rng.uniform() <
        static_cast<double>(clients_per_round) /
            static_cast<double>(tier_sizes[client_tier])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace tifl::core
