#include "core/system.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/policy_registry.h"
#include "core/retier.h"

namespace tifl::core {

std::vector<data::Dataset> build_tier_eval_sets(
    const TierInfo& tiers, const std::vector<fl::Client>& clients,
    const data::Dataset& test) {
  std::vector<data::Dataset> sets;
  sets.reserve(tiers.tier_count());
  for (const std::vector<std::size_t>& member_ids : tiers.members) {
    std::vector<std::size_t> indices;
    for (std::size_t id : member_ids) {
      const std::vector<std::size_t>& shard = clients.at(id).test_indices();
      indices.insert(indices.end(), shard.begin(), shard.end());
    }
    std::sort(indices.begin(), indices.end());
    sets.push_back(test.subset(indices));
  }
  return sets;
}

TiflSystem::TiflSystem(SystemConfig config, nn::ModelFactory factory,
                       const data::Dataset* test,
                       std::vector<fl::Client> clients,
                       sim::LatencyModel latency_model)
    : config_(config),
      latency_model_(latency_model),
      test_(test),
      factory_(std::move(factory)) {
  if (test == nullptr) {
    throw std::invalid_argument("TiflSystem: null test dataset");
  }
  register_builtin_policies();

  // Engine first (it takes ownership of the clients), then the wrapper
  // pool over its stable storage; profiling + tiering run off the pool.
  engine_ = std::make_unique<fl::Engine>(config_.engine, factory_,
                                         std::move(clients), test,
                                         latency_model);
  pool_.emplace(&engine_->clients());
  profile_and_tier();
  engine_->set_tier_eval_sets(
      build_tier_eval_sets(tiers_, engine_->clients(), *test));
}

TiflSystem::TiflSystem(SystemConfig config, nn::ModelFactory factory,
                       const data::Dataset* test, fl::ClientPool pool,
                       sim::LatencyModel latency_model)
    : config_(config),
      latency_model_(latency_model),
      test_(test),
      factory_(std::move(factory)) {
  if (test == nullptr) {
    throw std::invalid_argument("TiflSystem: null test dataset");
  }
  register_builtin_policies();
  pool_.emplace(std::move(pool));
  profile_and_tier();
}

// Profiling (§4.2) + tiering shared by both construction modes: measure
// every client (pool-level state only — no materialization), mark
// dropouts, then histogram-split the mean latencies into m tiers.
void TiflSystem::profile_and_tier() {
  obs::ScopedPhase phase(&profile_phases_, obs::Phase::kProfile);
  util::Rng profile_rng(config_.profile_seed);
  profile_ =
      profile_clients(*pool_, latency_model_, config_.profiler, profile_rng);
  tiers_ = build_tiers(profile_, config_.num_tiers, config_.tiering);
  tiers_match_profile_ = true;
}

void TiflSystem::prepend_profile_phases(fl::RunResult& result) const {
  const std::vector<obs::PhaseStat> stats = profile_phases_.stats();
  result.phases.insert(result.phases.begin(), stats.begin(), stats.end());
}

fl::Engine& TiflSystem::engine() {
  if (engine_ == nullptr) {
    throw std::logic_error(
        "TiflSystem: the synchronous engine is unavailable on a virtualized "
        "client pool; use run_async");
  }
  return *engine_;
}

fl::PolicyContext TiflSystem::policy_context() const {
  fl::PolicyContext context;
  context.num_clients = pool_->size();
  context.clients_per_round = config_.clients_per_round;
  context.clients_per_tier_round = config_.async.clients_per_tier_round;
  context.total_rounds = config_.engine.rounds;
  context.tier_members = tiers_.members;
  context.tier_avg_latency = tiers_.avg_latency;
  context.client_mean_latency = profile_.mean_latency;
  context.client_dropout = profile_.dropout;
  return context;
}

std::unique_ptr<fl::SelectionPolicy> TiflSystem::make_policy(
    const std::string& name) const {
  return fl::make_policy(name, policy_context());
}

std::unique_ptr<fl::SelectionPolicy> TiflSystem::make_vanilla() const {
  return std::make_unique<fl::VanillaPolicy>(pool_->size(),
                                             config_.clients_per_round);
}

std::unique_ptr<fl::SelectionPolicy> TiflSystem::make_static(
    const std::string& table1_name) const {
  return make_static(table1_probs(table1_name, tiers_.tier_count()),
                     table1_name);
}

std::unique_ptr<fl::SelectionPolicy> TiflSystem::make_static(
    std::vector<double> probs, const std::string& name) const {
  return std::make_unique<StaticTierPolicy>(
      tiers_, std::move(probs), config_.clients_per_round, name);
}

std::unique_ptr<fl::SelectionPolicy> TiflSystem::make_adaptive(
    AdaptiveConfig adaptive) const {
  adaptive.clients_per_round = config_.clients_per_round;
  return std::make_unique<AdaptiveTierPolicy>(tiers_, adaptive,
                                              config_.engine.rounds);
}

fl::RunResult TiflSystem::run(fl::SelectionPolicy& policy,
                              std::optional<std::uint64_t> seed_override) {
  fl::RunResult result = engine().run(policy, seed_override);
  prepend_profile_phases(result);
  return result;
}

fl::AsyncRunResult TiflSystem::run_async(
    std::optional<fl::AsyncConfig> async,
    std::optional<std::uint64_t> seed_override,
    fl::SelectionPolicy* policy) {
  bool any_members = false;
  for (const std::vector<std::size_t>& members : tiers_.members) {
    any_members = any_members || !members.empty();
  }
  if (!any_members) {
    throw std::runtime_error(
        "TiflSystem::run_async: no live clients remain (a previous churned "
        "run drained the population); call reprofile() to re-admit them");
  }
  fl::AsyncConfig resolved = async.value_or(config_.async);
  if (resolved.total_updates == 0) {
    resolved.total_updates = config_.engine.rounds;
  }
  if (resolved.clients_per_tier_round == 0) {
    resolved.clients_per_tier_round = config_.clients_per_round;
  }
  if (resolved.time_budget_seconds == 0.0) {
    resolved.time_budget_seconds = config_.engine.time_budget_seconds;
  }
  // Match the pool's cache segmentation to the worker-shard count so each
  // event-queue shard's clients age in their own LRU.  Performance-only:
  // materialization is a pure function of the id, so skipping (a previous
  // run's cache still holds entries) never changes results.
  if (pool_->virtualized() && resolved.shards != pool_->cache_segments() &&
      pool_->live_clients() == 0) {
    pool_->set_cache_segments(resolved.shards);
  }
  fl::AsyncEngine engine(config_.engine, resolved, factory_, &*pool_,
                         tiers_.members, test_, latency_model_);
  if (policy != nullptr) {
    engine.set_policy(policy);
    // Feed Alg. 2-style policies their per-tier accuracies (TestData_t) —
    // but only when the policy consumes them: the sets cost tier_count
    // extra evaluations per evaluated version.  A virtualized pool has no
    // matched test shards to materialize; the policy then sees empty
    // tier_accuracies and carries zeros forward.
    if (engine_ != nullptr && policy->needs_tier_feedback()) {
      engine.set_tier_eval_sets(
          build_tier_eval_sets(tiers_, engine_->clients(), *test_));
    }
  }

  if (!engine.dynamic()) {
    fl::AsyncRunResult out = engine.run(seed_override);
    prepend_profile_phases(out.result);
    return out;
  }

  // Dynamic lifecycle: back the engine's join/leave/reprofile events with
  // an OnlineReTierer.  The engine reports what it observes; the
  // re-tierer owns the decayed latency estimates and reruns the §4.2
  // tiering algorithm on each ReProfile event.  tiers_ tracks the
  // rebuilt membership so the caller sees the post-run tier structure —
  // and a later dynamic run continues from it: the retierer's active set
  // is derived from the *current* tiers_ (matching the engine's live
  // set), so clients who left in a previous run form the next run's
  // join reserve.  On the first run this equals the profiling dropout
  // set exactly.  reprofile() resets to a fresh profile.
  RetierConfig retier_config;
  retier_config.num_tiers = config_.num_tiers;
  retier_config.strategy = config_.tiering;
  retier_config.ema_alpha = resolved.latency_ema_alpha;
  std::vector<bool> inactive(profile_.mean_latency.size(), true);
  for (const std::vector<std::size_t>& members : tiers_.members) {
    for (std::size_t id : members) inactive[id] = false;
  }
  // When tiers_ is still verbatim build_tiers(profile_) output, the
  // rebuild the retierer's constructor would run reproduces it exactly
  // (same latencies, same inactive set) — seed it instead of paying the
  // O(n log n) tiering again, which dominated run setup at 1M clients.
  // After a dynamic run has evolved the membership the estimates no
  // longer match the profile, so fall back to the rebuilding constructor.
  std::optional<OnlineReTierer> retierer_storage;
  if (tiers_match_profile_) {
    retierer_storage.emplace(retier_config, profile_.mean_latency,
                             std::move(inactive), tiers_);
  } else {
    retierer_storage.emplace(retier_config, profile_.mean_latency,
                             std::move(inactive));
  }
  OnlineReTierer& retierer = *retierer_storage;

  fl::LifecycleHooks hooks;
  hooks.observe = [&retierer](std::size_t client, double latency) {
    retierer.observe(client, latency);
  };
  hooks.left = [&retierer](std::size_t client) {
    retierer.set_active(client, false);
  };
  hooks.joined = [&retierer](std::size_t client, double expected_latency) {
    retierer.set_active(client, true);
    // The engine's estimate carries any slowdown multiplier the client
    // picked up before leaving — a drifted rejoiner lands in a slow tier.
    retierer.seed_latency(client, expected_latency);
    return retierer.place(client);
  };
  hooks.retier = [this, &retierer]() {
    tiers_ = retierer.rebuild();
    tiers_match_profile_ = false;
    return tiers_.members;
  };
  // Durability: the retierer's decayed latency estimates and active set
  // ride inside the engine's snapshot, so a resumed run re-tiers exactly
  // as the uninterrupted one would have.
  hooks.save_state = [&retierer](util::ByteSink& sink) {
    retierer.save_state(sink);
  };
  hooks.restore_state = [&retierer](util::ByteSource& source) {
    retierer.restore_state(source);
  };
  engine.set_lifecycle_hooks(std::move(hooks));
  fl::AsyncRunResult out = engine.run(seed_override);

  // Final sync: tiers() reflects the membership the run actually ended
  // with — leavers dropped, joiners where the run placed them — taken
  // verbatim from the engine.  Deliberately NOT a rebuild(): with
  // reprofile_every == 0 the tiering must stay frozen apart from the
  // population changes, and with re-tiering on, the last ReProfile's
  // partition stands until the next one would have fired.
  tiers_ = TierInfo{};
  tiers_match_profile_ = false;
  tiers_.members = std::move(out.final_members);
  out.final_members = tiers_.members;
  tiers_.avg_latency.assign(tiers_.members.size(), 0.0);
  for (std::size_t t = 0; t < tiers_.members.size(); ++t) {
    double sum = 0.0;
    for (std::size_t id : tiers_.members[t]) sum += retierer.latency(id);
    if (!tiers_.members[t].empty()) {
      tiers_.avg_latency[t] =
          sum / static_cast<double>(tiers_.members[t].size());
    }
  }
  const std::vector<bool>& gone = retierer.inactive();
  for (std::size_t c = 0; c < gone.size(); ++c) {
    if (gone[c]) tiers_.dropouts.push_back(c);
  }
  // Keep the sync engine's per-tier evaluation sets in step with the
  // evolved membership (as reprofile() does) so a later sync run reports
  // tier accuracies over the right clients.  A virtualized pool has no
  // sync engine (and no matched test shards) to keep in step.
  if (engine_ != nullptr) {
    engine_->set_tier_eval_sets(
        build_tier_eval_sets(tiers_, engine_->clients(), *test_));
  }
  prepend_profile_phases(out.result);
  return out;
}

fl::hier::HierRunResult TiflSystem::run_hier(
    fl::hier::HierConfig hier, std::optional<fl::AsyncConfig> async,
    std::optional<std::uint64_t> seed_override, fl::SelectionPolicy* policy) {
  // A flat topology IS the flat federation: delegate to run_async so the
  // full async feature set (policies, dynamic lifecycle, event log) keeps
  // working behind `--regions 1`, byte-for-byte the non-hier run.
  if (hier.topology.is_flat()) {
    fl::AsyncRunResult flat = run_async(std::move(async), seed_override,
                                        policy);
    fl::hier::HierRunResult out;
    out.collapsed = true;
    out.result = flat.result;
    out.final_weights = flat.final_weights;
    out.processed_events = flat.processed_events;
    out.max_event_batch = flat.max_event_batch;
    out.node_rounds = {out.result.rounds.size()};
    out.node_update_mass = {0};
    for (std::size_t updates : flat.tier_updates) {
      out.node_update_mass[0] += updates;
    }
    out.flat = std::move(flat);
    return out;
  }
  if (policy != nullptr) {
    throw std::invalid_argument(
        "TiflSystem::run_hier: selection policies only apply to the flat "
        "(collapse) path; multi-region leaves sample uniformly per tier");
  }

  fl::AsyncConfig resolved = async.value_or(config_.async);
  if (resolved.total_updates == 0) {
    resolved.total_updates = config_.engine.rounds;
  }
  if (resolved.clients_per_tier_round == 0) {
    resolved.clients_per_tier_round = config_.clients_per_round;
  }
  if (resolved.time_budget_seconds == 0.0) {
    resolved.time_budget_seconds = config_.engine.time_budget_seconds;
  }
  if (pool_->virtualized() && resolved.shards != pool_->cache_segments() &&
      pool_->live_clients() == 0) {
    pool_->set_cache_segments(resolved.shards);
  }

  const std::size_t num_clients = pool_->size();
  hier.topology.validate(num_clients);
  const std::vector<std::size_t> leaf_nodes = hier.topology.leaves();
  const std::vector<std::size_t> region_of =
      hier.topology.assign_clients(num_clients);

  // Live population: whatever the current tiering admits (profiling
  // dropouts — and leavers from a previous churned flat run — excluded).
  std::vector<bool> live(num_clients, false);
  for (const std::vector<std::size_t>& members : tiers_.members) {
    for (std::size_t id : members) live[id] = true;
  }

  // §4.2 tiering per region: the same build_tiers algorithm over the same
  // profiled latencies, with every client outside the region (or not
  // live) treated as a dropout.
  std::vector<std::vector<std::vector<std::size_t>>> leaf_tiers;
  std::vector<TierInfo> leaf_partitions;
  leaf_tiers.reserve(leaf_nodes.size());
  leaf_partitions.reserve(leaf_nodes.size());
  std::vector<std::vector<bool>> leaf_dropout(leaf_nodes.size());
  for (std::size_t leaf = 0; leaf < leaf_nodes.size(); ++leaf) {
    const fl::hier::NodeSpec& spec = hier.topology.nodes[leaf_nodes[leaf]];
    const std::size_t num_tiers = std::max<std::size_t>(
        1, spec.num_tiers > 0 ? spec.num_tiers : hier.tiers_per_region);
    std::vector<bool> dropout(num_clients, true);
    for (std::size_t c = 0; c < num_clients; ++c) {
      dropout[c] = !(live[c] && region_of[c] == leaf);
    }
    TierInfo partition = build_tiers(profile_.mean_latency, dropout,
                                     num_tiers, config_.tiering);
    leaf_tiers.push_back(partition.members);
    leaf_partitions.push_back(std::move(partition));
    leaf_dropout[leaf] = std::move(dropout);
  }

  fl::hier::TreeEngine engine(config_.engine, resolved, std::move(hier),
                              factory_, &*pool_, tiers_.members,
                              std::move(leaf_tiers), test_, latency_model_);

  // One OnlineReTierer per leaf region: each rebuilds its own region's
  // tiers from what that region's training rounds observed, exactly as
  // the flat dynamic path does for the whole population.  Their EMA
  // estimates ride the run snapshot (save/restore below) so a resumed
  // run re-tiers identically.
  std::vector<OnlineReTierer> retierers;
  if (resolved.reprofile_every > 0.0) {
    retierers.reserve(leaf_nodes.size());
    for (std::size_t leaf = 0; leaf < leaf_nodes.size(); ++leaf) {
      RetierConfig retier_config;
      retier_config.num_tiers = leaf_partitions[leaf].tier_count();
      retier_config.strategy = config_.tiering;
      retier_config.ema_alpha = resolved.latency_ema_alpha;
      // The just-built partition is verbatim build_tiers output over
      // these exact inputs, so adopt it instead of re-tiering.
      retierers.emplace_back(retier_config, profile_.mean_latency,
                             std::move(leaf_dropout[leaf]),
                             std::move(leaf_partitions[leaf]));
    }
    fl::hier::HierLifecycleHooks hooks;
    hooks.observe = [&retierers](std::size_t leaf, std::size_t client,
                                 double latency) {
      retierers[leaf].observe(client, latency);
    };
    hooks.retier = [&retierers](std::size_t leaf) {
      return retierers[leaf].rebuild().members;
    };
    hooks.save_state = [&retierers](util::ByteSink& sink) {
      for (const OnlineReTierer& retierer : retierers) {
        retierer.save_state(sink);
      }
    };
    hooks.restore_state = [&retierers](util::ByteSource& source) {
      for (OnlineReTierer& retierer : retierers) {
        retierer.restore_state(source);
      }
    };
    engine.set_lifecycle_hooks(std::move(hooks));
  }

  fl::hier::HierRunResult out = engine.run(seed_override);
  prepend_profile_phases(out.result);
  return out;
}

double TiflSystem::estimate_time(const std::string& table1_name) const {
  return estimate_time(table1_probs(table1_name, tiers_.tier_count()));
}

double TiflSystem::estimate_time(std::span<const double> tier_probs) const {
  return estimate_training_time(tiers_, tier_probs, config_.engine.rounds);
}

std::vector<std::size_t> TiflSystem::tier_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(tiers_.tier_count());
  for (const auto& members : tiers_.members) sizes.push_back(members.size());
  return sizes;
}

fl::Client& TiflSystem::client(std::size_t id) {
  return engine().mutable_clients().at(id);
}

double TiflSystem::reprofile(std::uint64_t seed) {
  obs::ScopedPhase phase(&profile_phases_, obs::Phase::kProfile);
  util::Rng profile_rng(seed);
  profile_ =
      profile_clients(*pool_, latency_model_, config_.profiler, profile_rng);
  tiers_ = build_tiers(profile_, config_.num_tiers, config_.tiering);
  tiers_match_profile_ = true;
  if (engine_ != nullptr) {
    engine_->set_tier_eval_sets(
        build_tier_eval_sets(tiers_, engine_->clients(), *test_));
  }
  return profile_.profiling_time;
}

}  // namespace tifl::core
