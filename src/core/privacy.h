// Privacy-preserving FL compatibility (§4.6 of the paper).
//
// The paper argues TiFL composes with client-level differential privacy:
// if one round of local training is (eps, delta)-DP, then under random
// client subsampling the per-round guarantee amplifies to
// (O(q*eps), q*delta) with q = |C|/|K| [Beimel et al.]; under tiered
// selection the guarantee is (O(q_max*eps), q_max*delta) where
//
//     q_j   = P(tier j selected) * |C| / |n_j|      (per-client sampling
//     q_max = max_j q_j                              rate within tier j)
//
// This module provides that accounting plus the Gaussian mechanism used
// by the DP-enabled client path (LocalTrainParams::dp_*), and a helper to
// verify the closed-form q against Monte-Carlo selection frequencies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace tifl::core {

struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 1e-5;
};

// Per-client sampling rate under uniform selection: q = |C| / |K|.
double uniform_sampling_rate(std::size_t clients_per_round,
                             std::size_t total_clients);

// Per-client sampling rate within tier j: P(tier j) * |C| / n_j.
double tier_sampling_rate(double tier_prob, std::size_t clients_per_round,
                          std::size_t tier_size);

// q_max over all tiers (empty tiers are skipped).
double max_tier_sampling_rate(std::span<const double> tier_probs,
                              std::span<const std::size_t> tier_sizes,
                              std::size_t clients_per_round);

// Amplification-by-subsampling (linear regime, the paper's O(q eps) form):
// (eps, delta) -> (q * eps, q * delta).
PrivacyParams amplify(PrivacyParams per_round, double sampling_rate);

// Simple (not tight) composition over R rounds: eps and delta scale by
// the number of rounds a client may participate in expectation.
PrivacyParams compose_rounds(PrivacyParams amplified, std::size_t rounds);

// Gaussian-mechanism noise scale for sensitivity `l2_sensitivity`:
// sigma = sqrt(2 ln(1.25/delta)) * sensitivity / eps  (requires eps<=1 in
// the classic analysis; accepted as-is for larger eps like most DP libs).
double gaussian_sigma(const PrivacyParams& params, double l2_sensitivity);

// Monte-Carlo estimate of a given client's per-round selection frequency
// under tiered selection — used by tests to validate the closed form.
double simulate_client_selection_rate(std::span<const double> tier_probs,
                                      std::span<const std::size_t> tier_sizes,
                                      std::size_t clients_per_round,
                                      std::size_t client_tier,
                                      std::size_t trials, util::Rng& rng);

}  // namespace tifl::core
