// Online re-tiering: rebuild tier membership mid-run from what the server
// actually observed, without restarting the federation.
//
// The constructor-time tiering (core/tiering.h) is computed once from a
// dedicated profiling phase; under drift it goes stale (§4.2: profiling
// "can be conducted periodically for systems with changing computation
// and communication performance over time").  OnlineReTierer keeps an
// exponentially-decayed estimate of every client's response latency —
// seeded from the initial profile, updated from live training round
// observations — plus the live/left flags the churn events imply, and on
// each ReProfile event rebuilds tiers with the same `build_tiers`
// algorithm the initial profiling used.  On a static population with no
// observations this reproduces the initial tiering exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tiering.h"
#include "util/serial.h"

namespace tifl::core {

struct RetierConfig {
  std::size_t num_tiers = 5;
  TieringStrategy strategy = TieringStrategy::kQuantile;
  // EMA weight of one new latency observation: estimate <- (1-alpha) *
  // estimate + alpha * observed.  Higher alpha adapts faster but is
  // noisier under jitter.
  double ema_alpha = 0.3;
};

class OnlineReTierer {
 public:
  // `initial_latency` seeds the per-client estimates (typically the
  // profiling phase's mean latencies); `inactive[c]` marks clients that
  // are not part of the live population (initial dropouts, later
  // leavers).  Builds the initial tiers immediately.
  OnlineReTierer(RetierConfig config, std::vector<double> initial_latency,
                 std::vector<bool> inactive);

  // As above, but adopts `initial_tiers` instead of rebuilding them.
  // Contract: `initial_tiers` must equal what build_tiers(initial_latency,
  // !active, config.num_tiers, config.strategy) would return — the caller
  // uses this when that partition is already in hand (straight from
  // profiling), skipping a redundant O(n log n) pass over the population.
  OnlineReTierer(RetierConfig config, std::vector<double> initial_latency,
                 std::vector<bool> inactive, TierInfo initial_tiers);

  // Fold one observed end-to-end response latency into client c's EMA.
  void observe(std::size_t client, double latency);

  // Join/leave bookkeeping.  Joins of never-seen clients should also
  // seed_latency() so placement has a prior.
  void set_active(std::size_t client, bool active);

  // Overwrite client c's latency estimate (expected latency prior for a
  // joiner with no observations yet).
  void seed_latency(std::size_t client, double latency);

  // Tier whose average profiled latency is nearest to client c's current
  // estimate — where a joiner trains until the next full rebuild.
  std::size_t place(std::size_t client) const;

  // Rebuild tiers from the current estimates; left clients are excluded
  // exactly like profiling dropouts.  Throws when no client is active.
  const TierInfo& rebuild();

  const TierInfo& tiers() const { return tiers_; }
  double latency(std::size_t client) const { return latency_.at(client); }
  const std::vector<bool>& inactive() const { return inactive_; }
  const RetierConfig& config() const { return config_; }

  // Checkpoint/resume: EMA estimates, live flags and the current tier
  // partition.  restore_state expects a retierer built for the same
  // population size (the config itself is not serialized).
  void save_state(util::ByteSink& sink) const;
  void restore_state(util::ByteSource& source);

 private:
  RetierConfig config_;
  std::vector<double> latency_;  // per-client EMA estimate
  std::vector<bool> inactive_;
  TierInfo tiers_;
};

}  // namespace tifl::core
