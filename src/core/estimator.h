// Training-time estimation model (§4.5).
//
//   L_all = sum_i (L_tier_i * P_i) * R                       (Eq. 6)
//
// — the expected per-round latency under the tier selection probabilities,
// times the number of rounds.  Accuracy of the estimate is scored with
// mean absolute percentage error (Eq. 7), reproduced in Table 2.
#pragma once

#include <cstddef>
#include <span>

#include "core/tiering.h"

namespace tifl::core {

// Eq. 6.  `tier_latency[i]` is the profiled average response latency of
// tier i and `tier_probs[i]` its selection probability.
double estimate_training_time(std::span<const double> tier_latency,
                              std::span<const double> tier_probs,
                              std::size_t rounds);

// Convenience overload taking the tiering result directly.
double estimate_training_time(const TierInfo& tiers,
                              std::span<const double> tier_probs,
                              std::size_t rounds);

// Eq. 7: |est - act| / act * 100.  A zero actual (a run that never
// advanced virtual time) yields +inf for any nonzero estimate — see
// util::mape_percent.
double estimation_mape(double estimated_seconds, double actual_seconds);

}  // namespace tifl::core
