// Dense float32 tensor with value semantics.
//
// Design notes (Core-Guidelines style):
//  * rule of zero — storage is a std::vector<float>, copies are deep,
//    moves are O(1); no shared aliasing, so parallel client training can
//    freely copy model weights without races;
//  * row-major contiguous layout; shape is a small vector of extents;
//  * all indexing helpers are bounds-checked in debug builds only
//    (assert), keeping the hot training loops branch-free in release.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tifl::tensor {

using Shape = std::vector<std::int64_t>;

std::int64_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor full(Shape shape, float v) {
    return Tensor(std::move(shape), v);
  }
  // N(0, stddev^2) entries from the given stream.
  static Tensor randn(Shape shape, util::Rng& rng, float stddev = 1.0f);
  // U(lo, hi) entries.
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo,
                             float hi);

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t dim(std::size_t axis) const {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  float& operator[](std::int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  // 2-D accessor (matrix view of the first two extents).
  float& at(std::int64_t r, std::int64_t c) {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  // 4-D accessor (NCHW activations).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    assert(rank() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const {
    assert(rank() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  void fill(float v);
  // Reinterpret the buffer with a new shape of identical numel.
  Tensor& reshape(Shape shape);
  Tensor reshaped(Shape shape) const;

  bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace tifl::tensor
