#include "tensor/tensor.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tifl::tensor {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative tensor extent");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_numel(shape_) != static_cast<std::int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_to_string(shape_));
  }
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal()) * stddev;
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

Tensor& Tensor::reshape(Shape shape) {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch, have " +
                                shape_to_string(shape_) + " want " +
                                shape_to_string(shape));
  }
  shape_ = std::move(shape);
  return *this;
}

Tensor Tensor::reshaped(Shape shape) const {
  Tensor copy = *this;
  copy.reshape(std::move(shape));
  return copy;
}

}  // namespace tifl::tensor
