#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tifl::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}
}  // namespace

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  const float* xs = x.data();
  float* ys = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void scale(Tensor& y, float alpha) {
  for (float& v : y.flat()) v *= alpha;
}

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "add");
  check_same_shape(a, out, "add");
  const float* as = a.data();
  const float* bs = b.data();
  float* os = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) os[i] = as[i] + bs[i];
}

void add_row_bias(Tensor& m, const Tensor& bias) {
  if (m.rank() != 2 || bias.numel() != m.dim(1)) {
    throw std::invalid_argument("add_row_bias: want [M,N] and [N]");
  }
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  const float* b = bias.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = m.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] += b[c];
  }
}

void relu_forward(const Tensor& x, Tensor& out) {
  if (&out != &x) {
    check_same_shape(x, out, "relu_forward");
  }
  const float* xs = x.data();
  float* os = out.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) os[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  check_same_shape(x, dy, "relu_backward");
  check_same_shape(x, dx, "relu_backward");
  const float* xs = x.data();
  const float* dys = dy.data();
  float* dxs = dx.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) dxs[i] = xs[i] > 0.0f ? dys[i] : 0.0f;
}

void relu_backward_from_output(const Tensor& y, const Tensor& dy, Tensor& dx) {
  // ReLU output is nonnegative, so the y > 0 mask equals the x > 0 mask.
  relu_backward(y, dy, dx);
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: want rank-2 logits");
  }
  check_same_shape(logits, probs, "softmax_rows");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* out = probs.data() + r * cols;
    float max_v = in[0];
    for (std::int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in[c]);
    float total = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_v);
      total += out[c];
    }
    const float inv = 1.0f / total;
    for (std::int64_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

std::vector<std::int64_t> argmax_rows(const Tensor& m) {
  if (m.rank() != 2) throw std::invalid_argument("argmax_rows: want rank-2");
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

void column_sums(const Tensor& m, Tensor& out) {
  if (m.rank() != 2 || out.numel() != m.dim(1)) {
    throw std::invalid_argument("column_sums: want [M,N] and [N]");
  }
  out.fill(0.0f);
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  float* os = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) os[c] += row[c];
  }
}

double squared_norm(const Tensor& t) {
  double acc = 0.0;
  for (float v : t.flat()) acc += static_cast<double>(v) * v;
  return acc;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float worst = 0.0f;
  const float* as = a.data();
  const float* bs = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(as[i] - bs[i]));
  }
  return worst;
}

}  // namespace tifl::tensor
