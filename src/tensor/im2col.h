// im2col / col2im transforms: rewrite convolution as GEMM.
//
// Layout contract (channels-first):
//   input  : [C, H, W]                      (contiguous slice of an NCHW batch)
//   columns: [C*KH*KW, OH*OW]  row-major    (each column is one receptive field)
// so that  conv_out[OC, OH*OW] = W[OC, C*KH*KW] * columns.
//
// Batch forms widen the column buffer instead of looping GEMMs: a whole
// [N, C, H, W] batch lowers to one [C*KH*KW, N*OH*OW] slab where image b
// owns columns [b*OH*OW, (b+1)*OH*OW), feeding a single batch-level GEMM
// per conv layer.  The per-image variants take an explicit column stride so
// they can write into (read from) a slab in place.
//
// All loops hoist the padding bounds out of the pixel loop — the interior
// is a branch-free contiguous copy — and the batch forms parallelize over
// images through the global pool (serially when nested in a training task).
// Every output element is written by exactly one task: deterministic.
#pragma once

#include <cstdint>

namespace tifl::tensor {

struct ConvGeometry {
  std::int64_t channels;
  std::int64_t height;
  std::int64_t width;
  std::int64_t kernel_h;
  std::int64_t kernel_w;
  std::int64_t stride;
  std::int64_t pad;

  std::int64_t out_h() const {
    return (height + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad - kernel_w) / stride + 1;
  }
  std::int64_t col_rows() const { return channels * kernel_h * kernel_w; }
  std::int64_t col_cols() const { return out_h() * out_w(); }
  std::int64_t image_size() const { return channels * height * width; }
};

// Gathers image patches into the column buffer (zero-padding outside).
// `col_stride` is the distance between consecutive rows of the column
// matrix; 0 means the tight default col_cols().
void im2col(const float* image, const ConvGeometry& g, float* columns,
            std::int64_t col_stride = 0);

// Scatters (accumulates) the column buffer back into the image gradient.
// `image_grad` must be zero-initialized by the caller for a fresh gradient.
void col2im(const float* columns, const ConvGeometry& g, float* image_grad,
            std::int64_t col_stride = 0);

// Batch forms over an NCHW batch and a [col_rows, batch*col_cols] slab.
void im2col_batch(const float* images, std::int64_t batch,
                  const ConvGeometry& g, float* columns);
void col2im_batch(const float* columns, std::int64_t batch,
                  const ConvGeometry& g, float* images_grad);

}  // namespace tifl::tensor
