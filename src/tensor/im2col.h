// im2col / col2im transforms: rewrite convolution as GEMM.
//
// Layout contract (single image, channels-first):
//   input  : [C, H, W]                      (contiguous slice of an NCHW batch)
//   columns: [C*KH*KW, OH*OW]  row-major    (each column is one receptive field)
// so that  conv_out[OC, OH*OW] = W[OC, C*KH*KW] * columns.
#pragma once

#include <cstdint>

namespace tifl::tensor {

struct ConvGeometry {
  std::int64_t channels;
  std::int64_t height;
  std::int64_t width;
  std::int64_t kernel_h;
  std::int64_t kernel_w;
  std::int64_t stride;
  std::int64_t pad;

  std::int64_t out_h() const {
    return (height + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad - kernel_w) / stride + 1;
  }
  std::int64_t col_rows() const { return channels * kernel_h * kernel_w; }
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

// Gathers image patches into the column buffer (zero-padding outside).
void im2col(const float* image, const ConvGeometry& g, float* columns);

// Scatters (accumulates) the column buffer back into the image gradient.
// `image_grad` must be zero-initialized by the caller for a fresh gradient.
void col2im(const float* columns, const ConvGeometry& g, float* image_grad);

}  // namespace tifl::tensor
