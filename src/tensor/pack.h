// Blocking geometry and panel packing for the blocked GEMM core.
//
// The kernel follows the classic three-level blocking scheme (Goto/BLIS):
// C is computed in NC-wide column slabs; each slab accumulates KC-deep rank
// updates; inside a rank update, MC-row blocks of A stream through a
// register-tiled kMR x kNR microkernel.  Both operands are repacked into
// contiguous, zero-padded panels first:
//
//   A block [mc, kc] -> ceil(mc/kMR) panels, each kc x kMR column-major-ish:
//                       apack[panel][p*kMR + i] = A[panel*kMR + i, p]
//   B block [kc, nc] -> ceil(nc/kNR) panels, each kc x kNR:
//                       bpack[panel][p*kNR + j] = B[p, panel*kNR + j]
//
// so the microkernel's inner loop reads both operands with unit stride
// regardless of the caller's layout (normal or transposed views are handled
// by the generic row/column strides in ConstView).  Edge panels are padded
// with zeros: the microkernel always runs full tiles and the padded lanes
// contribute exact +0.0f terms, which keeps every output element's reduction
// order fixed — the determinism contract the FL engines rely on.
#pragma once

#include <cstdint>

namespace tifl::tensor {

// Register microtile: each microkernel call produces kMR x kNR elements of
// C.  kNR adapts to the target ISA so the 6 x (kNR/vector-width) accumulator
// grid fills the register file without spilling: 12 zmm on AVX-512, 12 ymm
// on AVX/AVX2, 12 xmm on baseline SSE2.
inline constexpr std::int64_t kMR = 6;
#if defined(__AVX512F__)
inline constexpr std::int64_t kNR = 16;
#elif defined(__AVX__)
inline constexpr std::int64_t kNR = 16;
#else
inline constexpr std::int64_t kNR = 8;
#endif

// Cache blocking: a kMC x kKC A block (~96 KiB) lives in L2 while its
// panels stream through L1; a kKC x kNC B slab (~2 MiB) is packed once per
// rank update and reused by every A block, i.e. across the whole M loop.
inline constexpr std::int64_t kMC = 96;    // multiple of kMR
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 2048;  // multiple of kNR

// Problems below this flop-count skip packing entirely (gemm_small): the
// panel setup would cost more than it saves on tiny layer shapes.
inline constexpr std::int64_t kSmallGemmLimit = 32 * 32 * 32;

// Shapes where packing cannot amortize — shallow reductions (k at or below
// kStreamMaxK) or very short C (m at or below kStreamMaxM: B is only
// streamed a handful of times) — run the row-streaming kernel instead when
// B is row-major.  The k threshold sits at the measured crossover: by
// k ~ 24 the packed microkernel already beats row streaming ~1.3x and the
// gap widens with depth (~3x by k = 64), while below it the per-tile
// accumulator setup/writeback cannot amortize over so few rank-1 updates.
inline constexpr std::int64_t kStreamMaxK = 16;
inline constexpr std::int64_t kStreamMaxM = 2 * kMR;

// Streamed C rows at or below this width are computed four rows per B
// sweep (each B row load feeds four FMAs); wider rows go one at a time —
// with multi-kilobyte rows the extra write streams cost more than the
// B reuse saves.
inline constexpr std::int64_t kStreamRowBlockMaxN = 512;

// Strided read-only matrix view: element (i, j) is data[i*rs + j*cs].
// Normal row-major is {ptr, ld, 1}; a transposed operand is {ptr, 1, ld} —
// packing absorbs the transpose so the core never needs layout variants.
struct ConstView {
  const float* data;
  std::int64_t rs;
  std::int64_t cs;

  const float* row(std::int64_t i) const { return data + i * rs; }
};

// Packs the [mc, kc] block of `a` starting at (row0, col0) into kMR-row
// panels (zero-padded to a multiple of kMR rows).
void pack_a(const ConstView& a, std::int64_t row0, std::int64_t col0,
            std::int64_t mc, std::int64_t kc, float* apack);

// Packs the [kc, nc] block of `b` starting at (row0, col0) into kNR-column
// panels (zero-padded to a multiple of kNR columns).
void pack_b(const ConstView& b, std::int64_t row0, std::int64_t col0,
            std::int64_t kc, std::int64_t nc, float* bpack);

}  // namespace tifl::tensor
