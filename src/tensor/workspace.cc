#include "tensor/workspace.h"

#include "obs/metrics.h"

namespace tifl::tensor {

std::span<float> Workspace::acquire(std::size_t slot, std::size_t count) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  std::vector<float>& buf = slots_[slot];
  if (buf.size() < count) {
    // Growth is a warm-up event (steady state reuses verbatim), so the
    // per-growth delta is cheap to track globally: the gauge accumulates
    // scratch bytes ever granted across the process's workspaces.
    static obs::Gauge& bytes =
        obs::Registry::global().gauge("tensor.workspace_bytes");
    bytes.add(static_cast<double>((count - buf.size()) * sizeof(float)));
    buf.resize(count);
  }
  return {buf.data(), count};
}

std::size_t Workspace::capacity_floats() const noexcept {
  std::size_t total = 0;
  for (const std::vector<float>& buf : slots_) total += buf.capacity();
  return total;
}

}  // namespace tifl::tensor
