#include "tensor/workspace.h"

namespace tifl::tensor {

std::span<float> Workspace::acquire(std::size_t slot, std::size_t count) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  std::vector<float>& buf = slots_[slot];
  if (buf.size() < count) buf.resize(count);
  return {buf.data(), count};
}

std::size_t Workspace::capacity_floats() const noexcept {
  std::size_t total = 0;
  for (const std::vector<float>& buf : slots_) total += buf.capacity();
  return total;
}

}  // namespace tifl::tensor
