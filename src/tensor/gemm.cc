#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "tensor/pack.h"
#include "util/thread_pool.h"

namespace tifl::tensor {

namespace {

void check_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name +
                                " must be rank-2, got " +
                                shape_to_string(t.shape()));
  }
}

std::int64_t ceil_to(std::int64_t v, std::int64_t unit) {
  return (v + unit - 1) / unit * unit;
}

// The one definition of the fused writeback, shared by every dispatch path
// so they stay bitwise interchangeable: bias_m, then bias_n, then ReLU.
inline float apply_epilogue(float v, std::int64_t gi, std::int64_t gj,
                            const Epilogue& ep) {
  if (ep.bias_m != nullptr) v += ep.bias_m[gi];
  if (ep.bias_n != nullptr) v += ep.bias_n[gj];
  if (ep.relu && v < 0.0f) v = 0.0f;
  return v;
}

// ---------------------------------------------------------------------------
// Microkernel: one kMR x kNR tile of C from packed panels.
//
// Accumulators live in registers for the whole K sweep; the packed operands
// are read with unit stride.  The K loop is a single sequential reduction
// per output element, so the tile's values do not depend on how M/N were
// partitioned — the property the pool-size determinism contract rests on.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)

// One GCC generic vector spans the full kNR tile width; the compiler lowers
// it to whatever the target ISA provides (2x SSE, 1x AVX2, 1x AVX-512 for
// the per-ISA kNR picked in pack.h).  The type keeps its natural alignment
// so the accumulators below live in registers; unaligned pack-buffer
// traffic goes through memcpy loads/stores (compiled to vmovups).
using vnr = float __attribute__((vector_size(4 * kNR), may_alias));

inline vnr load_vnr(const float* p) {
  vnr v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_vnr(float* p, vnr v) { __builtin_memcpy(p, &v, sizeof(v)); }

void microkernel(std::int64_t kc, const float* __restrict ap,
                 const float* __restrict bp, float* __restrict acc) {
  static_assert(kMR == 6, "microkernel is unrolled for kMR == 6");
  vnr c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const vnr bv = load_vnr(bp + p * kNR);
    const float* a = ap + p * kMR;
    c0 += bv * a[0];
    c1 += bv * a[1];
    c2 += bv * a[2];
    c3 += bv * a[3];
    c4 += bv * a[4];
    c5 += bv * a[5];
  }
  store_vnr(acc + 0 * kNR, c0);
  store_vnr(acc + 1 * kNR, c1);
  store_vnr(acc + 2 * kNR, c2);
  store_vnr(acc + 3 * kNR, c3);
  store_vnr(acc + 4 * kNR, c4);
  store_vnr(acc + 5 * kNR, c5);
}

// Two-panel variant: a kMR x 2*kNR tile from two adjacent B panels.  Each
// A broadcast feeds two FMAs, improving the load-port to FMA-port ratio
// (8 loads : 12 FMAs vs 7 : 6 single-panel) on wide cores.  `acc` rows are
// 2*kNR floats.  Element values are identical to two single-panel calls —
// same K order — so tile-width selection cannot perturb results.
void microkernel_x2(std::int64_t kc, const float* __restrict ap,
                    const float* __restrict bp0, const float* __restrict bp1,
                    float* __restrict acc) {
  static_assert(kMR == 6, "microkernel is unrolled for kMR == 6");
  vnr c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
  vnr c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const vnr b0 = load_vnr(bp0 + p * kNR);
    const vnr b1 = load_vnr(bp1 + p * kNR);
    const float* a = ap + p * kMR;
    c00 += b0 * a[0];
    c01 += b1 * a[0];
    c10 += b0 * a[1];
    c11 += b1 * a[1];
    c20 += b0 * a[2];
    c21 += b1 * a[2];
    c30 += b0 * a[3];
    c31 += b1 * a[3];
    c40 += b0 * a[4];
    c41 += b1 * a[4];
    c50 += b0 * a[5];
    c51 += b1 * a[5];
  }
  const std::int64_t ld = 2 * kNR;
  store_vnr(acc + 0 * ld, c00);
  store_vnr(acc + 0 * ld + kNR, c01);
  store_vnr(acc + 1 * ld, c10);
  store_vnr(acc + 1 * ld + kNR, c11);
  store_vnr(acc + 2 * ld, c20);
  store_vnr(acc + 2 * ld + kNR, c21);
  store_vnr(acc + 3 * ld, c30);
  store_vnr(acc + 3 * ld + kNR, c31);
  store_vnr(acc + 4 * ld, c40);
  store_vnr(acc + 4 * ld + kNR, c41);
  store_vnr(acc + 5 * ld, c50);
  store_vnr(acc + 5 * ld + kNR, c51);
}

#else

void microkernel(std::int64_t kc, const float* __restrict ap,
                 const float* __restrict bp, float* __restrict acc) {
  for (std::int64_t i = 0; i < kMR * kNR; ++i) acc[i] = 0.0f;
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict b = bp + p * kNR;
    const float* __restrict a = ap + p * kMR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = a[i];
      float* __restrict row = acc + i * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) row[j] += av * b[j];
    }
  }
}

void microkernel_x2(std::int64_t kc, const float* __restrict ap,
                    const float* __restrict bp0, const float* __restrict bp1,
                    float* __restrict acc) {
  float tile[kMR * kNR];
  microkernel(kc, ap, bp0, tile);
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (std::int64_t j = 0; j < kNR; ++j) {
      acc[i * 2 * kNR + j] = tile[i * kNR + j];
    }
  }
  microkernel(kc, ap, bp1, tile);
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (std::int64_t j = 0; j < kNR; ++j) {
      acc[i * 2 * kNR + kNR + j] = tile[i * kNR + j];
    }
  }
}

#endif

// Writes one microtile's accumulators into C, merging prior K blocks (or
// the caller's C when accumulating) and applying the fused epilogue on the
// final K block.  Handles ragged edges by clipping to mr x nr.
void write_tile(const float* acc, std::int64_t acc_ld, float* c,
                std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                std::int64_t gi, std::int64_t gj, bool merge_c, bool last_k,
                const Epilogue& ep) {
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * acc_ld;
    for (std::int64_t j = 0; j < nr; ++j) {
      float v = arow[j];
      if (merge_c) v += crow[j];
      if (last_k) v = apply_epilogue(v, gi + i, gj + j, ep);
      crow[j] = v;
    }
  }
}

// Runs every microtile of an [mc x nc] block: A panels are in `apack`,
// B panels in `bpack`, C starts at global coordinates (ic, jc).
void run_block(const float* apack, const float* bpack, float* c,
               std::int64_t ldc, std::int64_t ic, std::int64_t jc,
               std::int64_t mc, std::int64_t nc, std::int64_t kc,
               bool merge_c, bool last_k, const Epilogue& ep) {
  alignas(64) float acc[kMR * 2 * kNR];
  std::int64_t jr = 0;
  while (jr < nc) {
    const float* bpanel = bpack + jr * kc;
    if (nc - jr >= 2 * kNR) {
      // Full double tile from two adjacent packed panels.
      for (std::int64_t ir = 0; ir < mc; ir += kMR) {
        const std::int64_t mr = std::min(kMR, mc - ir);
        microkernel_x2(kc, apack + ir * kc, bpanel, bpanel + kc * kNR, acc);
        write_tile(acc, 2 * kNR, c + (ic + ir) * ldc + jc + jr, ldc, mr,
                   2 * kNR, ic + ir, jc + jr, merge_c, last_k, ep);
      }
      jr += 2 * kNR;
    } else {
      const std::int64_t nr = std::min(kNR, nc - jr);
      for (std::int64_t ir = 0; ir < mc; ir += kMR) {
        const std::int64_t mr = std::min(kMR, mc - ir);
        microkernel(kc, apack + ir * kc, bpanel, acc);
        write_tile(acc, kNR, c + (ic + ir) * ldc + jc + jr, ldc, mr, nr,
                   ic + ir, jc + jr, merge_c, last_k, ep);
      }
      jr += kNR;
    }
  }
}

// Tiny problems: a plain serial loop nest beats the packing overhead.
void gemm_small(const ConstView& a, const ConstView& b, float* c,
                std::int64_t m, std::int64_t k, std::int64_t n,
                bool accumulate, const Epilogue& ep) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* __restrict ap = a.data + i * a.rs;
      const float* __restrict bp = b.data + j * b.cs;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += ap[p * a.cs] * bp[p * b.rs];
      const float v = accumulate ? crow[j] + acc : acc;
      crow[j] = apply_epilogue(v, i, j, ep);
    }
  }
}

// Row-streaming compute for rows [i0, i1) of C.  A standalone function
// with by-value operands on purpose: routing these loops through the
// type-erased parallel_for closure (captured references, no
// respecialization across the std::function boundary) measured ~20%
// slower than the identical loops compiled as a plain function.
//
// Narrow C rows (n <= kStreamRowBlockMaxN) are computed four at a time so
// each B row load feeds four FMAs.  Per-row reduction order is untouched
// by the blocking — every row still accumulates over p ascending, j
// ascending — so chunk boundaries and the 4-row grouping cannot perturb
// results (the pool-size determinism contract).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))  // inlining into the closure re-pessimizes it
#endif
void stream_rows(const ConstView a, const ConstView b, float* const c,
                 const std::int64_t i0, const std::int64_t i1,
                 const std::int64_t k, const std::int64_t n,
                 const bool accumulate, const Epilogue& ep) {
  std::int64_t i = i0;
  if (n <= kStreamRowBlockMaxN) {
    for (; i + 4 <= i1; i += 4) {
      float* __restrict c0 = c + i * n;
      float* __restrict c1 = c0 + n;
      float* __restrict c2 = c1 + n;
      float* __restrict c3 = c2 + n;
      if (!accumulate) {
        std::memset(c0, 0, sizeof(float) * static_cast<std::size_t>(4 * n));
      }
      for (std::int64_t p = 0; p < k; ++p) {
        const float a0 = a.data[(i + 0) * a.rs + p * a.cs];
        const float a1 = a.data[(i + 1) * a.rs + p * a.cs];
        const float a2 = a.data[(i + 2) * a.rs + p * a.cs];
        const float a3 = a.data[(i + 3) * a.rs + p * a.cs];
        const float* __restrict brow = b.data + p * b.rs;
        for (std::int64_t j = 0; j < n; ++j) {
          c0[j] += a0 * brow[j];
          c1[j] += a1 * brow[j];
          c2[j] += a2 * brow[j];
          c3[j] += a3 * brow[j];
        }
      }
      if (ep.active()) {
        for (std::int64_t r = 0; r < 4; ++r) {
          float* crow = c + (i + r) * n;
          for (std::int64_t j = 0; j < n; ++j) {
            crow[j] = apply_epilogue(crow[j], i + r, j, ep);
          }
        }
      }
    }
  }
  for (; i < i1; ++i) {
    float* __restrict crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a.data[i * a.rs + p * a.cs];
      const float* __restrict brow = b.data + p * b.rs;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
    if (ep.active()) {
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] = apply_epilogue(crow[j], i, j, ep);
      }
    }
  }
}

// Row-streaming kernel for shapes packing cannot amortize (see
// kStreamMaxK/kStreamMaxM): the seed's i-k-j loop order minus its
// SIMD-defeating zero-skip branch, parallel over C rows, epilogue fused
// into a final sweep of each row.  Requires row-major B.
void gemm_stream(const ConstView& a, const ConstView& b, float* c,
                 std::int64_t m, std::int64_t k, std::int64_t n,
                 bool accumulate, const Epilogue& ep) {
  util::global_pool().parallel_for_chunked(
      0, static_cast<std::size_t>(m),
      [&](std::size_t lo, std::size_t hi) {
        stream_rows(a, b, c, static_cast<std::int64_t>(lo),
                    static_cast<std::int64_t>(hi), k, n, accumulate, ep);
      },
      /*grain=*/16, /*align=*/4);
}

// M blocks shorter than this use the column-panel parallel path (packing A
// once, fanning tasks out over N), which keeps wide-but-short conv GEMMs
// parallel at the top level.
constexpr std::int64_t kMinRowsForMParallel = 2 * kMC;

// The blocked, packed core.  jc -> pc -> (parallel ic | parallel jr):
// B is packed once per (jc, pc) slab and reused by every A block.
void gemm_blocked(const ConstView& a, const ConstView& b, float* c,
                  std::int64_t m, std::int64_t k, std::int64_t n,
                  bool accumulate, const Epilogue& ep) {
  // Grow-only pack scratch.  bpack/apack_shared belong to the dispatching
  // thread; apack_local is per worker inside the M-parallel region.
  thread_local std::vector<float> bpack_buf;
  thread_local std::vector<float> apack_shared;

  util::ThreadPool& pool = util::global_pool();
  const std::int64_t ldc = n;

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    const std::int64_t nc_pad = ceil_to(nc, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      const bool merge_c = pc > 0 || accumulate;
      const bool last_k = pc + kc == k;

      if (bpack_buf.size() < static_cast<std::size_t>(nc_pad * kc)) {
        bpack_buf.resize(static_cast<std::size_t>(nc_pad * kc));
      }
      pack_b(b, pc, jc, kc, nc, bpack_buf.data());
      const float* bpack = bpack_buf.data();

      if (m >= kMinRowsForMParallel) {
        // Tall problems: tasks own contiguous row blocks and pack their
        // own A panels.
        pool.parallel_for_chunked(
            0, static_cast<std::size_t>(m),
            [&](std::size_t lo, std::size_t hi) {
              thread_local std::vector<float> apack_local;
              const std::size_t need =
                  static_cast<std::size_t>(ceil_to(kMC, kMR) * kKC);
              if (apack_local.size() < need) apack_local.resize(need);
              for (std::int64_t ic = static_cast<std::int64_t>(lo);
                   ic < static_cast<std::int64_t>(hi); ic += kMC) {
                const std::int64_t mc =
                    std::min(kMC, static_cast<std::int64_t>(hi) - ic);
                pack_a(a, ic, pc, mc, kc, apack_local.data());
                run_block(apack_local.data(), bpack, c, ldc, ic, jc, mc, nc,
                          kc, merge_c, last_k, ep);
              }
            },
            static_cast<std::size_t>(kMC), static_cast<std::size_t>(kMR));
      } else {
        // Short-wide problems (conv layers): pack A once, parallelize over
        // kNR-wide column panels.  Tasks write disjoint C columns.
        const std::int64_t m_pad = ceil_to(m, kMR);
        if (apack_shared.size() < static_cast<std::size_t>(m_pad * kc)) {
          apack_shared.resize(static_cast<std::size_t>(m_pad * kc));
        }
        pack_a(a, 0, pc, m, kc, apack_shared.data());
        const float* apack = apack_shared.data();
        const std::size_t panels =
            static_cast<std::size_t>((nc + kNR - 1) / kNR);
        pool.parallel_for_chunked(
            0, panels,
            [&](std::size_t plo, std::size_t phi) {
              const std::int64_t j0 = static_cast<std::int64_t>(plo) * kNR;
              const std::int64_t j1 =
                  std::min(nc, static_cast<std::int64_t>(phi) * kNR);
              run_block(apack, bpack + j0 * kc, c, ldc, 0, jc + j0, m,
                        j1 - j0, kc, merge_c, last_k, ep);
            },
            /*grain=*/1);
      }
    }
  }
}

// Dispatch-path counters: which kernel served how many calls.  One
// relaxed add per GEMM — noise next to even the smallest kernel.
struct GemmMetrics {
  obs::Counter& small;
  obs::Counter& stream;
  obs::Counter& blocked;
  obs::Counter& degenerate;
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics m{
      obs::Registry::global().counter("gemm.small"),
      obs::Registry::global().counter("gemm.stream"),
      obs::Registry::global().counter("gemm.blocked"),
      obs::Registry::global().counter("gemm.degenerate"),
  };
  return m;
}

void gemm_dispatch(const ConstView& a, const ConstView& b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n,
                   bool accumulate, const Epilogue& ep) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    gemm_metrics().degenerate.add();
    // Degenerate reduction: C's addend is zero; epilogue still applies.
    if (!accumulate) {
      std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
    }
    if (ep.active()) {
      for (std::int64_t i = 0; i < m; ++i) {
        float* crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] = apply_epilogue(crow[j], i, j, ep);
        }
      }
    }
    return;
  }
  if (m * k * n < kSmallGemmLimit) {
    gemm_metrics().small.add();
    gemm_small(a, b, c, m, k, n, accumulate, ep);
  } else if (b.cs == 1 && (k <= kStreamMaxK || m <= kStreamMaxM)) {
    gemm_metrics().stream.add();
    gemm_stream(a, b, c, m, k, n, accumulate, ep);
  } else {
    gemm_metrics().blocked.add();
    gemm_blocked(a, b, c, m, k, n, accumulate, ep);
  }
}

}  // namespace

// --- raw-pointer entry points ----------------------------------------------

void gemm_nn_raw(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate,
                 const Epilogue& epilogue) {
  gemm_dispatch({a, k, 1}, {b, n, 1}, c, m, k, n, accumulate, epilogue);
}

void gemm_nt_raw(const float* a, const float* b_t, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate,
                 const Epilogue& epilogue) {
  // Logical B[p, j] = B_t[j, p]: a transposed view, absorbed by packing.
  gemm_dispatch({a, k, 1}, {b_t, 1, k}, c, m, k, n, accumulate, epilogue);
}

void gemm_tn_raw(const float* a_t, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate,
                 const Epilogue& epilogue) {
  // Logical A[i, p] = A_t[p, i].
  gemm_dispatch({a_t, 1, m}, {b, n, 1}, c, m, k, n, accumulate, epilogue);
}

// --- reference kernels (the seed's scalar loops) ----------------------------

void gemm_nn_ref(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    }
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // the seed's zero-skip branch
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt_ref(const float* a, const float* b_t, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b_t + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void gemm_tn_ref(const float* a_t, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a_t[p * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// --- Tensor entry points ----------------------------------------------------

void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             const Epilogue& epilogue) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_nn: shape mismatch " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()) + " -> " +
                                shape_to_string(c.shape()));
  }
  gemm_nn_raw(a.data(), b.data(), c.data(), m, k, n, accumulate, epilogue);
}

void gemm_nt(const Tensor& a, const Tensor& b_t, Tensor& c, bool accumulate,
             const Epilogue& epilogue) {
  check_matrix(a, "A");
  check_matrix(b_t, "B^T");
  check_matrix(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b_t.dim(0);
  if (b_t.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_nt: shape mismatch " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b_t.shape()) + "^T -> " +
                                shape_to_string(c.shape()));
  }
  gemm_nt_raw(a.data(), b_t.data(), c.data(), m, k, n, accumulate, epilogue);
}

void gemm_tn(const Tensor& a_t, const Tensor& b, Tensor& c, bool accumulate,
             const Epilogue& epilogue) {
  check_matrix(a_t, "A^T");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::int64_t k = a_t.dim(0), m = a_t.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_tn: shape mismatch " +
                                shape_to_string(a_t.shape()) + "^T x " +
                                shape_to_string(b.shape()) + " -> " +
                                shape_to_string(c.shape()));
  }
  gemm_tn_raw(a_t.data(), b.data(), c.data(), m, k, n, accumulate, epilogue);
}

}  // namespace tifl::tensor
