#include "tensor/gemm.h"

#include <cstring>
#include <stdexcept>

#include "util/thread_pool.h"

namespace tifl::tensor {

namespace {

void check_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name +
                                " must be rank-2, got " +
                                shape_to_string(t.shape()));
  }
}

// Rows of C handled per task; small matrices run serially.
constexpr std::int64_t kRowGrain = 16;

void parallel_rows(std::int64_t m,
                   const std::function<void(std::int64_t, std::int64_t)>& fn) {
  util::global_pool().parallel_for_chunked(
      0, static_cast<std::size_t>(m),
      [&fn](std::size_t lo, std::size_t hi) {
        fn(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi));
      },
      static_cast<std::size_t>(kRowGrain));
}

}  // namespace

void gemm_nn_raw(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  parallel_rows(m, [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      float* crow = c + i * n;
      if (!accumulate) std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
      const float* arow = a + i * k;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;  // ReLU outputs are ~50% zero
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nt_raw(const float* a, const float* b_t, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[i,p] * Bt[j,p]: dot products of two contiguous rows.
  parallel_rows(m, [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b_t + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = accumulate ? crow[j] + acc : acc;
      }
    }
  });
}

void gemm_tn_raw(const float* a_t, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p At[p,i] * B[p,j].  Parallel over rows i of C; each task
  // strides down column i of A_t, streaming rows of B.
  parallel_rows(m, [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      float* crow = c + i * n;
      if (!accumulate) std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(n));
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = a_t[p * m + i];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_nn: shape mismatch " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()) + " -> " +
                                shape_to_string(c.shape()));
  }
  gemm_nn_raw(a.data(), b.data(), c.data(), m, k, n, accumulate);
}

void gemm_nt(const Tensor& a, const Tensor& b_t, Tensor& c, bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b_t, "B^T");
  check_matrix(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b_t.dim(0);
  if (b_t.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_nt: shape mismatch");
  }
  gemm_nt_raw(a.data(), b_t.data(), c.data(), m, k, n, accumulate);
}

void gemm_tn(const Tensor& a_t, const Tensor& b, Tensor& c, bool accumulate) {
  check_matrix(a_t, "A^T");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::int64_t k = a_t.dim(0), m = a_t.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_tn: shape mismatch");
  }
  gemm_tn_raw(a_t.data(), b.data(), c.data(), m, k, n, accumulate);
}

}  // namespace tifl::tensor
