// Weight initializers.  He-normal for ReLU stacks (all paper models use
// ReLU activations), Glorot-uniform kept for completeness/tests.
#pragma once

#include <cmath>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace tifl::tensor {

// He (Kaiming) normal: stddev = sqrt(2 / fan_in).
inline Tensor he_normal(Shape shape, std::int64_t fan_in, util::Rng& rng) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  return Tensor::randn(std::move(shape), rng, stddev);
}

// Glorot (Xavier) uniform: limit = sqrt(6 / (fan_in + fan_out)).
inline Tensor glorot_uniform(Shape shape, std::int64_t fan_in,
                             std::int64_t fan_out, util::Rng& rng) {
  const float limit = std::sqrt(
      6.0f / static_cast<float>((fan_in + fan_out) > 0 ? fan_in + fan_out : 1));
  return Tensor::rand_uniform(std::move(shape), rng, -limit, limit);
}

}  // namespace tifl::tensor
