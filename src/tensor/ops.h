// Elementwise and reduction kernels used by layers, losses and FedAvg.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace tifl::tensor {

// y += alpha * x (shapes must match); the FedAvg weighted-sum primitive.
void axpy(float alpha, const Tensor& x, Tensor& y);
// y = alpha * y
void scale(Tensor& y, float alpha);
// out = a + b elementwise (shape-checked).
void add(const Tensor& a, const Tensor& b, Tensor& out);
// Add row vector `bias` [N] to every row of `m` [M,N].
void add_row_bias(Tensor& m, const Tensor& bias);

// ReLU forward: out = max(x, 0).  In-place allowed (&out == &x).
void relu_forward(const Tensor& x, Tensor& out);
// ReLU backward: dx = dy where x > 0 else 0.
void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);
// ReLU backward from the *output*: dx = dy where y > 0 else 0.  Exact for
// ReLU (y > 0 iff x > 0), letting fused layers mask with their cached
// activation instead of keeping the pre-activation around.
void relu_backward_from_output(const Tensor& y, const Tensor& dy, Tensor& dx);

// Row-wise softmax of logits [M,N] -> probabilities [M,N].
// Max-subtraction for numerical stability.
void softmax_rows(const Tensor& logits, Tensor& probs);

// Row-wise argmax of an [M,N] matrix.
std::vector<std::int64_t> argmax_rows(const Tensor& m);

// Sum over rows of m [M,N] -> out [N] (bias gradient).
void column_sums(const Tensor& m, Tensor& out);

// Squared L2 norm of all entries.
double squared_norm(const Tensor& t);

// Maximum absolute difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace tifl::tensor
