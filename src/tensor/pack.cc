#include "tensor/pack.h"

#include <algorithm>
#include <cstring>

namespace tifl::tensor {

void pack_a(const ConstView& a, std::int64_t row0, std::int64_t col0,
            std::int64_t mc, std::int64_t kc, float* apack) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t mr = std::min(kMR, mc - ir);
    float* panel = apack + ir * kc;  // ceil-panel stride is kc * kMR
    if (a.cs == 1) {
      // Row-major source: walk each row once, scattering into the panel.
      for (std::int64_t i = 0; i < mr; ++i) {
        const float* src = a.row(row0 + ir + i) + col0;
        float* dst = panel + i;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kMR] = src[p];
      }
    } else {
      // Transposed source (rs == 1): a panel column is contiguous memory.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a.data + (row0 + ir) * a.rs + (col0 + p) * a.cs;
        float* dst = panel + p * kMR;
        for (std::int64_t i = 0; i < mr; ++i) dst[i] = src[i * a.rs];
      }
    }
    if (mr < kMR) {
      for (std::int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * kMR;
        for (std::int64_t i = mr; i < kMR; ++i) dst[i] = 0.0f;
      }
    }
  }
}

void pack_b(const ConstView& b, std::int64_t row0, std::int64_t col0,
            std::int64_t kc, std::int64_t nc, float* bpack) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jr);
    float* panel = bpack + jr * kc;  // ceil-panel stride is kc * kNR
    if (b.cs == 1) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b.row(row0 + p) + col0 + jr;
        float* dst = panel + p * kNR;
        std::memcpy(dst, src, sizeof(float) * static_cast<std::size_t>(nr));
        for (std::int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    } else {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b.data + (row0 + p) * b.rs + (col0 + jr) * b.cs;
        float* dst = panel + p * kNR;
        for (std::int64_t j = 0; j < nr; ++j) dst[j] = src[j * b.cs];
        for (std::int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
  }
}

}  // namespace tifl::tensor
