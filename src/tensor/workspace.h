// Grow-only scratch arena for layer-persistent buffers.
//
// Hot-path layers (conv2d's im2col slabs, GEMM staging buffers) need large
// scratch that used to be re-allocated on every forward/backward call.  A
// Workspace owns a small set of slot-indexed buffers that grow to the
// high-water mark of their slot and are then reused verbatim, so steady-state
// training performs zero heap allocation for scratch.  Buffers are returned
// uninitialized; callers overwrite them fully.
//
// Not thread-safe: a Workspace belongs to exactly one layer instance, and a
// layer is driven by one training task at a time.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tifl::tensor {

class Workspace {
 public:
  // Returns a buffer of at least `count` floats for `slot`, reusing (and
  // never shrinking) the slot's previous allocation.  Contents are
  // unspecified unless the caller wrote them through an earlier acquire of
  // the same slot with no intervening growth.
  std::span<float> acquire(std::size_t slot, std::size_t count);

  // Total floats currently owned across all slots — a stable value after
  // warm-up, which tests use to prove the steady state allocates nothing.
  std::size_t capacity_floats() const noexcept;

  std::size_t slot_count() const noexcept { return slots_.size(); }

 private:
  std::vector<std::vector<float>> slots_;
};

}  // namespace tifl::tensor
