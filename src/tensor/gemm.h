// General matrix multiply kernels for the NN layers.
//
// Three layout variants cover every use in forward/backward passes without
// ever materializing a transpose:
//   gemm_nn : C[M,N] += A[M,K]   * B[K,N]     (dense forward)
//   gemm_nt : C[M,N] += A[M,K]   * B[N,K]^T   (dX = dY * W^T)
//   gemm_tn : C[M,N] += A[K,M]^T * B[K,N]     (dW = X^T * dY)
//
// All kernels parallelize over rows of C through the global thread pool
// and use an i-k-j loop order so the inner loop streams both B and C
// rows — the standard cache-friendly ordering for row-major data.  Each
// output element is written by exactly one task, so the parallel result
// is bitwise identical to the serial one.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace tifl::tensor {

// When `accumulate` is false, C is overwritten; otherwise added to.
void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);
void gemm_nt(const Tensor& a, const Tensor& b_t, Tensor& c,
             bool accumulate = false);
void gemm_tn(const Tensor& a_t, const Tensor& b, Tensor& c,
             bool accumulate = false);

// Raw-pointer core used by conv2d's im2col path (matrices that are views
// into scratch buffers rather than Tensors).
void gemm_nn_raw(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate);
void gemm_nt_raw(const float* a, const float* b_t, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate);
void gemm_tn_raw(const float* a_t, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate);

}  // namespace tifl::tensor
