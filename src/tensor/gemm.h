// General matrix multiply kernels for the NN layers.
//
// Three layout variants cover every use in forward/backward passes without
// ever materializing a transpose:
//   gemm_nn : C[M,N] += A[M,K]   * B[K,N]     (dense/conv forward)
//   gemm_nt : C[M,N] += A[M,K]   * B[N,K]^T   (dX = dY * W^T, conv dW)
//   gemm_tn : C[M,N] += A[K,M]^T * B[K,N]     (dW = X^T * dY, conv dcol)
//
// All three are thin wrappers over one cache-blocked, packed core (see
// pack.h for the blocking scheme): operands are repacked into contiguous
// zero-padded panels and streamed through a register-tiled kMR x kNR
// microkernel with branch-free, auto-vectorizable inner loops.  Tiny
// problems below kSmallGemmLimit skip packing and run a naive loop nest.
//
// Threading: the core tiles rows (or, for short-wide problems, column
// panels) of C across the global thread pool when called from the top
// level; when the caller is already a pool worker — per-client training in
// the FL engines — dispatch degrades to the serial blocked kernel, which
// is the fast path there.  Each output element is written by exactly one
// task and its K-reduction order is fixed by the constant kKC blocking, so
// results are bit-identical across pool sizes (and to the serial run).
//
// Epilogue fusion: forward paths can fold the bias add and a ReLU into the
// final K-block's writeback instead of making separate passes over C.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace tifl::tensor {

// Optional fused writeback applied to C after the last K block.  Only
// meaningful when the GEMM overwrites or finalizes C (forward passes);
// gradient accumulation calls leave it empty.
struct Epilogue {
  const float* bias_m = nullptr;  // length M: added to every element of row i
  const float* bias_n = nullptr;  // length N: added to every element of col j
  bool relu = false;              // clamp negatives after the bias add

  bool active() const noexcept {
    return bias_m != nullptr || bias_n != nullptr || relu;
  }
};

// When `accumulate` is false, C is overwritten; otherwise added to.
void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false, const Epilogue& epilogue = {});
void gemm_nt(const Tensor& a, const Tensor& b_t, Tensor& c,
             bool accumulate = false, const Epilogue& epilogue = {});
void gemm_tn(const Tensor& a_t, const Tensor& b, Tensor& c,
             bool accumulate = false, const Epilogue& epilogue = {});

// Raw-pointer cores used by conv2d's batch im2col path (matrices that are
// views into workspace slabs rather than Tensors).
void gemm_nn_raw(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate,
                 const Epilogue& epilogue = {});
void gemm_nt_raw(const float* a, const float* b_t, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate,
                 const Epilogue& epilogue = {});
void gemm_tn_raw(const float* a_t, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate,
                 const Epilogue& epilogue = {});

// Reference kernels: the seed's scalar loop nests, kept for equivalence
// tests and as the baseline the bench_gemm speedup numbers are measured
// against.  Serial, unblocked, unpacked.
void gemm_nn_ref(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate);
void gemm_nt_ref(const float* a, const float* b_t, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate);
void gemm_tn_ref(const float* a_t, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate);

}  // namespace tifl::tensor
