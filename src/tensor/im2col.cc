#include "tensor/im2col.h"

namespace tifl::tensor {

void im2col(const float* image, const ConvGeometry& g, float* columns) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t col_cols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* plane = image + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = columns + row * col_cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride - g.pad + kh;
          const bool y_ok = in_y >= 0 && in_y < g.height;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * g.stride - g.pad + kw;
            const bool ok = y_ok && in_x >= 0 && in_x < g.width;
            out_row[y * ow + x] = ok ? plane[in_y * g.width + in_x] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeometry& g, float* image_grad) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t col_cols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* plane = image_grad + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in_row = columns + row * col_cols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride - g.pad + kh;
          if (in_y < 0 || in_y >= g.height) continue;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t in_x = x * g.stride - g.pad + kw;
            if (in_x < 0 || in_x >= g.width) continue;
            plane[in_y * g.width + in_x] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace tifl::tensor
