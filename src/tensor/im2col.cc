#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "util/thread_pool.h"

namespace tifl::tensor {

namespace {

// Valid output-x range [x_lo, x_hi) for kernel column kw: the x values whose
// input column x*stride - pad + kw lands inside [0, width).  Hoisting this
// out of the pixel loop makes the interior branch-free.
struct XRange {
  std::int64_t lo;
  std::int64_t hi;
};

XRange valid_x(const ConvGeometry& g, std::int64_t kw) {
  const std::int64_t lo_num = g.pad - kw;  // first in-bounds x*stride
  const std::int64_t lo =
      lo_num > 0 ? (lo_num + g.stride - 1) / g.stride : 0;
  const std::int64_t hi_num = g.width + g.pad - kw;  // first out-of-bounds
  const std::int64_t hi =
      std::min(g.out_w(), (hi_num + g.stride - 1) / g.stride);
  return {std::min(lo, g.out_w()), std::max<std::int64_t>(hi, 0)};
}

}  // namespace

void im2col(const float* image, const ConvGeometry& g, float* columns,
            std::int64_t col_stride) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  if (col_stride == 0) col_stride = g.col_cols();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* plane = image + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = columns + row * col_stride;
        const XRange xr = valid_x(g, kw);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride - g.pad + kh;
          float* out = out_row + y * ow;
          if (in_y < 0 || in_y >= g.height) {
            std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          // Keep the -pad+kw shift inside the index: x >= xr.lo keeps it
          // nonnegative, and the row base itself always stays in bounds.
          const float* in = plane + in_y * g.width;
          const std::int64_t shift = kw - g.pad;
          for (std::int64_t x = 0; x < xr.lo; ++x) out[x] = 0.0f;
          if (g.stride == 1) {
            if (xr.hi > xr.lo) {
              std::memcpy(out + xr.lo, in + xr.lo + shift,
                          sizeof(float) *
                              static_cast<std::size_t>(xr.hi - xr.lo));
            }
          } else {
            for (std::int64_t x = xr.lo; x < xr.hi; ++x) {
              out[x] = in[x * g.stride + shift];
            }
          }
          for (std::int64_t x = xr.hi; x < ow; ++x) out[x] = 0.0f;
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeometry& g, float* image_grad,
            std::int64_t col_stride) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  if (col_stride == 0) col_stride = g.col_cols();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* plane = image_grad + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in_row = columns + row * col_stride;
        const XRange xr = valid_x(g, kw);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t in_y = y * g.stride - g.pad + kh;
          if (in_y < 0 || in_y >= g.height) continue;
          float* out = plane + in_y * g.width;
          const std::int64_t shift = kw - g.pad;
          const float* in = in_row + y * ow;
          if (g.stride == 1) {
            for (std::int64_t x = xr.lo; x < xr.hi; ++x) {
              out[x + shift] += in[x];
            }
          } else {
            for (std::int64_t x = xr.lo; x < xr.hi; ++x) {
              out[x * g.stride + shift] += in[x];
            }
          }
        }
      }
    }
  }
}

void im2col_batch(const float* images, std::int64_t batch,
                  const ConvGeometry& g, float* columns) {
  const std::int64_t spatial = g.col_cols();
  const std::int64_t slab_stride = batch * spatial;
  const std::int64_t image_size = g.image_size();
  util::global_pool().parallel_for(
      0, static_cast<std::size_t>(batch),
      [&](std::size_t b) {
        im2col(images + static_cast<std::int64_t>(b) * image_size, g,
               columns + static_cast<std::int64_t>(b) * spatial, slab_stride);
      });
}

void col2im_batch(const float* columns, std::int64_t batch,
                  const ConvGeometry& g, float* images_grad) {
  const std::int64_t spatial = g.col_cols();
  const std::int64_t slab_stride = batch * spatial;
  const std::int64_t image_size = g.image_size();
  util::global_pool().parallel_for(
      0, static_cast<std::size_t>(batch),
      [&](std::size_t b) {
        col2im(columns + static_cast<std::int64_t>(b) * spatial, g,
               images_grad + static_cast<std::int64_t>(b) * image_size,
               slab_stride);
      });
}

}  // namespace tifl::tensor
