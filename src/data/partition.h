// Client data partitioners — the paper's heterogeneity knobs (§3.3, §5.1).
//
// A Partition maps client id -> indices into a shared Dataset.  Four
// schemes cover every experimental setup:
//   * iid            — uniform random split (the datacenter baseline);
//   * shards         — sort-by-label shard assignment (McMahan et al.):
//                      each client ends up with at most `shards_per_client`
//                      classes; used for MNIST/FMNIST non-IID(2);
//   * classes        — exactly k classes per client with equal images per
//                      class (Zhao et al.), the paper's non-IID(2/5/10);
//   * quantity       — group g of clients owns fraction f_g of the data
//                      (the 10/15/20/25/30 % split of §5.1);
//   * leaf           — LEAF-style natural heterogeneity: lognormal sample
//                      counts + Dirichlet class mixtures per client, used
//                      for the FEMNIST experiments (182 clients).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace tifl::data {

using Partition = std::vector<std::vector<std::size_t>>;

Partition partition_iid(const Dataset& dataset, std::size_t num_clients,
                        util::Rng& rng);

Partition partition_shards(const Dataset& dataset, std::size_t num_clients,
                           std::size_t shards_per_client, util::Rng& rng);

Partition partition_classes(const Dataset& dataset, std::size_t num_clients,
                            std::size_t classes_per_client, util::Rng& rng);

// Combined non-IID + quantity heterogeneity (the paper's "Combine"
// scenarios): each client holds at most `classes_per_client` classes, and
// within each class samples are dealt proportionally to
// `client_weights[c]` instead of equally.  Weights need not be
// normalized.  With equal weights this reduces to `partition_classes`.
Partition partition_classes_weighted(const Dataset& dataset,
                                     std::size_t num_clients,
                                     std::size_t classes_per_client,
                                     const std::vector<double>& client_weights,
                                     util::Rng& rng);

// Class-skewed variant where a client's class draw can be *correlated
// with its group* (device cohort): class k's "home group" is
// k * G / num_classes, and a client in group g draws each of its
// `classes_per_client` classes with weight (1 + affinity) for home
// classes and 1 otherwise.  affinity = 0 gives independent uniform class
// draws; large affinity concentrates each class's data inside one group.
// This models federations where data content correlates with device type
// — the regime in which ignoring a tier forfeits classes, not just
// samples (§5.2.4's fast/fast3 degradation), and in which the adaptive
// policy's per-tier accuracy signal is informative.
struct ClassSkewOptions {
  std::size_t classes_per_client = 2;
  std::vector<double> client_weights;       // empty = equal quantities
  std::vector<std::size_t> client_groups;   // empty = single group
  double group_class_affinity = 0.0;
};
Partition partition_classes_skewed(const Dataset& dataset,
                                   std::size_t num_clients,
                                   const ClassSkewOptions& options,
                                   util::Rng& rng);

// `group_fractions` must sum to ~1; clients are divided evenly into
// `group_fractions.size()` groups, group g sharing fraction f_g of the
// samples equally among its members.  Samples are drawn IID so only the
// *quantity* is heterogeneous.
Partition partition_quantity(const Dataset& dataset, std::size_t num_clients,
                             const std::vector<double>& group_fractions,
                             util::Rng& rng);

struct LeafOptions {
  std::size_t num_clients = 182;  // LEAF FEMNIST at 0.05 sampling
  double count_sigma = 0.7;       // lognormal spread of per-client counts
  double dirichlet_alpha = 0.4;   // class-mixture concentration
  std::size_t min_samples = 8;
};
Partition partition_leaf(const Dataset& dataset, const LeafOptions& options,
                         util::Rng& rng);

// Held-out evaluation shards: for each client, draws test indices whose
// label histogram matches that client's training shard.  Tier test sets
// (Alg. 2's TestData_t) are unions of member clients' shards.
std::vector<std::vector<std::size_t>> matched_test_indices(
    const Dataset& train, const Partition& train_partition,
    const Dataset& test, util::Rng& rng);

// Sanity helper for tests: true when every sample index appears in at
// most one client shard and all indices are in range.
bool is_disjoint_partition(const Partition& partition, std::size_t dataset_size);

// --- lazy shards (million-client federations) -------------------------------
//
// A `Partition` stores every client's index vector — O(dataset) in total,
// plus per-client allocation overhead that dominates once the population
// dwarfs the dataset.  `LazyShards` replaces the stored vectors with a
// rule: one shared seeded permutation of the dataset (O(dataset), paid
// once) plus an O(1) per-client {offset, length} window into it, derived
// from the seed.  A million-client federation therefore costs the same
// memory as a ten-client one, and any client's index sequence can be
// (re)generated on demand while it is selected.

// Borrowed view of one client's shard: `length` indices read from the
// shared permutation starting at `offset`, wrapping around the end.  The
// permutation must outlive the view (it is owned by LazyShards).
class ShardView {
 public:
  ShardView() = default;
  ShardView(const std::vector<std::size_t>* permutation, std::size_t offset,
            std::size_t length);

  std::size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  std::size_t operator[](std::size_t i) const {
    const std::size_t n = permutation_->size();
    const std::size_t at = offset_ + i;
    return (*permutation_)[at < n ? at : at % n];
  }

  std::vector<std::size_t> materialize() const;

 private:
  const std::vector<std::size_t>* permutation_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

struct LazyShardOptions {
  // Samples per client before spread; 0 = dataset_size / num_clients
  // (floored, min 1).
  std::size_t samples_per_client = 0;
  // Deterministic per-client size jitter: shard sizes land in
  // [base*(1-spread), base*(1+spread)] (min 1), a pure function of
  // (seed, client).  Models unequal data quantities without storage.
  double spread = 0.0;
};

// IID-style lazy shards: client c's window starts at (c * base) % N, so
// consecutive clients tile the permutation.  While the population fits
// the dataset (num_clients * base <= N, spread 0) shards are exactly
// disjoint, matching a materialized IID split; beyond that the windows
// wrap and clients share samples — virtual over-subscription, the regime
// where a million simulated parties draw from one physical dataset.
class LazyShards {
 public:
  LazyShards(std::size_t dataset_size, std::size_t num_clients,
             const LazyShardOptions& options, std::uint64_t seed);

  std::size_t num_clients() const { return num_clients_; }
  std::size_t dataset_size() const { return permutation_.size(); }

  // O(1): pure function of (seed, client), no materialization.
  std::size_t shard_size(std::size_t client) const;
  ShardView shard(std::size_t client) const;

 private:
  std::vector<std::size_t> permutation_;  // the only O(dataset) state
  std::size_t num_clients_ = 0;
  std::size_t base_ = 0;
  std::size_t min_size_ = 0;
  std::size_t size_range_ = 0;  // shard_size in [min_size_, min_size_+range]
  std::uint64_t seed_ = 0;
};

}  // namespace tifl::data
