// Client data partitioners — the paper's heterogeneity knobs (§3.3, §5.1).
//
// A Partition maps client id -> indices into a shared Dataset.  Four
// schemes cover every experimental setup:
//   * iid            — uniform random split (the datacenter baseline);
//   * shards         — sort-by-label shard assignment (McMahan et al.):
//                      each client ends up with at most `shards_per_client`
//                      classes; used for MNIST/FMNIST non-IID(2);
//   * classes        — exactly k classes per client with equal images per
//                      class (Zhao et al.), the paper's non-IID(2/5/10);
//   * quantity       — group g of clients owns fraction f_g of the data
//                      (the 10/15/20/25/30 % split of §5.1);
//   * leaf           — LEAF-style natural heterogeneity: lognormal sample
//                      counts + Dirichlet class mixtures per client, used
//                      for the FEMNIST experiments (182 clients).
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace tifl::data {

using Partition = std::vector<std::vector<std::size_t>>;

Partition partition_iid(const Dataset& dataset, std::size_t num_clients,
                        util::Rng& rng);

Partition partition_shards(const Dataset& dataset, std::size_t num_clients,
                           std::size_t shards_per_client, util::Rng& rng);

Partition partition_classes(const Dataset& dataset, std::size_t num_clients,
                            std::size_t classes_per_client, util::Rng& rng);

// Combined non-IID + quantity heterogeneity (the paper's "Combine"
// scenarios): each client holds at most `classes_per_client` classes, and
// within each class samples are dealt proportionally to
// `client_weights[c]` instead of equally.  Weights need not be
// normalized.  With equal weights this reduces to `partition_classes`.
Partition partition_classes_weighted(const Dataset& dataset,
                                     std::size_t num_clients,
                                     std::size_t classes_per_client,
                                     const std::vector<double>& client_weights,
                                     util::Rng& rng);

// Class-skewed variant where a client's class draw can be *correlated
// with its group* (device cohort): class k's "home group" is
// k * G / num_classes, and a client in group g draws each of its
// `classes_per_client` classes with weight (1 + affinity) for home
// classes and 1 otherwise.  affinity = 0 gives independent uniform class
// draws; large affinity concentrates each class's data inside one group.
// This models federations where data content correlates with device type
// — the regime in which ignoring a tier forfeits classes, not just
// samples (§5.2.4's fast/fast3 degradation), and in which the adaptive
// policy's per-tier accuracy signal is informative.
struct ClassSkewOptions {
  std::size_t classes_per_client = 2;
  std::vector<double> client_weights;       // empty = equal quantities
  std::vector<std::size_t> client_groups;   // empty = single group
  double group_class_affinity = 0.0;
};
Partition partition_classes_skewed(const Dataset& dataset,
                                   std::size_t num_clients,
                                   const ClassSkewOptions& options,
                                   util::Rng& rng);

// `group_fractions` must sum to ~1; clients are divided evenly into
// `group_fractions.size()` groups, group g sharing fraction f_g of the
// samples equally among its members.  Samples are drawn IID so only the
// *quantity* is heterogeneous.
Partition partition_quantity(const Dataset& dataset, std::size_t num_clients,
                             const std::vector<double>& group_fractions,
                             util::Rng& rng);

struct LeafOptions {
  std::size_t num_clients = 182;  // LEAF FEMNIST at 0.05 sampling
  double count_sigma = 0.7;       // lognormal spread of per-client counts
  double dirichlet_alpha = 0.4;   // class-mixture concentration
  std::size_t min_samples = 8;
};
Partition partition_leaf(const Dataset& dataset, const LeafOptions& options,
                         util::Rng& rng);

// Held-out evaluation shards: for each client, draws test indices whose
// label histogram matches that client's training shard.  Tier test sets
// (Alg. 2's TestData_t) are unions of member clients' shards.
std::vector<std::vector<std::size_t>> matched_test_indices(
    const Dataset& train, const Partition& train_partition,
    const Dataset& test, util::Rng& rng);

// Sanity helper for tests: true when every sample index appears in at
// most one client shard and all indices are in range.
bool is_disjoint_partition(const Partition& partition, std::size_t dataset_size);

}  // namespace tifl::data
