// In-memory labelled dataset and index-based views.
//
// FL code never copies sample data around: clients hold index lists into a
// shared dataset (the "logical data pool" of the paper), and mini-batches
// are gathered on demand.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace tifl::data {

// Channels-first image extents; flat() is the feature dimension for MLPs.
struct ImageDims {
  std::int64_t channels = 1;
  std::int64_t height = 8;
  std::int64_t width = 8;
  std::int64_t flat() const { return channels * height * width; }
};

class Dataset {
 public:
  Dataset() = default;
  // features: [N, C, H, W]; labels: N entries in [0, num_classes).
  Dataset(tensor::Tensor features, std::vector<std::int32_t> labels,
          std::int64_t num_classes);

  std::size_t size() const { return labels_.size(); }
  std::int64_t num_classes() const { return num_classes_; }
  const tensor::Tensor& features() const { return features_; }
  const std::vector<std::int32_t>& labels() const { return labels_; }
  ImageDims dims() const { return dims_; }

  std::int32_t label(std::size_t i) const { return labels_.at(i); }

  // Gathers the given samples into a dense batch (x: [n, C, H, W]).
  struct Batch {
    tensor::Tensor x;
    std::vector<std::int32_t> y;
  };
  Batch gather(std::span<const std::size_t> indices) const;

  // Materializes a subset as a standalone dataset (used for test shards).
  Dataset subset(std::span<const std::size_t> indices) const;

  // Per-class index lists (lazily computable by callers; provided here
  // because every partitioner needs it).
  std::vector<std::vector<std::size_t>> indices_by_class() const;

  // Label histogram of an index subset, normalized to sum 1.
  std::vector<double> class_distribution(
      std::span<const std::size_t> indices) const;

  // In-place multiplicative brightness/contrast jitter on selected
  // samples; models per-writer feature skew (the paper's "feature
  // distribution is skewed" aspect of non-IID data).
  void apply_feature_skew(std::span<const std::size_t> indices, float gain,
                          float bias);

 private:
  tensor::Tensor features_;  // [N, C, H, W]
  std::vector<std::int32_t> labels_;
  std::int64_t num_classes_ = 0;
  ImageDims dims_;
};

}  // namespace tifl::data
