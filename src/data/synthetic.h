// Synthetic class-conditional image data standing in for MNIST,
// Fashion-MNIST, CIFAR-10 and FEMNIST (see DESIGN.md §2: the real datasets
// are not available offline, and TiFL's mechanisms observe only latency
// and per-tier accuracy — never pixels — so a class-structured synthetic
// source preserves every behaviour the paper measures).
//
// Generator: each class has a smooth random "prototype" image (low-res
// Gaussian grid, bilinearly upsampled); a sample is its class prototype
// plus white noise.  `class_sep / noise` controls task difficulty, chosen
// so models are clearly above chance within a few rounds yet far from
// saturating — leaving headroom for the heterogeneity effects (non-IID
// degradation, biased-tier degradation) the experiments must show.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace tifl::data {

struct SyntheticSpec {
  std::int64_t classes = 10;
  ImageDims dims{1, 8, 8};
  std::int64_t train_samples = 4000;
  std::int64_t test_samples = 1000;
  float class_sep = 1.0f;   // prototype amplitude
  float noise = 1.25f;      // per-sample noise stddev
  std::int64_t proto_grid = 4;  // prototype low-res grid (smoothness)
  std::uint64_t seed = 42;
};

struct SyntheticData {
  Dataset train;
  Dataset test;
};

// Draws train and test sets from the same class-conditional distribution
// with a balanced label marginal.
SyntheticData make_synthetic(const SyntheticSpec& spec);

// Presets mirroring the paper's four benchmarks.  `scale` in (0, 1]
// shrinks image geometry and sample counts together so default bench runs
// fit a 2-core CI box; scale = 1 reproduces the paper's geometry.
SyntheticSpec mnist_like_spec(double scale = 1.0, std::uint64_t seed = 42);
SyntheticSpec fmnist_like_spec(double scale = 1.0, std::uint64_t seed = 43);
SyntheticSpec cifar_like_spec(double scale = 1.0, std::uint64_t seed = 44);
SyntheticSpec femnist_like_spec(double scale = 1.0, std::uint64_t seed = 45);

}  // namespace tifl::data
