#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace tifl::data {

Dataset::Dataset(tensor::Tensor features, std::vector<std::int32_t> labels,
                 std::int64_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  if (features_.rank() != 4) {
    throw std::invalid_argument("Dataset: features must be [N, C, H, W]");
  }
  if (features_.dim(0) != static_cast<std::int64_t>(labels_.size())) {
    throw std::invalid_argument("Dataset: feature/label count mismatch");
  }
  for (std::int32_t label : labels_) {
    if (label < 0 || label >= num_classes_) {
      throw std::invalid_argument("Dataset: label out of range");
    }
  }
  dims_ = ImageDims{features_.dim(1), features_.dim(2), features_.dim(3)};
}

Dataset::Batch Dataset::gather(std::span<const std::size_t> indices) const {
  const std::int64_t sample_size = dims_.flat();
  tensor::Tensor x({static_cast<std::int64_t>(indices.size()), dims_.channels,
                    dims_.height, dims_.width});
  std::vector<std::int32_t> y;
  y.reserve(indices.size());
  float* out = x.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    if (idx >= size()) throw std::out_of_range("Dataset::gather index");
    std::memcpy(out + static_cast<std::int64_t>(i) * sample_size,
                features_.data() + static_cast<std::int64_t>(idx) * sample_size,
                static_cast<std::size_t>(sample_size) * sizeof(float));
    y.push_back(labels_[idx]);
  }
  return Batch{std::move(x), std::move(y)};
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Batch batch = gather(indices);
  return Dataset(std::move(batch.x), std::move(batch.y), num_classes_);
}

std::vector<std::vector<std::size_t>> Dataset::indices_by_class() const {
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    by_class[static_cast<std::size_t>(labels_[i])].push_back(i);
  }
  return by_class;
}

std::vector<double> Dataset::class_distribution(
    std::span<const std::size_t> indices) const {
  std::vector<double> dist(static_cast<std::size_t>(num_classes_), 0.0);
  if (indices.empty()) return dist;
  for (std::size_t idx : indices) {
    dist[static_cast<std::size_t>(labels_.at(idx))] += 1.0;
  }
  for (double& d : dist) d /= static_cast<double>(indices.size());
  return dist;
}

void Dataset::apply_feature_skew(std::span<const std::size_t> indices,
                                 float gain, float bias) {
  const std::int64_t sample_size = dims_.flat();
  for (std::size_t idx : indices) {
    float* sample =
        features_.data() + static_cast<std::int64_t>(idx) * sample_size;
    for (std::int64_t j = 0; j < sample_size; ++j) {
      sample[j] = sample[j] * gain + bias;
    }
  }
}

}  // namespace tifl::data
