#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tifl::data {

namespace {

// Smooth random field: values on a coarse grid, bilinearly interpolated to
// the target resolution.  Produces MNIST-digit-scale spatial structure
// instead of white noise, so convolutions have something to learn.
std::vector<float> smooth_field(std::int64_t height, std::int64_t width,
                                std::int64_t grid, float amplitude,
                                util::Rng& rng) {
  grid = std::max<std::int64_t>(2, grid);
  std::vector<float> coarse(static_cast<std::size_t>(grid * grid));
  for (float& v : coarse) v = static_cast<float>(rng.normal()) * amplitude;

  std::vector<float> field(static_cast<std::size_t>(height * width));
  for (std::int64_t y = 0; y < height; ++y) {
    const float gy = static_cast<float>(y) / static_cast<float>(height - 1 > 0 ? height - 1 : 1) *
                     static_cast<float>(grid - 1);
    const std::int64_t y0 = std::min<std::int64_t>(grid - 2, static_cast<std::int64_t>(gy));
    const float fy = gy - static_cast<float>(y0);
    for (std::int64_t x = 0; x < width; ++x) {
      const float gx = static_cast<float>(x) / static_cast<float>(width - 1 > 0 ? width - 1 : 1) *
                       static_cast<float>(grid - 1);
      const std::int64_t x0 = std::min<std::int64_t>(grid - 2, static_cast<std::int64_t>(gx));
      const float fx = gx - static_cast<float>(x0);
      const float v00 = coarse[static_cast<std::size_t>(y0 * grid + x0)];
      const float v01 = coarse[static_cast<std::size_t>(y0 * grid + x0 + 1)];
      const float v10 = coarse[static_cast<std::size_t>((y0 + 1) * grid + x0)];
      const float v11 =
          coarse[static_cast<std::size_t>((y0 + 1) * grid + x0 + 1)];
      const float top = v00 + fx * (v01 - v00);
      const float bottom = v10 + fx * (v11 - v10);
      field[static_cast<std::size_t>(y * width + x)] =
          top + fy * (bottom - top);
    }
  }
  return field;
}

Dataset draw_split(const std::vector<std::vector<float>>& prototypes,
                   const SyntheticSpec& spec, std::int64_t samples,
                   util::Rng& rng) {
  const std::int64_t sample_size = spec.dims.flat();
  tensor::Tensor features(
      {samples, spec.dims.channels, spec.dims.height, spec.dims.width});
  std::vector<std::int32_t> labels(static_cast<std::size_t>(samples));

  for (std::int64_t i = 0; i < samples; ++i) {
    // Balanced label marginal: round-robin over classes.
    const std::int32_t label = static_cast<std::int32_t>(i % spec.classes);
    labels[static_cast<std::size_t>(i)] = label;
    const std::vector<float>& proto =
        prototypes[static_cast<std::size_t>(label)];
    float* out = features.data() + i * sample_size;
    for (std::int64_t j = 0; j < sample_size; ++j) {
      out[j] = proto[static_cast<std::size_t>(j)] +
               static_cast<float>(rng.normal()) * spec.noise;
    }
  }
  return Dataset(std::move(features), std::move(labels), spec.classes);
}

}  // namespace

SyntheticData make_synthetic(const SyntheticSpec& spec) {
  if (spec.classes <= 1) {
    throw std::invalid_argument("make_synthetic: need at least 2 classes");
  }
  util::Rng rng(spec.seed);

  // One smooth prototype per (class, channel).
  const std::int64_t plane = spec.dims.height * spec.dims.width;
  std::vector<std::vector<float>> prototypes(
      static_cast<std::size_t>(spec.classes));
  for (auto& proto : prototypes) {
    proto.resize(static_cast<std::size_t>(spec.dims.flat()));
    for (std::int64_t c = 0; c < spec.dims.channels; ++c) {
      const std::vector<float> field =
          smooth_field(spec.dims.height, spec.dims.width, spec.proto_grid,
                       spec.class_sep, rng);
      std::copy(field.begin(), field.end(),
                proto.begin() + static_cast<std::int64_t>(c) * plane);
    }
  }

  util::Rng train_rng = rng.fork(1);
  util::Rng test_rng = rng.fork(2);
  SyntheticData out{
      draw_split(prototypes, spec, spec.train_samples, train_rng),
      draw_split(prototypes, spec, spec.test_samples, test_rng),
  };
  return out;
}

namespace {
std::int64_t scaled(std::int64_t value, double scale,
                    std::int64_t min_value) {
  return std::max<std::int64_t>(
      min_value, static_cast<std::int64_t>(std::llround(
                     static_cast<double>(value) * scale)));
}
}  // namespace

SyntheticSpec mnist_like_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.classes = 10;
  spec.dims = ImageDims{1, scaled(28, scale, 8), scaled(28, scale, 8)};
  // Sample counts shrink slower than pixel counts (scale^1.5 vs scale^2)
  // so scaled-down runs keep enough data per tier for the paper's
  // "biased policies still learn" behaviour.
  spec.train_samples = scaled(60000, std::pow(scale, 1.5), 2000);
  spec.test_samples = scaled(10000, std::pow(scale, 1.5), 1000);
  // MNIST saturates quickly in the paper (~0.95+); keep it easy but not
  // instant.
  spec.class_sep = 0.7f;
  spec.noise = 1.2f;
  spec.proto_grid = 5;
  spec.seed = seed;
  return spec;
}

SyntheticSpec fmnist_like_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec = mnist_like_spec(scale, seed);
  // Fashion-MNIST is harder than MNIST (~0.8 in the paper): closer
  // prototypes, more noise.
  spec.class_sep = 0.55f;
  spec.noise = 1.3f;
  return spec;
}

SyntheticSpec cifar_like_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.classes = 10;
  spec.dims = ImageDims{3, scaled(32, scale, 8), scaled(32, scale, 8)};
  spec.train_samples = scaled(50000, std::pow(scale, 1.5), 2000);
  spec.test_samples = scaled(10000, std::pow(scale, 1.5), 1000);
  // CIFAR has richer features and lower attainable accuracy (~0.75 in the
  // paper after 500 rounds): closer prototypes + strong noise.  Tuned so
  // a federated MLP lands near 0.77 on IID data with ordered non-IID
  // degradation — the regime all CIFAR figures operate in.
  spec.class_sep = 0.45f;
  spec.noise = 1.5f;
  spec.proto_grid = 4;
  spec.seed = seed;
  return spec;
}

SyntheticSpec femnist_like_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.classes = 62;
  spec.dims = ImageDims{1, scaled(28, scale, 8), scaled(28, scale, 8)};
  // LEAF FEMNIST at 0.05 sampling: ~36k samples over 182 writers.
  spec.train_samples = scaled(36000, std::pow(scale, 1.5), 4000);
  spec.test_samples = scaled(9000, std::pow(scale, 1.5), 1500);
  spec.class_sep = 1.0f;
  spec.noise = 1.0f;
  spec.proto_grid = 5;
  spec.seed = seed;
  return spec;
}

}  // namespace tifl::data
