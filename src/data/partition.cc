#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tifl::data {

namespace {

std::vector<std::size_t> shuffled_indices(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  rng.shuffle(indices);
  return indices;
}

void check_clients(std::size_t num_clients) {
  if (num_clients == 0) {
    throw std::invalid_argument("partition: need at least one client");
  }
}

}  // namespace

Partition partition_iid(const Dataset& dataset, std::size_t num_clients,
                        util::Rng& rng) {
  check_clients(num_clients);
  const std::vector<std::size_t> order = shuffled_indices(dataset.size(), rng);
  Partition partition(num_clients);
  for (std::size_t i = 0; i < order.size(); ++i) {
    partition[i % num_clients].push_back(order[i]);
  }
  return partition;
}

Partition partition_shards(const Dataset& dataset, std::size_t num_clients,
                           std::size_t shards_per_client, util::Rng& rng) {
  check_clients(num_clients);
  if (shards_per_client == 0) {
    throw std::invalid_argument("partition_shards: shards_per_client >= 1");
  }
  // Sort indices by label (stable within class for determinism), cut into
  // num_clients * shards_per_client contiguous shards, deal shards out
  // randomly, shards_per_client each.
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&dataset](std::size_t a, std::size_t b) {
                     return dataset.label(a) < dataset.label(b);
                   });

  const std::size_t total_shards = num_clients * shards_per_client;
  if (total_shards > dataset.size()) {
    throw std::invalid_argument("partition_shards: more shards than samples");
  }
  std::vector<std::size_t> shard_ids = shuffled_indices(total_shards, rng);

  Partition partition(num_clients);
  const std::size_t shard_size = dataset.size() / total_shards;
  for (std::size_t c = 0; c < num_clients; ++c) {
    for (std::size_t s = 0; s < shards_per_client; ++s) {
      const std::size_t shard = shard_ids[c * shards_per_client + s];
      const std::size_t begin = shard * shard_size;
      // Last shard absorbs the remainder so no sample is dropped.
      const std::size_t end =
          (shard == total_shards - 1) ? dataset.size() : begin + shard_size;
      for (std::size_t i = begin; i < end; ++i) {
        partition[c].push_back(order[i]);
      }
    }
  }
  return partition;
}

Partition partition_classes(const Dataset& dataset, std::size_t num_clients,
                            std::size_t classes_per_client, util::Rng& rng) {
  return partition_classes_weighted(dataset, num_clients, classes_per_client,
                                    std::vector<double>(num_clients, 1.0),
                                    rng);
}

namespace {

// Deals every class's samples to the clients holding that class,
// proportionally to the holders' weights (largest-remainder rounding so
// no sample is dropped).
Partition deal_classes_to_holders(
    const Dataset& dataset,
    const std::vector<std::vector<std::size_t>>& clients_of_class,
    std::size_t num_clients, const std::vector<double>& client_weights,
    util::Rng& rng) {
  Partition partition(num_clients);
  auto by_class = dataset.indices_by_class();
  for (std::size_t cls = 0; cls < clients_of_class.size(); ++cls) {
    const auto& holders = clients_of_class[cls];
    if (holders.empty()) continue;
    auto& samples = by_class[cls];
    rng.shuffle(samples);

    std::vector<double> weights;
    weights.reserve(holders.size());
    for (std::size_t holder : holders) {
      weights.push_back(std::max(0.0, client_weights[holder]));
    }
    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0) {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        partition[holders[i % holders.size()]].push_back(samples[i]);
      }
      continue;
    }
    // Quota per holder: weight share of the class, remainder dealt to the
    // largest fractional parts so every sample is assigned.
    std::size_t assigned = 0;
    std::vector<std::size_t> quota(holders.size(), 0);
    std::vector<std::pair<double, std::size_t>> fractions;
    for (std::size_t h = 0; h < holders.size(); ++h) {
      const double exact =
          weights[h] / total * static_cast<double>(samples.size());
      quota[h] = static_cast<std::size_t>(exact);
      assigned += quota[h];
      fractions.emplace_back(exact - static_cast<double>(quota[h]), h);
    }
    std::sort(fractions.rbegin(), fractions.rend());
    for (std::size_t r = 0; assigned < samples.size(); ++r, ++assigned) {
      ++quota[fractions[r % fractions.size()].second];
    }
    std::size_t offset = 0;
    for (std::size_t h = 0; h < holders.size(); ++h) {
      for (std::size_t i = 0; i < quota[h]; ++i) {
        partition[holders[h]].push_back(samples[offset++]);
      }
    }
  }
  return partition;
}

}  // namespace

Partition partition_classes_weighted(const Dataset& dataset,
                                     std::size_t num_clients,
                                     std::size_t classes_per_client,
                                     const std::vector<double>& client_weights,
                                     util::Rng& rng) {
  check_clients(num_clients);
  const std::size_t num_classes =
      static_cast<std::size_t>(dataset.num_classes());
  if (classes_per_client == 0 || classes_per_client > num_classes) {
    throw std::invalid_argument(
        "partition_classes: classes_per_client out of range");
  }
  if (client_weights.size() != num_clients) {
    throw std::invalid_argument(
        "partition_classes_weighted: weight count mismatch");
  }

  // Assign each client `classes_per_client` classes round-robin over a
  // shuffled class order so every class is claimed by a near-equal number
  // of clients (the "equal number of images from k classes" setup of
  // Zhao et al. that §3.3 follows).
  std::vector<std::size_t> class_order = shuffled_indices(num_classes, rng);
  std::vector<std::vector<std::size_t>> clients_of_class(num_classes);
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    for (std::size_t k = 0; k < classes_per_client; ++k) {
      const std::size_t cls = class_order[cursor % num_classes];
      clients_of_class[cls].push_back(c);
      ++cursor;
    }
  }
  return deal_classes_to_holders(dataset, clients_of_class, num_clients,
                                 client_weights, rng);
}

Partition partition_classes_skewed(const Dataset& dataset,
                                   std::size_t num_clients,
                                   const ClassSkewOptions& options,
                                   util::Rng& rng) {
  check_clients(num_clients);
  const std::size_t num_classes =
      static_cast<std::size_t>(dataset.num_classes());
  if (options.classes_per_client == 0 ||
      options.classes_per_client > num_classes) {
    throw std::invalid_argument(
        "partition_classes_skewed: classes_per_client out of range");
  }
  if (!options.client_weights.empty() &&
      options.client_weights.size() != num_clients) {
    throw std::invalid_argument(
        "partition_classes_skewed: weight count mismatch");
  }
  if (!options.client_groups.empty() &&
      options.client_groups.size() != num_clients) {
    throw std::invalid_argument(
        "partition_classes_skewed: group count mismatch");
  }
  if (options.group_class_affinity < 0.0) {
    throw std::invalid_argument(
        "partition_classes_skewed: affinity must be >= 0");
  }

  std::size_t num_groups = 1;
  for (std::size_t g : options.client_groups) {
    num_groups = std::max(num_groups, g + 1);
  }

  // Per-client class draws: weight (1 + affinity) for classes whose home
  // group matches the client's group, 1 otherwise; without replacement.
  std::vector<std::vector<std::size_t>> clients_of_class(num_classes);
  for (std::size_t c = 0; c < num_clients; ++c) {
    const std::size_t group =
        options.client_groups.empty() ? 0 : options.client_groups[c];
    std::vector<double> weights(num_classes, 1.0);
    for (std::size_t k = 0; k < num_classes; ++k) {
      const std::size_t home = k * num_groups / num_classes;
      if (home == group) weights[k] += options.group_class_affinity;
    }
    for (std::size_t draw = 0; draw < options.classes_per_client; ++draw) {
      const std::size_t cls = rng.weighted_index(weights);
      weights[cls] = 0.0;  // without replacement
      clients_of_class[cls].push_back(c);
    }
  }

  const std::vector<double> client_weights =
      options.client_weights.empty()
          ? std::vector<double>(num_clients, 1.0)
          : options.client_weights;
  return deal_classes_to_holders(dataset, clients_of_class, num_clients,
                                 client_weights, rng);
}

Partition partition_quantity(const Dataset& dataset, std::size_t num_clients,
                             const std::vector<double>& group_fractions,
                             util::Rng& rng) {
  check_clients(num_clients);
  if (group_fractions.empty()) {
    throw std::invalid_argument("partition_quantity: need group fractions");
  }
  if (num_clients % group_fractions.size() != 0) {
    throw std::invalid_argument(
        "partition_quantity: num_clients must divide evenly into groups");
  }
  const double total_fraction =
      std::accumulate(group_fractions.begin(), group_fractions.end(), 0.0);
  if (total_fraction <= 0.0) {
    throw std::invalid_argument("partition_quantity: fractions must be > 0");
  }

  const std::size_t clients_per_group = num_clients / group_fractions.size();
  const std::vector<std::size_t> order = shuffled_indices(dataset.size(), rng);

  Partition partition(num_clients);
  std::size_t offset = 0;
  for (std::size_t g = 0; g < group_fractions.size(); ++g) {
    const double group_share = group_fractions[g] / total_fraction;
    const std::size_t group_samples = static_cast<std::size_t>(
        std::llround(group_share * static_cast<double>(dataset.size())));
    const std::size_t per_client = group_samples / clients_per_group;
    for (std::size_t c = 0; c < clients_per_group; ++c) {
      const std::size_t client = g * clients_per_group + c;
      for (std::size_t i = 0; i < per_client && offset < order.size(); ++i) {
        partition[client].push_back(order[offset++]);
      }
    }
  }
  return partition;
}

Partition partition_leaf(const Dataset& dataset, const LeafOptions& options,
                         util::Rng& rng) {
  check_clients(options.num_clients);
  const std::size_t num_classes =
      static_cast<std::size_t>(dataset.num_classes());

  // 1. Per-client sample budgets: lognormal weights normalized to the
  //    dataset size (LEAF's natural long tail of writer activity).
  std::vector<double> weights(options.num_clients);
  for (double& w : weights) w = rng.lognormal(0.0, options.count_sigma);
  const double weight_total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::size_t> budgets(options.num_clients);
  for (std::size_t c = 0; c < options.num_clients; ++c) {
    budgets[c] = std::max(
        options.min_samples,
        static_cast<std::size_t>(std::llround(
            weights[c] / weight_total * static_cast<double>(dataset.size()))));
  }

  // 2. Per-client Dirichlet class mixture, sampled without replacement
  //    from the per-class pools until the budget (or the pools) run out.
  auto by_class = dataset.indices_by_class();
  for (auto& pool : by_class) rng.shuffle(pool);
  std::vector<std::size_t> pool_cursor(num_classes, 0);

  Partition partition(options.num_clients);
  for (std::size_t c = 0; c < options.num_clients; ++c) {
    const std::vector<double> mix =
        rng.dirichlet(options.dirichlet_alpha, num_classes);
    for (std::size_t draw = 0; draw < budgets[c]; ++draw) {
      // Re-weight by remaining pool sizes so exhausted classes drop out.
      std::vector<double> effective(num_classes);
      bool any = false;
      for (std::size_t k = 0; k < num_classes; ++k) {
        const std::size_t remaining = by_class[k].size() - pool_cursor[k];
        effective[k] = remaining > 0 ? mix[k] : 0.0;
        any = any || remaining > 0;
      }
      if (!any) break;
      const std::size_t cls = rng.weighted_index(effective);
      partition[c].push_back(by_class[cls][pool_cursor[cls]++]);
    }
  }
  return partition;
}

std::vector<std::vector<std::size_t>> matched_test_indices(
    const Dataset& train, const Partition& train_partition,
    const Dataset& test, util::Rng& rng) {
  const std::size_t num_classes =
      static_cast<std::size_t>(test.num_classes());
  auto test_by_class = test.indices_by_class();
  for (auto& pool : test_by_class) rng.shuffle(pool);

  std::vector<std::vector<std::size_t>> out(train_partition.size());
  for (std::size_t c = 0; c < train_partition.size(); ++c) {
    const std::vector<double> dist =
        train.class_distribution(train_partition[c]);
    // Test shard sized proportional to the train shard (1:5 ratio, at
    // least a handful so tier accuracies are not pure noise), sampled
    // WITH replacement per class pool — shards of different clients may
    // overlap, which is fine for evaluation.
    const std::size_t shard_size =
        std::max<std::size_t>(10, train_partition[c].size() / 5);
    for (std::size_t i = 0; i < shard_size; ++i) {
      const std::size_t cls = rng.weighted_index(dist);
      const auto& pool = test_by_class[cls % num_classes];
      if (pool.empty()) continue;
      out[c].push_back(pool[rng.uniform_index(pool.size())]);
    }
  }
  return out;
}

ShardView::ShardView(const std::vector<std::size_t>* permutation,
                     std::size_t offset, std::size_t length)
    : permutation_(permutation), offset_(offset), length_(length) {
  if (permutation_ == nullptr || permutation_->empty()) {
    throw std::invalid_argument("ShardView: null or empty permutation");
  }
  if (offset_ >= permutation_->size()) {
    throw std::invalid_argument("ShardView: offset out of range");
  }
}

std::vector<std::size_t> ShardView::materialize() const {
  std::vector<std::size_t> indices;
  indices.reserve(length_);
  for (std::size_t i = 0; i < length_; ++i) indices.push_back((*this)[i]);
  return indices;
}

LazyShards::LazyShards(std::size_t dataset_size, std::size_t num_clients,
                       const LazyShardOptions& options, std::uint64_t seed)
    : num_clients_(num_clients), seed_(seed) {
  check_clients(num_clients);
  if (dataset_size == 0) {
    throw std::invalid_argument("LazyShards: empty dataset");
  }
  if (std::isnan(options.spread) || options.spread < 0.0 ||
      options.spread > 1.0) {
    throw std::invalid_argument("LazyShards: spread must be in [0, 1]");
  }
  base_ = options.samples_per_client > 0
              ? options.samples_per_client
              : std::max<std::size_t>(1, dataset_size / num_clients);
  const double lo = static_cast<double>(base_) * (1.0 - options.spread);
  const double hi = static_cast<double>(base_) * (1.0 + options.spread);
  min_size_ = std::max<std::size_t>(1, static_cast<std::size_t>(lo));
  size_range_ = static_cast<std::size_t>(hi) - min_size_;

  util::Rng rng(util::mix_seed(seed, 0x5AD5));
  permutation_.resize(dataset_size);
  std::iota(permutation_.begin(), permutation_.end(), std::size_t{0});
  rng.shuffle(permutation_);
}

std::size_t LazyShards::shard_size(std::size_t client) const {
  if (client >= num_clients_) {
    throw std::out_of_range("LazyShards: client out of range");
  }
  if (size_range_ == 0) return min_size_;
  return min_size_ + util::mix_seed(seed_, client, 0x517E) % (size_range_ + 1);
}

ShardView LazyShards::shard(std::size_t client) const {
  return ShardView(&permutation_, client * base_ % permutation_.size(),
                   shard_size(client));
}

bool is_disjoint_partition(const Partition& partition,
                           std::size_t dataset_size) {
  std::vector<bool> seen(dataset_size, false);
  for (const auto& shard : partition) {
    for (std::size_t idx : shard) {
      if (idx >= dataset_size || seen[idx]) return false;
      seen[idx] = true;
    }
  }
  return true;
}

}  // namespace tifl::data
