// Deterministic discrete-event scheduler — the virtual-time core of the
// asynchronous execution subsystem (and a strict generalization of
// `VirtualClock`: where the synchronous engine advances time by one
// round-max latency at a time, the event queue lets any number of actors
// progress at their own cadence on a single shared timeline).
//
// Determinism: events are ordered by (time, seq) where `seq` is the
// monotone insertion index, so simultaneous events pop in the exact order
// they were scheduled (stable tie-breaking) and the pop sequence is a
// pure function of the push sequence — independent of heap layout,
// thread scheduling, or platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tifl::sim {

// Well-known values for Event::kind.  The queue itself stays agnostic —
// kind is an opaque caller tag — but the async engine, the churn model
// and the tests share this vocabulary so lifecycle events compose on one
// timeline with training completions.
enum class EventKind : std::uint64_t {
  kTierRound = 0,      // a whole tier round completed (static population)
  kClientUpdate = 1,   // one client's update arrived (dynamic lifecycle)
  kClientJoin = 2,     // a device entered the population
  kClientLeave = 3,    // a device left (possibly mid-round)
  kClientSlowdown = 4, // a mid-round straggler: latency multiplier changed
  kReProfile = 5,      // rebuild tiers from observed latencies
};

struct Event {
  double time = 0.0;        // absolute virtual seconds
  std::uint64_t seq = 0;    // insertion order; unique, breaks time ties
  std::uint64_t kind = 0;   // caller-defined event tag (see EventKind)
  std::uint64_t actor = 0;  // caller-defined actor id (tier, client, ...)
};

// One entry of a schedule_bulk() call: an event without its (time, seq)
// key, scheduled `delay` seconds from now alongside its batch siblings.
struct PendingEvent {
  double delay = 0.0;
  std::uint64_t kind = 0;
  std::uint64_t actor = 0;
};

class EventQueue {
 public:
  // Current virtual time: the timestamp of the last popped event (0
  // before any pop), like VirtualClock::now().
  double now() const noexcept { return now_; }

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  // Schedules an event `delay >= 0` virtual seconds from now (negative
  // and NaN delays throw std::invalid_argument, exactly like
  // schedule_at); returns its seq (callers key per-event state — e.g.
  // RNG forks — off this).
  std::uint64_t schedule(double delay, std::uint64_t kind,
                         std::uint64_t actor);

  // Schedules at an absolute time; throws std::invalid_argument when the
  // time lies in the past (events cannot rewrite history).
  std::uint64_t schedule_at(double time, std::uint64_t kind,
                            std::uint64_t actor);

  // Schedules every entry in one pass, assigning consecutive seqs in span
  // order — byte-identical pop order to calling schedule() per entry, but
  // a large seed burst (e.g. one event per client of a million-client
  // federation) costs one O(n) heap rebuild instead of n O(log n)
  // sift-ups.  Validates every delay up front (all-or-nothing: a bad
  // entry throws before anything is scheduled).  Returns the seq of the
  // first entry (entry i got seq + i); 0 on an empty span.
  std::uint64_t schedule_bulk(std::span<const PendingEvent> events);

  // Earliest pending event; throws std::logic_error when empty.
  const Event& peek() const;

  // Removes and returns the earliest event, advancing now() to its time.
  Event pop();

  // Removes every event sharing the earliest pending timestamp into
  // `out` (cleared first), in exactly the order repeated pop() would
  // return them, and advances now() to that timestamp.  Events scheduled
  // *while the batch is processed* cannot land inside it: schedule_at
  // rejects times before now() and fresh seqs break any time tie after
  // the whole batch — which is what lets an event loop drain same-time
  // batches without perturbing the (time, seq) replay sequence.
  // Throws std::logic_error when empty.
  void pop_batch(std::vector<Event>& out);

  // Like pop_batch, but drains every event with time <= horizon (possibly
  // spanning many timestamps); now() advances to the last popped event's
  // time (untouched when nothing qualifies, leaving `out` empty).  Only
  // safe for consumers that do not schedule while processing `out` —
  // a mid-batch schedule_at(now()+d) with d < horizon - now() would pop
  // *after* events it should precede under one-at-a-time semantics.
  void pop_until(double horizon, std::vector<Event>& out);

  // Drops all pending events and rewinds the clock to zero.  seq keeps
  // counting so pre/post-reset events never collide.
  void reset();

  // --- checkpoint/resume surface --------------------------------------------
  // Next seq schedule() would assign; with pending() this captures the
  // queue's full deterministic state.
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  // All pending events in (time, seq) pop order, non-destructively.
  std::vector<Event> pending() const;
  // Replaces the queue's state wholesale (clock, seq counter, pending
  // set) — the restore half of a snapshot.  Deliberately records nothing
  // into the metrics registry: the checkpoint already carries the counts
  // accumulated when these events were first scheduled.
  void restore(double now, std::uint64_t next_seq,
               std::span<const Event> events);

 private:
  std::vector<Event> heap_;  // binary min-heap ordered by (time, seq)
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tifl::sim
