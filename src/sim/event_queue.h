// Deterministic discrete-event scheduler — the virtual-time core of the
// asynchronous execution subsystem (and a strict generalization of
// `VirtualClock`: where the synchronous engine advances time by one
// round-max latency at a time, the event queue lets any number of actors
// progress at their own cadence on a single shared timeline).
//
// Determinism: events are ordered by (time, seq) where `seq` is the
// monotone insertion index, so simultaneous events pop in the exact order
// they were scheduled (stable tie-breaking) and the pop sequence is a
// pure function of the push sequence — independent of heap layout,
// thread scheduling, or platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tifl::sim {

// Well-known values for Event::kind.  The queue itself stays agnostic —
// kind is an opaque caller tag — but the async engine, the churn model
// and the tests share this vocabulary so lifecycle events compose on one
// timeline with training completions.
enum class EventKind : std::uint64_t {
  kTierRound = 0,      // a whole tier round completed (static population)
  kClientUpdate = 1,   // one client's update arrived (dynamic lifecycle)
  kClientJoin = 2,     // a device entered the population
  kClientLeave = 3,    // a device left (possibly mid-round)
  kClientSlowdown = 4, // a mid-round straggler: latency multiplier changed
  kReProfile = 5,      // rebuild tiers from observed latencies
};

struct Event {
  double time = 0.0;        // absolute virtual seconds
  std::uint64_t seq = 0;    // insertion order; unique, breaks time ties
  std::uint64_t kind = 0;   // caller-defined event tag (see EventKind)
  std::uint64_t actor = 0;  // caller-defined actor id (tier, client, ...)
};

class EventQueue {
 public:
  // Current virtual time: the timestamp of the last popped event (0
  // before any pop), like VirtualClock::now().
  double now() const noexcept { return now_; }

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  // Schedules an event `delay >= 0` virtual seconds from now; returns its
  // seq (callers key per-event state — e.g. RNG forks — off this).
  std::uint64_t schedule(double delay, std::uint64_t kind,
                         std::uint64_t actor);

  // Schedules at an absolute time; throws std::invalid_argument when the
  // time lies in the past (events cannot rewrite history).
  std::uint64_t schedule_at(double time, std::uint64_t kind,
                            std::uint64_t actor);

  // Earliest pending event; throws std::logic_error when empty.
  const Event& peek() const;

  // Removes and returns the earliest event, advancing now() to its time.
  Event pop();

  // Drops all pending events and rewinds the clock to zero.  seq keeps
  // counting so pre/post-reset events never collide.
  void reset();

 private:
  std::vector<Event> heap_;  // binary min-heap ordered by (time, seq)
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tifl::sim
