// Per-client compute/communication capability, the "resource
// heterogeneity" axis of the paper (§3.3, §5.1): clients are assigned
// 4/2/1/0.5/0.1 CPUs (CIFAR, FEMNIST) or 2/1/0.75/0.5/0.25 CPUs
// (MNIST/FMNIST); the case study uses 4/2/1/⅓/⅕.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace tifl::sim {

struct ResourceProfile {
  double cpus = 1.0;            // CPU share; compute time scales as 1/cpus
  double comm_seconds = 0.0;    // fixed up+down link time per round
  double jitter_sigma = 0.05;   // lognormal sigma on compute time
  bool unavailable = false;     // never responds (profiler dropout testing)
};

// Splits `num_clients` into `cpu_groups.size()` equal groups, group g
// getting `cpu_groups[g]` CPUs.  When `shuffled` the group assignment is
// randomized (LEAF setup: "uniform random distribution resulting in equal
// number of clients per hardware type"); otherwise client blocks map to
// groups in order (the synthetic-benchmark setup).
std::vector<ResourceProfile> assign_equal_groups(
    std::size_t num_clients, const std::vector<double>& cpu_groups,
    double comm_seconds, double jitter_sigma, util::Rng& rng,
    bool shuffled = false);

// The paper's group allocations.
std::vector<double> casestudy_cpu_groups();      // 4, 2, 1, 1/3, 1/5  (§3.3)
std::vector<double> mnist_cpu_groups();          // 2, 1, 0.75, 0.5, 0.25
std::vector<double> cifar_cpu_groups();          // 4, 2, 1, 0.5, 0.1
std::vector<double> homogeneous_cpu_groups(double cpus = 2.0);  // data-only

}  // namespace tifl::sim
