#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/wall_time.h"

namespace tifl::sim {

namespace {

// std::*_heap builds a max-heap, so "after" = min-heap on (time, seq).
// (time, seq) keys are unique (seq is), making the order strict-total:
// the pop sequence is fully determined regardless of heap layout.
bool after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

// Shared across every queue instance: at paper scale all queues of a
// process serve one engine run, and per-instance registration would churn
// instrument names.  References are resolved once and cached.
struct QueueMetrics {
  obs::Counter& scheduled;
  obs::Counter& popped;
  obs::Gauge& depth_max;
  obs::Histo& horizon;       // virtual seconds from now() to the event
  obs::Histo& schedule_ns;   // sampled wall cost of one schedule call
  obs::Histo& pop_ns;        // sampled wall cost of one pop/pop_batch
};

QueueMetrics& queue_metrics() {
  static QueueMetrics m{
      obs::Registry::global().counter("sim.events_scheduled"),
      obs::Registry::global().counter("sim.events_popped"),
      obs::Registry::global().gauge("sim.queue_depth_max"),
      obs::Registry::global().histogram("sim.schedule_horizon"),
      obs::Registry::global().histogram("sim.schedule_ns"),
      obs::Registry::global().histogram("sim.pop_ns"),
  };
  return m;
}

// Wall-clock cost sampling: timing every heap op would distort the thing
// being measured, so only every 64th call reads the clock.
constexpr std::uint64_t kLatencySampleMask = 63;

bool sample_now(std::atomic<std::uint64_t>& counter) {
  return (counter.fetch_add(1, std::memory_order_relaxed) &
          kLatencySampleMask) == 0;
}

std::atomic<std::uint64_t> g_schedule_ops{0};
std::atomic<std::uint64_t> g_pop_ops{0};

}  // namespace

std::uint64_t EventQueue::schedule(double delay, std::uint64_t kind,
                                   std::uint64_t actor) {
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("EventQueue: negative or NaN delay");
  }
  return schedule_at(now_ + delay, kind, actor);
}

std::uint64_t EventQueue::schedule_at(double time, std::uint64_t kind,
                                      std::uint64_t actor) {
  if (std::isnan(time) || time < now_) {
    throw std::invalid_argument("EventQueue: event time in the past");
  }
  QueueMetrics& metrics = queue_metrics();
  const bool timed = sample_now(g_schedule_ops);
  const auto start = timed ? obs::wall_now() : obs::WallTime{};
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{.time = time, .seq = seq, .kind = kind,
                        .actor = actor});
  std::push_heap(heap_.begin(), heap_.end(), after);
  if (timed) metrics.schedule_ns.record(obs::wall_ns_since(start));
  metrics.scheduled.add();
  metrics.horizon.record(time - now_);
  metrics.depth_max.set_max(static_cast<double>(heap_.size()));
  return seq;
}

std::uint64_t EventQueue::schedule_bulk(std::span<const PendingEvent> events) {
  if (events.empty()) return 0;
  for (const PendingEvent& event : events) {
    if (std::isnan(event.delay) || event.delay < 0.0) {
      throw std::invalid_argument("EventQueue: negative or NaN delay");
    }
  }
  const std::uint64_t first_seq = next_seq_;
  heap_.reserve(heap_.size() + events.size());
  // Appending then rebuilding is O(heap + batch); per-element push_heap
  // would be O(batch log heap).  The rebuild permutes the heap *layout*
  // only — pop order is the strict total order on (time, seq) either way.
  const bool timed = sample_now(g_schedule_ops);
  const auto start = timed ? obs::wall_now() : obs::WallTime{};
  for (const PendingEvent& event : events) {
    heap_.push_back(Event{.time = now_ + event.delay, .seq = next_seq_++,
                          .kind = event.kind, .actor = event.actor});
  }
  std::make_heap(heap_.begin(), heap_.end(), after);
  QueueMetrics& metrics = queue_metrics();
  if (timed) metrics.schedule_ns.record(obs::wall_ns_since(start));
  metrics.scheduled.add(events.size());
  for (const PendingEvent& event : events) {
    metrics.horizon.record(event.delay);
  }
  metrics.depth_max.set_max(static_cast<double>(heap_.size()));
  return first_seq;
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue: peek on empty");
  return heap_.front();
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty");
  const bool timed = sample_now(g_pop_ops);
  const auto start = timed ? obs::wall_now() : obs::WallTime{};
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Event top = heap_.back();
  heap_.pop_back();
  now_ = top.time;
  QueueMetrics& metrics = queue_metrics();
  if (timed) metrics.pop_ns.record(obs::wall_ns_since(start));
  metrics.popped.add();
  return top;
}

void EventQueue::pop_batch(std::vector<Event>& out) {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop_batch on empty");
  const bool timed = sample_now(g_pop_ops);
  const auto start = timed ? obs::wall_now() : obs::WallTime{};
  out.clear();
  const double batch_time = heap_.front().time;
  // Repeated pop_heap keeps (time, seq) order within the batch — equal
  // times resolve by seq exactly as single pops would.
  while (!heap_.empty() && heap_.front().time == batch_time) {
    std::pop_heap(heap_.begin(), heap_.end(), after);
    out.push_back(heap_.back());
    heap_.pop_back();
  }
  now_ = batch_time;
  QueueMetrics& metrics = queue_metrics();
  if (timed) metrics.pop_ns.record(obs::wall_ns_since(start));
  metrics.popped.add(out.size());
}

void EventQueue::pop_until(double horizon, std::vector<Event>& out) {
  out.clear();
  while (!heap_.empty() && heap_.front().time <= horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), after);
    out.push_back(heap_.back());
    heap_.pop_back();
    now_ = out.back().time;
  }
  queue_metrics().popped.add(out.size());
}

void EventQueue::reset() {
  heap_.clear();
  now_ = 0.0;
}

std::vector<Event> EventQueue::pending() const {
  std::vector<Event> out = heap_;
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  return out;
}

void EventQueue::restore(double now, std::uint64_t next_seq,
                         std::span<const Event> events) {
  heap_.assign(events.begin(), events.end());
  std::make_heap(heap_.begin(), heap_.end(), after);
  now_ = now;
  next_seq_ = next_seq;
}

}  // namespace tifl::sim
