#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tifl::sim {

namespace {

// std::*_heap builds a max-heap, so "after" = min-heap on (time, seq).
// (time, seq) keys are unique (seq is), making the order strict-total:
// the pop sequence is fully determined regardless of heap layout.
bool after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

std::uint64_t EventQueue::schedule(double delay, std::uint64_t kind,
                                   std::uint64_t actor) {
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("EventQueue: negative or NaN delay");
  }
  return schedule_at(now_ + delay, kind, actor);
}

std::uint64_t EventQueue::schedule_at(double time, std::uint64_t kind,
                                      std::uint64_t actor) {
  if (std::isnan(time) || time < now_) {
    throw std::invalid_argument("EventQueue: event time in the past");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{.time = time, .seq = seq, .kind = kind,
                        .actor = actor});
  std::push_heap(heap_.begin(), heap_.end(), after);
  return seq;
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue: peek on empty");
  return heap_.front();
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty");
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Event top = heap_.back();
  heap_.pop_back();
  now_ = top.time;
  return top;
}

void EventQueue::reset() {
  heap_.clear();
  now_ = 0.0;
}

}  // namespace tifl::sim
