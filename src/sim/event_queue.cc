#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tifl::sim {

namespace {

// std::*_heap builds a max-heap, so "after" = min-heap on (time, seq).
// (time, seq) keys are unique (seq is), making the order strict-total:
// the pop sequence is fully determined regardless of heap layout.
bool after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

std::uint64_t EventQueue::schedule(double delay, std::uint64_t kind,
                                   std::uint64_t actor) {
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("EventQueue: negative or NaN delay");
  }
  return schedule_at(now_ + delay, kind, actor);
}

std::uint64_t EventQueue::schedule_at(double time, std::uint64_t kind,
                                      std::uint64_t actor) {
  if (std::isnan(time) || time < now_) {
    throw std::invalid_argument("EventQueue: event time in the past");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{.time = time, .seq = seq, .kind = kind,
                        .actor = actor});
  std::push_heap(heap_.begin(), heap_.end(), after);
  return seq;
}

std::uint64_t EventQueue::schedule_bulk(std::span<const PendingEvent> events) {
  if (events.empty()) return 0;
  for (const PendingEvent& event : events) {
    if (std::isnan(event.delay) || event.delay < 0.0) {
      throw std::invalid_argument("EventQueue: negative or NaN delay");
    }
  }
  const std::uint64_t first_seq = next_seq_;
  heap_.reserve(heap_.size() + events.size());
  // Appending then rebuilding is O(heap + batch); per-element push_heap
  // would be O(batch log heap).  The rebuild permutes the heap *layout*
  // only — pop order is the strict total order on (time, seq) either way.
  for (const PendingEvent& event : events) {
    heap_.push_back(Event{.time = now_ + event.delay, .seq = next_seq_++,
                          .kind = event.kind, .actor = event.actor});
  }
  std::make_heap(heap_.begin(), heap_.end(), after);
  return first_seq;
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue: peek on empty");
  return heap_.front();
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty");
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Event top = heap_.back();
  heap_.pop_back();
  now_ = top.time;
  return top;
}

void EventQueue::pop_batch(std::vector<Event>& out) {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop_batch on empty");
  out.clear();
  const double batch_time = heap_.front().time;
  // Repeated pop_heap keeps (time, seq) order within the batch — equal
  // times resolve by seq exactly as single pops would.
  while (!heap_.empty() && heap_.front().time == batch_time) {
    std::pop_heap(heap_.begin(), heap_.end(), after);
    out.push_back(heap_.back());
    heap_.pop_back();
  }
  now_ = batch_time;
}

void EventQueue::pop_until(double horizon, std::vector<Event>& out) {
  out.clear();
  while (!heap_.empty() && heap_.front().time <= horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), after);
    out.push_back(heap_.back());
    heap_.pop_back();
    now_ = out.back().time;
  }
}

void EventQueue::reset() {
  heap_.clear();
  now_ = 0.0;
}

}  // namespace tifl::sim
