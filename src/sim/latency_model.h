// Client response-latency model.
//
// Fig. 1a of the paper shows per-round training time growing near-linearly
// in sample count and in 1/CPUs, plus a floor at small workloads — exactly
// an affine model:
//
//     L_i = epochs * samples_i * seconds_per_sample / cpus_i
//           + fixed_overhead + comm_seconds,            (jittered)
//
// with multiplicative lognormal jitter on the compute term standing in for
// OS noise.  `seconds_per_sample` and `fixed_overhead` are per-model
// constants; the presets below are fit to the magnitudes reported in
// Fig. 1a (CIFAR-10 CNN: ~4 s for 500 samples on 4 CPUs, ~250 s for 5000
// samples on 1/5 CPU).
#pragma once

#include <cstddef>

#include "sim/resource_profile.h"
#include "util/rng.h"

namespace tifl::sim {

struct CostModel {
  double seconds_per_sample = 0.01;  // at 1 CPU, per epoch
  double fixed_overhead = 3.0;       // setup + serialization + framework
};

class LatencyModel {
 public:
  explicit LatencyModel(CostModel cost = {}) : cost_(cost) {}

  // Expected (jitter-free) response latency.
  double expected_latency(const ResourceProfile& profile,
                          std::size_t samples, std::size_t epochs) const;

  // One observed latency draw with lognormal jitter.
  double sample_latency(const ResourceProfile& profile, std::size_t samples,
                        std::size_t epochs, util::Rng& rng) const;

  const CostModel& cost() const { return cost_; }

 private:
  CostModel cost_;
};

// Calibrated magnitudes per paper workload (see header comment).
CostModel cifar_cost_model();    // heavy CNN
CostModel mnist_cost_model();    // light CNN
CostModel femnist_cost_model();  // LEAF CNN

}  // namespace tifl::sim
