// Client response-latency model.
//
// Fig. 1a of the paper shows per-round training time growing near-linearly
// in sample count and in 1/CPUs, plus a floor at small workloads — exactly
// an affine model:
//
//     L_i = epochs * samples_i * seconds_per_sample / cpus_i
//           + fixed_overhead + comm_seconds,            (jittered)
//
// with multiplicative lognormal jitter on the compute term standing in for
// OS noise.  `seconds_per_sample` and `fixed_overhead` are per-model
// constants; the presets below are fit to the magnitudes reported in
// Fig. 1a (CIFAR-10 CNN: ~4 s for 500 samples on 4 CPUs, ~250 s for 5000
// samples on 1/5 CPU).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/resource_profile.h"
#include "util/rng.h"

namespace tifl::sim {

struct CostModel {
  double seconds_per_sample = 0.01;  // at 1 CPU, per epoch
  double fixed_overhead = 3.0;       // setup + serialization + framework
};

// One parent↔child link of the aggregator tree (fl/hier): a propagation
// floor plus a bandwidth-limited transfer term, so shipping a model
// between aggregation levels costs virtual time proportional to its size.
struct LinkProfile {
  double latency_seconds = 0.05;  // one-way propagation + protocol floor
  double bandwidth_mbps = 100.0;  // serialization rate for the payload
  double jitter_sigma = 0.0;      // lognormal sigma on the transfer term
};

class LatencyModel {
 public:
  explicit LatencyModel(CostModel cost = {}) : cost_(cost) {}

  // Expected (jitter-free) response latency.
  double expected_latency(const ResourceProfile& profile,
                          std::size_t samples, std::size_t epochs) const;

  // One observed latency draw with lognormal jitter.
  double sample_latency(const ResourceProfile& profile, std::size_t samples,
                        std::size_t epochs, util::Rng& rng) const;

  // Expected (jitter-free) one-way delivery delay of `payload_bytes` over
  // `link`: latency floor + bytes * 8 / bandwidth.
  double expected_link_delay(const LinkProfile& link,
                             std::size_t payload_bytes) const;

  // One observed delivery delay.  When link.jitter_sigma > 0 this draws
  // exactly one mean-preserving lognormal per call (multiplying the
  // transfer term), independent of payload size — callers rely on the
  // one-draw-per-delivery stream alignment for resume determinism.
  double sample_link_delay(const LinkProfile& link, std::size_t payload_bytes,
                           util::Rng& rng) const;

  const CostModel& cost() const { return cost_; }

 private:
  CostModel cost_;
};

// The dedicated RNG stream of one tree link, derived by mix_seed so that
// sampling delays on one link never perturbs another link's stream (and
// therefore no other node's delivery times) regardless of event
// interleaving or shard count.  `link_id` is the child node's id — each
// parent↔child edge is owned by its child end.
util::Rng link_stream(std::uint64_t run_seed, std::uint64_t link_id);

// Calibrated magnitudes per paper workload (see header comment).
CostModel cifar_cost_model();    // heavy CNN
CostModel mnist_cost_model();    // light CNN
CostModel femnist_cost_model();  // LEAF CNN

}  // namespace tifl::sim
