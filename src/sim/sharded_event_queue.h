// Sharded deterministic discrete-event scheduler: the event queue of the
// sharded runtime.  The actor-id space is split into `shard_count()`
// contiguous ranges; every shard owns its own binary min-heap (and its own
// metrics registry), so scheduling and draining touch only the owning
// shard's storage — rethinkdb's per-thread event queues are the exemplar
// layout.
//
// Determinism contract (oracle-pinned by tests/sim_sharded_queue_test.cc):
// the *global* pop order is the strict total order on (time, seq), exactly
// the order a single-heap sim::EventQueue fed the same schedule sequence
// would produce — for any shard count.  Cross-shard merging happens only
// at pop time: pop/pop_batch/pop_until select among the shard heads, so a
// consumer draining the queue observes one virtual timeline regardless of
// how events were partitioned.  This is what makes an engine run
// bit-reproducible across --shards values.
//
// Per-shard metrics (the ROADMAP "per-shard metrics aggregation" item):
// each shard records its schedule/pop counters and horizon histogram into
// its own obs::Registry view; merge_metrics_into() folds them — in shard
// order, sorted-key, order-independent sums — into one deterministic
// snapshot whose values do not depend on the shard count.  Queue-global
// quantities (depth high-water mark) are recorded once, on shard 0's
// registry, so the merged gauge is the true global maximum rather than a
// max-of-shard-maxima.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace tifl::sim {

class ShardedEventQueue {
 public:
  // `shards` is clamped to [1, max(1, num_actors)]; `num_actors` sizes the
  // contiguous ownership ranges (actor ids >= num_actors land on the last
  // shard rather than throwing: control actors — tiers, churn source 0 —
  // share the id space with clients).
  explicit ShardedEventQueue(std::size_t shards, std::size_t num_actors);

  // --- EventQueue-compatible surface (oracle-pinned) -------------------------
  double now() const noexcept { return now_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::uint64_t schedule(double delay, std::uint64_t kind,
                         std::uint64_t actor);
  std::uint64_t schedule_at(double time, std::uint64_t kind,
                            std::uint64_t actor);
  // Consecutive seqs in span order, one heap rebuild per *touched shard*.
  std::uint64_t schedule_bulk(std::span<const PendingEvent> events);

  const Event& peek() const;
  Event pop();
  void pop_batch(std::vector<Event>& out);
  void pop_until(double horizon, std::vector<Event>& out);
  void reset();

  // --- checkpoint/resume surface ---------------------------------------------
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  // All pending events across every shard in (time, seq) pop order — the
  // shard-count-invariant view a snapshot stores, so a run checkpointed at
  // --shards 8 can resume at --shards 1 and vice versa.
  std::vector<Event> pending() const;
  // Replaces the queue's state wholesale, redistributing events to their
  // owning shards under *this* queue's shard count.  Records nothing into
  // the per-shard metrics registries (the snapshot carries the original
  // counts; re-counting here would double them in the merged view).
  void restore(double now, std::uint64_t next_seq,
               std::span<const Event> events);

  // --- sharding surface ------------------------------------------------------
  std::size_t shard_count() const noexcept { return heaps_.size(); }
  std::size_t shard_of(std::uint64_t actor) const noexcept;
  std::size_t shard_size(std::size_t shard) const {
    return heaps_.at(shard).size();
  }
  // Earliest pending timestamp (peek().time); throws when empty.
  double next_time() const { return peek().time; }

  // Read-only view of one shard's metrics registry.
  const obs::Registry& shard_metrics(std::size_t shard) const {
    return *registries_.at(shard);
  }
  // Folds every shard's registry into `target` in shard-index order (see
  // obs::Registry::merge_from).  Counter and histogram totals are
  // invariant under the shard count; only the wall-clock `*_ns` sampling
  // histograms vary run to run.  The engines call this once per run, into
  // the global registry, so snapshots keep the single-queue instrument
  // names.
  void merge_metrics_into(obs::Registry& target) const;

 private:
  // One shard: its heap plus cached references into its own registry.
  // Instrument names deliberately match the single-heap EventQueue's, so
  // a merged snapshot is a drop-in replacement for the unsharded one.
  struct Shard {
    std::vector<Event> heap;
    obs::Counter* scheduled = nullptr;
    obs::Counter* popped = nullptr;
    obs::Histo* horizon = nullptr;
    obs::Histo* schedule_ns = nullptr;
    obs::Histo* pop_ns = nullptr;
    std::uint64_t schedule_ops = 0;
    std::uint64_t pop_ops = 0;

    std::size_t size() const noexcept { return heap.size(); }
  };

  Shard& shard_for(std::uint64_t actor) noexcept;
  std::size_t min_shard() const;  // index of the (time, seq)-min head

  std::vector<Shard> heaps_;
  std::vector<std::unique_ptr<obs::Registry>> registries_;
  std::size_t num_actors_ = 0;
  std::size_t size_ = 0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tifl::sim
