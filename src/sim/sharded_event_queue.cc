#include "sim/sharded_event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/wall_time.h"

namespace tifl::sim {

namespace {

// Same strict total order as EventQueue: min-heap on (time, seq).
bool after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

bool before_key(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

// Wall-clock cost sampling, one stride counter per shard (see
// EventQueue's kLatencySampleMask): only every 64th op reads the clock.
constexpr std::uint64_t kLatencySampleMask = 63;

}  // namespace

ShardedEventQueue::ShardedEventQueue(std::size_t shards,
                                     std::size_t num_actors)
    : num_actors_(std::max<std::size_t>(1, num_actors)) {
  shards = std::clamp<std::size_t>(shards, 1, num_actors_);
  heaps_.resize(shards);
  registries_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    registries_.push_back(std::make_unique<obs::Registry>());
    Shard& shard = heaps_[s];
    shard.scheduled = &registries_[s]->counter("sim.events_scheduled");
    shard.popped = &registries_[s]->counter("sim.events_popped");
    shard.horizon = &registries_[s]->histogram("sim.schedule_horizon");
    shard.schedule_ns = &registries_[s]->histogram("sim.schedule_ns");
    shard.pop_ns = &registries_[s]->histogram("sim.pop_ns");
  }
}

std::size_t ShardedEventQueue::shard_of(std::uint64_t actor) const noexcept {
  // Contiguous ownership ranges: shard s owns actors in
  // [s * num_actors / shards, (s+1) * num_actors / shards); out-of-range
  // control actors fold onto the last shard.
  const std::size_t shards = heaps_.size();
  if (actor >= num_actors_) return shards - 1;
  return static_cast<std::size_t>(actor) * shards / num_actors_;
}

ShardedEventQueue::Shard& ShardedEventQueue::shard_for(
    std::uint64_t actor) noexcept {
  return heaps_[shard_of(actor)];
}

std::uint64_t ShardedEventQueue::schedule(double delay, std::uint64_t kind,
                                          std::uint64_t actor) {
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("ShardedEventQueue: negative or NaN delay");
  }
  return schedule_at(now_ + delay, kind, actor);
}

std::uint64_t ShardedEventQueue::schedule_at(double time, std::uint64_t kind,
                                             std::uint64_t actor) {
  if (std::isnan(time) || time < now_) {
    throw std::invalid_argument("ShardedEventQueue: event time in the past");
  }
  Shard& shard = shard_for(actor);
  const bool timed = (shard.schedule_ops++ & kLatencySampleMask) == 0;
  const auto start = timed ? obs::wall_now() : obs::WallTime{};
  const std::uint64_t seq = next_seq_++;
  shard.heap.push_back(
      Event{.time = time, .seq = seq, .kind = kind, .actor = actor});
  std::push_heap(shard.heap.begin(), shard.heap.end(), after);
  ++size_;
  if (timed) shard.schedule_ns->record(obs::wall_ns_since(start));
  shard.scheduled->add();
  shard.horizon->record(time - now_);
  // Global depth high-water mark, recorded once (shard 0's registry) so
  // the merged gauge is the true queue depth, not a sum of shard maxima.
  registries_[0]->gauge("sim.queue_depth_max").set_max(
      static_cast<double>(size_));
  return seq;
}

std::uint64_t ShardedEventQueue::schedule_bulk(
    std::span<const PendingEvent> events) {
  if (events.empty()) return 0;
  for (const PendingEvent& event : events) {
    if (std::isnan(event.delay) || event.delay < 0.0) {
      throw std::invalid_argument("ShardedEventQueue: negative or NaN delay");
    }
  }
  const std::uint64_t first_seq = next_seq_;
  // Append per owning shard, then rebuild each touched shard's heap once:
  // the bulk-cohort analogue of EventQueue::schedule_bulk, except a cohort
  // straddling shard boundaries rebuilds only the shards it touches.
  std::vector<char> touched(heaps_.size(), 0);
  for (const PendingEvent& event : events) {
    const std::size_t s = shard_of(event.actor);
    Shard& shard = heaps_[s];
    shard.heap.push_back(Event{.time = now_ + event.delay,
                               .seq = next_seq_++,
                               .kind = event.kind,
                               .actor = event.actor});
    touched[s] = 1;
    shard.scheduled->add();
    shard.horizon->record(event.delay);
  }
  size_ += events.size();
  for (std::size_t s = 0; s < heaps_.size(); ++s) {
    if (touched[s]) {
      std::make_heap(heaps_[s].heap.begin(), heaps_[s].heap.end(), after);
    }
  }
  registries_[0]->gauge("sim.queue_depth_max").set_max(
      static_cast<double>(size_));
  return first_seq;
}

std::size_t ShardedEventQueue::min_shard() const {
  std::size_t best = heaps_.size();
  for (std::size_t s = 0; s < heaps_.size(); ++s) {
    if (heaps_[s].heap.empty()) continue;
    if (best == heaps_.size() ||
        before_key(heaps_[s].heap.front(), heaps_[best].heap.front())) {
      best = s;
    }
  }
  if (best == heaps_.size()) {
    throw std::logic_error("ShardedEventQueue: empty");
  }
  return best;
}

const Event& ShardedEventQueue::peek() const {
  return heaps_[min_shard()].heap.front();
}

Event ShardedEventQueue::pop() {
  Shard& shard = heaps_[min_shard()];
  const bool timed = (shard.pop_ops++ & kLatencySampleMask) == 0;
  const auto start = timed ? obs::wall_now() : obs::WallTime{};
  std::pop_heap(shard.heap.begin(), shard.heap.end(), after);
  const Event top = shard.heap.back();
  shard.heap.pop_back();
  --size_;
  now_ = top.time;
  if (timed) shard.pop_ns->record(obs::wall_ns_since(start));
  shard.popped->add();
  return top;
}

void ShardedEventQueue::pop_batch(std::vector<Event>& out) {
  out.clear();
  if (size_ == 0) {
    throw std::logic_error("ShardedEventQueue: pop_batch on empty");
  }
  const double batch_time = peek().time;
  // Per-shard batch drain: each shard surrenders its events at the batch
  // timestamp in (time, seq) heap order; the cross-shard merge below
  // restores the global seq order a single heap would have produced.
  for (Shard& shard : heaps_) {
    if (shard.heap.empty() || shard.heap.front().time != batch_time) continue;
    const bool timed = (shard.pop_ops++ & kLatencySampleMask) == 0;
    const auto start = timed ? obs::wall_now() : obs::WallTime{};
    std::size_t drained = 0;
    while (!shard.heap.empty() && shard.heap.front().time == batch_time) {
      std::pop_heap(shard.heap.begin(), shard.heap.end(), after);
      out.push_back(shard.heap.back());
      shard.heap.pop_back();
      ++drained;
    }
    if (timed) shard.pop_ns->record(obs::wall_ns_since(start));
    shard.popped->add(drained);
  }
  size_ -= out.size();
  now_ = batch_time;
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
}

void ShardedEventQueue::pop_until(double horizon, std::vector<Event>& out) {
  out.clear();
  for (Shard& shard : heaps_) {
    std::size_t drained = 0;
    while (!shard.heap.empty() && shard.heap.front().time <= horizon) {
      std::pop_heap(shard.heap.begin(), shard.heap.end(), after);
      out.push_back(shard.heap.back());
      shard.heap.pop_back();
      ++drained;
    }
    if (drained > 0) shard.popped->add(drained);
  }
  if (out.empty()) return;
  size_ -= out.size();
  std::sort(out.begin(), out.end(), before_key);
  now_ = out.back().time;
}

void ShardedEventQueue::reset() {
  for (Shard& shard : heaps_) shard.heap.clear();
  size_ = 0;
  now_ = 0.0;
}

std::vector<Event> ShardedEventQueue::pending() const {
  std::vector<Event> out;
  out.reserve(size_);
  for (const Shard& shard : heaps_) {
    out.insert(out.end(), shard.heap.begin(), shard.heap.end());
  }
  std::sort(out.begin(), out.end(), before_key);
  return out;
}

void ShardedEventQueue::restore(double now, std::uint64_t next_seq,
                                std::span<const Event> events) {
  for (Shard& shard : heaps_) shard.heap.clear();
  for (const Event& event : events) {
    heaps_[shard_of(event.actor)].heap.push_back(event);
  }
  for (Shard& shard : heaps_) {
    std::make_heap(shard.heap.begin(), shard.heap.end(), after);
  }
  size_ = events.size();
  now_ = now;
  next_seq_ = next_seq;
}

void ShardedEventQueue::merge_metrics_into(obs::Registry& target) const {
  for (const std::unique_ptr<obs::Registry>& registry : registries_) {
    target.merge_from(*registry);
  }
}

}  // namespace tifl::sim
