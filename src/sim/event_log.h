// Append-only, CRC-framed log of processed simulation events — the
// durable record that pairs with fl::Snapshot (rethinkdb's log-structured
// serializer is the exemplar: fixed-size framed records, each guarded by
// its own checksum, with a reader that tolerates a torn tail).
//
// File layout:
//   8-byte magic "TIFLELG1"
//   repeated records of exactly kRecordSize bytes:
//     f64 time | u64 seq | u64 kind | u64 actor | u32 crc32(first 32 bytes)
//
// A process killed mid-write leaves at most one partial record at the
// tail; `read_event_log` stops cleanly at the first short or
// CRC-mismatched record instead of throwing, so recovery always sees the
// longest valid prefix.  `EventLogWriter::truncate_to` trims the log back
// to a checkpoint's processed-event horizon on resume, after which the
// full-run and crash+resume logs are byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace tifl::sim {

inline constexpr char kEventLogMagic[8] = {'T', 'I', 'F', 'L',
                                           'E', 'L', 'G', '1'};
inline constexpr std::size_t kEventLogRecordSize = 8 + 8 + 8 + 8 + 4;

class EventLogWriter {
 public:
  EventLogWriter() = default;
  ~EventLogWriter() { close(); }
  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  // Opens `path` for appending, writing the magic when the file is new or
  // empty.  Throws std::runtime_error when the file cannot be opened or
  // carries a foreign magic.
  void open(const std::string& path);

  // Truncates the log to its first `records` valid records (dropping any
  // torn tail), then reopens for appending — the resume entry point.
  // Throws when the log holds fewer valid records than requested.
  void truncate_to(const std::string& path, std::uint64_t records);

  bool is_open() const noexcept { return fd_ >= 0; }
  void append(const Event& event);
  // fsyncs buffered records (called at checkpoint boundaries, so the log
  // is never behind the snapshot that references it).
  void sync();
  void close();

 private:
  int fd_ = -1;
};

// The longest valid record prefix of the log at `path`.  Throws
// std::runtime_error when the file is missing or the magic is foreign;
// torn or corrupt tails terminate the scan silently.
std::vector<Event> read_event_log(const std::string& path);

}  // namespace tifl::sim
