// Client-lifecycle event source: seeded, deterministic Poisson streams of
// joins, leaves and mid-round slowdowns over the virtual timeline.
//
// §4.2 of the paper motivates periodic re-profiling with "systems with
// changing computation and communication performance over time"; FedAT
// and the dynamic-tiering follow-up make tier membership a moving target.
// The churn model supplies that drift: three independent exponential
// inter-arrival streams (one per event kind), each forked from a single
// seed, merged in time order.  The stream is a pure function of the seed —
// identical across runs, platforms and thread counts — which is what lets
// a "static vs dynamic tiering" comparison replay the exact same drift.
//
// Events carry a raw `pick` draw rather than a client id: which concrete
// client joins/leaves/slows depends on the consumer's live set at fire
// time (e.g. `pick % live.size()`), keeping the stream independent of
// engine state while the mapping stays deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/serial.h"

namespace tifl::sim {

struct ChurnConfig {
  // Poisson rates in events per virtual second; 0 disables a stream.
  double join_rate = 0.0;
  double leave_rate = 0.0;
  double slowdown_rate = 0.0;
  // Slowdown latency multiplier ~ lognormal(mu, sigma) of the underlying
  // normal; the defaults center near 2x with occasional mild speedups.
  // Consumers treat it as the client's absolute multiplier over its
  // profiled baseline (set, not compounded), keeping drift bounded.
  double slowdown_log_mu = 0.7;
  double slowdown_log_sigma = 0.35;
  std::uint64_t seed = 0;  // 0 = derive from the run seed

  bool active() const {
    return join_rate > 0.0 || leave_rate > 0.0 || slowdown_rate > 0.0;
  }
};

struct LifecycleEvent {
  double time = 0.0;  // absolute virtual seconds
  EventKind kind = EventKind::kClientJoin;
  std::uint64_t pick = 0;  // consumer maps onto its live/inactive sets
  double factor = 1.0;     // slowdown latency multiplier (> 0)
};

class ChurnModel {
 public:
  // Throws std::invalid_argument on negative rates or sigma.  `run_seed`
  // feeds the derived seed when config.seed == 0, so churn replays with
  // the run by default but can be pinned independently.
  ChurnModel(ChurnConfig config, std::uint64_t run_seed);

  const ChurnConfig& config() const { return config_; }

  // Next lifecycle event in (time, kind) order; nullopt when every rate
  // is zero.  Streams are unbounded: with any positive rate this never
  // runs dry, so consumers pull lazily one event at a time.
  std::optional<LifecycleEvent> next();

  // The merged stream up to virtual time `horizon` (exclusive) — the
  // test/debug view.  Pure: does not perturb this model's next().
  std::vector<LifecycleEvent> generate(double horizon) const;

  // Checkpoint/resume: per-stream RNG positions and the pending head of
  // each stream.  restore_state expects a model constructed with the same
  // config; rates and kinds are config-derived and not serialized.
  void save_state(util::ByteSink& sink) const;
  void restore_state(util::ByteSource& source);

 private:
  struct Stream {
    double rate = 0.0;
    LifecycleEvent pending;  // next event of this stream (valid iff rate>0)
    util::Rng rng{0};
  };

  void advance(Stream& stream);

  ChurnConfig config_;
  Stream streams_[3];  // join, leave, slowdown
};

// --- regional churn composition (fl/hier aggregator tree) -------------------
// A whole leaf region going dark: every client of that leaf aggregator
// drops at `start` and rejoins `duration` virtual seconds later.  Windows
// are produced by mapping the churn model's *leave* stream onto regions
// (region = pick % num_regions), so a regional-outage scenario replays
// with the run seed exactly like client-level churn does.
struct RegionalOutage {
  std::size_t region = 0;  // leaf ordinal in the topology's leaf order
  double start = 0.0;      // absolute virtual seconds
  double duration = 0.0;   // > 0
};

// Deterministic pure function of (config, run_seed): one fixed-duration
// outage window per leave event up to `horizon`, with overlapping windows
// of the same region coalesced (so start/end events never interleave
// within a region).  Sorted by (start, region).  Throws on num_regions ==
// 0 or duration <= 0.
std::vector<RegionalOutage> regional_outages(const ChurnConfig& config,
                                             std::uint64_t run_seed,
                                             std::size_t num_regions,
                                             double horizon, double duration);

}  // namespace tifl::sim
