#include "sim/event_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/serial.h"

namespace tifl::sim {

namespace {

std::string encode_record(const Event& event) {
  util::ByteSink sink;
  sink.put_f64(event.time);
  sink.put_u64(event.seq);
  sink.put_u64(event.kind);
  sink.put_u64(event.actor);
  sink.put_u32(util::crc32(sink.bytes()));
  return sink.take();
}

}  // namespace

void EventLogWriter::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("event log: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    close();
    throw std::runtime_error("event log: cannot stat " + path);
  }
  if (st.st_size == 0) {
    if (::write(fd_, kEventLogMagic, sizeof(kEventLogMagic)) !=
        static_cast<ssize_t>(sizeof(kEventLogMagic))) {
      close();
      throw std::runtime_error("event log: cannot write magic to " + path);
    }
    return;
  }
  // Existing file: verify the magic before appending behind it.
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(kEventLogMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kEventLogMagic, sizeof(magic)) != 0) {
    close();
    throw std::runtime_error("event log: bad magic in " + path);
  }
}

void EventLogWriter::truncate_to(const std::string& path,
                                 std::uint64_t records) {
  close();
  // Count the valid prefix first: a torn tail shorter than `records`
  // means the snapshot references history the log never durably held.
  const std::vector<Event> valid = read_event_log(path);
  if (valid.size() < records) {
    throw std::runtime_error(
        "event log: " + path + " holds " + std::to_string(valid.size()) +
        " valid records, snapshot expects " + std::to_string(records));
  }
  const off_t keep = static_cast<off_t>(sizeof(kEventLogMagic) +
                                        records * kEventLogRecordSize);
  if (::truncate(path.c_str(), keep) != 0) {
    throw std::runtime_error("event log: cannot truncate " + path + ": " +
                             std::strerror(errno));
  }
  open(path);
}

void EventLogWriter::append(const Event& event) {
  if (fd_ < 0) return;
  const std::string record = encode_record(event);
  if (::write(fd_, record.data(), record.size()) !=
      static_cast<ssize_t>(record.size())) {
    throw std::runtime_error("event log: short write");
  }
}

void EventLogWriter::sync() {
  if (fd_ >= 0) ::fsync(fd_);
}

void EventLogWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<Event> read_event_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("event log: cannot open " + path);
  }
  char magic[sizeof(kEventLogMagic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kEventLogMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("event log: bad magic in " + path);
  }
  std::vector<Event> events;
  char record[kEventLogRecordSize];
  for (;;) {
    in.read(record, sizeof(record));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(record))) {
      break;  // torn tail: the valid prefix ends here
    }
    util::ByteSource source(std::string_view(record, sizeof(record)));
    Event event;
    event.time = source.get_f64();
    event.seq = source.get_u64();
    event.kind = source.get_u64();
    event.actor = source.get_u64();
    const std::uint32_t crc = source.get_u32();
    if (crc != util::crc32(record, kEventLogRecordSize - 4)) {
      break;  // corrupt record: stop at the last good one
    }
    events.push_back(event);
  }
  return events;
}

}  // namespace tifl::sim
