// Seeded fault injection for the async engines: server crash points and
// client update-loss events on the virtual timeline.
//
// Two fault classes, both pure functions of the seed so a faulted run is
// exactly as reproducible as a clean one:
//
//   * crash_at: a virtual-time server kill point.  The engine checks the
//     queue head *before* popping and raises SimulatedCrash when the next
//     event would cross the point — consuming no RNG draws, so the loss
//     stream below stays aligned between the crashed run and the
//     uninterrupted oracle it is diffed against.
//   * update loss: each would-be-delivered client update is lost with
//     probability `loss_prob`, drawn from a dedicated stream in event
//     order.  Lost updates take the park-with-retry path: the delivery is
//     rescheduled after a deterministic exponential backoff, up to
//     `max_retries` attempts, then dropped permanently (the timeout case).
//
// The loss stream draws exactly one Bernoulli per delivery attempt, in
// queue pop order — shard-count invariant because pop order is.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/rng.h"
#include "util/serial.h"

namespace tifl::sim {

struct FaultConfig {
  // Per-delivery loss probability in [0, 1).  1 is rejected: every
  // attempt would be lost and retried forever.
  double loss_prob = 0.0;
  // Virtual time of the injected server crash; 0 disables.
  double crash_at = 0.0;
  // Redelivery attempts for a lost update before it is dropped for good.
  std::size_t max_retries = 3;
  // Deterministic backoff: attempt k waits min(max, base * factor^(k-1)).
  double backoff_base = 0.5;
  double backoff_factor = 2.0;
  double backoff_max = 30.0;
  std::uint64_t seed = 0;  // 0 = derive from the run seed

  bool active() const { return loss_prob > 0.0; }
};

// Raised by the engine when virtual time reaches FaultConfig::crash_at —
// the in-process stand-in for SIGKILL that lets ctest assert recovery
// without forking.  The CI smoke kills a real process as well.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(double time)
      : std::runtime_error("simulated server crash at virtual time " +
                           std::to_string(time)),
        time_(time) {}
  double time() const noexcept { return time_; }

 private:
  double time_;
};

class FaultModel {
 public:
  // Throws std::invalid_argument on loss_prob outside [0, 1), negative
  // crash/backoff parameters, or a zero backoff factor with retries.
  FaultModel(FaultConfig config, std::uint64_t run_seed);

  const FaultConfig& config() const { return config_; }
  bool active() const { return config_.active(); }
  double crash_at() const { return config_.crash_at; }

  // One Bernoulli draw from the loss stream (call once per delivery
  // attempt, in event order).  Always false when loss_prob == 0 — and
  // draws nothing, so enabling crash_at alone perturbs no streams.
  bool lose_update() {
    return config_.loss_prob > 0.0 && rng_.bernoulli(config_.loss_prob);
  }

  // Backoff before redelivery `attempt` (1-based).  RNG-free.
  double backoff(std::size_t attempt) const;

  // Checkpoint/resume: the loss-stream RNG position.
  void save_state(util::ByteSink& sink) const;
  void restore_state(util::ByteSource& source);

 private:
  FaultConfig config_;
  util::Rng rng_{0};
};

}  // namespace tifl::sim
