// Discrete virtual clock for the resource-heterogeneity simulation.
//
// The paper's testbed pins clients to CPU fractions and measures
// wall-clock training time; we instead *simulate* those latencies (see
// DESIGN.md §2) while running real model training at full host speed.
// The engine advances this clock by the synchronous-round latency
// Lr = max_i(L_i) (Eq. 1 of the paper) every round, so "training time"
// results have the testbed's shape without the testbed.
#pragma once

namespace tifl::sim {

class VirtualClock {
 public:
  double now() const noexcept { return now_seconds_; }

  void advance(double seconds) noexcept {
    if (seconds > 0) now_seconds_ += seconds;
  }

  void reset() noexcept { now_seconds_ = 0.0; }

 private:
  double now_seconds_ = 0.0;
};

}  // namespace tifl::sim
