#include "sim/churn_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tifl::sim {

namespace {

constexpr EventKind kStreamKinds[3] = {EventKind::kClientJoin,
                                       EventKind::kClientLeave,
                                       EventKind::kClientSlowdown};

// Exponential inter-arrival draw; u in [0, 1) keeps 1-u in (0, 1].
double exp_interval(double rate, util::Rng& rng) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

}  // namespace

ChurnModel::ChurnModel(ChurnConfig config, std::uint64_t run_seed)
    : config_(config) {
  for (double rate :
       {config_.join_rate, config_.leave_rate, config_.slowdown_rate}) {
    if (std::isnan(rate) || rate < 0.0) {
      throw std::invalid_argument("ChurnModel: negative or NaN rate");
    }
  }
  if (std::isnan(config_.slowdown_log_sigma) ||
      config_.slowdown_log_sigma < 0.0) {
    throw std::invalid_argument("ChurnModel: negative slowdown sigma");
  }
  const std::uint64_t seed =
      config_.seed != 0 ? config_.seed : util::mix_seed(run_seed, 0xC0FFEE);
  util::Rng root(seed);
  const double rates[3] = {config_.join_rate, config_.leave_rate,
                           config_.slowdown_rate};
  for (std::size_t s = 0; s < 3; ++s) {
    streams_[s].rate = rates[s];
    streams_[s].rng = root.fork(0xC1 + s);
    streams_[s].pending.kind = kStreamKinds[s];
    if (rates[s] > 0.0) advance(streams_[s]);
  }
}

void ChurnModel::advance(Stream& stream) {
  stream.pending.time += exp_interval(stream.rate, stream.rng);
  stream.pending.pick = stream.rng.next();
  stream.pending.factor =
      stream.pending.kind == EventKind::kClientSlowdown
          ? stream.rng.lognormal(config_.slowdown_log_mu,
                                 config_.slowdown_log_sigma)
          : 1.0;
}

std::optional<LifecycleEvent> ChurnModel::next() {
  // Earliest pending stream wins; exact time ties break join < leave <
  // slowdown (the declaration order), keeping the merge a pure function
  // of the seed.
  Stream* best = nullptr;
  for (Stream& stream : streams_) {
    if (stream.rate <= 0.0) continue;
    if (best == nullptr || stream.pending.time < best->pending.time) {
      best = &stream;
    }
  }
  if (best == nullptr) return std::nullopt;
  const LifecycleEvent event = best->pending;
  advance(*best);
  return event;
}

void ChurnModel::save_state(util::ByteSink& sink) const {
  for (const Stream& stream : streams_) {
    for (std::uint64_t word : stream.rng.state()) sink.put_u64(word);
    sink.put_f64(stream.pending.time);
    sink.put_u64(stream.pending.pick);
    sink.put_f64(stream.pending.factor);
  }
}

void ChurnModel::restore_state(util::ByteSource& source) {
  for (Stream& stream : streams_) {
    std::array<std::uint64_t, 4> words;
    for (std::uint64_t& word : words) word = source.get_u64();
    stream.rng.set_state(words);
    stream.pending.time = source.get_f64();
    stream.pending.pick = source.get_u64();
    stream.pending.factor = source.get_f64();
  }
}

std::vector<LifecycleEvent> ChurnModel::generate(double horizon) const {
  ChurnModel copy = *this;
  std::vector<LifecycleEvent> events;
  for (;;) {
    const std::optional<LifecycleEvent> event = copy.next();
    if (!event.has_value() || event->time >= horizon) break;
    events.push_back(*event);
  }
  return events;
}

std::vector<RegionalOutage> regional_outages(const ChurnConfig& config,
                                             std::uint64_t run_seed,
                                             std::size_t num_regions,
                                             double horizon, double duration) {
  if (num_regions == 0) {
    throw std::invalid_argument("regional_outages: num_regions must be > 0");
  }
  if (std::isnan(duration) || duration <= 0.0) {
    throw std::invalid_argument("regional_outages: duration must be > 0");
  }
  const ChurnModel model(config, run_seed);
  std::vector<RegionalOutage> raw;
  for (const LifecycleEvent& event : model.generate(horizon)) {
    if (event.kind != EventKind::kClientLeave) continue;
    raw.push_back(RegionalOutage{
        static_cast<std::size_t>(event.pick % num_regions), event.time,
        duration});
  }
  // Coalesce overlapping windows per region so a leaf's outage/rejoin
  // events strictly alternate on the timeline.
  std::sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
    return a.region != b.region ? a.region < b.region : a.start < b.start;
  });
  std::vector<RegionalOutage> merged;
  for (const RegionalOutage& window : raw) {
    if (!merged.empty() && merged.back().region == window.region &&
        window.start <= merged.back().start + merged.back().duration) {
      const double end = std::max(merged.back().start + merged.back().duration,
                                  window.start + window.duration);
      merged.back().duration = end - merged.back().start;
      continue;
    }
    merged.push_back(window);
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.start != b.start ? a.start < b.start : a.region < b.region;
  });
  return merged;
}

}  // namespace tifl::sim
