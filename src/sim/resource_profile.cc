#include "sim/resource_profile.h"

#include <numeric>
#include <stdexcept>

namespace tifl::sim {

std::vector<ResourceProfile> assign_equal_groups(
    std::size_t num_clients, const std::vector<double>& cpu_groups,
    double comm_seconds, double jitter_sigma, util::Rng& rng, bool shuffled) {
  if (cpu_groups.empty()) {
    throw std::invalid_argument("assign_equal_groups: need at least 1 group");
  }
  std::vector<std::size_t> group_of(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    // Equal-count assignment; remainder clients land in the last groups.
    group_of[c] = c * cpu_groups.size() / num_clients;
  }
  if (shuffled) rng.shuffle(group_of);

  std::vector<ResourceProfile> profiles(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    profiles[c] = ResourceProfile{
        .cpus = cpu_groups[group_of[c]],
        .comm_seconds = comm_seconds,
        .jitter_sigma = jitter_sigma,
        .unavailable = false,
    };
  }
  return profiles;
}

std::vector<double> casestudy_cpu_groups() {
  return {4.0, 2.0, 1.0, 1.0 / 3.0, 1.0 / 5.0};
}

std::vector<double> mnist_cpu_groups() { return {2.0, 1.0, 0.75, 0.5, 0.25}; }

std::vector<double> cifar_cpu_groups() { return {4.0, 2.0, 1.0, 0.5, 0.1}; }

std::vector<double> homogeneous_cpu_groups(double cpus) {
  return std::vector<double>(5, cpus);
}

}  // namespace tifl::sim
