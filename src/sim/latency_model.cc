#include "sim/latency_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tifl::sim {

double LatencyModel::expected_latency(const ResourceProfile& profile,
                                      std::size_t samples,
                                      std::size_t epochs) const {
  if (profile.unavailable) return std::numeric_limits<double>::infinity();
  const double cpus = std::max(profile.cpus, 1e-6);
  const double compute = static_cast<double>(epochs) *
                         static_cast<double>(samples) *
                         cost_.seconds_per_sample / cpus;
  return compute + cost_.fixed_overhead + profile.comm_seconds;
}

double LatencyModel::sample_latency(const ResourceProfile& profile,
                                    std::size_t samples, std::size_t epochs,
                                    util::Rng& rng) const {
  if (profile.unavailable) return std::numeric_limits<double>::infinity();
  const double cpus = std::max(profile.cpus, 1e-6);
  const double compute = static_cast<double>(epochs) *
                         static_cast<double>(samples) *
                         cost_.seconds_per_sample / cpus;
  // E[lognormal(mu, s)] = exp(mu + s^2/2); center it at 1 so the jitter is
  // mean-preserving and the profiler's mean latency matches expectation.
  const double s = profile.jitter_sigma;
  const double jitter = s > 0 ? rng.lognormal(-0.5 * s * s, s) : 1.0;
  return compute * jitter + cost_.fixed_overhead + profile.comm_seconds;
}

double LatencyModel::expected_link_delay(const LinkProfile& link,
                                         std::size_t payload_bytes) const {
  const double bandwidth = std::max(link.bandwidth_mbps, 1e-9);
  const double transfer =
      static_cast<double>(payload_bytes) * 8.0 / (bandwidth * 1e6);
  return link.latency_seconds + transfer;
}

double LatencyModel::sample_link_delay(const LinkProfile& link,
                                       std::size_t payload_bytes,
                                       util::Rng& rng) const {
  const double bandwidth = std::max(link.bandwidth_mbps, 1e-9);
  const double transfer =
      static_cast<double>(payload_bytes) * 8.0 / (bandwidth * 1e6);
  const double s = link.jitter_sigma;
  // One draw per delivery whenever jitter is on (even for an empty
  // payload), keeping the link stream's position a pure function of the
  // delivery count.
  const double jitter = s > 0 ? rng.lognormal(-0.5 * s * s, s) : 1.0;
  return link.latency_seconds + transfer * jitter;
}

util::Rng link_stream(std::uint64_t run_seed, std::uint64_t link_id) {
  return util::Rng(util::mix_seed(run_seed, 0x11A7, link_id));
}

CostModel cifar_cost_model() { return CostModel{0.010, 3.0}; }
CostModel mnist_cost_model() { return CostModel{0.004, 1.5}; }
CostModel femnist_cost_model() { return CostModel{0.012, 3.0}; }

}  // namespace tifl::sim
