#include "sim/fault_model.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace tifl::sim {

FaultModel::FaultModel(FaultConfig config, std::uint64_t run_seed)
    : config_(config) {
  if (std::isnan(config_.loss_prob) || config_.loss_prob < 0.0 ||
      config_.loss_prob >= 1.0) {
    throw std::invalid_argument("FaultModel: loss_prob must be in [0, 1)");
  }
  if (std::isnan(config_.crash_at) || config_.crash_at < 0.0) {
    throw std::invalid_argument("FaultModel: negative or NaN crash_at");
  }
  if (std::isnan(config_.backoff_base) || config_.backoff_base < 0.0 ||
      std::isnan(config_.backoff_max) || config_.backoff_max < 0.0) {
    throw std::invalid_argument("FaultModel: negative or NaN backoff");
  }
  if (std::isnan(config_.backoff_factor) || config_.backoff_factor <= 0.0) {
    throw std::invalid_argument("FaultModel: backoff factor must be > 0");
  }
  const std::uint64_t seed =
      config_.seed != 0 ? config_.seed : util::mix_seed(run_seed, 0xFA07);
  rng_ = util::Rng(seed);
}

double FaultModel::backoff(std::size_t attempt) const {
  double wait = config_.backoff_base;
  for (std::size_t k = 1; k < attempt; ++k) wait *= config_.backoff_factor;
  return std::min(wait, config_.backoff_max);
}

void FaultModel::save_state(util::ByteSink& sink) const {
  for (std::uint64_t word : rng_.state()) sink.put_u64(word);
}

void FaultModel::restore_state(util::ByteSource& source) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& word : words) word = source.get_u64();
  rng_.set_state(words);
}

}  // namespace tifl::sim
