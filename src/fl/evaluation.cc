#include "fl/evaluation.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tifl::fl {

nn::LossResult evaluate_weights(nn::Sequential& model,
                                std::span<const float> weights,
                                const data::Dataset& dataset,
                                std::size_t chunk) {
  if (chunk == 0) {
    throw std::invalid_argument("evaluate_weights: zero chunk size");
  }
  model.set_weights(weights);

  nn::LossResult total;
  std::size_t seen = 0;
  std::vector<std::size_t> indices;
  indices.reserve(chunk);
  for (std::size_t start = 0; start < dataset.size(); start += chunk) {
    const std::size_t end = std::min(dataset.size(), start + chunk);
    indices.clear();
    for (std::size_t i = start; i < end; ++i) indices.push_back(i);
    const data::Dataset::Batch batch = dataset.gather(indices);
    const nn::LossResult r = model.evaluate(batch.x, batch.y);
    const std::size_t n = end - start;
    total.loss += r.loss * static_cast<double>(n);
    total.accuracy += r.accuracy * static_cast<double>(n);
    seen += n;
  }
  if (seen > 0) {
    total.loss /= static_cast<double>(seen);
    total.accuracy /= static_cast<double>(seen);
  }
  return total;
}

}  // namespace tifl::fl
