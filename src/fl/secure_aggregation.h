// Secure aggregation via pairwise additive masking — the reason the
// paper (§2, citing Bonawitz et al. CCS'17) insists on *synchronous*
// rounds: masks only cancel when every paired client's contribution
// reaches the aggregator in the same round.
//
// Protocol (simplified, honest-but-curious server, no dropout recovery):
// every ordered client pair (i, j), i < j, derives a shared mask stream
// from a common seed; client i ADDS the stream to its update, client j
// SUBTRACTS it.  Individual masked updates are indistinguishable from
// noise to the aggregator, but their sum telescopes to the true sum.
// FedAvg weighting is preserved by having each client pre-scale its
// update by its sample count; the aggregator divides by the total.
//
// The full protocol's dropout recovery (secret-shared seeds) is out of
// scope — this module demonstrates compatibility, matching the paper's
// claim that TiFL's tiering is orthogonal to secure aggregation: masking
// happens per-round *within the selected cohort*, whatever policy chose
// it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tifl::fl {

// One client's view of a secure-aggregation round.
struct MaskedUpdate {
  std::vector<float> masked_weights;  // s_c * w_c + sum of pairwise masks
  double sample_count = 0.0;          // s_c (public metadata)
};

// Derives the deterministic pairwise mask seed for clients (a, b) in
// `round`; symmetric in (a, b) by construction.
std::uint64_t pairwise_mask_seed(std::uint64_t session_key, std::size_t a,
                                 std::size_t b, std::size_t round);

// Client-side masking: returns s_c * w_c plus all pairwise masks against
// the other cohort members (+stream when this id is the smaller of the
// pair, -stream otherwise).  `cohort` must list every participant of the
// round, including `self_id`, in a globally agreed order.
MaskedUpdate mask_update(std::span<const float> weights, double sample_count,
                         std::size_t self_id,
                         std::span<const std::size_t> cohort,
                         std::uint64_t session_key, std::size_t round);

// Server-side unmasking-by-summation: adds all masked updates (masks
// telescope away) and divides by the total sample count — the FedAvg
// result, computed without the server ever seeing a raw update.
std::vector<float> secure_fedavg(std::span<const MaskedUpdate> updates);

// Mask magnitude used to hide updates; exposed for tests.
inline constexpr float kMaskScale = 64.0f;

}  // namespace tifl::fl
