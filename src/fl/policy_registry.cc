#include "fl/policy_registry.h"

#include <stdexcept>

namespace tifl::fl {

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistry::PolicyRegistry() {
  add("vanilla",
      {.factory =
           [](const PolicyContext& context) {
             return std::make_unique<VanillaPolicy>(
                 context.num_clients, context.clients_per_round);
           },
       .summary = "conventional FL: |C| clients uniform over the pool",
       .sync = true,
       .async = false});
  add("overprovision",
      {.factory =
           [](const PolicyContext& context) {
             return std::make_unique<OverProvisionPolicy>(
                 context.num_clients, context.clients_per_round);
           },
       .summary = "select 130% of target, aggregate the fastest "
                  "[Bonawitz et al.]",
       .sync = true,
       .async = false});
  add("uniform-async",
      {.factory =
           [](const PolicyContext& context) {
             return std::make_unique<UniformTierPolicy>(
                 context.tier_round_clients());
           },
       .summary = "async default: uniform self-sampling within the "
                  "dispatching tier",
       .sync = false,
       .async = true});
}

void PolicyRegistry::add(std::string name, Entry entry) {
  if (name.empty()) {
    throw std::invalid_argument("PolicyRegistry: empty policy name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("PolicyRegistry: null factory for '" + name +
                                "'");
  }
  if (!entries_.emplace(std::move(name), std::move(entry)).second) {
    throw std::invalid_argument("PolicyRegistry: duplicate policy name");
  }
}

bool PolicyRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::vector<std::string> PolicyRegistry::names(EngineKind kind) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (kind == EngineKind::kSync ? entry.sync : entry.async) {
      out.push_back(name);
    }
  }
  return out;
}

std::string join_policy_names(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

const PolicyRegistry::Entry& PolicyRegistry::entry(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("unknown policy '" + name + "' (valid: " +
                                join_policy_names(names()) + ")");
  }
  return it->second;
}

std::unique_ptr<SelectionPolicy> PolicyRegistry::make(
    const PolicyContext& context, const std::string& name) const {
  return entry(name).factory(context);
}

std::unique_ptr<SelectionPolicy> make_policy(const std::string& name,
                                             const PolicyContext& context) {
  return PolicyRegistry::instance().make(context, name);
}

}  // namespace tifl::fl
