// Chunked model evaluation shared by the synchronous and asynchronous
// engines: load `weights` into a caller-owned scratch model and compute
// sample-weighted mean loss/accuracy over `dataset` in `chunk`-sized
// mini-batches (bounding peak activation memory on large test sets).
#pragma once

#include <cstddef>
#include <span>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace tifl::fl {

nn::LossResult evaluate_weights(nn::Sequential& model,
                                std::span<const float> weights,
                                const data::Dataset& dataset,
                                std::size_t chunk);

}  // namespace tifl::fl
