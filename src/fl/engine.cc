#include "fl/engine.h"

#include <algorithm>
#include <stdexcept>

#include "fl/evaluation.h"
#include "fl/secure_aggregation.h"

#include "obs/phase.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace tifl::fl {

Engine::Engine(EngineConfig config, nn::ModelFactory factory,
               std::vector<Client> clients, const data::Dataset* test,
               sim::LatencyModel latency_model)
    : config_(config),
      factory_(std::move(factory)),
      clients_(std::move(clients)),
      test_(test),
      latency_model_(latency_model) {
  if (clients_.empty()) {
    throw std::invalid_argument("Engine: no clients");
  }
  if (test_ == nullptr) {
    throw std::invalid_argument("Engine: null test dataset");
  }
}

void Engine::set_tier_eval_sets(std::vector<data::Dataset> sets) {
  tier_eval_sets_ = std::move(sets);
}

nn::Sequential& Engine::scratch_model(std::size_t slot) {
  while (scratch_.size() <= slot) {
    // Seed is irrelevant: scratch weights are always overwritten.
    scratch_.push_back(factory_(/*seed=*/slot + 1));
  }
  return scratch_[slot];
}

nn::LossResult Engine::evaluate(std::span<const float> weights,
                                const data::Dataset& dataset) {
  return evaluate_weights(scratch_model(0), weights, dataset,
                          config_.eval_chunk);
}

double Engine::expected_client_latency(std::size_t client_id) const {
  const Client& client = clients_.at(client_id);
  return latency_model_.expected_latency(
      client.resource(), client.train_size(), config_.local.epochs);
}

RunResult Engine::run(SelectionPolicy& policy,
                      std::optional<std::uint64_t> seed_override) {
  if (!policy.supports(EngineKind::kSync)) {
    throw std::invalid_argument(
        "Engine: policy '" + policy.name() +
        "' does not support the synchronous engine");
  }
  const std::uint64_t seed = seed_override.value_or(config_.seed);
  util::Rng root(seed);
  util::Rng policy_rng = root.fork(0xF01);
  util::Rng latency_rng = root.fork(0xF02);

  std::vector<float> global = factory_(seed).weights();
  double lr = config_.local.optimizer.lr;

  sim::VirtualClock clock;
  RunResult result;
  result.policy_name = policy.name();
  result.rounds.reserve(config_.rounds);

  HierarchicalAggregator hierarchical(config_.aggregator_fanout);
  obs::PhaseTimer phases;

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    SelectionContext context = SelectionContext::untiered(round, policy_rng);
    context.virtual_time = clock.now();
    Selection selection;
    {
      obs::ScopedPhase phase(&phases, obs::Phase::kSelect);
      selection = policy.select(context);
    }
    if (selection.clients.empty()) {
      throw std::logic_error("Engine: policy selected no clients");
    }
    const std::size_t n = selection.clients.size();

    // Pre-create scratch models serially (lazy growth is not thread-safe).
    for (std::size_t i = 0; i < n; ++i) scratch_model(i + 1);

    LocalTrainParams params = config_.local;
    params.lr = lr;

    // --- parallel local training -----------------------------------------
    std::vector<LocalUpdate> updates(n);
    {
      obs::ScopedPhase phase(&phases, obs::Phase::kTrain);
      util::global_pool().parallel_for(0, n, [&](std::size_t i) {
        const Client& client = clients_.at(selection.clients[i]);
        // Deterministic stream per (round, client id).
        util::Rng client_rng(util::mix_seed(seed, round, client.id()));
        updates[i] =
            client.local_update(global, scratch_[i + 1], params, client_rng);
      });
    }

    // --- simulated round latency (Eq. 1) ---------------------------------
    // With over-provisioning (aggregate_count < n) the aggregator
    // proceeds as soon as the fastest `aggregate_count` clients answer
    // and discards the stragglers' updates [Bonawitz et al.].
    std::vector<std::pair<double, std::size_t>> latency_by_slot(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Client& client = clients_.at(selection.clients[i]);
      latency_by_slot[i] = {latency_model_.sample_latency(
                                client.resource(), client.train_size(),
                                params.epochs, latency_rng),
                            i};
    }
    const std::size_t keep =
        selection.aggregate_count > 0 && selection.aggregate_count < n
            ? selection.aggregate_count
            : n;
    if (keep < n) {
      std::partial_sort(latency_by_slot.begin(),
                        latency_by_slot.begin() + keep,
                        latency_by_slot.end());
    }

    double round_latency = 0.0;
    double train_loss = 0.0;
    for (std::size_t i = 0; i < keep; ++i) {
      round_latency = std::max(round_latency, latency_by_slot[i].first);
      train_loss += updates[latency_by_slot[i].second].train_loss;
    }
    train_loss /= static_cast<double>(keep);
    clock.advance(round_latency);

    // --- aggregation ------------------------------------------------------
    obs::ScopedPhase agg_phase(&phases, obs::Phase::kAggregate);
    if (config_.secure_aggregation) {
      if (keep < n) {
        throw std::logic_error(
            "Engine: secure aggregation cannot drop stragglers — pairwise "
            "masks would not cancel (use a policy without over-"
            "provisioning, or disable secure_aggregation)");
      }
      std::vector<MaskedUpdate> masked(n);
      util::global_pool().parallel_for(0, n, [&](std::size_t i) {
        masked[i] = mask_update(
            updates[i].weights,
            static_cast<double>(updates[i].num_samples),
            selection.clients[i], selection.clients,
            config_.secure_session_key, round);
      });
      global = secure_fedavg(masked);
    } else {
      std::vector<WeightedUpdate> weighted;
      weighted.reserve(keep);
      for (std::size_t i = 0; i < keep; ++i) {
        const LocalUpdate& update = updates[latency_by_slot[i].second];
        weighted.push_back(WeightedUpdate{
            .weights = update.weights,
            .sample_count = static_cast<double>(update.num_samples)});
      }
      global = config_.hierarchical_aggregation
                   ? hierarchical.aggregate(weighted)
                   : fedavg(weighted);
    }
    agg_phase.stop();
    if (obs::Tracer* t = obs::tracer()) {
      t->span(clock.now() - round_latency, round_latency, "sync", "round",
              selection.tier,
              {obs::field("round", round), obs::field("clients", n),
               obs::field("kept", keep)});
    }

    lr *= config_.lr_decay_per_round;

    // --- evaluation + feedback -------------------------------------------
    RoundRecord record;
    record.round = round;
    record.round_latency = round_latency;
    record.virtual_time = clock.now();
    record.train_loss = train_loss;
    record.selected_tier = selection.tier;
    record.selected_clients = selection.clients;

    RoundFeedback feedback;
    feedback.round = round;
    feedback.virtual_time = clock.now();
    feedback.submitting_tier = selection.tier;
    const bool eval_now =
        round % config_.eval_every == 0 || round + 1 == config_.rounds;
    if (eval_now) {
      obs::ScopedPhase phase(&phases, obs::Phase::kEval);
      const nn::LossResult r = evaluate(global, *test_);
      phase.stop();
      record.global_accuracy = r.accuracy;
      record.global_loss = r.loss;
      if (obs::Tracer* t = obs::tracer()) {
        t->instant(clock.now(), "sync", "eval", selection.tier,
                   {obs::field("round", round),
                    obs::field("accuracy", r.accuracy)});
      }
      obs::ScopedPhase tier_phase(&phases, obs::Phase::kEval);
      for (const data::Dataset& tier_set : tier_eval_sets_) {
        feedback.tier_accuracies.push_back(
            tier_set.size() > 0 ? evaluate(global, tier_set).accuracy : 0.0);
      }
    } else if (!result.rounds.empty()) {
      // Carry the last evaluation forward so curves stay well-defined.
      record.global_accuracy = result.rounds.back().global_accuracy;
      record.global_loss = result.rounds.back().global_loss;
    }
    feedback.global_accuracy = record.global_accuracy;
    feedback.global_loss = record.global_loss;
    policy.observe(feedback);

    result.rounds.push_back(std::move(record));

    if (round % 50 == 0) {
      util::log_debug("round ", round, " policy=", policy.name(),
                      " acc=", result.rounds.back().global_accuracy,
                      " t=", result.rounds.back().virtual_time);
    }

    if (config_.time_budget_seconds > 0.0 &&
        clock.now() >= config_.time_budget_seconds) {
      util::log_info("time budget of ", config_.time_budget_seconds,
                     "s exhausted after round ", round + 1);
      break;
    }
  }
  result.phases = phases.stats();
  return result;
}

}  // namespace tifl::fl
