// String-keyed selection-policy registry.
//
// Every policy the runner/bench layer can name ("adaptive", "vanilla",
// "fast1", …) is a factory registered here, keyed by name and annotated
// with a one-line summary plus the engines it supports.  The registry
// subsumes the old `TiflSystem::make_*` factories and the bench-local
// name switch: `tifl_run --policy`, `run_policies` and the examples all
// resolve names through `make_policy(name, context)`, and `--help`
// renders its policy list from `names()` so documentation cannot drift
// from the code.
//
// Factories receive a `PolicyContext` — the plain-data snapshot of a
// system's population, tiering and profiling state a policy needs at
// construction time (core::TiflSystem::policy_context() builds one).
// The fl builtins (vanilla, overprovision, uniform-async) self-register;
// core::register_builtin_policies() adds the tiered TiFL policies.
// User policies register the same way — see examples/custom_policy.cpp.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fl/policy.h"

namespace tifl::fl {

// Construction-time snapshot of the federation a factory builds against.
// Plain data only, so the registry stays below src/core in the layering.
struct PolicyContext {
  std::size_t num_clients = 0;
  std::size_t clients_per_round = 5;
  // Clients sampled per async tier round; 0 inherits clients_per_round
  // (mirrors AsyncConfig::clients_per_tier_round resolution).
  std::size_t clients_per_tier_round = 0;

  std::size_t tier_round_clients() const {
    return clients_per_tier_round > 0 ? clients_per_tier_round
                                      : clients_per_round;
  }
  // Sync rounds / async global versions the run will produce (sizes
  // adaptive credit schedules and ChangeProbs intervals).
  std::size_t total_rounds = 0;
  // Tier structure (fastest tier first); empty when untiered.
  std::vector<std::vector<std::size_t>> tier_members;
  std::vector<double> tier_avg_latency;
  // Profiling outputs (deadline-style policies); empty when unavailable.
  std::vector<double> client_mean_latency;
  std::vector<bool> client_dropout;
};

class PolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<SelectionPolicy>(const PolicyContext&)>;

  struct Entry {
    Factory factory;
    std::string summary;  // one-line --help text
    bool sync = true;     // engines the produced policy supports (must
    bool async = false;   // match SelectionPolicy::supports; test-pinned)
  };

  // Process-wide instance, pre-loaded with the fl builtins.
  static PolicyRegistry& instance();

  // Registers a factory under `name`; throws std::invalid_argument on a
  // duplicate name.
  void add(std::string name, Entry entry);

  bool contains(const std::string& name) const;

  // All registered names, sorted; the EngineKind overload keeps only
  // policies that support that engine.
  std::vector<std::string> names() const;
  std::vector<std::string> names(EngineKind kind) const;

  // Lookup; unknown names throw std::invalid_argument listing every
  // valid option.
  const Entry& entry(const std::string& name) const;
  std::unique_ptr<SelectionPolicy> make(const PolicyContext& context,
                                        const std::string& name) const;

 private:
  PolicyRegistry();

  std::map<std::string, Entry> entries_;
};

// Sugar for PolicyRegistry::instance().make(context, name).
std::unique_ptr<SelectionPolicy> make_policy(const std::string& name,
                                             const PolicyContext& context);

// "a, b, c" — the formatting shared by the registry's unknown-name error
// and the engines'/runner's capability errors and help text.
std::string join_policy_names(const std::vector<std::string>& names);

}  // namespace tifl::fl
