#include "fl/metrics.h"

#include <algorithm>

#include "util/table.h"

namespace tifl::fl {

double RunResult::best_accuracy() const {
  double best = 0.0;
  for (const RoundRecord& r : rounds) {
    best = std::max(best, r.global_accuracy);
  }
  return best;
}

double RunResult::accuracy_at_time(double t) const {
  double acc = 0.0;
  for (const RoundRecord& r : rounds) {
    if (r.virtual_time > t) break;
    acc = r.global_accuracy;
  }
  return acc;
}

double RunResult::time_to_accuracy(double target) const {
  for (const RoundRecord& r : rounds) {
    if (r.global_accuracy >= target) return r.virtual_time;
  }
  return -1.0;
}

void RunResult::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  csv.write_row({"round", "virtual_time", "round_latency", "accuracy",
                 "loss", "tier"});
  for (const RoundRecord& r : rounds) {
    csv.write_row({std::to_string(r.round),
                   util::format_double(r.virtual_time, 3),
                   util::format_double(r.round_latency, 3),
                   util::format_double(r.global_accuracy, 4),
                   util::format_double(r.global_loss, 4),
                   std::to_string(r.selected_tier)});
  }
}

}  // namespace tifl::fl
