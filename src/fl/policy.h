// Client-selection policy interface (v2, context-driven).
//
// One policy API drives both engines.  The engine hands the policy a
// `SelectionContext` describing *where* in the federation the selection
// happens and feeds back what it observed afterwards:
//
//  * Synchronous engine (Algorithm 1): one select() per round with
//    `context.tier == -1` — the policy picks the tier (or ignores tiers
//    entirely) and returns the round's clients.  TiFL's static and
//    adaptive tier policies (src/core) work this way; `VanillaPolicy`
//    below is the conventional-FL baseline that samples |C| clients
//    uniformly from the whole pool [McMahan et al., Bonawitz et al.].
//
//  * Asynchronous engine (FedAT-style per-tier cadence): one select()
//    per *tier round* with `context.tier >= 0` — the engine already knows
//    which tier is dispatching; the policy picks that round's member
//    sample from `context.candidates` and may bias the tier's cadence by
//    returning more, fewer, or zero clients (zero parks the tier until
//    the next global version).  `UniformTierPolicy` is the engine's
//    default and replays uniform self-sampling bit for bit.
//
// Policies advertise which engines they can drive via supports(); the
// engines reject mismatched policies up front instead of silently
// ignoring them.  Lifecycle notifications (on_join/on_leave/on_retier)
// let policies track dynamic populations on the async engine's churn
// path.  See fl/policy_registry.h for the string-keyed factory registry.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/serial.h"

namespace tifl::fl {

// Engines a policy can drive (see SelectionPolicy::supports).
enum class EngineKind { kSync, kAsync };

std::string engine_kind_name(EngineKind kind);

struct Selection {
  std::vector<std::size_t> clients;
  int tier = -1;  // tier index the clients came from; -1 = untiered
  // When > 0 and < clients.size(), the engine aggregates only the
  // `aggregate_count` fastest responders and discards the rest — the
  // over-provisioning straggler mitigation of Bonawitz et al. ("select
  // 130 % of the target number of devices, discard stragglers") that the
  // paper discusses in §2.  0 means aggregate everyone.  Synchronous
  // engine only.
  std::size_t aggregate_count = 0;
};

// Read-only view of the engine's tier state at selection time.  The sync
// engine is tier-agnostic and passes an empty view (sync policies carry
// their own membership snapshot from core::TierInfo); the async engine
// fills all three spans, and on its dynamic path `members` reflects the
// *live* evolving membership after joins, leaves and re-tierings.
struct TierView {
  // members[t] = live client ids of tier t (fastest tier first).
  std::span<const std::vector<std::size_t>> members;
  // Submissions per tier so far (the async engine's update counts).
  std::span<const std::size_t> update_counts;
  // Global versions since each tier last submitted (0 for never-submitted
  // tiers and for the freshest tier).
  std::span<const std::size_t> staleness;

  std::size_t tier_count() const { return members.size(); }
  std::size_t tier_size(std::size_t t) const { return members[t].size(); }
  bool empty() const { return members.empty(); }
};

struct SelectionContext {
  // Sync: round index.  Async: current global version (completed tier
  // submissions so far).
  std::size_t round = 0;
  // Virtual seconds elapsed on the engine's clock/event timeline.
  double virtual_time = 0.0;
  // Async per-tier cadence: the tier whose round is being dispatched —
  // the policy samples *within* this tier.  -1 on the sync engine, where
  // the policy picks the tier itself.
  int tier = -1;
  // Async only: the dispatching tier's currently-eligible member ids
  // (the dynamic path excludes clients already in flight).  Returned
  // Selection::clients must come from this set.
  std::span<const std::size_t> candidates;
  TierView tiers;
  // The policy's dedicated RNG stream, forked from the run seed (the
  // async engine forks one stream per tier so cadences stay independent).
  // Never null when an engine builds the context.
  util::Rng* rng = nullptr;

  util::Rng& stream() const { return *rng; }

  // Minimal untiered context — the v1 `select(round, rng)` call shape,
  // used by the sync engine and directly by tests/benches.
  static SelectionContext untiered(std::size_t round, util::Rng& rng) {
    SelectionContext context;
    context.round = round;
    context.rng = &rng;
    return context;
  }
};

struct RoundFeedback {
  std::size_t round = 0;
  double virtual_time = 0.0;
  double global_accuracy = 0.0;
  double global_loss = 0.0;
  // Mean test accuracy per tier (Alg. 2's A_t^r); empty when the engine
  // has no tier evaluation sets or did not evaluate this round.
  std::vector<double> tier_accuracies;
  // Tier whose update produced this round/global version (sync: the
  // selected tier; -1 when untiered).
  int submitting_tier = -1;
  // Async: how many global versions old the submitted update was at
  // aggregation time.  Always 0 on the sync engine.
  std::size_t staleness = 0;
};

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  virtual Selection select(const SelectionContext& context) = 0;

  // v1 call shape, kept as sugar for untiered callers (tests, benches,
  // the sync engine's own plumbing).  Derived classes re-expose it with
  // `using SelectionPolicy::select;`.
  Selection select(std::size_t round, util::Rng& rng) {
    return select(SelectionContext::untiered(round, rng));
  }

  virtual void observe(const RoundFeedback& feedback) { (void)feedback; }
  virtual std::string name() const = 0;

  // True when observe() consumes RoundFeedback::tier_accuracies — lets
  // the system skip materializing and evaluating per-tier test sets
  // (tier_count extra forward passes per evaluated version) for policies
  // that would discard them.
  virtual bool needs_tier_feedback() const { return false; }

  // Which engines this policy can drive.  Default: synchronous only —
  // driving the async engine's per-tier cadence requires an explicit
  // within-tier sampling strategy.
  virtual bool supports(EngineKind kind) const {
    return kind == EngineKind::kSync;
  }

  // --- dynamic-population notifications (async churn path) ------------------
  // `tier` is where the engine placed the joiner.
  virtual void on_join(std::size_t client, std::size_t tier) {
    (void)client;
    (void)tier;
  }
  virtual void on_leave(std::size_t client) { (void)client; }
  // Full new membership after an online re-tiering (tier_count() lists).
  virtual void on_retier(std::span<const std::vector<std::size_t>> members) {
    (void)members;
  }

  // --- checkpoint/resume ------------------------------------------------------
  // Serialize/restore the policy's mutable state (probabilities, credits,
  // accuracy histories, ...).  Stateless policies — every selection a pure
  // function of the SelectionContext and its RNG stream — keep the no-op
  // default; the engine's snapshot still records the policy name and
  // rejects a resume under a different policy.
  virtual void save_state(util::ByteSink& sink) const { (void)sink; }
  virtual void restore_state(util::ByteSource& source) { (void)source; }
};

class VanillaPolicy final : public SelectionPolicy {
 public:
  VanillaPolicy(std::size_t num_clients, std::size_t clients_per_round);

  using SelectionPolicy::select;
  Selection select(const SelectionContext& context) override;
  std::string name() const override { return "vanilla"; }

 private:
  std::size_t num_clients_;
  std::size_t clients_per_round_;
};

// Over-provisioning baseline [Bonawitz et al., discussed in §2]: selects
// ceil(factor * target) clients uniformly at random and tells the engine
// to aggregate only the `target` fastest responders.  Trades wasted
// client work (and the data of the discarded stragglers) for shorter
// rounds — the strategy TiFL's tiering is designed to replace.  Sync
// only: "discard the stragglers" has no meaning when every tier proceeds
// at its own pace.
class OverProvisionPolicy final : public SelectionPolicy {
 public:
  OverProvisionPolicy(std::size_t num_clients, std::size_t target,
                      double factor = 1.3);

  using SelectionPolicy::select;
  Selection select(const SelectionContext& context) override;
  std::string name() const override { return "overprovision"; }

  std::size_t selected_per_round() const { return selected_per_round_; }

 private:
  std::size_t num_clients_;
  std::size_t target_;
  std::size_t selected_per_round_;
};

// The async engine's default: sample `clients_per_tier_round` members
// uniformly from the dispatching tier — exactly the uniform self-sampling
// the engine hard-coded before the policy seam existed (a determinism
// ctest asserts the replay is bit-for-bit).  Async only: it has no way to
// pick a tier by itself.
class UniformTierPolicy final : public SelectionPolicy {
 public:
  explicit UniformTierPolicy(std::size_t clients_per_tier_round);

  using SelectionPolicy::select;
  Selection select(const SelectionContext& context) override;
  std::string name() const override { return "uniform-async"; }
  bool supports(EngineKind kind) const override {
    return kind == EngineKind::kAsync;
  }

 private:
  std::size_t clients_per_tier_round_;
};

// Uniform sample of `count` distinct values from [0, n) — partial
// Fisher-Yates; shared by every policy implementation.
std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                    std::size_t count,
                                                    util::Rng& rng);

}  // namespace tifl::fl
