// Client-selection policy interface.
//
// The engine asks the policy which clients train each round and feeds
// back what it observed (global accuracy, per-tier accuracies when tier
// evaluation sets are configured).  TiFL's static and adaptive tier
// policies (src/core) implement this interface; `VanillaPolicy` below is
// the conventional-FL baseline that samples |C| clients uniformly from
// the whole pool [McMahan et al., Bonawitz et al.].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tifl::fl {

struct Selection {
  std::vector<std::size_t> clients;
  int tier = -1;  // tier index the clients came from; -1 = untiered
  // When > 0 and < clients.size(), the engine aggregates only the
  // `aggregate_count` fastest responders and discards the rest — the
  // over-provisioning straggler mitigation of Bonawitz et al. ("select
  // 130 % of the target number of devices, discard stragglers") that the
  // paper discusses in §2.  0 means aggregate everyone.
  std::size_t aggregate_count = 0;
};

struct RoundFeedback {
  std::size_t round = 0;
  double global_accuracy = 0.0;
  double global_loss = 0.0;
  // Mean test accuracy per tier (Alg. 2's A_t^r); empty when the engine
  // has no tier evaluation sets.
  std::vector<double> tier_accuracies;
};

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  virtual Selection select(std::size_t round, util::Rng& rng) = 0;
  virtual void observe(const RoundFeedback& feedback) { (void)feedback; }
  virtual std::string name() const = 0;
};

class VanillaPolicy final : public SelectionPolicy {
 public:
  VanillaPolicy(std::size_t num_clients, std::size_t clients_per_round);

  Selection select(std::size_t round, util::Rng& rng) override;
  std::string name() const override { return "vanilla"; }

 private:
  std::size_t num_clients_;
  std::size_t clients_per_round_;
};

// Over-provisioning baseline [Bonawitz et al., discussed in §2]: selects
// ceil(factor * target) clients uniformly at random and tells the engine
// to aggregate only the `target` fastest responders.  Trades wasted
// client work (and the data of the discarded stragglers) for shorter
// rounds — the strategy TiFL's tiering is designed to replace.
class OverProvisionPolicy final : public SelectionPolicy {
 public:
  OverProvisionPolicy(std::size_t num_clients, std::size_t target,
                      double factor = 1.3);

  Selection select(std::size_t round, util::Rng& rng) override;
  std::string name() const override { return "overprovision"; }

  std::size_t selected_per_round() const { return selected_per_round_; }

 private:
  std::size_t num_clients_;
  std::size_t target_;
  std::size_t selected_per_round_;
};

// Uniform sample of `count` distinct values from [0, n) — partial
// Fisher-Yates; shared by every policy implementation.
std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                    std::size_t count,
                                                    util::Rng& rng);

}  // namespace tifl::fl
