#include "fl/client.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tifl::fl {

Client::Client(std::size_t id, const data::Dataset* train,
               std::vector<std::size_t> train_indices,
               std::vector<std::size_t> test_indices,
               sim::ResourceProfile resource)
    : id_(id),
      train_(train),
      train_indices_(std::move(train_indices)),
      test_indices_(std::move(test_indices)),
      resource_(resource) {
  if (train_ == nullptr) {
    throw std::invalid_argument("Client: null training dataset");
  }
}

LocalUpdate Client::local_update(std::span<const float> global_weights,
                                 nn::Sequential& model,
                                 const LocalTrainParams& params,
                                 util::Rng rng) const {
  model.set_weights(global_weights);
  auto optimizer = params.optimizer.make(params.lr);

  LocalUpdate update;
  update.num_samples = train_indices_.size();
  if (train_indices_.empty()) {
    update.weights.assign(global_weights.begin(), global_weights.end());
    return update;
  }

  std::vector<std::size_t> order = train_indices_;
  double loss_sum = 0.0;
  double acc_sum = 0.0;
  std::size_t batches = 0;

  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += params.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + params.batch_size);
      const data::Dataset::Batch batch = train_->gather(
          std::span<const std::size_t>(order).subspan(start, end - start));
      const nn::LossResult result =
          model.train_batch(batch.x, batch.y, *optimizer, rng);
      loss_sum += result.loss;
      acc_sum += result.accuracy;
      ++batches;
    }
  }

  update.weights = model.weights();
  if (batches > 0) {
    update.train_loss = loss_sum / static_cast<double>(batches);
    update.train_accuracy = acc_sum / static_cast<double>(batches);
  }

  // Client-level DP (§4.6): clip the update delta and add Gaussian noise
  // before it ever leaves the client.
  if (params.dp_clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < update.weights.size(); ++i) {
      const double d = static_cast<double>(update.weights[i]) -
                       static_cast<double>(global_weights[i]);
      norm_sq += d * d;
    }
    const double norm = std::sqrt(norm_sq);
    const double scale =
        norm > params.dp_clip_norm ? params.dp_clip_norm / norm : 1.0;
    for (std::size_t i = 0; i < update.weights.size(); ++i) {
      const double d = (static_cast<double>(update.weights[i]) -
                        static_cast<double>(global_weights[i])) *
                       scale;
      const double noise = params.dp_noise_sigma > 0.0
                               ? rng.normal(0.0, params.dp_noise_sigma)
                               : 0.0;
      update.weights[i] =
          static_cast<float>(static_cast<double>(global_weights[i]) + d +
                             noise);
    }
  }
  return update;
}

std::vector<Client> make_clients(
    const data::Dataset* train, const data::Partition& partition,
    const std::vector<std::vector<std::size_t>>& test_shards,
    const std::vector<sim::ResourceProfile>& resources) {
  if (partition.size() != resources.size() ||
      partition.size() != test_shards.size()) {
    throw std::invalid_argument(
        "make_clients: partition/test/resource size mismatch");
  }
  std::vector<Client> clients;
  clients.reserve(partition.size());
  for (std::size_t c = 0; c < partition.size(); ++c) {
    clients.emplace_back(c, train, partition[c], test_shards[c],
                         resources[c]);
  }
  return clients;
}

}  // namespace tifl::fl
