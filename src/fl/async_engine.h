// Asynchronous tier execution engine (FedAT-style, Chai et al. 2020).
//
// Where the synchronous engine pays Eq. 1's max() over every selected
// client each round, here each *tier* trains and submits updates at its
// own cadence on a shared discrete-event timeline (sim::EventQueue):
//
//   per tier round: sample |C| clients from the tier -> train them from a
//   snapshot of the current global model -> the tier's completion event
//   fires after the slowest member's simulated latency -> FedAvg the tier
//   update into the tier's model -> recompute the global model as a
//   staleness-weighted cross-tier average -> the tier immediately starts
//   its next round from the new global model.
//
// Fast tiers therefore contribute many slightly-stale updates while slow
// tiers contribute few very-stale ones; the staleness function controls
// how the server discounts (or, for inverse-frequency, boosts) each
// tier's model in the cross-tier average.
//
// Determinism matches the sync engine's guarantee: client training RNGs
// are forked by (dispatch sequence, client id), per-tier selection and
// latency streams are forked from the run seed, and all reductions
// happen in event order — so a run is bit-reproducible regardless of
// thread scheduling.  Tier 0's selection/latency streams deliberately
// reuse the sync engine's fork tags: a single-tier async run with the
// constant staleness function replays a sync VanillaPolicy run *exactly*
// (a ctest asserts bitwise-equal weights).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/engine.h"
#include "fl/metrics.h"
#include "nn/sequential.h"
#include "sim/event_queue.h"
#include "sim/latency_model.h"

namespace tifl::fl {

// How the server discounts a tier model that is `staleness` global
// versions old when recomputing the cross-tier average.
enum class StalenessFn {
  kConstant,          // every submitted tier weighs 1
  kPolynomial,        // (1 + staleness)^-alpha  [FedAsync, Xie et al.]
  kInverseFrequency,  // 1 + (u_max - u_t): boost rarely-updating (slow)
                      // tiers to counter fast-tier bias [FedAT]
};

StalenessFn parse_staleness(const std::string& name);
std::string staleness_name(StalenessFn fn);

// Decay factor for one tier model: 1 for kConstant/kInverseFrequency
// (which weighs by update counts, not age), (1+s)^-alpha for kPolynomial.
double staleness_factor(StalenessFn fn, double alpha, std::size_t staleness);

// Normalized cross-tier aggregation weights.  `update_counts[t]` is how
// many rounds tier t has submitted, `staleness[t]` how many global
// versions ago it last submitted.  Tiers with zero submissions get weight
// 0; the rest sum to exactly 1.
std::vector<double> cross_tier_weights(StalenessFn fn, double alpha,
                                       std::span<const std::size_t> update_counts,
                                       std::span<const std::size_t> staleness);

struct AsyncConfig {
  StalenessFn staleness = StalenessFn::kConstant;
  double poly_alpha = 0.5;            // kPolynomial decay exponent
  // Total number of global model versions (tier submissions) to produce —
  // the async analogue of EngineConfig::rounds.  0 = inherit rounds.
  std::size_t total_updates = 0;
  // Clients sampled per tier round (capped at tier size).  0 = inherit
  // SystemConfig::clients_per_round.
  std::size_t clients_per_tier_round = 0;
  double time_budget_seconds = 0.0;   // stop once virtual time crosses; 0 = off
  std::size_t eval_every = 1;         // global-version evaluation cadence
};

struct AsyncRunResult {
  // One RoundRecord per global version: selected_tier is the submitting
  // tier, round_latency its tier-round duration, virtual_time the event
  // timestamp.  The sync-engine metrics helpers (time_to_accuracy,
  // accuracy_at_time, write_csv) all apply unchanged.
  RunResult result;
  std::vector<float> final_weights;        // for bit-reproducibility checks
  std::vector<std::size_t> tier_updates;   // submissions per tier
  std::vector<double> mean_staleness;      // mean submit staleness per tier
  std::vector<double> final_tier_weights;  // cross-tier weights at the end
};

class AsyncEngine {
 public:
  // `clients` is non-owning and must outlive the engine; `tier_members`
  // holds client ids per tier (fastest first, as in core::TierInfo) —
  // empty tiers are skipped, dropouts must already be excluded.
  AsyncEngine(EngineConfig config, AsyncConfig async,
              nn::ModelFactory factory, const std::vector<Client>* clients,
              std::vector<std::vector<std::size_t>> tier_members,
              const data::Dataset* test, sim::LatencyModel latency_model);

  AsyncRunResult run(std::optional<std::uint64_t> seed_override = {});

  nn::LossResult evaluate(std::span<const float> weights,
                          const data::Dataset& dataset);

  const AsyncConfig& async_config() const { return async_; }
  std::size_t tier_count() const { return tier_members_.size(); }

 private:
  struct PendingRound;  // one in-flight tier round (defined in the .cc)

  nn::Sequential& scratch_model(std::size_t slot);

  EngineConfig config_;
  AsyncConfig async_;
  nn::ModelFactory factory_;
  const std::vector<Client>* clients_;
  std::vector<std::vector<std::size_t>> tier_members_;
  const data::Dataset* test_;
  sim::LatencyModel latency_model_;
  std::vector<nn::Sequential> scratch_;  // slot 0 = eval, 1.. = training
};

}  // namespace tifl::fl
