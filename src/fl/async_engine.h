// Asynchronous tier execution engine (FedAT-style, Chai et al. 2020).
//
// Where the synchronous engine pays Eq. 1's max() over every selected
// client each round, here each *tier* trains and submits updates at its
// own cadence on a shared discrete-event timeline (sim::EventQueue):
//
//   per tier round: the selection policy samples the tier's members
//   (default: |C| uniform; see set_policy) -> train them from a
//   snapshot of the current global model -> the tier's completion event
//   fires after the slowest member's simulated latency -> FedAvg the tier
//   update into the tier's model -> recompute the global model as a
//   staleness-weighted cross-tier average -> the tier immediately starts
//   its next round from the new global model.
//
// Fast tiers therefore contribute many slightly-stale updates while slow
// tiers contribute few very-stale ones; the staleness function controls
// how the server discounts (or, for inverse-frequency, boosts) each
// tier's model in the cross-tier average.
//
// Determinism matches the sync engine's guarantee: client training RNGs
// are forked by (dispatch sequence, client id), per-tier selection and
// latency streams are forked from the run seed, and all reductions
// happen in event order — so a run is bit-reproducible regardless of
// thread scheduling.  Tier 0's selection/latency streams deliberately
// reuse the sync engine's fork tags: a single-tier async run with the
// constant staleness function replays a sync VanillaPolicy run *exactly*
// (a ctest asserts bitwise-equal weights).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <functional>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/client_pool.h"
#include "fl/engine.h"
#include "fl/metrics.h"
#include "fl/policy.h"
#include "nn/sequential.h"
#include "sim/churn_model.h"
#include "sim/event_queue.h"
#include "sim/fault_model.h"
#include "sim/latency_model.h"
#include "util/serial.h"

namespace tifl::util {
class ThreadPool;
}

namespace tifl::fl {

// How the server discounts a tier model that is `staleness` global
// versions old when recomputing the cross-tier average.
enum class StalenessFn {
  kConstant,          // every submitted tier weighs 1
  kPolynomial,        // (1 + staleness)^-alpha  [FedAsync, Xie et al.]
  kInverseFrequency,  // 1 + (u_max - u_t): boost rarely-updating (slow)
                      // tiers to counter fast-tier bias [FedAT]
};

StalenessFn parse_staleness(const std::string& name);
std::string staleness_name(StalenessFn fn);

// Decay factor for one tier model: 1 for kConstant/kInverseFrequency
// (which weighs by update counts, not age), (1+s)^-alpha for kPolynomial.
double staleness_factor(StalenessFn fn, double alpha, std::size_t staleness);

// Normalized cross-tier aggregation weights.  `update_counts[t]` is how
// many rounds tier t has submitted, `staleness[t]` how many global
// versions ago it last submitted.  Tiers with zero submissions get weight
// 0; the rest sum to exactly 1.
std::vector<double> cross_tier_weights(StalenessFn fn, double alpha,
                                       std::span<const std::size_t> update_counts,
                                       std::span<const std::size_t> staleness);

// Recompute `global` as the weighted average of `tier_models`
// (double-precision reduction in slot order; zero-weight slots skipped).
// `accum` is caller-owned scratch, hoisted out of event loops.  Shared
// with the fl/hier aggregator tree, where a node's child (or tier) slots
// play the role the flat engine's tiers play.
void aggregate_global(const std::vector<std::vector<float>>& tier_models,
                      const std::vector<double>& weights,
                      std::vector<float>& global, std::vector<double>& accum);

struct AsyncConfig {
  StalenessFn staleness = StalenessFn::kConstant;
  double poly_alpha = 0.5;            // kPolynomial decay exponent
  // Total number of global model versions (tier submissions) to produce —
  // the async analogue of EngineConfig::rounds.  0 = inherit rounds.
  std::size_t total_updates = 0;
  // Clients sampled per tier round (capped at tier size).  0 = inherit
  // SystemConfig::clients_per_round.
  std::size_t clients_per_tier_round = 0;
  double time_budget_seconds = 0.0;   // stop once virtual time crosses; 0 = off
  std::size_t eval_every = 1;         // global-version evaluation cadence

  // --- dynamic client lifecycle --------------------------------------------
  // Join/leave/slowdown event streams on the shared timeline.  Any
  // positive rate (or reprofile_every > 0) switches the engine to the
  // dynamic path: per-client update submission, churn handling, online
  // re-tiering.  All-zero churn with reprofile_every == 0 runs the exact
  // static-population code path, bit for bit.
  sim::ChurnConfig churn;
  // Virtual seconds between online re-tierings (ReProfile events); 0 = the
  // initial tiering stays frozen for the whole run.
  double reprofile_every = 0.0;
  // EMA weight for the observed-latency estimates that feed re-tiering.
  double latency_ema_alpha = 0.3;
  // Take the dynamic path (per-client submission) even with zero churn
  // and no re-profiling — a churn-free baseline comparable version-for-
  // version with churned runs.
  bool dynamic_lifecycle = false;

  // --- sharded runtime -------------------------------------------------------
  // Worker shards for the event queue (sim::ShardedEventQueue): each
  // shard owns a contiguous actor range and its own event heap.  The
  // global pop order is the single-heap (time, seq) order at every shard
  // count, so results are bit-reproducible across --shards values
  // (determinism ctests pin 1/2/4/8).  Clamped to the actor count.
  std::size_t shards = 1;
  // Virtual-time barrier window for the dynamic path: events inside
  // [T, T + barrier_window] are processed in exact global order with
  // cohort *training* deferred to the window's end, where all pending
  // cohorts flush through one thread-pool pass.  Training tasks are
  // order-independent — each trains from the global snapshot taken at its
  // dispatch with an RNG forked from (dispatch seq, client id) — so any
  // window (including 0, the flush-every-timestamp default) produces
  // byte-identical results; the window only widens the batch of
  // train-parallelism between barriers.
  double barrier_window = 0.0;

  // --- durability ------------------------------------------------------------
  // Virtual seconds between full-run snapshots (fl::save_snapshot into
  // `checkpoint_path`); 0 disables checkpointing.  A snapshot captures the
  // complete resumable state — model + per-tier models, RNG stream
  // positions, policy and re-tierer state, in-flight cohorts, the event
  // queue — so a killed run resumed from it replays the uninterrupted run
  // byte for byte.  Checkpoints fire at batch boundaries (never as queue
  // events), so enabling them perturbs no (time, seq) keys.
  double checkpoint_every = 0.0;
  std::string checkpoint_path;  // required when checkpoint_every > 0
  // Load this snapshot and continue the run it captured instead of
  // starting fresh.  The snapshot's config fingerprint, population and
  // policy must match; the shard count and barrier window may differ
  // (both are bit-invariant knobs).
  std::string resume_path;
  // Append-only CRC-framed log of processed events (sim::EventLogWriter);
  // truncated to the snapshot's horizon on resume.  Empty = off.
  std::string event_log_path;
  // Seeded fault injection: server crash point + client update loss with
  // deterministic retry/backoff (see sim::FaultModel).
  sim::FaultConfig fault;
};

// Callbacks the dynamic lifecycle path raises toward the tiering layer
// (core::TiflSystem wires these to an OnlineReTierer; the engine itself
// stays ignorant of how tiers are computed).  All optional except
// `retier`, which is required when reprofile_every > 0.
struct LifecycleHooks {
  // One observed end-to-end response latency (includes mid-round
  // slowdowns) for a completed client update.
  std::function<void(std::size_t client, double latency)> observe;
  // A client joined; `expected_latency` is the engine's current estimate
  // for it (including any persistent slowdown multiplier it picked up
  // before leaving).  Returns the tier to place it in until the next
  // re-profile.  When absent the engine places the joiner into the tier
  // whose live members' mean expected latency is nearest.
  std::function<std::size_t(std::size_t client, double expected_latency)>
      joined;
  std::function<void(std::size_t client)> left;
  // ReProfile fired: return the full new tier membership (exactly
  // tier_count() lists over live clients).  Pending rounds keep running;
  // the new membership only affects future sampling.
  std::function<std::vector<std::vector<std::size_t>>()> retier;
  // Durability seam: serialize/restore the tiering layer's online state
  // (core::TiflSystem wires these to OnlineReTierer::save_state /
  // restore_state) into the engine's run snapshot, so a resumed run
  // re-tiers from the exact EMA estimates the killed run had.
  std::function<void(util::ByteSink&)> save_state;
  std::function<void(util::ByteSource&)> restore_state;
};

struct AsyncRunResult {
  // One RoundRecord per global version: selected_tier is the submitting
  // tier, round_latency its tier-round duration (dynamic path: the
  // submitting client's own response latency), virtual_time the event
  // timestamp.  The sync-engine metrics helpers (time_to_accuracy,
  // accuracy_at_time, write_csv) all apply unchanged.
  RunResult result;
  std::vector<float> final_weights;        // for bit-reproducibility checks
  std::vector<std::size_t> tier_updates;   // submissions per tier
  std::vector<double> mean_staleness;      // mean submit staleness per tier
  std::vector<double> final_tier_weights;  // cross-tier weights at the end
  // Dynamic-lifecycle accounting (zero on the static path except
  // final_live_clients, which counts the tier members).
  std::size_t join_count = 0;
  std::size_t leave_count = 0;
  std::size_t slowdown_count = 0;
  std::size_t reprofile_count = 0;
  std::size_t final_live_clients = 0;
  // Event-loop accounting: total events consumed and the largest
  // same-timestamp batch pop_batch handed the loop (1 = no simultaneity).
  std::size_t processed_events = 0;
  std::size_t max_event_batch = 0;
  // Tier membership the run ended with: the input tiers on the static
  // path; on the dynamic path, the evolved membership after every leave,
  // join and re-tiering.
  std::vector<std::vector<std::size_t>> final_members;
};

class AsyncEngine {
 public:
  // `pool` is non-owning and must outlive the engine; `tier_members`
  // holds client ids per tier (fastest first, as in core::TierInfo) —
  // empty tiers are skipped, dropouts must already be excluded.  The
  // engine only touches client *training state* through short-lived
  // leases around dispatch, so a virtualized pool keeps memory bounded by
  // the in-flight cohort regardless of the federation size.
  AsyncEngine(EngineConfig config, AsyncConfig async,
              nn::ModelFactory factory, ClientPool* pool,
              std::vector<std::vector<std::size_t>> tier_members,
              const data::Dataset* test, sim::LatencyModel latency_model);

  // Convenience overload over a materialized population (non-owning, must
  // outlive the engine): wraps `clients` in an internal pass-through pool.
  AsyncEngine(EngineConfig config, AsyncConfig async,
              nn::ModelFactory factory, const std::vector<Client>* clients,
              std::vector<std::vector<std::size_t>> tier_members,
              const data::Dataset* test, sim::LatencyModel latency_model);

  AsyncRunResult run(std::optional<std::uint64_t> seed_override = {});

  // --- selection-policy seam -------------------------------------------------
  // Installs the policy that picks each tier round's member sample (and
  // may bias tier cadence through the returned count; an empty selection
  // parks the tier until the next global version).  Non-owning; nullptr
  // restores the default `UniformTierPolicy`, which replays the engine's
  // historical uniform self-sampling bit for bit.  Throws when the policy
  // does not support the async engine.
  void set_policy(SelectionPolicy* policy);
  // Per-tier held-out evaluation sets (Alg. 2's TestData_t).  When set,
  // RoundFeedback::tier_accuracies is filled on every evaluated global
  // version, which is what feeds adaptive selection on the async path.
  // Evaluation never touches the run's RNG streams, so installing sets
  // does not perturb training results.
  void set_tier_eval_sets(std::vector<data::Dataset> sets);

  nn::LossResult evaluate(std::span<const float> weights,
                          const data::Dataset& dataset);

  const AsyncConfig& async_config() const { return async_; }
  std::size_t tier_count() const { return tier_members_.size(); }
  // True when this configuration takes the dynamic lifecycle path.
  bool dynamic() const {
    return async_.churn.active() || async_.reprofile_every > 0.0 ||
           async_.dynamic_lifecycle;
  }

  // Tiering-layer callbacks for the dynamic path (no-op otherwise).
  void set_lifecycle_hooks(LifecycleHooks hooks);

  // Train on a specific pool instead of the process-global one (the
  // cross-pool determinism tests pin pool sizes 1/2/8).  Non-owning;
  // nullptr restores the global pool.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  struct PendingRound;  // one in-flight tier round (defined in the .cc)

  nn::Sequential& scratch_model(std::size_t slot);
  util::ThreadPool& pool();
  void validate() const;

  AsyncRunResult run_static(std::uint64_t seed, SelectionPolicy& policy);
  AsyncRunResult run_dynamic(std::uint64_t seed, SelectionPolicy& policy);
  // Tier accuracies for the policy's feedback (empty without eval sets).
  std::vector<double> evaluate_tiers(std::span<const float> weights);

  EngineConfig config_;
  AsyncConfig async_;
  nn::ModelFactory factory_;
  std::unique_ptr<ClientPool> owned_pool_;  // vector-overload wrapper
  ClientPool* clients_;
  std::vector<std::vector<std::size_t>> tier_members_;
  const data::Dataset* test_;
  sim::LatencyModel latency_model_;
  LifecycleHooks hooks_;
  SelectionPolicy* policy_ = nullptr;  // non-owning; null = uniform default
  std::vector<data::Dataset> tier_eval_sets_;
  util::ThreadPool* pool_ = nullptr;
  std::vector<nn::Sequential> scratch_;  // slot 0 = eval, 1.. = training
};

}  // namespace tifl::fl
