// Synchronous federated-learning round engine (Algorithm 1 of the paper,
// following Google's FL system architecture):
//
//   per round: policy selects |C| clients -> selected clients train in
//   parallel on the thread pool -> round latency = max of the clients'
//   simulated response latencies (Eq. 1) advances the virtual clock ->
//   FedAvg aggregation -> global model evaluated on the test set (and on
//   per-tier evaluation sets when configured) -> feedback to the policy.
//
// Determinism: every client's training RNG is forked from the run seed by
// (round, client id), and aggregation reduces in selection order with
// double-precision accumulators, so a run is bit-reproducible regardless
// of thread scheduling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "fl/aggregator.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/policy.h"
#include "nn/sequential.h"
#include "sim/latency_model.h"
#include "sim/virtual_clock.h"

namespace tifl::fl {

struct EngineConfig {
  std::size_t rounds = 500;
  LocalTrainParams local;            // epochs / batch / optimizer / DP
  double lr_decay_per_round = 0.995; // applied to the effective lr each round
  std::size_t eval_every = 1;        // global+tier eval cadence (rounds)
  std::size_t eval_chunk = 512;      // eval mini-batch size
  std::uint64_t seed = 1;
  bool hierarchical_aggregation = false;
  std::size_t aggregator_fanout = 4;
  // Finite training budget (§4.5: "the training time and resource budget
  // is typically finite"): stop after the first round whose completion
  // pushes virtual time past this many seconds.  0 = unlimited.
  double time_budget_seconds = 0.0;
  // Aggregate through pairwise-masking secure aggregation (§2's rationale
  // for synchronous rounds).  Incompatible with policies that discard
  // stragglers (Selection::aggregate_count): masks of dropped clients
  // would not cancel — the exact failure mode the full Bonawitz protocol
  // adds dropout recovery for.  The engine throws in that combination.
  bool secure_aggregation = false;
  std::uint64_t secure_session_key = 0xCAFE;
};

class Engine {
 public:
  Engine(EngineConfig config, nn::ModelFactory factory,
         std::vector<Client> clients, const data::Dataset* test,
         sim::LatencyModel latency_model);

  // Per-tier held-out evaluation sets (Alg. 2's TestData_t).  When set,
  // RoundFeedback::tier_accuracies is filled on every evaluation round.
  void set_tier_eval_sets(std::vector<data::Dataset> sets);

  // Runs the full federation under `policy`, starting from fresh global
  // weights derived from config.seed (or `seed_override` when provided —
  // used by the bench harness to average over independent runs).
  RunResult run(SelectionPolicy& policy,
                std::optional<std::uint64_t> seed_override = {});

  // Loss/accuracy of `weights` on `dataset`, evaluated in chunks.
  nn::LossResult evaluate(std::span<const float> weights,
                          const data::Dataset& dataset);

  const std::vector<Client>& clients() const { return clients_; }
  // Mutable access for mid-run resource drift (re-profiling scenarios).
  std::vector<Client>& mutable_clients() { return clients_; }
  const sim::LatencyModel& latency_model() const { return latency_model_; }

  // Jitter-free expected response latency of one client for one round —
  // also used by the profiler and the Table 2 estimator.
  double expected_client_latency(std::size_t client_id) const;

 private:
  nn::Sequential& scratch_model(std::size_t slot);

  EngineConfig config_;
  nn::ModelFactory factory_;
  std::vector<Client> clients_;
  const data::Dataset* test_;
  sim::LatencyModel latency_model_;
  std::vector<data::Dataset> tier_eval_sets_;
  std::vector<nn::Sequential> scratch_;  // one per parallel slot + eval
};

}  // namespace tifl::fl
