// Client population abstraction: the engines' view of "who exists".
//
// The materialized backend wraps the classic std::vector<Client> (every
// client's shard vectors resident for the whole run — fine up to a few
// thousand clients).  The virtual backend holds only {resource profile,
// lazy shard descriptor} per client — O(bytes) each — and materializes a
// Client's training state (its index vectors) on demand while it is
// selected / in flight, behind a small LRU of live scratch.  Cold clients
// cost nothing beyond their profile, which is what lets `tifl_run
// --clients 1000000` run in bounded memory: the working set is the
// in-flight cohort, not the federation.
//
// Sharded runtime: `set_cache_segments(n)` splits the virtual cache into
// n contiguous id ranges, each with its own mutex, map and LRU — the
// client-pool half of the worker-shard partitioning (the event-queue half
// is sim::ShardedEventQueue).  Segmentation only changes which lock a
// lease takes and which LRU it ages in: materialization is a pure
// function of the id, so the Client bytes a lease yields are identical at
// every segment count.  Only the pool.* cache counters (hits/misses/
// evictions) may shift, which is why determinism comparisons filter them.
//
// Access pattern contract: leases are acquired and released on the
// engine's event thread (dispatch is serial); worker threads only *read*
// through leased const Client&.  The per-segment caches are mutex-guarded
// anyway so concurrent leases stay safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "data/partition.h"
#include "fl/client.h"
#include "sim/resource_profile.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tifl::fl {

class ClientPool {
 public:
  // Materialized backend: borrows an existing population (non-owning;
  // `clients` must outlive the pool).  Leases alias the vector directly —
  // no caching, no copies.
  explicit ClientPool(const std::vector<Client>* clients);

  // Virtual backend: lazy shards + per-client profiles, materializing at
  // most ~cache_capacity clients at a time (never fewer than the pinned
  // set — the cache grows past capacity rather than evict a leased
  // client, and shrinks back as leases drop).
  struct VirtualConfig {
    const data::Dataset* train = nullptr;
    data::LazyShards shards{1, 1, {}, 0};
    std::vector<sim::ResourceProfile> profiles;  // size == shards.num_clients()
    std::size_t cache_capacity = 64;
  };
  explicit ClientPool(VirtualConfig config);

  ClientPool(ClientPool&&) noexcept;
  ClientPool& operator=(ClientPool&&) noexcept;
  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;
  ~ClientPool();

  std::size_t size() const;
  bool virtualized() const { return clients_ == nullptr; }

  // Splits the virtual cache into `n` segments over contiguous id ranges
  // (clamped to [1, size()]), each owning mutex + map + LRU and an equal
  // share of the capacity.  One segment (the default) is byte-for-byte
  // the legacy single-cache behavior.  Must be called while no client is
  // materialized (throws otherwise — segment boundaries cannot move under
  // live entries); no-op on the materialized backend.
  void set_cache_segments(std::size_t n);
  std::size_t cache_segments() const { return segments_.size(); }
  // Segment owning `id`'s cache slot (contiguous ranges, same arithmetic
  // as sim::ShardedEventQueue::shard_of).
  std::size_t segment_of(std::size_t id) const;

  // O(1), no materialization: profiles and shard sizes are pool state,
  // not Client state — latency sampling over a million cold clients never
  // touches the cache.
  const sim::ResourceProfile& resource(std::size_t id) const;
  std::size_t train_size(std::size_t id) const;

  // Pins client `id`'s materialized state for the lease's lifetime.
  // Virtual backend: a cache hit is free, a miss generates the shard's
  // index vector from its ShardView.  Move-only RAII; unpinning may evict.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    const Client& operator*() const { return *client_; }
    const Client* operator->() const { return client_; }

   private:
    friend class ClientPool;
    Lease(const Client* client, ClientPool* pool, std::size_t id)
        : client_(client), pool_(pool), id_(id) {}

    const Client* client_ = nullptr;
    ClientPool* pool_ = nullptr;  // null for the materialized backend
    std::size_t id_ = 0;
  };
  Lease lease(std::size_t id);

  // Cache accounting (bench/tests): currently materialized clients, the
  // high-water mark, and how many misses built a Client from its shard.
  // Totals span every segment.
  std::size_t live_clients() const;
  std::size_t peak_live_clients() const;
  std::size_t materializations() const;

 private:
  struct Entry {
    Client client;
    std::size_t pins = 0;
    std::list<std::size_t>::iterator lru;  // valid iff pins == 0

    Entry(Client c) : client(std::move(c)) {}
  };

  // One cache segment: unique_ptr-held because the mutex pins it in
  // place.  `capacity` is this segment's share of the pool capacity
  // (set once at rebuild, read-only afterwards — not guarded).
  struct Segment {
    mutable util::Mutex mutex;
    std::unordered_map<std::size_t, std::unique_ptr<Entry>> cache
        GUARDED_BY(mutex);
    std::list<std::size_t> lru GUARDED_BY(mutex);  // unpinned, MRU first
    std::size_t capacity = 0;
  };

  void release(std::size_t id);
  void evict_overflow_locked(Segment& segment) REQUIRES(segment.mutex);
  void rebuild_segments(std::size_t n);

  // Materialized backend (null for virtual).
  const std::vector<Client>* clients_ = nullptr;

  // Virtual backend state.
  const data::Dataset* train_ = nullptr;
  data::LazyShards shards_{1, 1, {}, 0};
  std::vector<sim::ResourceProfile> profiles_;
  std::size_t cache_capacity_ = 0;
  std::vector<std::unique_ptr<Segment>> segments_;
  // Pool-wide accounting, lock-free so segments never take each other's
  // locks: live count, its high-water mark, and total materializations.
  std::atomic<std::size_t> total_live_{0};
  std::atomic<std::size_t> peak_live_{0};
  std::atomic<std::size_t> materializations_{0};
};

}  // namespace tifl::fl
