// Client population abstraction: the engines' view of "who exists".
//
// The materialized backend wraps the classic std::vector<Client> (every
// client's shard vectors resident for the whole run — fine up to a few
// thousand clients).  The virtual backend holds only {resource profile,
// lazy shard descriptor} per client — O(bytes) each — and materializes a
// Client's training state (its index vectors) on demand while it is
// selected / in flight, behind a small LRU of live scratch.  Cold clients
// cost nothing beyond their profile, which is what lets `tifl_run
// --clients 1000000` run in bounded memory: the working set is the
// in-flight cohort, not the federation.
//
// Access pattern contract: leases are acquired and released on the
// engine's event thread (dispatch is serial); worker threads only *read*
// through leased const Client&.  The cache is mutex-guarded anyway so
// concurrent leases stay safe.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/partition.h"
#include "fl/client.h"
#include "sim/resource_profile.h"

namespace tifl::fl {

class ClientPool {
 public:
  // Materialized backend: borrows an existing population (non-owning;
  // `clients` must outlive the pool).  Leases alias the vector directly —
  // no caching, no copies.
  explicit ClientPool(const std::vector<Client>* clients);

  // Virtual backend: lazy shards + per-client profiles, materializing at
  // most ~cache_capacity clients at a time (never fewer than the pinned
  // set — the cache grows past capacity rather than evict a leased
  // client, and shrinks back as leases drop).
  struct VirtualConfig {
    const data::Dataset* train = nullptr;
    data::LazyShards shards{1, 1, {}, 0};
    std::vector<sim::ResourceProfile> profiles;  // size == shards.num_clients()
    std::size_t cache_capacity = 64;
  };
  explicit ClientPool(VirtualConfig config);

  ClientPool(ClientPool&&) noexcept;
  ClientPool& operator=(ClientPool&&) noexcept;
  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;
  ~ClientPool();

  std::size_t size() const;
  bool virtualized() const { return clients_ == nullptr; }

  // O(1), no materialization: profiles and shard sizes are pool state,
  // not Client state — latency sampling over a million cold clients never
  // touches the cache.
  const sim::ResourceProfile& resource(std::size_t id) const;
  std::size_t train_size(std::size_t id) const;

  // Pins client `id`'s materialized state for the lease's lifetime.
  // Virtual backend: a cache hit is free, a miss generates the shard's
  // index vector from its ShardView.  Move-only RAII; unpinning may evict.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    const Client& operator*() const { return *client_; }
    const Client* operator->() const { return client_; }

   private:
    friend class ClientPool;
    Lease(const Client* client, ClientPool* pool, std::size_t id)
        : client_(client), pool_(pool), id_(id) {}

    const Client* client_ = nullptr;
    ClientPool* pool_ = nullptr;  // null for the materialized backend
    std::size_t id_ = 0;
  };
  Lease lease(std::size_t id);

  // Cache accounting (bench/tests): currently materialized clients, the
  // high-water mark, and how many misses built a Client from its shard.
  std::size_t live_clients() const;
  std::size_t peak_live_clients() const;
  std::size_t materializations() const;

 private:
  struct Entry {
    Client client;
    std::size_t pins = 0;
    std::list<std::size_t>::iterator lru;  // valid iff pins == 0

    Entry(Client c) : client(std::move(c)) {}
  };

  void release(std::size_t id);
  void evict_overflow_locked();

  // Materialized backend (null for virtual).
  const std::vector<Client>* clients_ = nullptr;

  // Virtual backend state.
  const data::Dataset* train_ = nullptr;
  data::LazyShards shards_{1, 1, {}, 0};
  std::vector<sim::ResourceProfile> profiles_;
  std::size_t cache_capacity_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, std::unique_ptr<Entry>> cache_;
  std::list<std::size_t> lru_;  // unpinned entries, most recent first
  std::size_t peak_live_ = 0;
  std::size_t materializations_ = 0;
};

}  // namespace tifl::fl
