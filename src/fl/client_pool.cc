#include "fl/client_pool.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace tifl::fl {

namespace {

// lease() is called once per sampled client per round — cheap enough to
// count unconditionally.  Hit rate is derived at snapshot time from
// hits / (hits + misses).
struct PoolMetrics {
  obs::Counter& lease_hits;
  obs::Counter& lease_misses;
  obs::Counter& evictions;
  obs::Gauge& live;
  obs::Gauge& peak_live;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      obs::Registry::global().counter("pool.lease_hits"),
      obs::Registry::global().counter("pool.lease_misses"),
      obs::Registry::global().counter("pool.evictions"),
      obs::Registry::global().gauge("pool.live_clients"),
      obs::Registry::global().gauge("pool.peak_live_clients"),
  };
  return m;
}

}  // namespace

ClientPool::ClientPool(const std::vector<Client>* clients)
    : clients_(clients) {
  if (clients_ == nullptr || clients_->empty()) {
    throw std::invalid_argument("ClientPool: null or empty client vector");
  }
}

ClientPool::ClientPool(VirtualConfig config)
    : train_(config.train),
      shards_(std::move(config.shards)),
      profiles_(std::move(config.profiles)),
      cache_capacity_(std::max<std::size_t>(1, config.cache_capacity)) {
  if (train_ == nullptr) {
    throw std::invalid_argument("ClientPool: null training dataset");
  }
  if (profiles_.size() != shards_.num_clients()) {
    throw std::invalid_argument("ClientPool: profile/shard count mismatch");
  }
}

ClientPool::ClientPool(ClientPool&& other) noexcept
    : clients_(other.clients_),
      train_(other.train_),
      shards_(std::move(other.shards_)),
      profiles_(std::move(other.profiles_)),
      cache_capacity_(other.cache_capacity_),
      cache_(std::move(other.cache_)),
      lru_(std::move(other.lru_)),
      peak_live_(other.peak_live_),
      materializations_(other.materializations_) {}

ClientPool& ClientPool::operator=(ClientPool&& other) noexcept {
  if (this != &other) {
    clients_ = other.clients_;
    train_ = other.train_;
    shards_ = std::move(other.shards_);
    profiles_ = std::move(other.profiles_);
    cache_capacity_ = other.cache_capacity_;
    cache_ = std::move(other.cache_);
    lru_ = std::move(other.lru_);
    peak_live_ = other.peak_live_;
    materializations_ = other.materializations_;
  }
  return *this;
}

ClientPool::~ClientPool() = default;

std::size_t ClientPool::size() const {
  return clients_ != nullptr ? clients_->size() : shards_.num_clients();
}

const sim::ResourceProfile& ClientPool::resource(std::size_t id) const {
  if (clients_ != nullptr) return clients_->at(id).resource();
  if (id >= profiles_.size()) {
    throw std::out_of_range("ClientPool: client out of range");
  }
  return profiles_[id];
}

std::size_t ClientPool::train_size(std::size_t id) const {
  if (clients_ != nullptr) return clients_->at(id).train_size();
  return shards_.shard_size(id);
}

ClientPool::Lease ClientPool::lease(std::size_t id) {
  if (clients_ != nullptr) {
    return Lease(&clients_->at(id), nullptr, id);
  }
  if (id >= shards_.num_clients()) {
    throw std::out_of_range("ClientPool: client out of range");
  }
  PoolMetrics& metrics = pool_metrics();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    // Miss: generate the shard from its view.  Virtual clients carry no
    // matched test shard — per-tier eval sets are a materialized-path
    // feature; the async engine evaluates on the shared test set.
    ++materializations_;
    metrics.lease_misses.add();
    auto entry = std::make_unique<Entry>(
        Client(id, train_, shards_.shard(id).materialize(), {},
               profiles_[id]));
    it = cache_.emplace(id, std::move(entry)).first;
    peak_live_ = std::max(peak_live_, cache_.size());
    metrics.live.set(static_cast<double>(cache_.size()));
    metrics.peak_live.set_max(static_cast<double>(peak_live_));
  } else {
    metrics.lease_hits.add();
    if (it->second->pins == 0) {
      lru_.erase(it->second->lru);  // pinned entries leave the eviction list
    }
  }
  ++it->second->pins;
  return Lease(&it->second->client, this, id);
}

void ClientPool::release(std::size_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(id);
  if (it == cache_.end() || it->second->pins == 0) return;
  if (--it->second->pins == 0) {
    lru_.push_front(id);
    it->second->lru = lru_.begin();
    evict_overflow_locked();
  }
}

void ClientPool::evict_overflow_locked() {
  PoolMetrics& metrics = pool_metrics();
  while (cache_.size() > cache_capacity_ && !lru_.empty()) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    metrics.evictions.add();
  }
  metrics.live.set(static_cast<double>(cache_.size()));
}

std::size_t ClientPool::live_clients() const {
  if (clients_ != nullptr) return clients_->size();
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::size_t ClientPool::peak_live_clients() const {
  if (clients_ != nullptr) return clients_->size();
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_live_;
}

std::size_t ClientPool::materializations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return materializations_;
}

ClientPool::Lease::Lease(Lease&& other) noexcept
    : client_(other.client_), pool_(other.pool_), id_(other.id_) {
  other.client_ = nullptr;
  other.pool_ = nullptr;
}

ClientPool::Lease& ClientPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->release(id_);
    client_ = other.client_;
    pool_ = other.pool_;
    id_ = other.id_;
    other.client_ = nullptr;
    other.pool_ = nullptr;
  }
  return *this;
}

ClientPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(id_);
}

}  // namespace tifl::fl
