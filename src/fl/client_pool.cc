#include "fl/client_pool.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace tifl::fl {

namespace {

// lease() is called once per sampled client per round — cheap enough to
// count unconditionally.  Hit rate is derived at snapshot time from
// hits / (hits + misses).
struct PoolMetrics {
  obs::Counter& lease_hits;
  obs::Counter& lease_misses;
  obs::Counter& evictions;
  obs::Gauge& live;
  obs::Gauge& peak_live;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      obs::Registry::global().counter("pool.lease_hits"),
      obs::Registry::global().counter("pool.lease_misses"),
      obs::Registry::global().counter("pool.evictions"),
      obs::Registry::global().gauge("pool.live_clients"),
      obs::Registry::global().gauge("pool.peak_live_clients"),
  };
  return m;
}

void raise_max(std::atomic<std::size_t>& slot, std::size_t v) {
  std::size_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ClientPool::ClientPool(const std::vector<Client>* clients)
    : clients_(clients) {
  if (clients_ == nullptr || clients_->empty()) {
    throw std::invalid_argument("ClientPool: null or empty client vector");
  }
}

ClientPool::ClientPool(VirtualConfig config)
    : train_(config.train),
      shards_(std::move(config.shards)),
      profiles_(std::move(config.profiles)),
      cache_capacity_(std::max<std::size_t>(1, config.cache_capacity)) {
  if (train_ == nullptr) {
    throw std::invalid_argument("ClientPool: null training dataset");
  }
  if (profiles_.size() != shards_.num_clients()) {
    throw std::invalid_argument("ClientPool: profile/shard count mismatch");
  }
  rebuild_segments(1);
}

ClientPool::ClientPool(ClientPool&& other) noexcept
    : clients_(other.clients_),
      train_(other.train_),
      shards_(std::move(other.shards_)),
      profiles_(std::move(other.profiles_)),
      cache_capacity_(other.cache_capacity_),
      segments_(std::move(other.segments_)),
      total_live_(other.total_live_.load()),
      peak_live_(other.peak_live_.load()),
      materializations_(other.materializations_.load()) {}

ClientPool& ClientPool::operator=(ClientPool&& other) noexcept {
  if (this != &other) {
    clients_ = other.clients_;
    train_ = other.train_;
    shards_ = std::move(other.shards_);
    profiles_ = std::move(other.profiles_);
    cache_capacity_ = other.cache_capacity_;
    segments_ = std::move(other.segments_);
    total_live_.store(other.total_live_.load());
    peak_live_.store(other.peak_live_.load());
    materializations_.store(other.materializations_.load());
  }
  return *this;
}

ClientPool::~ClientPool() = default;

std::size_t ClientPool::size() const {
  return clients_ != nullptr ? clients_->size() : shards_.num_clients();
}

void ClientPool::rebuild_segments(std::size_t n) {
  n = std::clamp<std::size_t>(n, 1, std::max<std::size_t>(1, size()));
  segments_.clear();
  segments_.reserve(n);
  // Equal capacity shares, rounded up so n segments never hold fewer
  // total entries than the single-cache capacity they replace.
  const std::size_t share = (cache_capacity_ + n - 1) / n;
  for (std::size_t s = 0; s < n; ++s) {
    segments_.push_back(std::make_unique<Segment>());
    segments_.back()->capacity = std::max<std::size_t>(1, share);
  }
}

void ClientPool::set_cache_segments(std::size_t n) {
  if (clients_ != nullptr) return;  // materialized backend: nothing to split
  if (total_live_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error(
        "ClientPool: cannot re-segment while clients are materialized");
  }
  rebuild_segments(n);
}

std::size_t ClientPool::segment_of(std::size_t id) const {
  const std::size_t n = segments_.size();
  const std::size_t population = size();
  if (n <= 1 || population == 0) return 0;
  if (id >= population) return n - 1;
  return id * n / population;
}

const sim::ResourceProfile& ClientPool::resource(std::size_t id) const {
  if (clients_ != nullptr) return clients_->at(id).resource();
  if (id >= profiles_.size()) {
    throw std::out_of_range("ClientPool: client out of range");
  }
  return profiles_[id];
}

std::size_t ClientPool::train_size(std::size_t id) const {
  if (clients_ != nullptr) return clients_->at(id).train_size();
  return shards_.shard_size(id);
}

ClientPool::Lease ClientPool::lease(std::size_t id) {
  if (clients_ != nullptr) {
    return Lease(&clients_->at(id), nullptr, id);
  }
  if (id >= shards_.num_clients()) {
    throw std::out_of_range("ClientPool: client out of range");
  }
  PoolMetrics& metrics = pool_metrics();
  Segment& segment = *segments_[segment_of(id)];
  util::MutexLock lock(segment.mutex);
  auto it = segment.cache.find(id);
  if (it == segment.cache.end()) {
    // Miss: generate the shard from its view.  Virtual clients carry no
    // matched test shard — per-tier eval sets are a materialized-path
    // feature; the async engine evaluates on the shared test set.
    materializations_.fetch_add(1, std::memory_order_relaxed);
    metrics.lease_misses.add();
    auto entry = std::make_unique<Entry>(
        Client(id, train_, shards_.shard(id).materialize(), {},
               profiles_[id]));
    it = segment.cache.emplace(id, std::move(entry)).first;
    const std::size_t live =
        total_live_.fetch_add(1, std::memory_order_relaxed) + 1;
    raise_max(peak_live_, live);
    metrics.live.set(static_cast<double>(live));
    metrics.peak_live.set_max(static_cast<double>(live));
  } else {
    metrics.lease_hits.add();
    if (it->second->pins == 0) {
      segment.lru.erase(it->second->lru);  // pinned entries leave the list
    }
  }
  ++it->second->pins;
  return Lease(&it->second->client, this, id);
}

void ClientPool::release(std::size_t id) {
  Segment& segment = *segments_[segment_of(id)];
  util::MutexLock lock(segment.mutex);
  const auto it = segment.cache.find(id);
  if (it == segment.cache.end() || it->second->pins == 0) return;
  if (--it->second->pins == 0) {
    segment.lru.push_front(id);
    it->second->lru = segment.lru.begin();
    evict_overflow_locked(segment);
  }
}

void ClientPool::evict_overflow_locked(Segment& segment) {
  PoolMetrics& metrics = pool_metrics();
  while (segment.cache.size() > segment.capacity && !segment.lru.empty()) {
    const std::size_t victim = segment.lru.back();
    segment.lru.pop_back();
    segment.cache.erase(victim);
    total_live_.fetch_sub(1, std::memory_order_relaxed);
    metrics.evictions.add();
  }
  metrics.live.set(
      static_cast<double>(total_live_.load(std::memory_order_relaxed)));
}

std::size_t ClientPool::live_clients() const {
  if (clients_ != nullptr) return clients_->size();
  return total_live_.load(std::memory_order_relaxed);
}

std::size_t ClientPool::peak_live_clients() const {
  if (clients_ != nullptr) return clients_->size();
  return peak_live_.load(std::memory_order_relaxed);
}

std::size_t ClientPool::materializations() const {
  return materializations_.load(std::memory_order_relaxed);
}

ClientPool::Lease::Lease(Lease&& other) noexcept
    : client_(other.client_), pool_(other.pool_), id_(other.id_) {
  other.client_ = nullptr;
  other.pool_ = nullptr;
}

ClientPool::Lease& ClientPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->release(id_);
    client_ = other.client_;
    pool_ = other.pool_;
    id_ = other.id_;
    other.client_ = nullptr;
    other.pool_ = nullptr;
  }
  return *this;
}

ClientPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(id_);
}

}  // namespace tifl::fl
