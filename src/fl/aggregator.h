// FedAvg aggregation (Algorithm 1, line 8):
//     w_{r+1} = sum_c w_c * s_c / sum_c s_c.
//
// Two implementations:
//  * `fedavg` — flat single-aggregator reduction, accumulated in double
//    precision in client order, so the result is deterministic and
//    independent of how local training was scheduled across threads;
//  * `HierarchicalAggregator` — the master/child-aggregator tree of
//    Google's FL architecture [Bonawitz et al.] that the paper's testbed
//    design follows.  Children aggregate disjoint client groups, the
//    master combines child results weighted by group sample counts.
//    Mathematically identical to the flat reduction (a test asserts it),
//    included for architectural fidelity and for the scalability
//    micro-bench.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tifl::fl {

struct WeightedUpdate {
  std::span<const float> weights;
  double sample_count = 0.0;
};

// Weighted average of flat weight vectors; throws on empty input, size
// mismatch, or non-positive total weight.
std::vector<float> fedavg(std::span<const WeightedUpdate> updates);

class HierarchicalAggregator {
 public:
  // `fanout`: number of child aggregators.
  explicit HierarchicalAggregator(std::size_t fanout) : fanout_(fanout) {}

  std::vector<float> aggregate(std::span<const WeightedUpdate> updates) const;

  std::size_t fanout() const { return fanout_; }

 private:
  std::size_t fanout_;
};

}  // namespace tifl::fl
