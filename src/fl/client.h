// A federated client (the paper's "data party"): an index shard into the
// shared training pool plus a resource profile.  `local_update` performs
// the client side of Algorithm 1: receive global weights, run E local
// epochs of mini-batch training on the local shard, return the updated
// weights and the shard size used for weighted averaging.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "sim/resource_profile.h"
#include "util/rng.h"

namespace tifl::fl {

struct LocalTrainParams {
  std::size_t epochs = 1;
  std::size_t batch_size = 10;
  double lr = 0.01;  // effective lr for this round (post-decay)
  nn::OptimizerConfig optimizer;
  // Optional client-level differential privacy: clip the weight *delta*
  // to this L2 norm and add Gaussian noise of `dp_noise_sigma` (absolute
  // stddev) — the §4.6 deployment mode.  0 disables.
  double dp_clip_norm = 0.0;
  double dp_noise_sigma = 0.0;
};

struct LocalUpdate {
  std::vector<float> weights;   // post-training flat weights
  std::size_t num_samples = 0;  // s_c in Algorithm 1
  double train_loss = 0.0;      // mean over batches
  double train_accuracy = 0.0;  // mean over batches
};

class Client {
 public:
  Client(std::size_t id, const data::Dataset* train,
         std::vector<std::size_t> train_indices,
         std::vector<std::size_t> test_indices,
         sim::ResourceProfile resource);

  std::size_t id() const { return id_; }
  std::size_t train_size() const { return train_indices_.size(); }
  const std::vector<std::size_t>& train_indices() const {
    return train_indices_;
  }
  const std::vector<std::size_t>& test_indices() const {
    return test_indices_;
  }
  const sim::ResourceProfile& resource() const { return resource_; }
  sim::ResourceProfile& resource() { return resource_; }

  // Runs local training in `model` (scratch instance owned by the caller;
  // its weights are overwritten with `global_weights` first).  `rng`
  // drives batch shuffling and dropout; forked deterministically by the
  // engine per (round, client).
  LocalUpdate local_update(std::span<const float> global_weights,
                           nn::Sequential& model,
                           const LocalTrainParams& params,
                           util::Rng rng) const;

 private:
  std::size_t id_;
  const data::Dataset* train_;
  std::vector<std::size_t> train_indices_;
  std::vector<std::size_t> test_indices_;
  sim::ResourceProfile resource_;
};

// Builds the client population from a partition + matched test shards +
// resource profiles (all same length).
std::vector<Client> make_clients(
    const data::Dataset* train, const data::Partition& partition,
    const std::vector<std::vector<std::size_t>>& test_shards,
    const std::vector<sim::ResourceProfile>& resources);

}  // namespace tifl::fl
