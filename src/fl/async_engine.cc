#include "fl/async_engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "fl/aggregator.h"
#include "fl/evaluation.h"
#include "fl/policy.h"
#include "fl/snapshot.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "obs/wall_time.h"
#include "sim/event_log.h"
#include "sim/sharded_event_queue.h"
#include "util/log.h"
#include "util/segmented_id_set.h"
#include "util/thread_pool.h"

namespace tifl::fl {

StalenessFn parse_staleness(const std::string& name) {
  if (name == "constant") return StalenessFn::kConstant;
  if (name == "poly" || name == "polynomial") return StalenessFn::kPolynomial;
  if (name == "invfreq" || name == "inverse-frequency" || name == "fedat") {
    return StalenessFn::kInverseFrequency;
  }
  throw std::invalid_argument(
      "unknown staleness function '" + name +
      "' (valid: constant, poly | polynomial, invfreq | inverse-frequency | "
      "fedat)");
}

std::string staleness_name(StalenessFn fn) {
  switch (fn) {
    case StalenessFn::kConstant: return "constant";
    case StalenessFn::kPolynomial: return "poly";
    case StalenessFn::kInverseFrequency: return "invfreq";
  }
  return "unknown";
}

double staleness_factor(StalenessFn fn, double alpha, std::size_t staleness) {
  if (fn == StalenessFn::kPolynomial) {
    return std::pow(1.0 + static_cast<double>(staleness), -alpha);
  }
  return 1.0;
}

std::vector<double> cross_tier_weights(
    StalenessFn fn, double alpha, std::span<const std::size_t> update_counts,
    std::span<const std::size_t> staleness) {
  if (update_counts.size() != staleness.size()) {
    throw std::invalid_argument("cross_tier_weights: size mismatch");
  }
  std::vector<double> weights(update_counts.size(), 0.0);
  std::size_t u_max = 0;
  for (std::size_t u : update_counts) u_max = std::max(u_max, u);

  double total = 0.0;
  for (std::size_t t = 0; t < update_counts.size(); ++t) {
    if (update_counts[t] == 0) continue;  // never submitted: no model yet
    double w = 1.0;
    switch (fn) {
      case StalenessFn::kConstant:
        break;
      case StalenessFn::kPolynomial:
        w = staleness_factor(fn, alpha, staleness[t]);
        break;
      case StalenessFn::kInverseFrequency:
        // FedAT-style: a tier that submitted u_max - u_t fewer times than
        // the busiest tier gets proportionally more mass, countering the
        // fast-tier bias of naive async averaging.
        w = 1.0 + static_cast<double>(u_max - update_counts[t]);
        break;
    }
    weights[t] = w;
    total += w;
  }
  if (total > 0.0) {
    for (double& w : weights) w /= total;
  }
  return weights;
}

namespace {

// Per-tier selection/latency streams, shared by both run paths so a
// zero-churn dynamic configuration consumes the exact streams of a
// static run.  Tier 0 reuses the sync engine's fork tags (0xF01
// selection, 0xF02 latency): a single-tier async run consumes the
// byte-for-byte streams of a sync VanillaPolicy run.
struct TierRngs {
  std::vector<util::Rng> selection;
  std::vector<util::Rng> latency;
};

TierRngs make_tier_rngs(std::uint64_t seed, std::size_t num_tiers) {
  util::Rng root(seed);
  TierRngs rngs;
  rngs.selection.reserve(num_tiers);
  rngs.latency.reserve(num_tiers);
  for (std::size_t t = 0; t < num_tiers; ++t) {
    rngs.selection.push_back(
        root.fork(t == 0 ? 0xF01 : util::mix_seed(0xA51C, t)));
    rngs.latency.push_back(
        root.fork(t == 0 ? 0xF02 : util::mix_seed(0xA51D, t)));
  }
  return rngs;
}

// Final per-tier accounting shared by both run paths (final_live_clients
// stays path-specific).
void finalize_result(AsyncRunResult& out, std::vector<float>&& global,
                     const std::vector<std::size_t>& tier_updates,
                     const std::vector<double>& staleness_sum,
                     std::vector<double>&& current_weights) {
  const std::size_t num_tiers = tier_updates.size();
  out.final_weights = std::move(global);
  out.tier_updates = tier_updates;
  out.mean_staleness.assign(num_tiers, 0.0);
  for (std::size_t t = 0; t < num_tiers; ++t) {
    if (tier_updates[t] > 0) {
      out.mean_staleness[t] =
          staleness_sum[t] / static_cast<double>(tier_updates[t]);
    }
  }
  out.final_tier_weights = std::move(current_weights);
  if (out.final_tier_weights.empty()) {
    out.final_tier_weights.assign(num_tiers, 0.0);
  }
}

}  // namespace

// Recompute the global model as the staleness-weighted cross-tier average
// (double-precision reduction in tier order, shared by both run paths and
// the fl/hier aggregator tree).  `accum` is caller-owned scratch, hoisted
// out of the event loops: the dynamic path aggregates once per client
// update.
void aggregate_global(const std::vector<std::vector<float>>& tier_models,
                      const std::vector<double>& weights,
                      std::vector<float>& global, std::vector<double>& accum) {
  const std::size_t weight_count = global.size();
  accum.assign(weight_count, 0.0);
  for (std::size_t t = 0; t < tier_models.size(); ++t) {
    if (weights[t] == 0.0) continue;
    const double w = weights[t];
    const std::vector<float>& model = tier_models[t];
    for (std::size_t i = 0; i < weight_count; ++i) {
      accum[i] += w * static_cast<double>(model[i]);
    }
  }
  for (std::size_t i = 0; i < weight_count; ++i) {
    global[i] = static_cast<float>(accum[i]);
  }
}

namespace {

// Engine-level instruments, resolved once.  Counter/histogram updates are
// relaxed atomics; the trace layer is a branch-on-null when disabled.
struct AsyncMetrics {
  obs::Counter& events;
  obs::Counter& tier_rounds;
  obs::Counter& parks;
  obs::Counter& park_retries;
  obs::Counter& stale_events;
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& slowdowns;
  obs::Counter& reprofiles;
  obs::Counter& barriers;
  // One-time run setup (per-client state arrays, membership sets, initial
  // heap fill) and end-of-run finalization (flat membership reporting,
  // per-shard metric merges) — wall time, so benches can report
  // steady-state event throughput separately from the O(population)
  // bookends.
  obs::Counter& setup_ns;
  obs::Counter& finalize_ns;
  // Durability: snapshot writes (count/bytes/wall time) and the fault
  // model's lost-then-retried vs permanently-dropped update deliveries.
  obs::Counter& checkpoint_writes;
  obs::Counter& checkpoint_bytes;
  obs::Counter& checkpoint_write_ns;
  obs::Counter& lost_updates;
  obs::Counter& dropped_updates;
  obs::Histo& staleness;
  obs::Histo& event_batch;
  obs::Histo& barrier_tasks;
};

AsyncMetrics& async_metrics() {
  obs::Registry& reg = obs::Registry::global();
  static AsyncMetrics m{
      reg.counter("async.events"),
      reg.counter("async.tier_rounds"),
      reg.counter("async.parks"),
      reg.counter("async.park_retries"),
      reg.counter("async.stale_events"),
      reg.counter("async.joins"),
      reg.counter("async.leaves"),
      reg.counter("async.slowdowns"),
      reg.counter("async.reprofiles"),
      reg.counter("async.barriers"),
      reg.counter("async.setup_ns"),
      reg.counter("async.finalize_ns"),
      reg.counter("checkpoint.writes"),
      reg.counter("checkpoint.bytes"),
      reg.counter("checkpoint.write_ns"),
      reg.counter("fault.lost_updates"),
      reg.counter("fault.dropped_updates"),
      reg.histogram("async.staleness"),
      reg.histogram("async.event_batch"),
      reg.histogram("async.barrier_tasks"),
  };
  return m;
}

// --- snapshot payload helpers -----------------------------------------------
// The payload wrapped by fl::save_snapshot is one flat ByteSink stream;
// these helpers encode the composite pieces both run paths share.

constexpr std::uint64_t kSnapStatic = 0;   // run_static payload tag
constexpr std::uint64_t kSnapDynamic = 1;  // run_dynamic payload tag

void put_rng(util::ByteSink& sink, const util::Rng& rng) {
  for (std::uint64_t word : rng.state()) sink.put_u64(word);
}

void get_rng(util::ByteSource& source, util::Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = source.get_u64();
  rng.set_state(state);
}

void put_update(util::ByteSink& sink, const LocalUpdate& update) {
  sink.put_f32_vec(update.weights);
  sink.put_u64(update.num_samples);
  sink.put_f64(update.train_loss);
  sink.put_f64(update.train_accuracy);
}

LocalUpdate get_update(util::ByteSource& source) {
  LocalUpdate update;
  update.weights = source.get_f32_vec();
  update.num_samples = static_cast<std::size_t>(source.get_u64());
  update.train_loss = source.get_f64();
  update.train_accuracy = source.get_f64();
  return update;
}

void put_records(util::ByteSink& sink,
                 const std::vector<RoundRecord>& records) {
  sink.put_u64(records.size());
  for (const RoundRecord& r : records) {
    sink.put_u64(r.round);
    sink.put_f64(r.virtual_time);
    sink.put_f64(r.round_latency);
    sink.put_f64(r.global_accuracy);
    sink.put_f64(r.global_loss);
    sink.put_f64(r.train_loss);
    sink.put_i64(r.selected_tier);
    sink.put_size_vec(r.selected_clients);
  }
}

std::vector<RoundRecord> get_records(util::ByteSource& source) {
  const std::size_t count = source.checked_count(source.get_u64(), 8 * 7);
  std::vector<RoundRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RoundRecord r;
    r.round = static_cast<std::size_t>(source.get_u64());
    r.virtual_time = source.get_f64();
    r.round_latency = source.get_f64();
    r.global_accuracy = source.get_f64();
    r.global_loss = source.get_f64();
    r.train_loss = source.get_f64();
    r.selected_tier = static_cast<int>(source.get_i64());
    r.selected_clients = source.get_size_vec();
    records.push_back(std::move(r));
  }
  return records;
}

void put_queue(util::ByteSink& sink, const sim::ShardedEventQueue& queue) {
  sink.put_f64(queue.now());
  sink.put_u64(queue.next_seq());
  const std::vector<sim::Event> events = queue.pending();
  sink.put_u64(events.size());
  for (const sim::Event& e : events) {
    sink.put_f64(e.time);
    sink.put_u64(e.seq);
    sink.put_u64(e.kind);
    sink.put_u64(e.actor);
  }
}

void get_queue(util::ByteSource& source, sim::ShardedEventQueue& queue) {
  const double now = source.get_f64();
  const std::uint64_t next_seq = source.get_u64();
  const std::size_t count = source.checked_count(source.get_u64(), 32);
  std::vector<sim::Event> events(count);
  for (sim::Event& e : events) {
    e.time = source.get_f64();
    e.seq = source.get_u64();
    e.kind = source.get_u64();
    e.actor = source.get_u64();
  }
  queue.restore(now, next_seq, events);
}

// The merged metrics view at checkpoint time: the process-global registry
// plus the queue's per-shard registries (which only fold into the global
// one at finalize).  Restored wholesale into the global registry on
// resume, so the resumed run's finalize-time totals equal the
// uninterrupted run's for every deterministic instrument.
void put_metrics(util::ByteSink& sink, const sim::ShardedEventQueue& queue) {
  obs::Registry merged;
  merged.merge_from(obs::Registry::global());
  queue.merge_metrics_into(merged);
  util::ByteSink blob;
  merged.save(blob);
  sink.put_string(blob.bytes());
}

void get_metrics(util::ByteSource& source) {
  const std::string blob = source.get_string();
  util::ByteSource blob_source(blob);
  obs::Registry::global().restore(blob_source);
}

// Guards a resume against a drifted configuration: every knob that shapes
// the deterministic trajectory is folded in.  Deliberately excluded:
// shards and barrier_window (bit-invariant runtime knobs — a snapshot
// taken at --shards 8 may resume at --shards 1), fault.crash_at (the
// crash point is process fate, not trajectory) and the durability paths
// themselves.
std::uint64_t config_fingerprint(const EngineConfig& config,
                                 const AsyncConfig& async, std::uint64_t seed,
                                 std::size_t num_tiers,
                                 std::size_t num_clients,
                                 std::size_t weight_count) {
  const auto f = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::uint64_t h = util::mix_seed(0xD0C5, seed);
  h = util::mix_seed(h, static_cast<std::uint64_t>(async.staleness),
                     f(async.poly_alpha));
  h = util::mix_seed(h, async.total_updates, async.clients_per_tier_round);
  h = util::mix_seed(h, f(async.time_budget_seconds), async.eval_every);
  h = util::mix_seed(h, f(async.churn.join_rate), f(async.churn.leave_rate));
  h = util::mix_seed(h, f(async.churn.slowdown_rate),
                     f(async.churn.slowdown_log_mu));
  h = util::mix_seed(h, f(async.churn.slowdown_log_sigma), async.churn.seed);
  h = util::mix_seed(h, f(async.reprofile_every),
                     async.dynamic_lifecycle ? 1 : 0);
  h = util::mix_seed(h, f(async.fault.loss_prob), async.fault.max_retries);
  h = util::mix_seed(h, f(async.fault.backoff_base),
                     f(async.fault.backoff_factor));
  h = util::mix_seed(h, f(async.fault.backoff_max), async.fault.seed);
  h = util::mix_seed(h, config.local.epochs, config.local.batch_size);
  h = util::mix_seed(h, f(config.local.optimizer.lr),
                     f(config.lr_decay_per_round));
  h = util::mix_seed(h, static_cast<std::uint64_t>(config.local.optimizer.kind),
                     config.eval_chunk);
  h = util::mix_seed(h, f(config.local.dp_clip_norm),
                     f(config.local.dp_noise_sigma));
  h = util::mix_seed(h, num_tiers, num_clients);
  h = util::mix_seed(h, weight_count);
  return h;
}

// Common payload prologue: path tag, fingerprint, dimensions, policy
// identity.  Readers validate every field before touching the rest.
void put_prologue(util::ByteSink& sink, std::uint64_t tag,
                  std::uint64_t fingerprint, std::size_t num_tiers,
                  std::size_t num_clients, std::size_t weight_count,
                  const std::string& policy_name) {
  sink.put_u64(tag);
  sink.put_u64(fingerprint);
  sink.put_u64(num_tiers);
  sink.put_u64(num_clients);
  sink.put_u64(weight_count);
  sink.put_string(policy_name);
}

void check_prologue(util::ByteSource& source, std::uint64_t tag,
                    std::uint64_t fingerprint, std::size_t num_tiers,
                    std::size_t num_clients, std::size_t weight_count,
                    const std::string& policy_name) {
  const std::uint64_t snap_tag = source.get_u64();
  if (snap_tag != tag) {
    throw std::runtime_error(
        "AsyncEngine: snapshot was taken on the " +
        std::string(snap_tag == kSnapDynamic ? "dynamic" : "static") +
        " path but this configuration runs the " +
        std::string(tag == kSnapDynamic ? "dynamic" : "static") + " path");
  }
  if (source.get_u64() != fingerprint) {
    throw std::runtime_error(
        "AsyncEngine: snapshot config fingerprint mismatch (resume requires "
        "the same seed, population, schedule and fault configuration)");
  }
  if (source.get_u64() != num_tiers || source.get_u64() != num_clients ||
      source.get_u64() != weight_count) {
    throw std::runtime_error(
        "AsyncEngine: snapshot population/model dimensions mismatch");
  }
  const std::string snap_policy = source.get_string();
  if (snap_policy != policy_name) {
    throw std::runtime_error("AsyncEngine: snapshot was taken with policy '" +
                             snap_policy + "' but '" + policy_name +
                             "' is installed");
  }
}

// Opens (or, on resume, truncates to the snapshot's processed-event
// horizon) the append-only event log.  A fresh run clobbers any stale log
// under the same name, mirroring how metrics/trace outputs behave.
void open_event_log(sim::EventLogWriter& log, const std::string& path,
                    bool resuming, std::uint64_t processed_events) {
  if (path.empty()) return;
  if (resuming) {
    log.truncate_to(path, processed_events);
  } else {
    std::remove(path.c_str());
    log.open(path);
  }
}

}  // namespace

struct AsyncEngine::PendingRound {
  std::vector<std::size_t> selected;  // client ids, selection order
  std::vector<LocalUpdate> updates;   // same order
  std::size_t dispatch_version = 0;   // global version at snapshot time
  double latency = 0.0;               // tier-round duration (max member)
};

AsyncEngine::AsyncEngine(EngineConfig config, AsyncConfig async,
                         nn::ModelFactory factory, ClientPool* pool,
                         std::vector<std::vector<std::size_t>> tier_members,
                         const data::Dataset* test,
                         sim::LatencyModel latency_model)
    : config_(config),
      async_(async),
      factory_(std::move(factory)),
      clients_(pool),
      tier_members_(std::move(tier_members)),
      test_(test),
      latency_model_(latency_model) {
  validate();
}

AsyncEngine::AsyncEngine(EngineConfig config, AsyncConfig async,
                         nn::ModelFactory factory,
                         const std::vector<Client>* clients,
                         std::vector<std::vector<std::size_t>> tier_members,
                         const data::Dataset* test,
                         sim::LatencyModel latency_model)
    : config_(config),
      async_(async),
      factory_(std::move(factory)),
      owned_pool_(clients != nullptr && !clients->empty()
                      ? std::make_unique<ClientPool>(clients)
                      : nullptr),
      clients_(owned_pool_.get()),
      tier_members_(std::move(tier_members)),
      test_(test),
      latency_model_(latency_model) {
  validate();
}

void AsyncEngine::validate() const {
  if (clients_ == nullptr || clients_->size() == 0) {
    throw std::invalid_argument("AsyncEngine: no clients");
  }
  if (test_ == nullptr) {
    throw std::invalid_argument("AsyncEngine: null test dataset");
  }
  if (async_.total_updates == 0) {
    throw std::invalid_argument("AsyncEngine: total_updates must be > 0");
  }
  if (async_.clients_per_tier_round == 0) {
    throw std::invalid_argument(
        "AsyncEngine: clients_per_tier_round must be > 0");
  }
  if (async_.poly_alpha < 0.0) {
    throw std::invalid_argument("AsyncEngine: negative poly_alpha");
  }
  if (async_.eval_every == 0) {
    throw std::invalid_argument("AsyncEngine: eval_every must be > 0");
  }
  if (std::isnan(async_.reprofile_every) || async_.reprofile_every < 0.0) {
    throw std::invalid_argument("AsyncEngine: negative reprofile_every");
  }
  if (async_.shards == 0) {
    throw std::invalid_argument("AsyncEngine: shards must be > 0");
  }
  if (std::isnan(async_.barrier_window) || async_.barrier_window < 0.0) {
    throw std::invalid_argument("AsyncEngine: negative or NaN barrier_window");
  }
  if (std::isnan(async_.checkpoint_every) || async_.checkpoint_every < 0.0) {
    throw std::invalid_argument(
        "AsyncEngine: negative or NaN checkpoint_every");
  }
  if (async_.checkpoint_every > 0.0 && async_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "AsyncEngine: checkpoint_every > 0 requires a checkpoint_path");
  }
  for (double rate : {async_.churn.join_rate, async_.churn.leave_rate,
                      async_.churn.slowdown_rate}) {
    if (std::isnan(rate) || rate < 0.0) {
      throw std::invalid_argument("AsyncEngine: negative or NaN churn rate");
    }
  }
  bool any_members = false;
  for (const std::vector<std::size_t>& members : tier_members_) {
    any_members = any_members || !members.empty();
    for (std::size_t id : members) {
      if (id >= clients_->size()) {
        throw std::invalid_argument("AsyncEngine: tier member out of range");
      }
    }
  }
  if (!any_members) {
    throw std::invalid_argument("AsyncEngine: every tier is empty");
  }
}

nn::Sequential& AsyncEngine::scratch_model(std::size_t slot) {
  while (scratch_.size() <= slot) {
    scratch_.push_back(factory_(/*seed=*/slot + 1));
  }
  return scratch_[slot];
}

util::ThreadPool& AsyncEngine::pool() {
  return pool_ != nullptr ? *pool_ : util::global_pool();
}

void AsyncEngine::set_lifecycle_hooks(LifecycleHooks hooks) {
  hooks_ = std::move(hooks);
}

void AsyncEngine::set_policy(SelectionPolicy* policy) {
  if (policy != nullptr && !policy->supports(EngineKind::kAsync)) {
    throw std::invalid_argument(
        "AsyncEngine: policy '" + policy->name() +
        "' does not support the async engine");
  }
  policy_ = policy;
}

void AsyncEngine::set_tier_eval_sets(std::vector<data::Dataset> sets) {
  if (!sets.empty() && sets.size() != tier_members_.size()) {
    throw std::invalid_argument(
        "AsyncEngine: tier eval set count does not match tier count");
  }
  tier_eval_sets_ = std::move(sets);
}

std::vector<double> AsyncEngine::evaluate_tiers(
    std::span<const float> weights) {
  std::vector<double> accuracies;
  accuracies.reserve(tier_eval_sets_.size());
  for (const data::Dataset& set : tier_eval_sets_) {
    accuracies.push_back(set.size() > 0 ? evaluate(weights, set).accuracy
                                        : 0.0);
  }
  return accuracies;
}

nn::LossResult AsyncEngine::evaluate(std::span<const float> weights,
                                     const data::Dataset& dataset) {
  return evaluate_weights(scratch_model(0), weights, dataset,
                          config_.eval_chunk);
}

AsyncRunResult AsyncEngine::run(std::optional<std::uint64_t> seed_override) {
  const std::uint64_t seed = seed_override.value_or(config_.seed);
  // Default policy: uniform self-sampling — an explicit instance of the
  // same class a caller could install, so "no policy" and "uniform
  // policy" are one code path (a determinism ctest asserts the replay of
  // the pre-seam engine is bit-for-bit).
  UniformTierPolicy uniform(async_.clients_per_tier_round);
  SelectionPolicy& policy = policy_ != nullptr ? *policy_ : uniform;
  // The static path below is kept byte-for-byte: a configuration with no
  // churn and reprofile_every == 0 must replay PR 1's engine exactly.
  return dynamic() ? run_dynamic(seed, policy) : run_static(seed, policy);
}

AsyncRunResult AsyncEngine::run_static(std::uint64_t seed,
                                       SelectionPolicy& policy) {
  const std::size_t num_tiers = tier_members_.size();
  AsyncMetrics& metrics = async_metrics();
  const auto setup_start = obs::wall_now();
  obs::PhaseTimer phases;

  TierRngs rngs = make_tier_rngs(seed, num_tiers);

  std::vector<float> global = factory_(seed).weights();

  // Per-tier server state (FedAT keeps one model version per tier).
  std::vector<std::vector<float>> tier_models(num_tiers, global);
  std::vector<std::size_t> tier_updates(num_tiers, 0);
  std::vector<std::size_t> last_submit_version(num_tiers, 0);
  // Iterated per-tier lr decay (multiplicative, like the sync engine, so
  // a single-tier run reproduces the sync lr sequence bit for bit).
  std::vector<double> tier_lr(num_tiers, config_.local.optimizer.lr);
  std::vector<double> staleness_sum(num_tiers, 0.0);
  std::vector<PendingRound> pending(num_tiers);

  // Tier-round completions are the only scheduled events here, so tiers
  // are the actor space.  Any shard count pops the single-heap (time,
  // seq) order (oracle-pinned), so results don't depend on async_.shards.
  sim::ShardedEventQueue queue(async_.shards, num_tiers);
  AsyncRunResult out;
  out.result.policy_name =
      policy_ != nullptr
          ? "async/" + policy.name() + "/" + staleness_name(async_.staleness)
          : "async/" + staleness_name(async_.staleness);
  out.result.rounds.reserve(async_.total_updates);
  std::vector<double> current_weights;
  std::vector<std::size_t> model_age;     // reused per aggregation
  std::vector<double> accum_scratch;      // aggregate_global scratch

  std::size_t dispatch_seq = 0;   // event-order dispatch counter
  std::size_t scheduled = 0;      // dispatched tier rounds (in flight + done)
  // Tiers whose last selection came back empty (cadence parked by the
  // policy); retried once per *later* recorded version — `parked_at`
  // keeps a just-parked tier from being re-asked at the same version.
  // The default uniform policy never parks, keeping this path cold on
  // pre-seam replays.
  std::vector<char> parked(num_tiers, 0);
  std::vector<std::size_t> parked_at(num_tiers, 0);
  std::vector<std::size_t> staleness_scratch(num_tiers, 0);

  // --- durability state ------------------------------------------------------
  sim::FaultModel fault(async_.fault, seed);
  // Redelivery attempts for the tier's lost completion (the static path's
  // unit of delivery is the whole tier round).
  std::vector<std::size_t> retry_count(num_tiers, 0);
  double next_checkpoint_due = async_.checkpoint_every > 0.0
                                   ? async_.checkpoint_every
                                   : std::numeric_limits<double>::infinity();
  bool last_evaluated = false;
  bool budget_exhausted = false;

  const auto dispatch = [&](std::size_t tier) {
    parked[tier] = 0;
    const std::vector<std::size_t>& members = tier_members_[tier];

    const std::size_t version = out.result.rounds.size();
    for (std::size_t t = 0; t < num_tiers; ++t) {
      staleness_scratch[t] =
          tier_updates[t] > 0 ? version - last_submit_version[t] : 0;
    }
    SelectionContext context;
    context.round = version;
    context.virtual_time = queue.now();
    context.tier = static_cast<int>(tier);
    context.candidates = members;
    context.tiers = TierView{.members = tier_members_,
                             .update_counts = tier_updates,
                             .staleness = staleness_scratch};
    context.rng = &rngs.selection[tier];
    Selection selection;
    {
      obs::ScopedPhase phase(&phases, obs::Phase::kSelect);
      selection = policy.select(context);
    }
    if (selection.clients.empty()) {
      parked[tier] = 1;
      parked_at[tier] = version;
      metrics.parks.add();
      if (obs::Tracer* t = obs::tracer()) {
        t->instant(queue.now(), "async", "park",
                   static_cast<std::int64_t>(tier),
                   {obs::field("version", version)});
      }
      return;
    }
    for (std::size_t id : selection.clients) {
      if (id >= clients_->size()) {
        throw std::logic_error(
            "AsyncEngine: policy selected a client outside the population");
      }
    }
    const std::size_t count = selection.clients.size();

    PendingRound& round = pending[tier];
    round.selected = std::move(selection.clients);
    round.dispatch_version = version;

    LocalTrainParams params = config_.local;
    params.lr = tier_lr[tier];

    for (std::size_t i = 0; i < count; ++i) scratch_model(i + 1);
    round.updates.assign(count, LocalUpdate{});
    // Leases pin (and on a virtualized pool, materialize) the cohort's
    // training state for exactly the duration of local training.
    std::vector<ClientPool::Lease> leases;
    leases.reserve(count);
    {
      obs::ScopedPhase phase(&phases, obs::Phase::kTrain);
      for (std::size_t id : round.selected) {
        leases.push_back(clients_->lease(id));
      }
      pool().parallel_for(0, count, [&](std::size_t i) {
        const Client& client = *leases[i];
        // Deterministic stream per (event-seq, client id): the async
        // analogue of the sync engine's (round, client id) fork.
        util::Rng client_rng(util::mix_seed(seed, dispatch_seq, client.id()));
        round.updates[i] =
            client.local_update(global, scratch_[i + 1], params, client_rng);
      });
      leases.clear();
    }
    ++dispatch_seq;

    // A tier round is internally synchronous: it completes when its
    // slowest sampled member responds.  Latency needs only pool-level
    // state (profile + shard size), never a materialized client.
    round.latency = 0.0;
    for (std::size_t id : round.selected) {
      round.latency = std::max(
          round.latency,
          latency_model_.sample_latency(clients_->resource(id),
                                        clients_->train_size(id),
                                        params.epochs, rngs.latency[tier]));
    }
    queue.schedule(round.latency, /*kind=*/0, /*actor=*/tier);
    ++scheduled;
    if (obs::Tracer* t = obs::tracer()) {
      t->span(queue.now(), round.latency, "async", "tier_round",
              static_cast<std::int64_t>(tier),
              {obs::field("version", version), obs::field("clients", count)});
    }
  };

  metrics.setup_ns.add(obs::wall_ns_count_since(setup_start));

  // --- snapshot payload (static path) ----------------------------------------
  // Serializes every loop-local that determines the run's future: stream
  // positions, per-tier server state, in-flight rounds (trained at
  // dispatch, so their updates travel with the snapshot), the queue, the
  // fault/policy state and the merged metrics view.  Restore is the exact
  // mirror; both sides stream through the same flat ByteSink layout.
  const std::uint64_t fingerprint = config_fingerprint(
      config_, async_, seed, num_tiers, clients_->size(), global.size());
  const auto save_state = [&](util::ByteSink& sink) {
    put_prologue(sink, kSnapStatic, fingerprint, num_tiers, clients_->size(),
                 global.size(), policy.name());
    for (std::size_t t = 0; t < num_tiers; ++t) {
      put_rng(sink, rngs.selection[t]);
      put_rng(sink, rngs.latency[t]);
    }
    sink.put_f32_vec(global);
    for (const std::vector<float>& model : tier_models) {
      sink.put_f32_vec(model);
    }
    sink.put_size_vec(tier_updates);
    sink.put_size_vec(last_submit_version);
    sink.put_f64_vec(tier_lr);
    sink.put_f64_vec(staleness_sum);
    put_records(sink, out.result.rounds);
    sink.put_f64_vec(current_weights);
    sink.put_u64(dispatch_seq);
    sink.put_u64(scheduled);
    for (std::size_t t = 0; t < num_tiers; ++t) {
      sink.put_bool(parked[t] != 0);
    }
    sink.put_size_vec(parked_at);
    sink.put_size_vec(retry_count);
    for (const PendingRound& round : pending) {
      sink.put_size_vec(round.selected);
      sink.put_u64(round.updates.size());
      for (const LocalUpdate& update : round.updates) {
        put_update(sink, update);
      }
      sink.put_u64(round.dispatch_version);
      sink.put_f64(round.latency);
    }
    sink.put_bool(last_evaluated);
    sink.put_u64(out.processed_events);
    sink.put_u64(out.max_event_batch);
    sink.put_f64(next_checkpoint_due);
    put_queue(sink, queue);
    {
      util::ByteSink blob;
      fault.save_state(blob);
      sink.put_string(blob.bytes());
    }
    {
      util::ByteSink blob;
      policy.save_state(blob);
      sink.put_string(blob.bytes());
    }
    put_metrics(sink, queue);
  };

  const bool resuming = !async_.resume_path.empty();
  if (resuming) {
    const std::string payload = load_snapshot(async_.resume_path);
    util::ByteSource source(payload);
    check_prologue(source, kSnapStatic, fingerprint, num_tiers,
                   clients_->size(), global.size(), policy.name());
    for (std::size_t t = 0; t < num_tiers; ++t) {
      get_rng(source, rngs.selection[t]);
      get_rng(source, rngs.latency[t]);
    }
    global = source.get_f32_vec();
    for (std::vector<float>& model : tier_models) {
      model = source.get_f32_vec();
    }
    tier_updates = source.get_size_vec();
    last_submit_version = source.get_size_vec();
    tier_lr = source.get_f64_vec();
    staleness_sum = source.get_f64_vec();
    out.result.rounds = get_records(source);
    current_weights = source.get_f64_vec();
    dispatch_seq = static_cast<std::size_t>(source.get_u64());
    scheduled = static_cast<std::size_t>(source.get_u64());
    for (std::size_t t = 0; t < num_tiers; ++t) {
      parked[t] = source.get_bool() ? 1 : 0;
    }
    parked_at = source.get_size_vec();
    retry_count = source.get_size_vec();
    for (PendingRound& round : pending) {
      round.selected = source.get_size_vec();
      const std::size_t updates = source.checked_count(source.get_u64(), 8);
      round.updates.assign(updates, LocalUpdate{});
      for (LocalUpdate& update : round.updates) {
        update = get_update(source);
      }
      round.dispatch_version = static_cast<std::size_t>(source.get_u64());
      round.latency = source.get_f64();
    }
    last_evaluated = source.get_bool();
    out.processed_events = static_cast<std::size_t>(source.get_u64());
    out.max_event_batch = static_cast<std::size_t>(source.get_u64());
    // The stored due point documents the crashed run's cadence; the
    // resumed run recomputes it from its *own* config (a resume without
    // --checkpoint must never attempt a write).
    (void)source.get_f64();
    get_queue(source, queue);
    next_checkpoint_due =
        async_.checkpoint_every > 0.0
            ? (std::floor(queue.now() / async_.checkpoint_every) + 1.0) *
                  async_.checkpoint_every
            : std::numeric_limits<double>::infinity();
    {
      const std::string blob = source.get_string();
      util::ByteSource blob_source(blob);
      fault.restore_state(blob_source);
    }
    {
      const std::string blob = source.get_string();
      util::ByteSource blob_source(blob);
      policy.restore_state(blob_source);
    }
    get_metrics(source);
    util::log_info("async: resumed from ", async_.resume_path, " at version ",
                   out.result.rounds.size(), ", t=", queue.now());
  }

  sim::EventLogWriter event_log;
  open_event_log(event_log, async_.event_log_path, resuming,
                 out.processed_events);

  const auto write_checkpoint = [&]() {
    const auto start = obs::wall_now();
    util::ByteSink sink;
    save_state(sink);
    const std::size_t bytes =
        save_snapshot(async_.checkpoint_path, sink.bytes());
    if (event_log.is_open()) event_log.sync();
    metrics.checkpoint_writes.add();
    metrics.checkpoint_bytes.add(bytes);
    metrics.checkpoint_write_ns.add(obs::wall_ns_count_since(start));
    if (obs::Tracer* t = obs::tracer()) {
      t->instant(queue.now(), "durability", "checkpoint", /*actor=*/0,
                 {obs::field("version", out.result.rounds.size()),
                  obs::field("events", out.processed_events)});
    }
  };

  if (!resuming) {
    for (std::size_t t = 0; t < num_tiers; ++t) {
      if (!tier_members_[t].empty() && scheduled < async_.total_updates) {
        dispatch(t);
      }
    }
  }

  std::vector<sim::Event> batch;  // reused across pop_batch calls
  while (!queue.empty() && !budget_exhausted) {
    if (fault.crash_at() > 0.0 && queue.peek().time >= fault.crash_at()) {
      // The injected kill point: flush the log (a real SIGKILL would leave
      // at most a torn tail, which the reader tolerates) and die *before*
      // popping or drawing anything, so the crashed run's streams stay
      // aligned with the uninterrupted oracle it is diffed against.
      if (event_log.is_open()) event_log.sync();
      throw sim::SimulatedCrash(queue.peek().time);
    }
    // Drain simultaneous completions in one heap pass.  Events scheduled
    // by the handlers below land at strictly later (time, seq) keys, so
    // per-event handling in batch order replays the one-pop-at-a-time
    // sequence byte for byte (see EventQueue::pop_batch).
    queue.pop_batch(batch);
    out.max_event_batch = std::max(out.max_event_batch, batch.size());
    metrics.event_batch.record(static_cast<double>(batch.size()));
    for (const sim::Event& event : batch) {
      ++out.processed_events;
      metrics.events.add();
      if (event_log.is_open()) event_log.append(event);
      const std::size_t tier = static_cast<std::size_t>(event.actor);
      if (fault.active()) {
        if (fault.lose_update()) {
          metrics.lost_updates.add();
          if (retry_count[tier] < async_.fault.max_retries) {
            // Lost in transit: park the round and retry the delivery after
            // a deterministic backoff (no RNG draw — the rescheduled event
            // flows through the queue, so the retry is shard-invariant).
            ++retry_count[tier];
            queue.schedule(fault.backoff(retry_count[tier]), /*kind=*/0,
                           /*actor=*/tier);
            if (obs::Tracer* t = obs::tracer()) {
              t->instant(queue.now(), "fault", "lost",
                         static_cast<std::int64_t>(tier),
                         {obs::field("attempt", retry_count[tier])});
            }
            continue;
          }
          // Retries exhausted: the round's updates are gone for good (the
          // timeout case).  Un-count the dispatch and restart the tier so
          // the run still converges to total_updates versions.
          metrics.dropped_updates.add();
          retry_count[tier] = 0;
          --scheduled;
          if (obs::Tracer* t = obs::tracer()) {
            t->instant(queue.now(), "fault", "dropped",
                       static_cast<std::int64_t>(tier),
                       {obs::field("retries", async_.fault.max_retries)});
          }
          if (scheduled < async_.total_updates) dispatch(tier);
          continue;
        }
        retry_count[tier] = 0;
      }
      PendingRound& round = pending[tier];

      obs::ScopedPhase agg_phase(&phases, obs::Phase::kAggregate);
      // --- tier-level FedAvg (reduce in selection order) ---------------------
      std::vector<WeightedUpdate> weighted;
      weighted.reserve(round.updates.size());
      double train_loss = 0.0;
      for (const LocalUpdate& update : round.updates) {
        weighted.push_back(WeightedUpdate{
            .weights = update.weights,
            .sample_count = static_cast<double>(update.num_samples)});
        train_loss += update.train_loss;
      }
      train_loss /= static_cast<double>(round.updates.size());
      tier_models[tier] = fedavg(weighted);

      const std::size_t version = out.result.rounds.size();
      staleness_sum[tier] +=
          static_cast<double>(version - round.dispatch_version);
      ++tier_updates[tier];
      last_submit_version[tier] = version;
      tier_lr[tier] *= config_.lr_decay_per_round;
      metrics.tier_rounds.add();
      metrics.staleness.record(
          static_cast<double>(version - round.dispatch_version));

      // --- staleness-weighted cross-tier aggregation -------------------------
      model_age.assign(num_tiers, 0);
      for (std::size_t t = 0; t < num_tiers; ++t) {
        if (tier_updates[t] > 0) model_age[t] = version - last_submit_version[t];
      }
      current_weights = cross_tier_weights(async_.staleness, async_.poly_alpha,
                                           tier_updates, model_age);
      aggregate_global(tier_models, current_weights, global, accum_scratch);
      agg_phase.stop();
      if (obs::Tracer* t = obs::tracer()) {
        t->instant(queue.now(), "async", "aggregate",
                   static_cast<std::int64_t>(tier),
                   {obs::field("version", version),
                    obs::field("staleness", version - round.dispatch_version),
                    obs::field("weight", current_weights[tier])});
      }

      // --- record + evaluation ----------------------------------------------
      RoundRecord record;
      record.round = version;
      record.round_latency = round.latency;
      record.virtual_time = queue.now();
      record.train_loss = train_loss;
      record.selected_tier = static_cast<int>(tier);
      record.selected_clients = round.selected;

      last_evaluated = version % async_.eval_every == 0 ||
                       version + 1 == async_.total_updates;
      if (last_evaluated) {
        obs::ScopedPhase phase(&phases, obs::Phase::kEval);
        const nn::LossResult r = evaluate(global, *test_);
        phase.stop();
        record.global_accuracy = r.accuracy;
        record.global_loss = r.loss;
        if (obs::Tracer* t = obs::tracer()) {
          t->instant(queue.now(), "async", "eval",
                     static_cast<std::int64_t>(tier),
                     {obs::field("version", version),
                      obs::field("accuracy", r.accuracy)});
        }
      } else if (!out.result.rounds.empty()) {
        record.global_accuracy = out.result.rounds.back().global_accuracy;
        record.global_loss = out.result.rounds.back().global_loss;
      }

      RoundFeedback feedback;
      feedback.round = version;
      feedback.virtual_time = queue.now();
      feedback.global_accuracy = record.global_accuracy;
      feedback.global_loss = record.global_loss;
      feedback.submitting_tier = static_cast<int>(tier);
      feedback.staleness = version - round.dispatch_version;
      if (last_evaluated) {
        obs::ScopedPhase phase(&phases, obs::Phase::kEval);
        feedback.tier_accuracies = evaluate_tiers(global);
      }
      policy.observe(feedback);

      out.result.rounds.push_back(std::move(record));

      if (version % 50 == 0) {
        util::log_debug("async v", version, " tier=", tier,
                        " acc=", out.result.rounds.back().global_accuracy,
                        " t=", queue.now());
      }

      if (async_.time_budget_seconds > 0.0 &&
          queue.now() >= async_.time_budget_seconds) {
        util::log_info("async time budget of ", async_.time_budget_seconds,
                       "s exhausted after ", version + 1, " updates");
        budget_exhausted = true;
        break;
      }
      // Total dispatches are capped at total_updates, so draining the queue
      // records exactly that many versions (fewer on a time-budget break).
      if (scheduled < async_.total_updates) dispatch(tier);
      // Policy-parked tiers get another chance at the new global version
      // (skipping any tier parked at this very version just above).
      for (std::size_t t = 0; t < num_tiers; ++t) {
        if (parked[t] && parked_at[t] < out.result.rounds.size() &&
            scheduled < async_.total_updates) {
          metrics.park_retries.add();
          dispatch(t);
        }
      }
    }
    // Checkpoint at batch boundaries once virtual time crosses the due
    // point: the trigger is a pure function of event times (never a queue
    // event), so it is shard-count invariant and perturbs no seqs.
    if (!budget_exhausted && queue.now() >= next_checkpoint_due) {
      write_checkpoint();
      next_checkpoint_due =
          (std::floor(queue.now() / async_.checkpoint_every) + 1.0) *
          async_.checkpoint_every;
    }
  }

  // A time-budget break (or a carry-forward cadence) can leave the last
  // record holding a stale accuracy; refresh it from the final weights.
  if (!out.result.rounds.empty() && !last_evaluated) {
    obs::ScopedPhase phase(&phases, obs::Phase::kEval);
    const nn::LossResult r = evaluate(global, *test_);
    out.result.rounds.back().global_accuracy = r.accuracy;
    out.result.rounds.back().global_loss = r.loss;
  }

  const auto finalize_start = obs::wall_now();
  finalize_result(out, std::move(global), tier_updates, staleness_sum,
                  std::move(current_weights));
  out.result.phases = phases.stats();
  out.final_members = tier_members_;
  for (const std::vector<std::size_t>& members : tier_members_) {
    out.final_live_clients += members.size();
  }
  // Fold the per-shard queue registries into the process-global snapshot
  // under the single-queue instrument names (sim.events_popped etc.).
  queue.merge_metrics_into(obs::Registry::global());
  metrics.finalize_ns.add(obs::wall_ns_count_since(finalize_start));
  return out;
}

// Dynamic client lifecycle: joins, leaves, mid-round slowdowns and online
// re-tiering share the event queue with training.  The unit of submission
// is the *client*, not the tier: every sampled client's update arrives as
// its own kClientUpdate event after that client's individual latency, is
// folded into its tier's running (staleness-weighted) FedAvg, and
// triggers one cross-tier aggregation — so a straggler whose multiplier
// changed mid-flight lands late and is discounted by its own age, while
// its on-time cohort already moved the model.  A tier re-dispatches when
// every awaited member has arrived or left.
AsyncRunResult AsyncEngine::run_dynamic(std::uint64_t seed,
                                        SelectionPolicy& policy) {
  const std::size_t num_tiers = tier_members_.size();
  const std::size_t num_clients = clients_->size();
  AsyncMetrics& metrics = async_metrics();
  const auto setup_start = obs::wall_now();
  obs::PhaseTimer phases;
  if (async_.reprofile_every > 0.0 && !hooks_.retier) {
    throw std::invalid_argument(
        "AsyncEngine: reprofile_every > 0 requires a retier hook");
  }

  // Membership evolves during the run (leaves, joins, re-tierings), so
  // work on run-local state: repeated run() calls stay a pure function
  // of the seed.  Authoritative membership lives in order-statistics sets
  // (SegmentedIdSet: O(block) churn instead of an O(n) memmove per event
  // at million-client scale); `tiers_flat` is a dirty-cached ascending
  // copy rebuilt only where an interface needs a plain vector (custom
  // selection policies, re-tier callbacks, final reporting).  Both views
  // iterate in ascending id order, exactly like the flat sorted vectors
  // they replace, so sampling and picks are bit-identical.
  std::vector<std::vector<std::size_t>> tiers_flat = tier_members_;
  for (std::vector<std::size_t>& members : tiers_flat) {
    std::sort(members.begin(), members.end());
  }

  // Same stream layout as the static path; churn draws come from the
  // ChurnModel's own forked streams, so enabling re-profiling alone does
  // not perturb selection or latency sequences.
  TierRngs rngs = make_tier_rngs(seed, num_tiers);

  std::vector<float> global = factory_(seed).weights();
  const std::size_t weight_count = global.size();

  std::vector<std::vector<float>> tier_models(num_tiers, global);
  std::vector<std::size_t> tier_updates(num_tiers, 0);
  std::vector<std::size_t> last_submit_version(num_tiers, 0);
  std::vector<double> tier_lr(num_tiers, config_.local.optimizer.lr);
  std::vector<double> staleness_sum(num_tiers, 0.0);

  // One open round per tier, folded into incrementally as members arrive.
  struct DynRound {
    bool active = false;       // a cohort is in flight
    std::size_t awaiting = 0;  // members not yet arrived nor departed
    std::size_t arrivals = 0;
    std::vector<double> accum;  // sum of weight * update (doubles)
    double weight_total = 0.0;
  };
  std::vector<DynRound> rounds(num_tiers);

  // Per-client lifecycle state.
  constexpr std::size_t kNoTier = static_cast<std::size_t>(-1);
  std::vector<char> live(num_clients, 0);
  std::vector<std::size_t> tier_of(num_clients, kNoTier);
  std::vector<double> latency_scale(num_clients, 1.0);
  std::vector<char> in_flight(num_clients, 0);
  std::size_t in_flight_count = 0;
  std::vector<double> arrival_time(num_clients, 0.0);
  std::vector<double> flight_dispatch_time(num_clients, 0.0);
  std::vector<std::size_t> flight_dispatch_version(num_clients, 0);
  std::vector<std::size_t> flight_tier(num_clients, 0);
  std::vector<LocalUpdate> flight_update(num_clients);
  // Redelivery attempts for a lost in-flight update (fault injection).
  std::vector<std::size_t> flight_retries(num_clients, 0);

  std::vector<util::SegmentedIdSet> tier_sets;
  tier_sets.reserve(num_tiers);
  for (std::size_t t = 0; t < num_tiers; ++t) {
    tier_sets.emplace_back(num_clients);
  }
  std::vector<char> tier_dirty(num_tiers, 0);
  util::SegmentedIdSet live_set(num_clients);
  util::SegmentedIdSet inactive_set(num_clients);  // join reserve
  for (std::size_t t = 0; t < num_tiers; ++t) {
    for (std::size_t id : tiers_flat[t]) {
      live[id] = 1;
      tier_of[id] = t;
      tier_sets[t].insert(id);
    }
  }
  for (std::size_t c = 0; c < num_clients; ++c) {
    (live[c] ? live_set : inactive_set).insert(c);
  }

  // Refresh + return the flat membership copies; every plain-vector
  // consumer below goes through this.
  const auto flat_tiers = [&]() -> std::vector<std::vector<std::size_t>>& {
    for (std::size_t t = 0; t < num_tiers; ++t) {
      if (tier_dirty[t]) {
        tiers_flat[t] = tier_sets[t].to_vector();
        tier_dirty[t] = 0;
      }
    }
    return tiers_flat;
  };

  // In-flight members keyed by their *current* tier (cohort-sized sorted
  // vectors).  The default-policy fast path subtracts these from a tier
  // by rank instead of scanning its whole membership for busy clients;
  // rebucketed on re-tiering, erased on arrival and departure.
  std::vector<std::vector<std::size_t>> inflight_by_tier(num_tiers);
  const auto sorted_insert = [](std::vector<std::size_t>& ids,
                                std::size_t id) {
    ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
  };
  const auto sorted_erase = [](std::vector<std::size_t>& ids,
                               std::size_t id) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    if (it != ids.end() && *it == id) ids.erase(it);
  };

  // Clients are the actor space: each shard owns a contiguous id range
  // and its own heap, and pops replay the single-heap (time, seq) order
  // at every shard count (lifecycle/reprofile events ride on actor 0).
  sim::ShardedEventQueue queue(async_.shards, num_clients);
  AsyncRunResult out;
  out.result.policy_name =
      policy_ != nullptr ? "async-dyn/" + policy.name() + "/" +
                               staleness_name(async_.staleness)
                         : "async-dyn/" + staleness_name(async_.staleness);
  out.result.rounds.reserve(async_.total_updates);
  std::vector<double> current_weights;
  std::vector<std::size_t> model_age;     // reused per aggregation
  std::vector<double> accum_scratch;      // aggregate_global scratch

  std::size_t dispatch_seq = 0;

  // Deferred cohort training (barrier windows).  A dispatch snapshots the
  // global model and its dispatch seq into a TrainTask instead of
  // training inline; tasks flush through the thread pool at the window
  // barrier, or early when one of their members' arrival lands inside the
  // same window.  Training is order-independent — each client's RNG is
  // forked from (dispatch seq, client id) and reads only the snapshot —
  // so any flush point (including the window-0 default) produces
  // byte-identical weights to the legacy train-at-dispatch.
  struct TrainTask {
    std::vector<std::size_t> members;  // selection order
    std::vector<float> snapshot;       // global at dispatch time
    double lr = 0.0;
    std::size_t seq = 0;  // dispatch_seq at creation (RNG fork key)
    bool done = false;
  };
  std::vector<TrainTask> window_tasks;
  constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);
  std::vector<std::size_t> task_of(num_clients, kNoTask);
  std::vector<std::size_t> train_ids;            // run_task scratch
  std::vector<ClientPool::Lease> lease_scratch;  // run_task scratch

  const auto run_task = [&](std::size_t index) {
    TrainTask& task = window_tasks[index];
    if (task.done) return;
    task.done = true;
    // Only members still awaiting *this* dispatch train: a mid-window
    // leave clears in_flight, and a same-window re-dispatch of a member
    // (leave + rejoin) re-points its task_of at the newer task.
    train_ids.clear();
    for (std::size_t c : task.members) {
      if (in_flight[c] && task_of[c] == index) train_ids.push_back(c);
    }
    if (train_ids.empty()) return;
    const std::size_t count = train_ids.size();
    LocalTrainParams params = config_.local;
    params.lr = task.lr;
    for (std::size_t i = 0; i < count; ++i) scratch_model(i + 1);
    obs::ScopedPhase phase(&phases, obs::Phase::kTrain);
    lease_scratch.clear();
    lease_scratch.reserve(count);
    for (std::size_t id : train_ids) {
      lease_scratch.push_back(clients_->lease(id));
    }
    pool().parallel_for(0, count, [&](std::size_t i) {
      const Client& client = *lease_scratch[i];
      util::Rng client_rng(util::mix_seed(seed, task.seq, client.id()));
      flight_update[client.id()] = client.local_update(
          task.snapshot, scratch_[i + 1], params, client_rng);
    });
    lease_scratch.clear();
  };

  const auto expected_latency = [&](std::size_t c) {
    return latency_model_.expected_latency(clients_->resource(c),
                                           clients_->train_size(c),
                                           config_.local.epochs) *
           latency_scale[c];
  };

  // Hook-free join placement: the tier whose live members' mean expected
  // latency sits nearest the joiner's.
  const auto place_fallback = [&](std::size_t c) {
    const double mine = expected_latency(c);
    std::size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < num_tiers; ++t) {
      if (tier_sets[t].empty()) continue;
      double mean = 0.0;
      tier_sets[t].for_each(
          [&](std::size_t id) { mean += expected_latency(id); });
      mean /= static_cast<double>(tier_sets[t].size());
      const double distance = std::abs(mean - mine);
      if (distance < best_distance) {
        best_distance = distance;
        best = t;
      }
    }
    return best;
  };

  // Tiers whose last selection came back empty (cadence parked by the
  // policy); retried once per *later* recorded version (`parked_at`
  // prevents a same-version re-ask).  The default uniform policy never
  // parks, so pre-seam replays never take the retry path.
  std::vector<char> parked(num_tiers, 0);
  std::vector<std::size_t> parked_at(num_tiers, 0);
  std::vector<std::size_t> staleness_scratch(num_tiers, 0);

  // --- durability state ------------------------------------------------------
  sim::FaultModel fault(async_.fault, seed);
  double next_checkpoint_due = async_.checkpoint_every > 0.0
                                   ? async_.checkpoint_every
                                   : std::numeric_limits<double>::infinity();
  const bool resuming = !async_.resume_path.empty();

  const auto dispatch = [&](std::size_t tier) {
    DynRound& round = rounds[tier];
    round.active = false;
    parked[tier] = 0;
    if (out.result.rounds.size() >= async_.total_updates) return;
    const std::size_t version = out.result.rounds.size();

    std::vector<std::size_t> selected;
    if (policy_ == nullptr) {
      // Default-policy fast path.  UniformTierPolicy::select draws
      // sample_without_replacement(|eligible|, count) and returns
      // eligible[draw], where eligible = tier members minus in-flight
      // clients in ascending id order.  Replicate that draw-for-draw
      // against the order-statistics set: the in-flight "holes" are
      // rank-adjusted away instead of materializing an O(tier size)
      // eligible list per dispatch.  Both paths consume the exact same
      // selection-stream values, so installing an explicit
      // UniformTierPolicy replays this path bit for bit (ctest-pinned).
      const std::size_t busy = inflight_by_tier[tier].size();
      const std::size_t eligible_count = tier_sets[tier].size() - busy;
      if (eligible_count == 0) return;
      obs::ScopedPhase phase(&phases, obs::Phase::kSelect);
      const std::size_t count =
          std::min(async_.clients_per_tier_round, eligible_count);
      const std::vector<std::size_t> draws = sample_without_replacement(
          eligible_count, count, rngs.selection[tier]);
      // Ranks of the busy members within the tier's ascending id order
      // (ascending, because inflight_by_tier is sorted by id).
      std::vector<std::size_t> blocked;
      blocked.reserve(busy);
      for (std::size_t id : inflight_by_tier[tier]) {
        blocked.push_back(tier_sets[tier].rank(id));
      }
      selected.reserve(count);
      for (std::size_t local : draws) {
        std::size_t idx = local;
        for (std::size_t r : blocked) {
          if (r <= idx) {
            ++idx;
          } else {
            break;
          }
        }
        selected.push_back(tier_sets[tier].kth(idx));
      }
    } else {
      // Custom policy: materialize the eligible list and ask.  A client
      // already training for another tier (possible right after a
      // re-tiering migration) cannot take a second task.
      std::vector<std::size_t> eligible;
      for (std::size_t id : flat_tiers()[tier]) {
        if (!in_flight[id]) eligible.push_back(id);
      }
      if (eligible.empty()) return;

      for (std::size_t t = 0; t < num_tiers; ++t) {
        staleness_scratch[t] =
            tier_updates[t] > 0 ? version - last_submit_version[t] : 0;
      }
      SelectionContext context;
      context.round = version;
      context.virtual_time = queue.now();
      context.tier = static_cast<int>(tier);
      context.candidates = eligible;
      context.tiers = TierView{.members = tiers_flat,
                               .update_counts = tier_updates,
                               .staleness = staleness_scratch};
      context.rng = &rngs.selection[tier];
      Selection selection;
      {
        obs::ScopedPhase phase(&phases, obs::Phase::kSelect);
        selection = policy.select(context);
      }
      if (selection.clients.empty()) {
        parked[tier] = 1;
        parked_at[tier] = version;
        metrics.parks.add();
        if (obs::Tracer* t = obs::tracer()) {
          t->instant(queue.now(), "async", "park",
                     static_cast<std::int64_t>(tier),
                     {obs::field("version", version)});
        }
        return;
      }
      for (std::size_t id : selection.clients) {
        if (id >= num_clients || !live[id] || in_flight[id]) {
          throw std::logic_error(
              "AsyncEngine: policy selected a dead or busy client");
        }
      }
      selected = std::move(selection.clients);
    }
    const std::size_t count = selected.size();

    round.active = true;
    round.awaiting = count;
    round.arrivals = 0;
    round.accum.assign(weight_count, 0.0);
    round.weight_total = 0.0;

    // Snapshot the model and dispatch seq; training runs at the window
    // barrier (or at the cohort's first same-window arrival).
    const std::size_t task_index = window_tasks.size();
    window_tasks.push_back(TrainTask{});
    TrainTask& task = window_tasks.back();
    task.members = std::move(selected);
    task.snapshot = global;
    task.lr = tier_lr[tier];
    task.seq = dispatch_seq;
    ++dispatch_seq;

    // One bulk insert for the whole cohort: same (time, seq) keys as the
    // per-client schedule_at calls this replaces, one heap rebuild.
    std::vector<sim::PendingEvent> cohort;
    cohort.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t c = task.members[i];
      const double latency =
          latency_model_.sample_latency(clients_->resource(c),
                                        clients_->train_size(c),
                                        config_.local.epochs,
                                        rngs.latency[tier]) *
          latency_scale[c];
      in_flight[c] = 1;
      ++in_flight_count;
      flight_retries[c] = 0;
      sorted_insert(inflight_by_tier[tier], c);
      task_of[c] = task_index;
      flight_tier[c] = tier;
      flight_dispatch_time[c] = queue.now();
      flight_dispatch_version[c] = version;
      arrival_time[c] = queue.now() + latency;
      cohort.push_back(sim::PendingEvent{
          .delay = latency,
          .kind = static_cast<std::uint64_t>(sim::EventKind::kClientUpdate),
          .actor = c});
    }
    queue.schedule_bulk(cohort);
    if (obs::Tracer* t = obs::tracer()) {
      t->instant(queue.now(), "async", "cohort",
                 static_cast<std::int64_t>(tier),
                 {obs::field("version", version),
                  obs::field("clients", count)});
    }
  };

  // A round whose last awaited member arrived or departed: decay the lr
  // (once per completed cohort, matching the static path's per-round
  // decay) and start the tier's next round.
  const auto complete_round = [&](std::size_t tier) {
    if (rounds[tier].arrivals > 0) {
      tier_lr[tier] *= config_.lr_decay_per_round;
      metrics.tier_rounds.add();
    }
    dispatch(tier);
  };

  // Lifecycle event source: exactly one churn event is scheduled at a
  // time (the queue's Event carries no payload, so the pending
  // LifecycleEvent rides alongside in `pending_churn`).
  sim::ChurnModel churn(async_.churn, seed);
  std::optional<sim::LifecycleEvent> pending_churn;
  const auto schedule_next_churn = [&]() {
    pending_churn = churn.next();
    if (pending_churn.has_value()) {
      queue.schedule_at(pending_churn->time,
                        static_cast<std::uint64_t>(pending_churn->kind),
                        /*actor=*/0);
    }
  };
  if (!resuming) {
    schedule_next_churn();
    if (async_.reprofile_every > 0.0) {
      queue.schedule_at(async_.reprofile_every,
                        static_cast<std::uint64_t>(sim::EventKind::kReProfile),
                        /*actor=*/0);
    }
  }

  metrics.setup_ns.add(obs::wall_ns_count_since(setup_start));

  bool last_evaluated = false;
  bool stopped = false;
  double window_end = -std::numeric_limits<double>::infinity();

  // --- snapshot payload (dynamic path) ---------------------------------------
  // Everything the event loop's future depends on: stream positions,
  // per-tier server state, the evolved membership, in-flight cohorts
  // (trained updates travel with the snapshot; untrained cohorts travel
  // as their deferred TrainTask), churn/re-tierer/policy/fault state, the
  // queue, and the merged metrics view.
  const std::uint64_t fingerprint = config_fingerprint(
      config_, async_, seed, num_tiers, num_clients, weight_count);
  const auto save_state = [&](util::ByteSink& sink) {
    put_prologue(sink, kSnapDynamic, fingerprint, num_tiers, num_clients,
                 weight_count, policy.name());
    for (std::size_t t = 0; t < num_tiers; ++t) {
      put_rng(sink, rngs.selection[t]);
      put_rng(sink, rngs.latency[t]);
    }
    sink.put_f32_vec(global);
    for (const std::vector<float>& model : tier_models) {
      sink.put_f32_vec(model);
    }
    sink.put_size_vec(tier_updates);
    sink.put_size_vec(last_submit_version);
    sink.put_f64_vec(tier_lr);
    sink.put_f64_vec(staleness_sum);
    put_records(sink, out.result.rounds);
    sink.put_f64_vec(current_weights);
    sink.put_u64(dispatch_seq);
    for (const std::vector<std::size_t>& members : flat_tiers()) {
      sink.put_size_vec(members);
    }
    // Latency multipliers, sparse: only clients a slowdown touched.
    std::uint64_t scaled = 0;
    for (double s : latency_scale) scaled += s != 1.0 ? 1 : 0;
    sink.put_u64(scaled);
    for (std::size_t c = 0; c < num_clients; ++c) {
      if (latency_scale[c] != 1.0) {
        sink.put_u64(c);
        sink.put_f64(latency_scale[c]);
      }
    }
    // In-flight cohort members, ascending id order (restore re-buckets
    // inflight_by_tier from tier_of, so per-tier lists stay sorted).
    sink.put_u64(in_flight_count);
    for (std::size_t c = 0; c < num_clients; ++c) {
      if (!in_flight[c]) continue;
      sink.put_u64(c);
      sink.put_u64(flight_tier[c]);
      sink.put_f64(flight_dispatch_time[c]);
      sink.put_u64(flight_dispatch_version[c]);
      sink.put_f64(arrival_time[c]);
      sink.put_u64(flight_retries[c]);
      const bool trained = !flight_update[c].weights.empty();
      sink.put_bool(trained);
      if (trained) put_update(sink, flight_update[c]);
    }
    for (const DynRound& round : rounds) {
      sink.put_bool(round.active);
      sink.put_u64(round.awaiting);
      sink.put_u64(round.arrivals);
      sink.put_f64(round.weight_total);
      sink.put_f64_vec(round.accum);
    }
    // Deferred window tasks, their membership pointers, the open window.
    sink.put_u64(window_tasks.size());
    for (const TrainTask& task : window_tasks) {
      sink.put_size_vec(task.members);
      sink.put_f32_vec(task.snapshot);
      sink.put_f64(task.lr);
      sink.put_u64(task.seq);
      sink.put_bool(task.done);
    }
    std::uint64_t tasked = 0;
    for (std::size_t t : task_of) tasked += t != kNoTask ? 1 : 0;
    sink.put_u64(tasked);
    for (std::size_t c = 0; c < num_clients; ++c) {
      if (task_of[c] != kNoTask) {
        sink.put_u64(c);
        sink.put_u64(task_of[c]);
      }
    }
    sink.put_f64(window_end);
    for (std::size_t t = 0; t < num_tiers; ++t) {
      sink.put_bool(parked[t] != 0);
    }
    sink.put_size_vec(parked_at);
    {
      util::ByteSink blob;
      churn.save_state(blob);
      sink.put_string(blob.bytes());
    }
    sink.put_bool(pending_churn.has_value());
    if (pending_churn.has_value()) {
      sink.put_f64(pending_churn->time);
      sink.put_u64(static_cast<std::uint64_t>(pending_churn->kind));
      sink.put_u64(pending_churn->pick);
      sink.put_f64(pending_churn->factor);
    }
    {
      util::ByteSink blob;
      if (hooks_.save_state) hooks_.save_state(blob);
      sink.put_string(blob.bytes());
    }
    sink.put_bool(last_evaluated);
    sink.put_u64(out.join_count);
    sink.put_u64(out.leave_count);
    sink.put_u64(out.slowdown_count);
    sink.put_u64(out.reprofile_count);
    sink.put_u64(out.processed_events);
    sink.put_u64(out.max_event_batch);
    sink.put_f64(next_checkpoint_due);
    put_queue(sink, queue);
    {
      util::ByteSink blob;
      fault.save_state(blob);
      sink.put_string(blob.bytes());
    }
    {
      util::ByteSink blob;
      policy.save_state(blob);
      sink.put_string(blob.bytes());
    }
    put_metrics(sink, queue);
  };

  if (resuming) {
    const std::string payload = load_snapshot(async_.resume_path);
    util::ByteSource source(payload);
    check_prologue(source, kSnapDynamic, fingerprint, num_tiers, num_clients,
                   weight_count, policy.name());
    for (std::size_t t = 0; t < num_tiers; ++t) {
      get_rng(source, rngs.selection[t]);
      get_rng(source, rngs.latency[t]);
    }
    global = source.get_f32_vec();
    for (std::vector<float>& model : tier_models) {
      model = source.get_f32_vec();
    }
    tier_updates = source.get_size_vec();
    last_submit_version = source.get_size_vec();
    tier_lr = source.get_f64_vec();
    staleness_sum = source.get_f64_vec();
    out.result.rounds = get_records(source);
    current_weights = source.get_f64_vec();
    dispatch_seq = static_cast<std::size_t>(source.get_u64());
    // Rebuild every membership view from the snapshot's flat tiers.
    std::fill(live.begin(), live.end(), 0);
    std::fill(tier_of.begin(), tier_of.end(), kNoTier);
    live_set.clear();
    inactive_set.clear();
    for (std::size_t t = 0; t < num_tiers; ++t) {
      tiers_flat[t] = source.get_size_vec();
      tier_sets[t].clear();
      tier_dirty[t] = 0;
      for (std::size_t id : tiers_flat[t]) {
        if (id >= num_clients) {
          throw std::runtime_error(
              "AsyncEngine: snapshot member out of range");
        }
        live[id] = 1;
        tier_of[id] = t;
        tier_sets[t].insert(id);
      }
    }
    for (std::size_t c = 0; c < num_clients; ++c) {
      (live[c] ? live_set : inactive_set).insert(c);
    }
    std::fill(latency_scale.begin(), latency_scale.end(), 1.0);
    const std::size_t scaled = source.checked_count(source.get_u64(), 16);
    for (std::size_t i = 0; i < scaled; ++i) {
      const std::size_t c = static_cast<std::size_t>(source.get_u64());
      latency_scale.at(c) = source.get_f64();
    }
    std::fill(in_flight.begin(), in_flight.end(), 0);
    for (std::vector<std::size_t>& list : inflight_by_tier) list.clear();
    in_flight_count = source.checked_count(source.get_u64(), 8);
    for (std::size_t i = 0; i < in_flight_count; ++i) {
      const std::size_t c = static_cast<std::size_t>(source.get_u64());
      in_flight.at(c) = 1;
      flight_tier[c] = static_cast<std::size_t>(source.get_u64());
      flight_dispatch_time[c] = source.get_f64();
      flight_dispatch_version[c] = static_cast<std::size_t>(source.get_u64());
      arrival_time[c] = source.get_f64();
      flight_retries[c] = static_cast<std::size_t>(source.get_u64());
      flight_update[c] =
          source.get_bool() ? get_update(source) : LocalUpdate{};
      inflight_by_tier[tier_of[c]].push_back(c);
    }
    for (DynRound& round : rounds) {
      round.active = source.get_bool();
      round.awaiting = static_cast<std::size_t>(source.get_u64());
      round.arrivals = static_cast<std::size_t>(source.get_u64());
      round.weight_total = source.get_f64();
      round.accum = source.get_f64_vec();
    }
    window_tasks.clear();
    const std::size_t task_count = source.checked_count(source.get_u64(), 8);
    for (std::size_t i = 0; i < task_count; ++i) {
      TrainTask task;
      task.members = source.get_size_vec();
      task.snapshot = source.get_f32_vec();
      task.lr = source.get_f64();
      task.seq = static_cast<std::size_t>(source.get_u64());
      task.done = source.get_bool();
      window_tasks.push_back(std::move(task));
    }
    std::fill(task_of.begin(), task_of.end(), kNoTask);
    const std::size_t tasked = source.checked_count(source.get_u64(), 16);
    for (std::size_t i = 0; i < tasked; ++i) {
      const std::size_t c = static_cast<std::size_t>(source.get_u64());
      task_of.at(c) = static_cast<std::size_t>(source.get_u64());
    }
    window_end = source.get_f64();
    for (std::size_t t = 0; t < num_tiers; ++t) {
      parked[t] = source.get_bool() ? 1 : 0;
    }
    parked_at = source.get_size_vec();
    {
      const std::string blob = source.get_string();
      util::ByteSource blob_source(blob);
      churn.restore_state(blob_source);
    }
    if (source.get_bool()) {
      sim::LifecycleEvent event;
      event.time = source.get_f64();
      event.kind = static_cast<sim::EventKind>(source.get_u64());
      event.pick = source.get_u64();
      event.factor = source.get_f64();
      pending_churn = event;
    } else {
      pending_churn.reset();
    }
    {
      const std::string blob = source.get_string();
      if (hooks_.restore_state && !blob.empty()) {
        util::ByteSource blob_source(blob);
        hooks_.restore_state(blob_source);
      }
    }
    last_evaluated = source.get_bool();
    out.join_count = static_cast<std::size_t>(source.get_u64());
    out.leave_count = static_cast<std::size_t>(source.get_u64());
    out.slowdown_count = static_cast<std::size_t>(source.get_u64());
    out.reprofile_count = static_cast<std::size_t>(source.get_u64());
    out.processed_events = static_cast<std::size_t>(source.get_u64());
    out.max_event_batch = static_cast<std::size_t>(source.get_u64());
    // The stored due point documents the crashed run's cadence; the
    // resumed run recomputes it from its *own* config (a resume without
    // --checkpoint must never attempt a write).
    (void)source.get_f64();
    get_queue(source, queue);
    next_checkpoint_due =
        async_.checkpoint_every > 0.0
            ? (std::floor(queue.now() / async_.checkpoint_every) + 1.0) *
                  async_.checkpoint_every
            : std::numeric_limits<double>::infinity();
    {
      const std::string blob = source.get_string();
      util::ByteSource blob_source(blob);
      fault.restore_state(blob_source);
    }
    {
      const std::string blob = source.get_string();
      util::ByteSource blob_source(blob);
      policy.restore_state(blob_source);
    }
    get_metrics(source);
    util::log_info("async-dyn: resumed from ", async_.resume_path,
                   " at version ", out.result.rounds.size(),
                   ", t=", queue.now());
  }

  sim::EventLogWriter event_log;
  open_event_log(event_log, async_.event_log_path, resuming,
                 out.processed_events);

  const auto write_checkpoint = [&]() {
    const auto start = obs::wall_now();
    util::ByteSink sink;
    save_state(sink);
    const std::size_t bytes =
        save_snapshot(async_.checkpoint_path, sink.bytes());
    if (event_log.is_open()) event_log.sync();
    metrics.checkpoint_writes.add();
    metrics.checkpoint_bytes.add(bytes);
    metrics.checkpoint_write_ns.add(obs::wall_ns_count_since(start));
    if (obs::Tracer* t = obs::tracer()) {
      t->instant(queue.now(), "durability", "checkpoint", /*actor=*/0,
                 {obs::field("version", out.result.rounds.size()),
                  obs::field("events", out.processed_events)});
    }
  };

  if (!resuming) {
    for (std::size_t t = 0; t < num_tiers; ++t) {
      if (!tier_sets[t].empty()) dispatch(t);
    }
  }

  // Virtual-time barrier: run every deferred task dispatched inside the
  // window that just closed (dispatch order), then forget them.  task_of
  // is cleared blindly — every window task has run by then, so a member
  // re-dispatched within the window already trained under its newer task.
  const auto flush_window = [&]() {
    if (window_tasks.empty()) return;
    metrics.barriers.add();
    metrics.barrier_tasks.record(static_cast<double>(window_tasks.size()));
    for (std::size_t i = 0; i < window_tasks.size(); ++i) run_task(i);
    for (const TrainTask& task : window_tasks) {
      for (std::size_t c : task.members) task_of[c] = kNoTask;
    }
    window_tasks.clear();
  };

  std::vector<sim::Event> batch;  // reused across pop_batch calls
  while (!queue.empty() && !stopped) {
    // Injected server crash: fires strictly between batches (and before
    // any window flush), so the last checkpoint is a consistent prefix.
    if (fault.crash_at() > 0.0 && queue.peek().time >= fault.crash_at()) {
      if (event_log.is_open()) event_log.sync();
      throw sim::SimulatedCrash(queue.peek().time);
    }
    if (queue.peek().time > window_end) {
      // The next event opens a new barrier window [T, T + window]: flush
      // the cohorts the closing window deferred.  Window boundaries are a
      // pure function of event times, so they are shard-count invariant.
      flush_window();
      window_end = queue.peek().time + async_.barrier_window;
    }
    // Same-timestamp batch drain as the static loop: in-batch order is
    // the exact (time, seq) pop order, and anything the handlers schedule
    // sorts after the whole batch, so the replay sequence is unchanged.
    queue.pop_batch(batch);
    out.max_event_batch = std::max(out.max_event_batch, batch.size());
    metrics.event_batch.record(static_cast<double>(batch.size()));
    for (const sim::Event& event : batch) {
      ++out.processed_events;
      metrics.events.add();
      if (event_log.is_open()) event_log.append(event);
      // Budget crossings must be caught on *any* event kind: the churn and
      // reprofile streams re-arm forever, so an update-starved run (e.g.
      // heavy leave rates) would otherwise spin on lifecycle events
      // arbitrarily far past the budget.  A client update crossing the
      // budget still falls through and is recorded before the post-record
      // check below stops the run.
      if (async_.time_budget_seconds > 0.0 &&
          queue.now() >= async_.time_budget_seconds &&
          static_cast<sim::EventKind>(event.kind) !=
              sim::EventKind::kClientUpdate) {
        util::log_info("async time budget of ", async_.time_budget_seconds,
                       "s exhausted after ", out.result.rounds.size(),
                       " updates");
        stopped = true;
        break;
      }
      switch (static_cast<sim::EventKind>(event.kind)) {
        case sim::EventKind::kClientUpdate: {
          const std::size_t c = static_cast<std::size_t>(event.actor);
          // A leave or slowdown invalidated this arrival: the client either
          // departed or now lands at a different (rescheduled) time.
          if (!in_flight[c] || event.time != arrival_time[c]) {
            metrics.stale_events.add();
            break;
          }
          // Injected network loss: one Bernoulli draw per delivery attempt,
          // in pop order.  Decided *before* run_task so an untrained cohort
          // stays deferred across retries.
          if (fault.active() && fault.lose_update()) {
            metrics.lost_updates.add();
            if (flight_retries[c] < async_.fault.max_retries) {
              ++flight_retries[c];
              arrival_time[c] = queue.now() + fault.backoff(flight_retries[c]);
              queue.schedule_at(
                  arrival_time[c],
                  static_cast<std::uint64_t>(sim::EventKind::kClientUpdate),
                  event.actor);
              if (obs::Tracer* t = obs::tracer()) {
                t->instant(queue.now(), "fault", "lost",
                           static_cast<std::int64_t>(c),
                           {obs::field("attempt", flight_retries[c])});
              }
              break;
            }
            // Retries exhausted: the update is gone for good.  The client
            // stays live and eligible for its tier's next cohort.
            metrics.dropped_updates.add();
            if (obs::Tracer* t = obs::tracer()) {
              t->instant(queue.now(), "fault", "dropped",
                         static_cast<std::int64_t>(c),
                         {obs::field("retries", flight_retries[c])});
            }
            flight_retries[c] = 0;
            in_flight[c] = 0;
            --in_flight_count;
            sorted_erase(inflight_by_tier[tier_of[c]], c);
            flight_update[c] = LocalUpdate{};
            DynRound& lost_round = rounds[flight_tier[c]];
            --lost_round.awaiting;
            if (lost_round.awaiting == 0) complete_round(flight_tier[c]);
            break;
          }
          flight_retries[c] = 0;
          // The cohort may still be awaiting its window barrier: train it
          // now.  Deferred tasks are order-independent, so an early flush
          // is byte-identical to flushing at the barrier.
          if (task_of[c] != kNoTask) run_task(task_of[c]);
          in_flight[c] = 0;
          --in_flight_count;
          sorted_erase(inflight_by_tier[tier_of[c]], c);
          const std::size_t tier = flight_tier[c];
          DynRound& round = rounds[tier];
          --round.awaiting;
          ++round.arrivals;

          const std::size_t version = out.result.rounds.size();
          const std::size_t age = version - flight_dispatch_version[c];
          const double observed = queue.now() - flight_dispatch_time[c];
          if (hooks_.observe) hooks_.observe(c, observed);

          obs::ScopedPhase agg_phase(&phases, obs::Phase::kAggregate);
          // Fold this client into the tier's running FedAvg, discounted by
          // the update's *own* staleness (constant/invfreq leave the
          // factor at 1 and weigh by update counts instead).
          const LocalUpdate& update = flight_update[c];
          const double w =
              static_cast<double>(update.num_samples) *
              staleness_factor(async_.staleness, async_.poly_alpha, age);
          if (w > 0.0) {
            for (std::size_t i = 0; i < weight_count; ++i) {
              round.accum[i] += w * static_cast<double>(update.weights[i]);
            }
            round.weight_total += w;
          }
          const double client_train_loss = update.train_loss;
          // Folded in: release the weight copy (peak flight_update memory
          // stays bounded by the in-flight set, not the federation size).
          flight_update[c] = LocalUpdate{};
          if (round.weight_total > 0.0) {
            for (std::size_t i = 0; i < weight_count; ++i) {
              tier_models[tier][i] = static_cast<float>(
                  round.accum[i] / round.weight_total);
            }
          }

          staleness_sum[tier] += static_cast<double>(age);
          ++tier_updates[tier];
          last_submit_version[tier] = version;

          model_age.assign(num_tiers, 0);
          for (std::size_t t = 0; t < num_tiers; ++t) {
            if (tier_updates[t] > 0) {
              model_age[t] = version - last_submit_version[t];
            }
          }
          current_weights = cross_tier_weights(
              async_.staleness, async_.poly_alpha, tier_updates, model_age);
          aggregate_global(tier_models, current_weights, global, accum_scratch);
          agg_phase.stop();
          metrics.staleness.record(static_cast<double>(age));
          if (obs::Tracer* t = obs::tracer()) {
            t->instant(queue.now(), "async", "update",
                       static_cast<std::int64_t>(c),
                       {obs::field("version", version),
                        obs::field("tier", tier),
                        obs::field("staleness", age)});
          }

          RoundRecord record;
          record.round = version;
          record.round_latency = observed;
          record.virtual_time = queue.now();
          record.train_loss = client_train_loss;
          record.selected_tier = static_cast<int>(tier);
          record.selected_clients = {c};

          last_evaluated = version % async_.eval_every == 0 ||
                           version + 1 == async_.total_updates;
          if (last_evaluated) {
            obs::ScopedPhase phase(&phases, obs::Phase::kEval);
            const nn::LossResult r = evaluate(global, *test_);
            phase.stop();
            record.global_accuracy = r.accuracy;
            record.global_loss = r.loss;
            if (obs::Tracer* t = obs::tracer()) {
              t->instant(queue.now(), "async", "eval",
                         static_cast<std::int64_t>(tier),
                         {obs::field("version", version),
                          obs::field("accuracy", r.accuracy)});
            }
          } else if (!out.result.rounds.empty()) {
            record.global_accuracy = out.result.rounds.back().global_accuracy;
            record.global_loss = out.result.rounds.back().global_loss;
          }

          RoundFeedback feedback;
          feedback.round = version;
          feedback.virtual_time = queue.now();
          feedback.global_accuracy = record.global_accuracy;
          feedback.global_loss = record.global_loss;
          feedback.submitting_tier = static_cast<int>(tier);
          feedback.staleness = age;
          if (last_evaluated) {
            obs::ScopedPhase phase(&phases, obs::Phase::kEval);
            feedback.tier_accuracies = evaluate_tiers(global);
          }
          policy.observe(feedback);

          out.result.rounds.push_back(std::move(record));

          if (version + 1 >= async_.total_updates) {
            stopped = true;
            break;
          }
          if (async_.time_budget_seconds > 0.0 &&
              queue.now() >= async_.time_budget_seconds) {
            util::log_info("async time budget of ", async_.time_budget_seconds,
                           "s exhausted after ", version + 1, " updates");
            stopped = true;
            break;
          }

          if (round.awaiting == 0) complete_round(tier);
          // A re-tiering may have parked this client's new tier with no
          // eligible members while it was in flight; revive it now.
          if (tier_of[c] != kNoTier && !rounds[tier_of[c]].active) {
            dispatch(tier_of[c]);
          }
          // Policy-parked tiers get another chance at the new version
          // (skipping any tier parked at this very version just above).
          for (std::size_t t = 0; t < num_tiers; ++t) {
            if (parked[t] && parked_at[t] < out.result.rounds.size() &&
                !rounds[t].active) {
              metrics.park_retries.add();
              dispatch(t);
            }
          }
          break;
        }

        case sim::EventKind::kClientLeave: {
          const sim::LifecycleEvent churn_event = *pending_churn;
          schedule_next_churn();
          if (live_set.empty()) break;
          const std::size_t c =
              live_set.kth(churn_event.pick % live_set.size());
          ++out.leave_count;
          metrics.leaves.add();
          if (obs::Tracer* t = obs::tracer()) {
            t->instant(queue.now(), "churn", "leave",
                       static_cast<std::int64_t>(c),
                       {obs::field("in_flight",
                                   static_cast<std::int64_t>(in_flight[c]))});
          }
          live[c] = 0;
          live_set.erase(c);
          inactive_set.insert(c);
          if (tier_of[c] != kNoTier) {
            if (in_flight[c]) sorted_erase(inflight_by_tier[tier_of[c]], c);
            tier_sets[tier_of[c]].erase(c);
            tier_dirty[tier_of[c]] = 1;
            tier_of[c] = kNoTier;
          }
          if (hooks_.left) hooks_.left(c);
          policy.on_leave(c);
          if (in_flight[c]) {
            // Mid-round departure: its pending update is lost; the cohort
            // no longer waits for it.
            in_flight[c] = 0;
            --in_flight_count;
            flight_update[c] = LocalUpdate{};
            DynRound& round = rounds[flight_tier[c]];
            --round.awaiting;
            if (round.awaiting == 0) complete_round(flight_tier[c]);
          }
          break;
        }

        case sim::EventKind::kClientJoin: {
          const sim::LifecycleEvent churn_event = *pending_churn;
          schedule_next_churn();
          if (inactive_set.empty()) break;  // nobody waiting to (re)join
          const std::size_t c =
              inactive_set.kth(churn_event.pick % inactive_set.size());
          ++out.join_count;
          live[c] = 1;
          inactive_set.erase(c);
          live_set.insert(c);
          const std::size_t tier = hooks_.joined
                                       ? hooks_.joined(c, expected_latency(c))
                                       : place_fallback(c);
          if (tier >= num_tiers) {
            throw std::runtime_error(
                "AsyncEngine: joined hook returned tier out of range");
          }
          tier_sets[tier].insert(c);
          tier_dirty[tier] = 1;
          tier_of[c] = tier;
          metrics.joins.add();
          if (obs::Tracer* t = obs::tracer()) {
            t->instant(queue.now(), "churn", "join",
                       static_cast<std::int64_t>(c),
                       {obs::field("tier", tier)});
          }
          policy.on_join(c, tier);
          if (!rounds[tier].active) dispatch(tier);
          break;
        }

        case sim::EventKind::kClientSlowdown: {
          const sim::LifecycleEvent churn_event = *pending_churn;
          schedule_next_churn();
          if (live_set.empty()) break;
          const std::size_t c =
              live_set.kth(churn_event.pick % live_set.size());
          ++out.slowdown_count;
          // The event *sets* the multiplier relative to the client's
          // profiled baseline rather than compounding it: compounded
          // multipliers (mean ~2x) drift exponentially, and an in-flight
          // client hit repeatedly would see its arrival recede faster than
          // virtual time advances — a round that never completes.
          const double previous = latency_scale[c];
          latency_scale[c] = churn_event.factor;
          metrics.slowdowns.add();
          if (obs::Tracer* t = obs::tracer()) {
            t->instant(queue.now(), "churn", "slowdown",
                       static_cast<std::int64_t>(c),
                       {obs::field("factor", churn_event.factor)});
          }
          if (in_flight[c]) {
            // Mid-round straggler: the remaining flight time rescales from
            // the old multiplier to the new one; the stale arrival event is
            // left in the queue and ignored by the time check above.
            const double remaining = arrival_time[c] - queue.now();
            arrival_time[c] =
                queue.now() + remaining * (churn_event.factor / previous);
            queue.schedule_at(arrival_time[c],
                              static_cast<std::uint64_t>(
                                  sim::EventKind::kClientUpdate),
                              c);
          }
          break;
        }

        case sim::EventKind::kReProfile: {
          queue.schedule_at(queue.now() + async_.reprofile_every,
                            static_cast<std::uint64_t>(
                                sim::EventKind::kReProfile),
                            /*actor=*/0);
          if (live_set.empty()) break;  // nobody to tier until a join lands
          ++out.reprofile_count;
          metrics.reprofiles.add();
          if (obs::Tracer* t = obs::tracer()) {
            t->instant(queue.now(), "churn", "reprofile", /*actor=*/0,
                       {obs::field("live",
                                   static_cast<std::int64_t>(
                                       live_set.size()))});
          }
          std::vector<std::vector<std::size_t>> members = hooks_.retier();
          if (members.size() != num_tiers) {
            throw std::runtime_error(
                "AsyncEngine: retier hook returned wrong tier count");
          }
          std::vector<char> seen(num_clients, 0);
          std::size_t total = 0;
          for (std::vector<std::size_t>& tier : members) {
            std::sort(tier.begin(), tier.end());
            for (std::size_t id : tier) {
              if (id >= num_clients || !live[id] || seen[id]) {
                throw std::runtime_error(
                    "AsyncEngine: retier hook returned invalid membership");
              }
              seen[id] = 1;
              ++total;
            }
          }
          if (total != live_set.size()) {
            throw std::runtime_error(
                "AsyncEngine: retier hook dropped live clients");
          }
          tiers_flat = std::move(members);
          // Re-bucket the in-flight lists under the migrated tier_of
          // (collected ascending, so per-tier order stays sorted).
          std::vector<std::size_t> migrated;
          for (std::vector<std::size_t>& list : inflight_by_tier) {
            migrated.insert(migrated.end(), list.begin(), list.end());
            list.clear();
          }
          std::sort(migrated.begin(), migrated.end());
          for (std::size_t t = 0; t < num_tiers; ++t) {
            tier_dirty[t] = 0;
            tier_sets[t].clear();
            for (std::size_t id : tiers_flat[t]) {
              tier_sets[t].insert(id);
              tier_of[id] = t;
            }
          }
          for (std::size_t id : migrated) {
            inflight_by_tier[tier_of[id]].push_back(id);
          }
          policy.on_retier(tiers_flat);
          // Pending cohorts keep running under their dispatching tier; the
          // migrated membership only shapes future sampling.  Tiers that
          // gained their first members start their cadence now.
          for (std::size_t t = 0; t < num_tiers; ++t) {
            if (!rounds[t].active && !tier_sets[t].empty()) dispatch(t);
          }
          break;
        }

        default:
          throw std::logic_error("AsyncEngine: unexpected event kind");
      }
      if (stopped) break;

      // Training can die out entirely (every client left mid-run).  Churn
      // streams never end, so stop unless a join could revive the run.
      if (in_flight_count == 0 && async_.churn.join_rate <= 0.0) {
        bool any_active = false;
        for (const DynRound& round : rounds) any_active |= round.active;
        if (!any_active) {
          util::log_info("async-dyn: population died out after ",
                         out.result.rounds.size(), " updates");
          stopped = true;
          break;
        }
      }
    }
    // Checkpoint at batch boundaries once virtual time crosses the due
    // point: the trigger is a pure function of event times (never a queue
    // event), so it is shard-count invariant and perturbs no seqs.
    if (!stopped && queue.now() >= next_checkpoint_due) {
      write_checkpoint();
      next_checkpoint_due =
          (std::floor(queue.now() / async_.checkpoint_every) + 1.0) *
          async_.checkpoint_every;
    }
  }

  if (!out.result.rounds.empty() && !last_evaluated) {
    obs::ScopedPhase phase(&phases, obs::Phase::kEval);
    const nn::LossResult r = evaluate(global, *test_);
    out.result.rounds.back().global_accuracy = r.accuracy;
    out.result.rounds.back().global_loss = r.loss;
  }

  const auto finalize_start = obs::wall_now();
  finalize_result(out, std::move(global), tier_updates, staleness_sum,
                  std::move(current_weights));
  out.result.phases = phases.stats();
  out.final_members = std::move(flat_tiers());
  out.final_live_clients = live_set.size();
  // Fold the per-shard queue registries into the process-global snapshot
  // under the single-queue instrument names (sim.events_popped etc.).
  queue.merge_metrics_into(obs::Registry::global());
  metrics.finalize_ns.add(obs::wall_ns_count_since(finalize_start));
  return out;
}

}  // namespace tifl::fl
